//! Offline stand-in for the `rand` 0.8 crate.
//!
//! The registry is unreachable in this build environment, so this crate
//! reimplements the (small) subset of the rand 0.8 API the workspace uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen`, `gen_range` and `gen_bool`. The generator is
//! xoshiro256++ (the same family the real `SmallRng` uses on 64-bit
//! targets) seeded through SplitMix64, so statistical quality is adequate
//! for the collision-rate experiments in this repository. It is **not**
//! bit-compatible with upstream `rand` streams and, like upstream
//! `SmallRng`, must never be used for cryptography.

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Build an RNG from a `u64` seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Sample a value of `Self` from raw random bits ("standard" distribution).
pub trait Standard {
    /// Draw one value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that can be sampled uniformly (`Range` / `RangeInclusive` over
/// the primitive integer and float types).
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                self.start + draw as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u128 + 1;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                start + draw as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + draw) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = <$t as Standard>::standard(rng);
                start + unit * (end - start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value via the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        <f64 as Standard>::standard(self) < p
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Non-cryptographic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, decent statistical quality; the same
    /// role (and family) as rand 0.8's `SmallRng` on 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }

        /// The raw xoshiro256++ state, for checkpointing a generator
        /// mid-stream. Restoring via [`SmallRng::from_state`] continues
        /// the stream exactly where it left off.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously captured
        /// [`SmallRng::state`]. An all-zero state is invalid for xoshiro
        /// (it is a fixed point); it is replaced with a fixed non-zero
        /// state rather than looping forever on zeros.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u8 = rng.gen_range(1..=35u8);
            assert!((1..=35).contains(&w));
            let f: f64 = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(99);
        let mut counts = [0u32; 16];
        for _ in 0..160_000 {
            counts[rng.gen_range(0..16usize)] += 1;
        }
        for &count in &counts {
            assert!((8_000..12_000).contains(&count), "skewed bucket: {count}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits));
    }
}
