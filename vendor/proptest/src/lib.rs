//! Offline stand-in for the `proptest` crate.
//!
//! The registry is unreachable in this build environment, so this crate
//! reimplements the subset of the proptest API the workspace uses: the
//! [`proptest!`] macro, `prop_assert*` macros, [`Strategy`] with
//! `prop_map`, [`Just`], [`prop_oneof!`], [`any`], range and tuple
//! strategies, and `prop::collection::vec` / `prop::array::uniform8`.
//!
//! Semantics: each property runs `ProptestConfig::cases` times with inputs
//! drawn from a generator seeded deterministically from the test function
//! name — so failures are reproducible run-to-run. There is no shrinking:
//! a failing case panics with the assertion message directly, which is
//! enough for CI; rerunning the test replays the identical sequence.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Per-property configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Smaller than upstream's 256: properties here wrap whole fuzzing
        // campaigns, and determinism makes re-covering the same cases
        // across runs pointless.
        ProptestConfig { cases: 64 }
    }
}

/// The RNG driving value generation inside [`proptest!`].
#[derive(Debug, Clone)]
pub struct TestRng(pub SmallRng);

impl TestRng {
    /// Deterministic per-property RNG, seeded from the test name.
    pub fn for_property(name: &str) -> Self {
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(SmallRng::seed_from_u64(hash))
    }
}

/// A generator of random values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::Rng::gen(&mut rng.0)
            }
        }
    )*};
}
impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

/// Strategy for [`Arbitrary`] types; construct via [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// The full range of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(&mut rng.0, self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(&mut rng.0, self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident.$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);

/// Uniform choice between boxed alternative strategies; construct via
/// [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Union over `options`; panics if empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rand::Rng::gen_range(&mut rng.0, 0..self.options.len());
        self.options[pick].generate(rng)
    }
}

/// Box a strategy for use in [`Union`] (object-safe alternatives).
pub fn boxed<S: Strategy + 'static>(strategy: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(strategy)
}

/// Collection and array strategies, under the same paths as upstream
/// (`prop::collection::vec`, `prop::array::uniform8`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: core::ops::Range<usize>,
        }

        /// `Vec` of values from `element`, length in `size`.
        pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rand::Rng::gen_range(&mut rng.0, self.size.clone());
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Fixed-size array strategies.
    pub mod array {
        use crate::{Strategy, TestRng};

        /// Strategy for `[S::Value; 8]`.
        #[derive(Debug, Clone)]
        pub struct UniformArray8<S>(S);

        /// Array of 8 values drawn from `strategy`.
        pub fn uniform8<S: Strategy>(strategy: S) -> UniformArray8<S> {
            UniformArray8(strategy)
        }

        impl<S: Strategy> Strategy for UniformArray8<S> {
            type Value = [S::Value; 8];
            fn generate(&self, rng: &mut TestRng) -> [S::Value; 8] {
                core::array::from_fn(|_| self.0.generate(rng))
            }
        }
    }
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, boxed, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof,
        proptest, Any, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Define property tests. Supports the upstream form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn prop(x in 0u32..10, mut v in prop::collection::vec(any::<u8>(), 0..9)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::for_property(stringify!($name));
                for case in 0..config.cases {
                    let _ = case;
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Assert inside a property (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
/// Upstream proptest rejects and regenerates; this stub, which expands the
/// test body inline in the case loop, just moves on to the next case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            continue;
        }
    };
}

/// Assert equality inside a property (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property (panics like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(
            x in 1u32..100,
            y in 2usize..=8,
            mut data in prop::collection::vec(any::<u8>(), 1..64),
        ) {
            prop_assert!((1..100).contains(&x));
            prop_assert!((2..=8).contains(&y));
            prop_assert!(!data.is_empty() && data.len() < 64);
            data.push(0);
            prop_assert_eq!(*data.last().unwrap(), 0);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1u8), Just(7u8), (10u8..=12).prop_map(|x| x)]) {
            prop_assert!(v == 1 || v == 7 || (10..=12).contains(&v));
        }

        #[test]
        fn arrays(bytes in prop::array::uniform8(any::<u8>())) {
            prop_assert_eq!(bytes.len(), 8);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_property("p");
        let mut b = TestRng::for_property("p");
        let s = prop::collection::vec(any::<u32>(), 0..50);
        for _ in 0..20 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
