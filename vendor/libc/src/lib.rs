//! Offline stand-in for the `libc` crate.
//!
//! The registry is unreachable in this build environment, so this crate
//! declares just the raw C bindings the workspace actually uses: `madvise`
//! for the THP hints, `mmap`/`munmap` with the `MAP_HUGETLB` flags for the
//! explicit-huge-page allocator, the raw `mbind` syscall number for NUMA
//! placement and `sched_setaffinity` for node pinning. The symbols come
//! straight from the platform's C library the binary links anyway.

#![allow(non_camel_case_types)]
#![allow(non_upper_case_globals)]

/// C `int`.
pub type c_int = i32;
/// C `long`.
pub type c_long = i64;
/// C `unsigned long`.
pub type c_ulong = u64;
/// C `void` (for pointer types only).
pub type c_void = core::ffi::c_void;
/// C `size_t`.
pub type size_t = usize;
/// POSIX `off_t` (64-bit on every target we build).
pub type off_t = i64;
/// POSIX `pid_t`.
pub type pid_t = i32;

/// `MADV_HUGEPAGE` from `<sys/mman.h>` on Linux.
#[cfg(target_os = "linux")]
pub const MADV_HUGEPAGE: c_int = 14;
/// `MADV_NOHUGEPAGE` from `<sys/mman.h>` on Linux.
#[cfg(target_os = "linux")]
pub const MADV_NOHUGEPAGE: c_int = 15;

/// `PROT_READ` from `<sys/mman.h>`.
#[cfg(unix)]
pub const PROT_READ: c_int = 1;
/// `PROT_WRITE` from `<sys/mman.h>`.
#[cfg(unix)]
pub const PROT_WRITE: c_int = 2;
/// `MAP_PRIVATE` from `<sys/mman.h>`.
#[cfg(unix)]
pub const MAP_PRIVATE: c_int = 0x02;
/// `MAP_ANONYMOUS` from `<sys/mman.h>` on Linux.
#[cfg(target_os = "linux")]
pub const MAP_ANONYMOUS: c_int = 0x20;
/// `MAP_HUGETLB` from `<sys/mman.h>` on Linux.
#[cfg(target_os = "linux")]
pub const MAP_HUGETLB: c_int = 0x40000;
/// `MAP_HUGE_SHIFT`: bit position of the encoded huge-page-size log2.
#[cfg(target_os = "linux")]
pub const MAP_HUGE_SHIFT: c_int = 26;
/// `MAP_HUGE_2MB`: request 2 MiB hugetlb pages.
#[cfg(target_os = "linux")]
pub const MAP_HUGE_2MB: c_int = 21 << MAP_HUGE_SHIFT;
/// `MAP_HUGE_1GB`: request 1 GiB hugetlb pages.
#[cfg(target_os = "linux")]
pub const MAP_HUGE_1GB: c_int = 30 << MAP_HUGE_SHIFT;
/// `mmap` failure sentinel.
#[cfg(unix)]
pub const MAP_FAILED: *mut c_void = !0 as *mut c_void;

/// `mbind(2)` syscall number on x86-64.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub const SYS_mbind: c_long = 237;
/// `mbind(2)` syscall number on aarch64.
#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
pub const SYS_mbind: c_long = 235;

/// `MPOL_PREFERRED` from `<numaif.h>`: prefer a node, fall back silently.
#[cfg(target_os = "linux")]
pub const MPOL_PREFERRED: c_int = 1;

/// glibc `cpu_set_t`: a 1024-bit CPU mask.
#[cfg(target_os = "linux")]
#[repr(C)]
#[derive(Clone, Copy)]
pub struct cpu_set_t {
    /// The mask words (`__CPU_SETSIZE / __NCPUBITS` = 1024 / 64).
    pub bits: [u64; 16],
}

#[cfg(unix)]
extern "C" {
    /// Give advice about use of memory; see `madvise(2)`.
    pub fn madvise(addr: *mut c_void, length: size_t, advice: c_int) -> c_int;
    /// Map memory; see `mmap(2)`.
    pub fn mmap(
        addr: *mut c_void,
        length: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    /// Unmap memory; see `munmap(2)`.
    pub fn munmap(addr: *mut c_void, length: size_t) -> c_int;
    /// Raw indirect system call; see `syscall(2)`.
    pub fn syscall(num: c_long, ...) -> c_long;
}

#[cfg(target_os = "linux")]
extern "C" {
    /// Pin a thread to a CPU set; see `sched_setaffinity(2)`.
    pub fn sched_setaffinity(pid: pid_t, cpusetsize: size_t, cpuset: *const cpu_set_t) -> c_int;
}
