//! Offline stand-in for the `libc` crate.
//!
//! The registry is unreachable in this build environment, so this crate
//! declares just the raw C bindings the workspace actually uses: `madvise`
//! with `MADV_HUGEPAGE`. The symbols come straight from the platform's C
//! library the binary links anyway.

#![allow(non_camel_case_types)]

/// C `int`.
pub type c_int = i32;
/// C `void` (for pointer types only).
pub type c_void = core::ffi::c_void;
/// C `size_t`.
pub type size_t = usize;

/// `MADV_HUGEPAGE` from `<sys/mman.h>` on Linux.
#[cfg(target_os = "linux")]
pub const MADV_HUGEPAGE: c_int = 14;

#[cfg(unix)]
extern "C" {
    /// Give advice about use of memory; see `madvise(2)`.
    pub fn madvise(addr: *mut c_void, length: size_t, advice: c_int) -> c_int;
}
