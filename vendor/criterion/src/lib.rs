//! Offline stand-in for the `criterion` crate.
//!
//! The registry is unreachable in this build environment, so this crate
//! reimplements the subset of the criterion 0.5 API the workspace's two
//! bench harnesses use: `criterion_group!`/`criterion_main!`, benchmark
//! groups with throughput annotations, `Bencher::iter`/`iter_batched`,
//! `BenchmarkId`, and `black_box`.
//!
//! Measurement is deliberately simple: each benchmark runs a calibration
//! pass to size the batch, then `sample_size` timed batches within
//! `measurement_time`, reporting median/min/max ns per iteration (plus
//! derived throughput) on stdout. No statistics beyond that, no HTML
//! reports, no baseline comparison — enough to eyeball relative cost and,
//! more importantly here, to keep `cargo bench`/`cargo test` compiling and
//! running offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier; forwards to [`std::hint::black_box`].
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Units for reporting per-iteration throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many logical elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// How `iter_batched` amortises setup cost. The stub runs one setup per
/// measured call either way; the variant only exists for API parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Few, large inputs.
    LargeInput,
    /// Many, small inputs.
    SmallInput,
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Top-level benchmark driver. Collects timing configuration via the
/// builder methods and hands [`BenchmarkGroup`]s out.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Target wall-clock budget for the timed samples.
    pub fn measurement_time(mut self, duration: Duration) -> Self {
        self.measurement_time = duration;
        self
    }

    /// Calibration/warm-up budget before timing starts.
    pub fn warm_up_time(mut self, duration: Duration) -> Self {
        self.warm_up_time = duration;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n{name}");
        BenchmarkGroup {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<N: Display, F>(&mut self, id: N, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<N: Display, I: ?Sized, F>(
        &mut self,
        id: N,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// End the group (prints nothing extra; exists for API parity).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Calibrate: grow the batch until one call costs ~1ms or the
        // warm-up budget is spent, so per-sample timing noise stays small.
        let calibration_start = Instant::now();
        loop {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            if bencher.elapsed >= Duration::from_millis(1)
                || calibration_start.elapsed() >= self.warm_up_time
                || bencher.iters >= 1 << 20
            {
                break;
            }
            bencher.iters *= 4;
        }

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        let sampling_start = Instant::now();
        for _ in 0..self.sample_size {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            per_iter_ns.push(bencher.elapsed.as_nanos() as f64 / bencher.iters as f64);
            if sampling_start.elapsed() >= self.measurement_time {
                break;
            }
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter_ns[per_iter_ns.len() / 2];

        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.0} elem/s", n as f64 * 1e9 / median)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.0} B/s", n as f64 * 1e9 / median)
            }
            None => String::new(),
        };
        println!(
            "  {id:<40} {median:>12.1} ns/iter  [{:.1} .. {:.1}]{rate}",
            per_iter_ns[0],
            per_iter_ns[per_iter_ns.len() - 1],
        );
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the calibrated batch size.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` on fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Define a benchmark group; supports both the plain and the
/// `name/config/targets` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = ::core::default::Default::default();
            targets = $($target),+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut criterion = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(10));
        let mut group = criterion.benchmark_group("smoke");
        group.throughput(Throughput::Elements(4));
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("scaled", 7), &7u64, |b, &n| {
            b.iter_batched(
                || vec![n; 32],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("flat", "64k").to_string(), "flat/64k");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
