//! Cross-scheme observational equivalence — the central correctness claim
//! of the reproduction (DESIGN.md §6): for any stream of coverage events,
//! AFL's flat bitmap and BigMap's two-level bitmap must agree on every
//! observable the fuzzer acts on.

use bigmap::prelude::*;
use proptest::prelude::*;

/// Drives both schemes through an identical sequence of executions and
/// checks observable agreement after each pipeline step.
fn check_equivalence(map_size: MapSize, executions: &[Vec<u32>]) {
    let mut flat = FlatBitmap::new(map_size).unwrap();
    let mut big = bigmap::core::BigMap::new(map_size).unwrap();
    let mut flat_virgin = VirginState::new(map_size);
    let mut big_virgin = VirginState::new(map_size);

    for keys in executions {
        flat.reset();
        big.reset();
        for &k in keys {
            flat.record(k);
            big.record(k);
        }

        // Raw hit-count multisets agree.
        let counts = |map: &dyn CoverageMap| {
            let mut v = Vec::new();
            map.for_each_nonzero(&mut |_, c| v.push(c));
            v.sort_unstable();
            v
        };
        assert_eq!(counts(&flat), counts(&big), "raw counts diverged");
        assert_eq!(flat.count_nonzero(), big.count_nonzero());

        // Per-key values agree.
        for &k in keys {
            assert_eq!(flat.value_of_key(k), big.value_of_key(k), "key {k}");
        }

        // Merged classify+compare verdicts agree.
        let fv = flat.classify_and_compare(&mut flat_virgin);
        let bv = big.classify_and_compare(&mut big_virgin);
        assert_eq!(fv, bv, "novelty verdicts diverged");

        // Classified values agree too.
        assert_eq!(counts(&flat), counts(&big), "classified counts diverged");

        // Virgin discovery totals agree (different layouts, same count).
        assert_eq!(
            flat_virgin.discovered_in(map_size.bytes()),
            big_virgin.discovered_in(big.used_len()),
            "virgin discovery diverged"
        );
    }
}

#[test]
fn hand_picked_sequences() {
    let size = MapSize::K64;
    check_equivalence(
        size,
        &[
            vec![],
            vec![1],
            vec![1, 1, 1],
            vec![2, 3, 4, 5],
            vec![1, 2, 3],
            vec![70_000, 70_000 + (1 << 16)], // folds collide on purpose
            (0..300).collect(),
        ],
    );
}

#[test]
fn split_classify_compare_matches_merged_across_schemes() {
    let size = MapSize::K64;
    let keys: Vec<u32> = (0..512).map(|i| i * 37).collect();

    let run = |merged: bool| -> (Vec<u8>, NewCoverage) {
        let mut map = bigmap::core::BigMap::new(size).unwrap();
        let mut virgin = VirginState::new(size);
        for &k in &keys {
            map.record(k);
        }
        let verdict = if merged {
            map.classify_and_compare(&mut virgin)
        } else {
            map.classify(); // split pipeline (§IV-E off)
            map.compare(&mut virgin)
        };
        (map.active_region().to_vec(), verdict)
    };
    assert_eq!(run(true), run(false));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn equivalence_over_random_campaigns(
        executions in prop::collection::vec(
            prop::collection::vec(any::<u32>(), 0..200),
            1..12,
        ),
    ) {
        check_equivalence(MapSize::K64, &executions);
    }

    #[test]
    fn equivalence_with_clustered_keys(
        base in 0u32..60_000,
        executions in prop::collection::vec(
            prop::collection::vec(0u32..64, 0..100),
            1..8,
        ),
    ) {
        // Clustered keys (realistic: hot loops) plus fold-collisions.
        let shifted: Vec<Vec<u32>> = executions
            .iter()
            .map(|keys| keys.iter().map(|k| base + k * 3).collect())
            .collect();
        check_equivalence(MapSize::K64, &shifted);
    }

    #[test]
    fn hash_stability_under_growth(
        path_a in prop::collection::vec(any::<u32>(), 1..50),
        path_b in prop::collection::vec(any::<u32>(), 1..50),
    ) {
        // Run A, then B (growing used_key), then A again: A's hash must be
        // identical both times (§IV-D watermark rule).
        let mut map = bigmap::core::BigMap::new(MapSize::K64).unwrap();
        let mut run = |keys: &[u32]| {
            map.reset();
            for &k in keys {
                map.record(k);
            }
            map.classify();
            map.hash()
        };
        let first = run(&path_a);
        let _ = run(&path_b);
        let second = run(&path_a);
        prop_assert_eq!(first, second);
    }
}
