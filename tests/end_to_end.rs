//! End-to-end integration tests spanning every crate: target generation →
//! instrumentation → campaign → crash triage → replay coverage, plus the
//! shape of the paper's headline results at smoke scale.

use std::time::Duration;

use bigmap::prelude::*;

fn campaign_stats(
    program: &Program,
    scheme: MapScheme,
    map_size: MapSize,
    budget: Budget,
    seeds: &[Vec<u8>],
) -> CampaignStats {
    let instrumentation =
        Instrumentation::assign(program.block_count(), program.call_sites, map_size, 9);
    let interpreter = Interpreter::new(program);
    let mut campaign = Campaign::new(
        CampaignConfig {
            scheme,
            map_size,
            budget,
            ..Default::default()
        },
        &interpreter,
        &instrumentation,
    );
    campaign.add_seeds(seeds.to_vec());
    campaign.run()
}

#[test]
fn full_pipeline_on_a_table_ii_benchmark() {
    let spec = BenchmarkSpec::by_name("libpng").unwrap();
    let program = spec.build(0.1);
    let seeds = spec.build_seeds(&program, 8);
    let stats = campaign_stats(
        &program,
        MapScheme::TwoLevel,
        MapSize::M2,
        Budget::Execs(3_000),
        &seeds,
    );
    assert_eq!(stats.execs, 3_000);
    assert!(stats.queue_len > seeds.len(), "no coverage progress");
    assert!(stats.used_len > 100, "suspiciously little coverage");
    assert!(
        stats.used_len < MapSize::M2.bytes() / 10,
        "used prefix should be a small fraction of the map"
    );
}

#[test]
fn bigmap_wins_big_maps_loses_nothing_small() {
    // The paper's headline shape at smoke scale: equal-time campaigns.
    let spec = BenchmarkSpec::by_name("sqlite3").unwrap();
    let program = spec.build(0.02);
    let seeds = spec.build_seeds(&program, 8);
    let budget = Budget::Time(Duration::from_millis(700));

    let flat_8m = campaign_stats(&program, MapScheme::Flat, MapSize::M8, budget, &seeds);
    let big_8m = campaign_stats(&program, MapScheme::TwoLevel, MapSize::M8, budget, &seeds);
    assert!(
        big_8m.throughput() > 2.0 * flat_8m.throughput(),
        "8M map: BigMap {:.0}/s vs AFL {:.0}/s — expected a large win",
        big_8m.throughput(),
        flat_8m.throughput()
    );

    let flat_64k = campaign_stats(&program, MapScheme::Flat, MapSize::K64, budget, &seeds);
    let big_64k = campaign_stats(&program, MapScheme::TwoLevel, MapSize::K64, budget, &seeds);
    let ratio = big_64k.throughput() / flat_64k.throughput();
    assert!(
        ratio > 0.5,
        "64k map: BigMap should be near parity, got {ratio:.2}x"
    );
}

#[test]
fn crashes_survive_the_whole_stack() {
    // A shallow crash so the smoke budget reliably finds it; then verify
    // every reported crashing input actually crashes under replay.
    let program = ProgramBuilder::new("shallow-crash")
        .gate(0, b'C', true)
        .gate(1, b'D', false)
        .build()
        .unwrap();
    let instrumentation =
        Instrumentation::assign(program.block_count(), program.call_sites, MapSize::M2, 3);
    let interpreter = Interpreter::new(&program);
    let mut campaign = Campaign::new(
        CampaignConfig {
            scheme: MapScheme::TwoLevel,
            map_size: MapSize::M2,
            budget: Budget::Execs(10_000),
            ..Default::default()
        },
        &interpreter,
        &instrumentation,
    );
    campaign.add_seeds(vec![b"seed".to_vec()]);
    let output = campaign.run_detailed();
    assert!(
        output.stats.unique_crashes >= 1,
        "the single-byte gate must be solved within 10k execs"
    );
    assert_eq!(output.crash_inputs.len(), output.stats.unique_crashes);
    for input in &output.crash_inputs {
        let outcome = interpreter.run(input, &mut bigmap::target::NullSink);
        assert!(outcome.is_crash(), "reported crash input did not reproduce");
    }
}

#[test]
fn laf_intel_improves_crash_discovery_under_feedback() {
    // A single 4-byte magic guard: havoc alone essentially cannot solve it
    // (2^32 space) but laf-intel's per-byte feedback ladder can.
    let base = ProgramBuilder::new("roadblock")
        .magic_gate(2, b"K3Y!", true)
        .build()
        .unwrap();
    let (laf, _) = apply_laf_intel(&base);
    let seeds = vec![b"some seed data here".to_vec()];
    let budget = Budget::Execs(60_000);

    let plain = campaign_stats(&base, MapScheme::TwoLevel, MapSize::K64, budget, &seeds);
    let guided = campaign_stats(&laf, MapScheme::TwoLevel, MapSize::K64, budget, &seeds);
    assert_eq!(
        plain.unique_crashes, 0,
        "blind luck through a 4-byte magic?"
    );
    assert_eq!(
        guided.unique_crashes, 1,
        "laf-intel feedback ladder should solve the magic"
    );
}

#[test]
fn auto_dictionary_solves_magic_without_laf_intel() {
    // The alternative road through a magic compare: AFL's -x dictionary.
    // Extract the target's magic strings and hand them to havoc; the
    // 4-byte roadblock becomes solvable without splitting the compare.
    let program = ProgramBuilder::new("dict-roadblock")
        .magic_gate(2, b"K3Y!", true)
        .build()
        .unwrap();
    let dictionary = program.extract_dictionary();
    assert_eq!(dictionary, vec![b"K3Y!".to_vec()]);

    let instrumentation =
        Instrumentation::assign(program.block_count(), program.call_sites, MapSize::K64, 9);
    let interpreter = Interpreter::new(&program);
    let mut campaign = Campaign::new(
        CampaignConfig {
            scheme: MapScheme::TwoLevel,
            map_size: MapSize::K64,
            budget: Budget::Execs(60_000),
            dictionary,
            ..Default::default()
        },
        &interpreter,
        &instrumentation,
    );
    campaign.add_seeds(vec![b"some seed data here".to_vec()]);
    let with_dict = campaign.run();
    assert_eq!(
        with_dict.unique_crashes, 1,
        "dictionary tokens should punch through the magic"
    );
}

#[test]
fn corpus_minimization_preserves_coverage_end_to_end() {
    let spec = BenchmarkSpec::by_name("proj4").unwrap();
    let program = spec.build(0.03);
    let seeds = spec.build_seeds(&program, 16);
    let stats = {
        let instrumentation =
            Instrumentation::assign(program.block_count(), program.call_sites, MapSize::K64, 9);
        let interp = Interpreter::new(&program);
        let mut campaign = Campaign::new(
            CampaignConfig {
                scheme: MapScheme::TwoLevel,
                map_size: MapSize::K64,
                budget: Budget::Execs(5_000),
                ..Default::default()
            },
            &interp,
            &instrumentation,
        );
        campaign.add_seeds(seeds);
        campaign.run_with_corpus()
    };
    let corpus = stats.1;
    let interpreter = Interpreter::new(&program);
    let min = bigmap::fuzzer::minimize_corpus(&interpreter, &corpus);
    assert_eq!(min.edges_before, min.edges_after);
    assert!(min.kept.len() <= corpus.len());
    // Replay check: the minimized corpus covers the same structural edges.
    let extracted = min.extract(&corpus);
    assert_eq!(
        replay_edge_coverage(&interpreter, &extracted),
        replay_edge_coverage(&interpreter, &corpus),
    );
}

#[test]
fn replay_coverage_is_scheme_independent() {
    // The bias-free coverage measure must not depend on which map scheme
    // generated the corpus when both make identical decisions (same seeds).
    let spec = BenchmarkSpec::by_name("proj4").unwrap();
    let program = spec.build(0.03);
    let seeds = spec.build_seeds(&program, 8);
    let interpreter = Interpreter::new(&program);

    let run = |scheme| {
        let instrumentation =
            Instrumentation::assign(program.block_count(), program.call_sites, MapSize::K64, 9);
        let interp = Interpreter::new(&program);
        let mut campaign = Campaign::new(
            CampaignConfig {
                scheme,
                map_size: MapSize::K64,
                budget: Budget::Execs(4_000),
                ..Default::default()
            },
            &interp,
            &instrumentation,
        );
        campaign.add_seeds(seeds.clone());
        let (_, corpus) = campaign.run_with_corpus();
        corpus
    };
    let flat_corpus = run(MapScheme::Flat);
    let big_corpus = run(MapScheme::TwoLevel);
    // Queue scheduling keys on measured execution times, so the two
    // campaigns' exact corpora can drift on timing noise; structural
    // coverage must still land in the same neighbourhood.
    let flat_cov = replay_edge_coverage(&interpreter, &flat_corpus) as f64;
    let big_cov = replay_edge_coverage(&interpreter, &big_corpus) as f64;
    assert!(
        (flat_cov - big_cov).abs() <= 0.15 * flat_cov.max(big_cov) + 10.0,
        "structural coverage diverged: {flat_cov} vs {big_cov}"
    );
}

#[test]
fn parallel_fleet_beats_single_instance() {
    let spec = BenchmarkSpec::by_name("gvn").unwrap();
    let program = spec.build(0.015);
    let seeds = spec.build_seeds(&program, 8);
    let instrumentation =
        Instrumentation::assign(program.block_count(), program.call_sites, MapSize::M2, 5);
    let config = CampaignConfig {
        scheme: MapScheme::TwoLevel,
        map_size: MapSize::M2,
        budget: Budget::Time(Duration::from_millis(600)),
        ..Default::default()
    };
    let one = run_parallel(&program, &instrumentation, &config, &seeds, 1, 2_000);
    let four = run_parallel(&program, &instrumentation, &config, &seeds, 4, 2_000);
    assert_eq!(four.instances.len(), 4);
    // Wall-clock scaling depends on physical core count (a single-core
    // host time-shares the instances), so the portable assertion is that
    // the fleet loses at most modest overhead to contention and syncing.
    assert!(
        four.total_execs() as f64 > 0.5 * one.total_execs() as f64,
        "fleet collapsed: {} vs {}",
        four.total_execs(),
        one.total_execs()
    );
    // Every instance makes progress and the sync hub spread finds around:
    // all four queues must exceed the seed corpus.
    for inst in &four.instances {
        assert!(inst.queue_len > 8, "an instance made no progress");
    }
}

#[test]
fn context_metric_composes_with_bigmap_end_to_end() {
    let program = GeneratorConfig {
        seed: 77,
        functions: 8,
        ..Default::default()
    }
    .generate();
    let seeds = vec![vec![0u8; 32]];
    let instrumentation =
        Instrumentation::assign(program.block_count(), program.call_sites, MapSize::M2, 2);
    let interpreter = Interpreter::new(&program);
    for metric in [
        MetricKind::Edge,
        MetricKind::ContextSensitive,
        MetricKind::NGram(3),
    ] {
        let mut campaign = Campaign::new(
            CampaignConfig {
                scheme: MapScheme::TwoLevel,
                map_size: MapSize::M2,
                metric,
                budget: Budget::Execs(1_500),
                ..Default::default()
            },
            &interpreter,
            &instrumentation,
        );
        campaign.add_seeds(seeds.clone());
        let stats = campaign.run();
        assert!(stats.used_len > 0, "{metric:?} recorded nothing");
    }
}

#[test]
fn trim_stage_yields_shorter_queue_entries() {
    // Same campaign with and without trimming: the trimmed queue's average
    // entry length must not exceed the untrimmed one's.
    let program = ProgramBuilder::new("trim-target")
        .gate(0, b'T', false)
        .gate(1, b'R', false)
        .build()
        .unwrap();
    let instrumentation =
        Instrumentation::assign(program.block_count(), program.call_sites, MapSize::K64, 4);
    let interpreter = Interpreter::new(&program);
    let run = |trim: bool| {
        let mut campaign = Campaign::new(
            CampaignConfig {
                scheme: MapScheme::TwoLevel,
                map_size: MapSize::K64,
                budget: Budget::Execs(3_000),
                trim_new_entries: trim,
                ..Default::default()
            },
            &interpreter,
            &instrumentation,
        );
        campaign.add_seeds(vec![vec![0xAB; 600]]);
        let (_, corpus) = campaign.run_with_corpus();
        corpus.iter().map(Vec::len).sum::<usize>() as f64 / corpus.len().max(1) as f64
    };
    let untrimmed = run(false);
    let trimmed = run(true);
    assert!(
        trimmed < untrimmed * 0.8,
        "trimming should shorten entries: {trimmed:.0} vs {untrimmed:.0} avg bytes"
    );
}
