//! Cross-crate contract tests for the `bigmap-target` substrate, driven
//! entirely through the `bigmap` facade: the whole Table II suite must
//! build, seed and execute cleanly, and everything the generator and
//! interpreter produce must be a pure function of the configured seed.

use bigmap::prelude::*;
use proptest::prelude::*;

/// Records the full instrumentation event stream of one execution.
#[derive(Default, PartialEq, Eq, Debug)]
struct Recorder {
    events: Vec<(u8, usize)>,
}

impl TraceSink for Recorder {
    fn on_block(&mut self, global_block: usize) {
        self.events.push((0, global_block));
    }
    fn on_call(&mut self, call_site: usize) {
        self.events.push((1, call_site));
    }
    fn on_return(&mut self) {
        self.events.push((2, 0));
    }
}

fn trace(program: &Program, input: &[u8]) -> (Vec<(u8, usize)>, ExecOutcome) {
    let mut recorder = Recorder::default();
    let outcome = Interpreter::new(program).run(input, &mut recorder);
    (recorder.events, outcome)
}

#[test]
fn every_table_ii_spec_builds_seeds_and_executes() {
    let specs = BenchmarkSpec::all();
    assert_eq!(specs.len(), 19, "Table II lists 19 benchmarks");
    for spec in specs {
        let program = spec.build(0.02);
        assert_eq!(
            program.validate(),
            Ok(()),
            "{} must build a structurally valid program",
            spec.name
        );
        assert!(program.block_count() > 0, "{} has no blocks", spec.name);

        let seeds = spec.build_seeds(&program, 4);
        assert_eq!(seeds.len(), 4, "{} produced a short corpus", spec.name);
        for seed in &seeds {
            assert!(!seed.is_empty(), "{} produced an empty seed", spec.name);
            // Seeds must execute without panicking; any outcome is legal
            // here (a seed is allowed to hang or crash a planted site,
            // though build_seeds aims for clean runs).
            let _ = trace(&program, seed);
        }

        // Adversarial inputs must not panic the interpreter either.
        for input in [&b""[..], &[0xFF; 256], &[0x00; 1]] {
            let _ = trace(&program, input);
        }
    }
}

#[test]
fn laf_intel_composes_with_every_spec() {
    for spec in BenchmarkSpec::figure3() {
        let program = spec.build(0.02);
        let (laf, stats) = apply_laf_intel(&program);
        assert_eq!(laf.validate(), Ok(()), "{}", spec.name);
        assert_eq!(
            laf.block_count(),
            program.block_count() + stats.blocks_added
        );
        for seed in spec.build_seeds(&program, 2) {
            assert_eq!(
                trace(&program, &seed).1,
                trace(&laf, &seed).1,
                "{}: laf-intel must preserve outcomes",
                spec.name
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same generator seed → byte-identical programs, seed corpora and
    /// execution traces. This is the determinism contract every replay
    /// and equivalence experiment in the workspace leans on.
    #[test]
    fn generation_and_execution_are_seed_deterministic(
        seed in 0u64..1_000_000,
        input in prop::collection::vec(any::<u8>(), 0..64)
    ) {
        let config = GeneratorConfig { seed, ..Default::default() };
        let a = config.generate();
        let b = config.generate();
        prop_assert_eq!(&a, &b, "generator must be a pure function of its seed");

        let (trace_a, outcome_a) = trace(&a, &input);
        let (trace_b, outcome_b) = trace(&b, &input);
        prop_assert_eq!(trace_a, trace_b, "traces must be byte-identical");
        prop_assert_eq!(outcome_a, outcome_b);
    }

    /// Interpreter replay is deterministic on the Table II programs too,
    /// including through the laf-intel transform.
    #[test]
    fn replay_is_deterministic_across_transforms(input in prop::collection::vec(any::<u8>(), 0..48)) {
        let program = BenchmarkSpec::by_name("zlib").unwrap().build(0.02);
        let (laf, _) = apply_laf_intel(&program);
        prop_assert_eq!(trace(&program, &input), trace(&program, &input));
        prop_assert_eq!(trace(&laf, &input), trace(&laf, &input));
    }
}
