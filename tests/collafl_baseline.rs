//! Cross-crate test of the CollAFL-style baseline (§VI comparator):
//! static edge enumeration from the program IR feeding the greedy
//! collision-avoiding ID assignment, compared against AFL's random
//! assignment on the same CFG.

use bigmap::coverage::collafl::{assign_collafl, random_assignment_collisions};
use bigmap::prelude::*;

#[test]
fn static_edges_enumerate_the_cfg() {
    let program = ProgramBuilder::new("t")
        .gate(0, b'A', false)
        .gate(1, b'B', true)
        .build()
        .unwrap();
    let edges = program.static_edge_pairs();
    // Gate chain: test0 -> {reward0, test1}, reward0 -> test1,
    // test1 -> {crash, exit}. reward1 is the crash (no out edges).
    assert_eq!(edges.len(), 5);
    assert!(edges
        .iter()
        .all(|&(s, d)| s < program.block_count() && d < program.block_count()));
    // Deduped and sorted.
    let mut sorted = edges.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(edges, sorted);
}

#[test]
fn static_edges_include_call_and_return_links() {
    let program = GeneratorConfig {
        seed: 4,
        functions: 5,
        gates_per_function: 4,
        ..Default::default()
    }
    .generate();
    let edges = program.static_edge_pairs();
    assert!(
        edges.len() >= program.static_edge_count(),
        "pair enumeration ({}) should cover at least the arity count ({}) \
         (return edges fan out per callee return block)",
        edges.len(),
        program.static_edge_count()
    );
}

#[test]
fn collafl_removes_most_collisions_on_a_table_ii_benchmark() {
    // A sqlite3-like CFG at small scale: enough static edges to collide
    // meaningfully in a 64 kB map.
    let spec = BenchmarkSpec::by_name("sqlite3").unwrap();
    let program = spec.build(0.2);
    let edges = program.static_edge_pairs();
    assert!(edges.len() > 5_000, "need a meaningful edge population");

    let n = program.block_count();
    let collafl = assign_collafl(n, &edges, MapSize::K64, 11);
    let random = random_assignment_collisions(n, &edges, MapSize::K64, 11);

    assert!(
        collafl.colliding_edges * 3 < random.max(1),
        "collafl {} vs random {} colliding edges out of {}",
        collafl.colliding_edges,
        random,
        edges.len()
    );
}

#[test]
fn collafl_ids_drive_a_campaign_with_fewer_used_slots_wasted() {
    // Smoke: a campaign can run with CollAFL-assigned IDs by building a
    // matching Instrumentation through the same map size; the two-level
    // map neither knows nor cares where the IDs came from (orthogonality,
    // as the paper argues).
    let program = GeneratorConfig {
        seed: 9,
        ..Default::default()
    }
    .generate();
    let edges = program.static_edge_pairs();
    let assignment = assign_collafl(program.block_count(), &edges, MapSize::K64, 3);
    assert_eq!(assignment.block_ids.len(), program.block_count());
    // The IDs are valid coverage keys for a 64k map.
    assert!(assignment.block_ids.iter().all(|&id| id < 1 << 16));
}
