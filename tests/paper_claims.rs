//! Direct checks of the paper's quantitative claims, at test scale.
//! Each test names the section it verifies.

use std::time::{Duration, Instant};

use bigmap::prelude::*;

/// §III: "a 64kB map is subjected to ~30% collision rate" for the upper
/// end of the 1k–50k discoverable-edge range, and "the probability of
/// having at least one collision is ~50% after assigning only 300 IDs".
#[test]
fn section3_collision_figures() {
    let rate = collision_rate(1 << 16, 50_000);
    assert!((0.28..0.34).contains(&rate), "rate {rate}");
    let birthday = bigmap::analytics::birthday_keys_for_probability(1 << 16, 0.5);
    assert!((280..=320).contains(&birthday), "birthday {birthday}");
}

/// Figure 2, spot-checked cells (read off the analytic curve the figure
/// plots): rates fall roughly 2x per map doubling in the low-collision
/// regime.
#[test]
fn figure2_halving_behaviour() {
    let keys = 20_000u64;
    let r64k = collision_rate(1 << 16, keys);
    let r128k = collision_rate(1 << 17, keys);
    let r256k = collision_rate(1 << 18, keys);
    assert!(
        (r64k / r128k) > 1.7 && (r64k / r128k) < 2.3,
        "{r64k} vs {r128k}"
    );
    assert!((r128k / r256k) > 1.7 && (r128k / r256k) < 2.3);
}

/// §IV-A: "the runtime of the map operations will depend on how many edges
/// are discovered instead of how big the coverage bitmap is" — BigMap's
/// per-test-case ops on a 32 MB map with a tiny used region must cost
/// about the same as on a 64 kB map (and far less than the flat 32 MB
/// scan).
#[test]
fn section4a_adaptive_cost_independent_of_map_size() {
    let ops_cost = |map: &mut dyn CoverageMap| {
        let mut virgin = VirginState::new(map.map_size());
        // Touch 64 keys, then time 200 iterations of the pipeline.
        for k in 0..64u32 {
            map.record(k * 977);
        }
        let start = Instant::now();
        for _ in 0..200 {
            map.reset();
            for k in 0..64u32 {
                map.record(k * 977);
            }
            map.classify_and_compare(&mut virgin);
        }
        start.elapsed()
    };

    let mut big_small = bigmap::core::BigMap::new(MapSize::K64).unwrap();
    let mut big_huge = bigmap::core::BigMap::new(MapSize::M32).unwrap();
    let small = ops_cost(&mut big_small);
    let huge = ops_cost(&mut big_huge);
    assert!(
        huge < small * 10 + Duration::from_millis(20),
        "BigMap 32M ops ({huge:?}) must not scale with map size (64k: {small:?})"
    );

    let mut flat_huge = FlatBitmap::new(MapSize::M32).unwrap();
    let flat = ops_cost(&mut flat_huge);
    assert!(
        flat > huge * 20,
        "flat 32M ops ({flat:?}) must dwarf BigMap's ({huge:?})"
    );
}

/// §IV-B: "the same edge will point to the same coverage bitmap location
/// for all the test cases" — slot assignments survive arbitrarily many
/// reset/execute cycles.
#[test]
fn section4b_slot_stability_across_campaign() {
    let mut map = bigmap::core::BigMap::new(MapSize::M2).unwrap();
    let keys: Vec<u32> = (0..500).map(|i| i * 4099).collect();
    for &k in &keys {
        map.record(k);
    }
    let slots: Vec<Option<u32>> = keys.iter().map(|&k| map.slot_of_key(k)).collect();
    for round in 0..50 {
        map.reset();
        // Interleave new discoveries.
        map.record(0xDEAD_0000 + round);
        for &k in &keys {
            map.record(k);
        }
    }
    let after: Vec<Option<u32>> = keys.iter().map(|&k| map.slot_of_key(k)).collect();
    assert_eq!(slots, after, "slots moved during the campaign");
}

/// §IV-D: the instrumentation overhead argument — in steady state (no new
/// discoveries) the two-level update is within a small factor of the flat
/// update.
#[test]
fn section4d_update_overhead_bounded() {
    let keys: Vec<u32> = (0..10_000u32).map(|i| i.wrapping_mul(2654435761)).collect();
    let mut flat = FlatBitmap::new(MapSize::K64).unwrap();
    let mut big = bigmap::core::BigMap::new(MapSize::K64).unwrap();
    for &k in &keys {
        big.record(k); // pre-discover
    }
    let time = |f: &mut dyn FnMut()| {
        let start = Instant::now();
        f();
        start.elapsed()
    };
    let flat_t = time(&mut || {
        for _ in 0..50 {
            for &k in &keys {
                flat.record(k);
            }
        }
    });
    let big_t = time(&mut || {
        for _ in 0..50 {
            for &k in &keys {
                big.record(k);
            }
        }
    });
    // The paper claims near-parity; allow generous slack for the test
    // environment, the point is "same order of magnitude".
    assert!(
        big_t < flat_t * 4 + Duration::from_millis(10),
        "two-level update {big_t:?} vs flat {flat_t:?}"
    );
}

/// §IV-D worked example, end to end on the real data structure (P1 and P3
/// hash identically despite used_key growth; P2 differs).
#[test]
fn section4d_hash_example() {
    let mut map = bigmap::core::BigMap::new(MapSize::K64).unwrap();
    let run = |map: &mut bigmap::core::BigMap, path: &[u32]| {
        map.reset();
        for &k in path {
            map.record(k);
        }
        map.classify();
        map.hash()
    };
    let p1 = run(&mut map, &[11, 22]); // A->B->C
    let p2 = run(&mut map, &[11, 22, 33]); // A->B->C->D
    let p3 = run(&mut map, &[11, 22]); // A->B->C again
    assert_eq!(p1, p3);
    assert_ne!(p1, p2);
}

/// §V-B1 (Figure 6's mechanism): with equal time, the flat map's
/// throughput degrades as the map grows; BigMap's does not (within noise).
#[test]
fn figure6_throughput_mechanism() {
    let spec = BenchmarkSpec::by_name("harfbuzz").unwrap();
    let program = spec.build(0.02);
    let seeds = spec.build_seeds(&program, 8);
    let throughput = |scheme: MapScheme, size: MapSize| {
        let inst = Instrumentation::assign(program.block_count(), program.call_sites, size, 17);
        let interp = Interpreter::new(&program);
        let mut campaign = Campaign::new(
            CampaignConfig {
                scheme,
                map_size: size,
                budget: Budget::Time(Duration::from_millis(600)),
                ..Default::default()
            },
            &interp,
            &inst,
        );
        campaign.add_seeds(seeds.clone());
        campaign.run().throughput()
    };

    let flat_small = throughput(MapScheme::Flat, MapSize::K64);
    let flat_big = throughput(MapScheme::Flat, MapSize::M8);
    assert!(
        flat_big * 5.0 < flat_small,
        "flat throughput must collapse: {flat_small:.0} -> {flat_big:.0}"
    );

    let big_small = throughput(MapScheme::TwoLevel, MapSize::K64);
    let big_big = throughput(MapScheme::TwoLevel, MapSize::M8);
    assert!(
        big_big > big_small * 0.4,
        "BigMap throughput must hold: {big_small:.0} -> {big_big:.0}"
    );
}

/// §V-C's enabler: stacking laf-intel + N-gram multiplies the key
/// population (map pressure), which is what makes small maps collide.
#[test]
fn table3_composition_multiplies_keys() {
    let spec = BenchmarkSpec::by_name("gvn").unwrap();
    let base = spec.build(0.05);
    let (laf, _) = apply_laf_intel(&base);
    let seeds = spec.build_seeds(&base, 16);

    let keys_used = |program: &Program, metric: MetricKind| {
        let inst =
            Instrumentation::assign(program.block_count(), program.call_sites, MapSize::M8, 19);
        let interp = Interpreter::new(program);
        let mut campaign = Campaign::new(
            CampaignConfig {
                scheme: MapScheme::TwoLevel,
                map_size: MapSize::M8,
                metric,
                budget: Budget::Execs(4_000),
                ..Default::default()
            },
            &interp,
            &inst,
        );
        campaign.add_seeds(seeds.clone());
        campaign.run().used_len
    };

    let edge_plain = keys_used(&base, MetricKind::Edge);
    let ngram_laf = keys_used(&laf, MetricKind::NGram(3));
    // At smoke scale (4k execs) the multiplier is modest — the laf blocks
    // and deep n-gram windows still need discovering — but must already be
    // clearly above 1x. (The paper's 24h runs reach ~10x pressure.)
    assert!(
        ngram_laf as f64 > 1.3 * edge_plain as f64,
        "composition should multiply keys: {edge_plain} -> {ngram_laf}"
    );
}
