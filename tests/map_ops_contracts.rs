//! Contract tests for the `CoverageMap` trait: properties every
//! implementation must satisfy, run against both schemes through the same
//! generic driver (the trait-object path the fuzzer actually uses).

use bigmap::core::{build_map, MapScheme, MapSize, NewCoverage, VirginState};
use proptest::prelude::*;

fn schemes() -> [MapScheme; 2] {
    [MapScheme::Flat, MapScheme::TwoLevel]
}

#[test]
fn fresh_map_is_empty_by_every_observable() {
    for scheme in schemes() {
        let map = build_map(scheme, MapSize::K64);
        assert_eq!(map.count_nonzero(), 0, "{scheme}");
        assert!(map.active_region().iter().all(|&b| b == 0));
        let mut visited = 0;
        map.for_each_nonzero(&mut |_, _| visited += 1);
        assert_eq!(visited, 0);
        assert_eq!(map.value_of_key(12345), 0);
        assert_eq!(map.scheme(), scheme);
        assert_eq!(map.map_size(), MapSize::K64);
    }
}

#[test]
fn record_then_reset_restores_emptiness() {
    for scheme in schemes() {
        let mut map = build_map(scheme, MapSize::K64);
        for k in 0..500u32 {
            map.record(k.wrapping_mul(2654435761));
        }
        assert!(map.count_nonzero() > 0);
        map.reset();
        assert_eq!(map.count_nonzero(), 0, "{scheme}");
        assert!(map.active_region().iter().all(|&b| b == 0));
    }
}

#[test]
fn for_each_nonzero_agrees_with_count_and_region() {
    for scheme in schemes() {
        let mut map = build_map(scheme, MapSize::K64);
        for k in [3u32, 3, 99, 60_001, 60_001, 60_001] {
            map.record(k);
        }
        let mut pairs = Vec::new();
        map.for_each_nonzero(&mut |slot, v| pairs.push((slot, v)));
        assert_eq!(pairs.len(), map.count_nonzero(), "{scheme}");
        for (slot, v) in pairs {
            assert_eq!(map.active_region()[slot], v);
        }
    }
}

#[test]
fn compare_is_monotone_none_after_exhaustion() {
    // Once a (slot, bucket) combination is folded into virgin, replaying
    // the identical execution must be None — for both schemes, via the
    // trait-object path.
    for scheme in schemes() {
        let mut map = build_map(scheme, MapSize::K64);
        let mut virgin = VirginState::new(MapSize::K64);
        let keys: Vec<u32> = (0..100).map(|i| i * 31).collect();

        for round in 0..3 {
            map.reset();
            for &k in &keys {
                map.record(k);
            }
            let verdict = map.classify_and_compare(&mut virgin);
            if round == 0 {
                assert_eq!(verdict, NewCoverage::NewEdge, "{scheme}");
            } else {
                assert_eq!(verdict, NewCoverage::None, "{scheme} round {round}");
            }
        }
    }
}

#[test]
fn hash_is_a_pure_function_of_the_recorded_multiset() {
    for scheme in schemes() {
        let run = |keys: &[u32]| {
            let mut map = build_map(scheme, MapSize::K64);
            for &k in keys {
                map.record(k);
            }
            map.classify();
            map.hash()
        };
        let a = run(&[1, 2, 3, 2]);
        let b = run(&[1, 2, 3, 2]);
        assert_eq!(a, b, "{scheme}: same events, same hash");
        let c = run(&[1, 2, 3, 3]);
        assert_ne!(a, c, "{scheme}: different counts, different hash");
    }
}

#[test]
fn sparse_path_preserves_hash_semantics_across_all_virgin_maps() {
    // Regression test for the sparse journal pipeline: the campaign routes
    // each exec's classified map to one of THREE virgin maps by outcome
    // (Ok → coverage, Crash → crash, Hang → hang) and hashes interesting
    // maps with the hash-up-to-last-nonzero rule. Forcing the sparse path
    // must leave every verdict, every hash, and all three virgin states
    // bit-identical to the dense path — including re-compares against
    // partially-warmed virgin maps, where a stale byte left behind by an
    // incorrect sparse reset would flip a verdict or move the hash's
    // last-nonzero boundary.
    use bigmap::core::SparseMode;

    // Deterministic exec stream cycling through the three outcome classes,
    // with overlapping key sets so later execs hit both virgin and
    // already-seen slots.
    let execs: Vec<(Vec<u32>, usize)> = (0..24)
        .map(|i| {
            let keys: Vec<u32> = (0..20 + (i as u32) * 7)
                .map(|j| (i as u32 / 3).wrapping_mul(2654435761).wrapping_add(j * 31))
                .collect();
            (keys, i % 3)
        })
        .collect();

    let run = |mode: SparseMode| {
        let mut map = build_map(MapScheme::TwoLevel, MapSize::K64);
        map.set_sparse_override(Some(mode));
        let mut virgins = [MapSize::K64, MapSize::K64, MapSize::K64].map(VirginState::new);
        let mut log = Vec::new();
        for (keys, class) in &execs {
            map.reset();
            for &k in keys {
                map.record(k);
            }
            let verdict = map.classify_and_compare(&mut virgins[*class]);
            log.push((verdict, map.hash()));
        }
        (log, virgins.map(|v| v.as_slice().to_vec()))
    };

    let (dense_log, dense_virgins) = run(SparseMode::Off);
    let (sparse_log, sparse_virgins) = run(SparseMode::On);

    // The stream must actually exercise all three maps with new coverage.
    for class in 0..3 {
        assert!(
            execs
                .iter()
                .zip(&dense_log)
                .any(|((_, c), (v, _))| *c == class && *v == NewCoverage::NewEdge),
            "class {class} never saw new coverage — test stream is too weak"
        );
    }

    for (i, (dense, sparse)) in dense_log.iter().zip(&sparse_log).enumerate() {
        assert_eq!(dense.0, sparse.0, "exec {i}: verdict diverged");
        assert_eq!(dense.1, sparse.1, "exec {i}: hash_to_last_nonzero diverged");
    }
    for (class, (d, s)) in dense_virgins.iter().zip(&sparse_virgins).enumerate() {
        assert_eq!(d, s, "virgin map {class} diverged after the full stream");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn value_of_key_matches_fold_counts(
        keys in prop::collection::vec(0u32..10_000, 0..300),
    ) {
        for scheme in schemes() {
            let mut map = build_map(scheme, MapSize::K64);
            let mut reference = std::collections::HashMap::<u32, u32>::new();
            for &k in &keys {
                map.record(k);
                *reference.entry(k & MapSize::K64.mask()).or_default() += 1;
            }
            for (&folded, &count) in &reference {
                prop_assert_eq!(
                    map.value_of_key(folded) as u32,
                    count.min(255),
                    "{} key {}", scheme, folded
                );
            }
        }
    }

    #[test]
    fn interestingness_requires_change(
        keys in prop::collection::vec(any::<u32>(), 1..200),
    ) {
        // Replaying a corpus against a virgin state that already absorbed
        // it can never be interesting — for any scheme and any key stream.
        for scheme in schemes() {
            let mut map = build_map(scheme, MapSize::K64);
            let mut virgin = VirginState::new(MapSize::K64);
            map.reset();
            for &k in &keys {
                map.record(k);
            }
            map.classify_and_compare(&mut virgin);

            map.reset();
            for &k in &keys {
                map.record(k);
            }
            let verdict = map.classify_and_compare(&mut virgin);
            prop_assert_eq!(verdict, NewCoverage::None, "{}", scheme);
        }
    }
}
