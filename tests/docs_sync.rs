//! Keeps generated documentation in sync with the code that defines it.

/// The README's "Environment knobs" table is pasted from
/// `bigmap_core::env::markdown_table()` (via the `print_env_table`
/// example). If a knob is added, removed or reworded, regenerate the
/// README block:
///
/// ```bash
/// cargo run -p bigmap-core --example print_env_table
/// ```
#[test]
fn readme_env_table_matches_declarations() {
    let readme = include_str!("../README.md");
    let table = bigmap::core::env::markdown_table();
    assert!(
        readme.contains(table.trim_end()),
        "README env table is out of date; regenerate with \
         `cargo run -p bigmap-core --example print_env_table`"
    );
}

/// Every declared knob appears in the README at least once outside the
/// table too (prose or examples), so renames can't leave dangling docs.
#[test]
fn readme_mentions_every_knob() {
    let readme = include_str!("../README.md");
    for knob in bigmap::core::env::KNOBS {
        assert!(
            readme.contains(knob.name),
            "README never mentions {}",
            knob.name
        );
    }
}
