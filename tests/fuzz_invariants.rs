//! Randomized whole-system invariants: arbitrary generated targets and
//! campaign configurations must never wedge, and the statistics they
//! produce must satisfy the structural relations the experiments rely on.

use bigmap::prelude::*;
use proptest::prelude::*;

fn arb_scheme() -> impl Strategy<Value = MapScheme> {
    prop_oneof![Just(MapScheme::Flat), Just(MapScheme::TwoLevel)]
}

fn arb_metric() -> impl Strategy<Value = MetricKind> {
    prop_oneof![
        Just(MetricKind::Edge),
        Just(MetricKind::Block),
        Just(MetricKind::ContextSensitive),
        (2usize..=4).prop_map(MetricKind::NGram),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn campaigns_terminate_and_report_consistently(
        program_seed in 0u64..1000,
        campaign_seed in 0u64..1000,
        scheme in arb_scheme(),
        metric in arb_metric(),
        crash_sites in 0usize..4,
        hang_sites in 0usize..2,
    ) {
        let program = GeneratorConfig {
            seed: program_seed,
            functions: 5,
            gates_per_function: 8,
            crash_sites,
            hang_sites,
            crash_guard_width: 2,
            ..Default::default()
        }
        .generate();
        prop_assert_eq!(program.validate(), Ok(()));

        let map_size = MapSize::K64;
        let instrumentation = Instrumentation::assign(
            program.block_count(),
            program.call_sites,
            map_size,
            campaign_seed,
        );
        let interpreter = Interpreter::new(&program);
        let mut campaign = Campaign::new(
            CampaignConfig {
                scheme,
                map_size,
                metric,
                budget: Budget::Execs(1_200),
                mutations_per_seed: 40,
                seed: campaign_seed,
                ..Default::default()
            },
            &interpreter,
            &instrumentation,
        );
        campaign.add_seeds(vec![vec![campaign_seed as u8; 24]]);
        let output = campaign.run_detailed();
        let stats = &output.stats;

        // Budget respected (trim is off, so execs land exactly).
        prop_assert_eq!(stats.execs, 1_200);
        // Crash accounting is internally consistent.
        prop_assert!(stats.unique_crashes as u64 <= stats.total_crashes);
        prop_assert_eq!(output.crash_inputs.len(), stats.unique_crashes);
        prop_assert_eq!(stats.crash_buckets.len(), stats.unique_crashes);
        // Coverage accounting.
        prop_assert!(stats.discovered_slots <= stats.used_len);
        prop_assert!(stats.used_len <= map_size.bytes());
        prop_assert!(stats.queue_len >= 1);
        // Timing is populated.
        prop_assert!(stats.ops.total() > std::time::Duration::ZERO);
        // Timeline is monotone and ends at the final exec count.
        let points = stats.timeline.points();
        prop_assert!(!points.is_empty());
        for pair in points.windows(2) {
            prop_assert!(pair[0].execs < pair[1].execs);
            prop_assert!(pair[0].coverage <= pair[1].coverage);
        }
        prop_assert_eq!(points.last().unwrap().execs, 1_200);
        // Every reported crash input reproduces.
        for input in &output.crash_inputs {
            prop_assert!(interpreter
                .run(input, &mut bigmap::target::NullSink)
                .is_crash());
        }
    }

    #[test]
    fn laf_transform_composes_with_any_campaign(
        program_seed in 0u64..200,
        scheme in arb_scheme(),
    ) {
        let base = GeneratorConfig {
            seed: program_seed,
            functions: 4,
            gates_per_function: 6,
            magic_gate_ratio: 0.4,
            switch_ratio: 0.2,
            ..Default::default()
        }
        .generate();
        let (laf, _) = apply_laf_intel(&base);
        prop_assert_eq!(laf.validate(), Ok(()));

        let instrumentation = Instrumentation::assign(
            laf.block_count(),
            laf.call_sites,
            MapSize::K64,
            1,
        );
        let interpreter = Interpreter::new(&laf);
        let mut campaign = Campaign::new(
            CampaignConfig {
                scheme,
                map_size: MapSize::K64,
                budget: Budget::Execs(600),
                ..Default::default()
            },
            &interpreter,
            &instrumentation,
        );
        campaign.add_seeds(vec![vec![9u8; 32]]);
        let stats = campaign.run();
        prop_assert_eq!(stats.execs, 600);
        prop_assert!(stats.used_len > 0);
    }
}
