//! The I/O torture suite: kill/corrupt/restore cycles for the
//! checkpoint generations, quarantine behaviour for damaged corpus
//! entries, and hung-worker detection in a real process fleet — all
//! under the deterministic fault plans from `bigmap::fuzzer::faults`.
//!
//! The headline property is convergence: a campaign whose checkpoints
//! are torn and bit-flipped mid-run, killed, and resumed from whatever
//! generation survived must land on the *same final state* as the
//! fault-free run — corruption costs rewound work, never a divergent
//! trajectory and never a corrupt restore.

use std::collections::HashSet;
use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;
use std::time::Duration;

use bigmap::fuzzer::checkpoint::RestoreReport;
use bigmap::fuzzer::{parse_jsonl, InstanceHealth, OutputDir};
use bigmap::prelude::*;

const WORKER: &str = env!("CARGO_BIN_EXE_fabric_worker");

fn fixture() -> (Program, Instrumentation, Vec<Vec<u8>>) {
    let program = GeneratorConfig {
        seed: 29,
        functions: 6,
        gates_per_function: 10,
        crash_sites: 2,
        crash_guard_width: 2,
        ..Default::default()
    }
    .generate();
    let instrumentation =
        Instrumentation::assign(program.block_count(), program.call_sites, MapSize::K64, 5);
    (program, instrumentation, vec![vec![0u8; 24]])
}

fn config(execs: u64) -> CampaignConfig {
    CampaignConfig {
        scheme: MapScheme::TwoLevel,
        map_size: MapSize::K64,
        budget: Budget::Execs(execs),
        mutations_per_seed: 32,
        // The convergence assertions compare resumed runs bit-for-bit
        // against uninterrupted ones; the deterministic-stage sweep is
        // per-(re)start bookkeeping, so havoc-only keeps the trajectory
        // a pure function of the checkpointed RNG streams.
        deterministic: false,
        ..Default::default()
    }
}

fn tmp_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bigmap-chaos-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Runs a fault-plagued first segment whose checkpoint writes are all
/// corrupted (torn or bit-flipped) except the first, restores from
/// whatever generation survived, and returns the restore report plus the
/// checkpoint it yielded.
fn corrupted_segment(
    root: &PathBuf,
    program: &Program,
    instrumentation: &Instrumentation,
    seeds: &[Vec<u8>],
) -> (Checkpoint, RestoreReport) {
    let interpreter = Interpreter::new(program);
    let mut campaign = Campaign::new(config(1_000), &interpreter, instrumentation);
    // Every write after the first is corrupted: flips at ordinals 1, 3,
    // 4 and a torn write at 2 cover both corruption models no matter how
    // many cadence marks the segment actually crosses.
    let plan = Arc::new(
        FaultPlan::new()
            .inject(FaultSite::BitFlip, 0, 1)
            .inject(FaultSite::TornWrite, 0, 2)
            .inject(FaultSite::BitFlip, 0, 3)
            .inject(FaultSite::BitFlip, 0, 4),
    );
    campaign.set_faults(Arc::new(InstanceFaults::new(plan, 0)));
    campaign.add_seeds(seeds.to_vec());
    let mut manager = CheckpointManager::new(root, 250).with_keep(8);
    let partial = campaign.run_with_hook(250, move |c| {
        manager.maybe_checkpoint(c).expect("checkpoint write");
    });
    assert!(partial.execs >= 1_000);

    let (checkpoint, report) = CheckpointManager::load_with_report(root, None)
        .expect("some generation must survive")
        .expect("checkpoints were written");
    (checkpoint, report)
}

/// Corrupt checkpoints are never restored: the fallback scan skips every
/// torn and bit-flipped generation, reports each skip with a reason, and
/// lands on the newest intact one.
#[test]
fn restore_skips_corrupt_generations_and_reports_them() {
    let (program, instrumentation, seeds) = fixture();
    let root = tmp_root("fallback");

    let (checkpoint, report) = corrupted_segment(&root, &program, &instrumentation, &seeds);

    // Only the first write survived, so the fallback walked past every
    // newer (corrupt) generation to reach it.
    assert!(
        report.generation >= 1,
        "restore took the newest generation, which was corrupt: {report:?}"
    );
    assert_eq!(
        report.skipped.len(),
        report.generation,
        "every newer generation must be accounted for: {report:?}"
    );
    for (index, reason) in &report.skipped {
        assert!(*index < report.generation, "skipped an older generation");
        assert!(
            !reason.is_empty(),
            "generation {index} skipped without a reason"
        );
    }
    // The survivor is the first cadence mark of the segment.
    assert!(checkpoint.execs >= 250 && checkpoint.execs < 1_000);

    std::fs::remove_dir_all(&root).ok();
}

/// The convergence property: resume from the surviving generation and
/// finish the budget — the final campaign state must be bit-identical to
/// an uninterrupted fault-free run of the same configuration.
#[test]
fn corrupted_and_resumed_campaign_converges_to_the_fault_free_state() {
    let (program, instrumentation, seeds) = fixture();
    let interpreter = Interpreter::new(&program);

    // Fault-free reference: one uninterrupted run of the full budget.
    let mut reference = Campaign::new(config(3_000), &interpreter, &instrumentation);
    reference.add_seeds(seeds.clone());
    let reference = reference.run_with_hook_detailed(250, |_| {});

    // Chaos arm: segment one with corrupted checkpoint writes, restore
    // through the fallback, then finish the same budget.
    let root = tmp_root("converge");
    let (checkpoint, report) = corrupted_segment(&root, &program, &instrumentation, &seeds);
    assert!(report.generation >= 1, "fallback never exercised");

    let mut resumed = Campaign::new(config(3_000), &interpreter, &instrumentation);
    resumed.restore(&checkpoint);
    assert_eq!(resumed.execs(), checkpoint.execs);
    let resumed = resumed.run_with_hook_detailed(250, |_| {});

    // Bit-identical convergence, not "within noise": same exec count,
    // same corpus in the same admission order, same crashes, same hangs,
    // same coverage footprint.
    assert_eq!(resumed.stats.execs, reference.stats.execs);
    assert_eq!(resumed.corpus, reference.corpus, "corpus diverged");
    assert_eq!(resumed.crash_inputs, reference.crash_inputs);
    assert_eq!(resumed.hang_inputs, reference.hang_inputs);
    assert_eq!(resumed.stats.used_len, reference.stats.used_len);
    assert_eq!(
        resumed.stats.discovered_slots,
        reference.stats.discovered_slots
    );
    assert_eq!(resumed.stats.queue_len, reference.stats.queue_len);
    assert_eq!(resumed.stats.crash_buckets, reference.stats.crash_buckets);
    assert_eq!(resumed.stats.total_crashes, reference.stats.total_crashes);

    std::fs::remove_dir_all(&root).ok();
}

/// When *every* write is torn, no generation is intact: the load fails
/// with `InvalidData` naming each rejected generation — and the campaign
/// that suffered the torn writes still completed its budget (persistence
/// degradation never kills the run).
#[test]
fn all_generations_corrupt_is_a_clean_cold_start_signal() {
    let (program, instrumentation, seeds) = fixture();
    let root = tmp_root("all-torn");

    let interpreter = Interpreter::new(&program);
    let mut campaign = Campaign::new(config(1_000), &interpreter, &instrumentation);
    let plan = (0..8).fold(FaultPlan::new(), |plan, ordinal| {
        plan.inject(FaultSite::TornWrite, 0, ordinal)
    });
    campaign.set_faults(Arc::new(InstanceFaults::new(Arc::new(plan), 0)));
    campaign.add_seeds(seeds);
    let mut manager = CheckpointManager::new(&root, 250).with_keep(4);
    let stats = campaign.run_with_hook(250, move |c| {
        manager
            .maybe_checkpoint(c)
            .expect("torn writes still 'succeed'");
    });
    assert!(stats.execs >= 1_000, "torn checkpoints must not cost execs");

    let err = CheckpointManager::load(&root).expect_err("nothing intact to load");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(
        err.to_string().contains("checkpoint"),
        "error must name the rejected generations: {err}"
    );

    std::fs::remove_dir_all(&root).ok();
}

/// An injected short read on the restore path is indistinguishable from
/// on-disk truncation: the checksums reject the generation and the scan
/// falls back to the next one.
#[test]
fn short_read_during_restore_falls_back_one_generation() {
    let (program, instrumentation, seeds) = fixture();
    let root = tmp_root("short-read");

    let interpreter = Interpreter::new(&program);
    let mut campaign = Campaign::new(config(600), &interpreter, &instrumentation);
    campaign.add_seeds(seeds);
    let mut manager = CheckpointManager::new(&root, 250).with_keep(3);
    campaign.run_with_hook(250, move |c| {
        manager.maybe_checkpoint(c).expect("checkpoint write");
    });

    // The fault plan truncates the first generation *as it is read*.
    let plan = Arc::new(FaultPlan::new().inject(FaultSite::ShortRead, 0, 0));
    let faults = InstanceFaults::new(plan, 0);
    let (checkpoint, report) = CheckpointManager::load_with_report(&root, Some(&faults))
        .expect("an older generation survives the short read")
        .expect("checkpoints exist");
    assert_eq!(
        report.generation, 1,
        "expected fallback past the short read"
    );
    assert_eq!(report.skipped.len(), 1);
    assert!(checkpoint.execs >= 250);

    // Without the fault the newest generation loads fine — the short
    // read was injected, not real.
    let (clean, clean_report) = CheckpointManager::load_with_report(&root, None)
        .expect("readable")
        .expect("present");
    assert_eq!(
        clean_report,
        RestoreReport {
            generation: 0,
            skipped: vec![]
        }
    );
    assert!(clean.execs >= checkpoint.execs);

    std::fs::remove_dir_all(&root).ok();
}

/// Corpus durability end to end: a saved output directory with one
/// truncated and one unreadable entry still reloads, the damaged entries
/// land in `quarantine/` with reason files, and the reloaded corpus
/// seeds a campaign that runs to completion.
#[test]
fn damaged_corpus_entries_are_quarantined_and_the_rest_reseeds() {
    let (program, instrumentation, seeds) = fixture();
    let root = tmp_root("quarantine");

    let interpreter = Interpreter::new(&program);
    let mut campaign = Campaign::new(config(1_500), &interpreter, &instrumentation);
    campaign.add_seeds(seeds);
    let output = campaign.run_with_hook_detailed(500, |_| {});
    assert!(output.corpus.len() >= 2, "need a corpus worth damaging");

    let dir = OutputDir::create(&root).expect("output dir");
    dir.save(&output).expect("save outputs");

    // Damage two entries: truncate one (its name still declares the old
    // length) and replace another with a directory (unreadable as a
    // file, even for root).
    let queue = root.join("queue");
    let mut names: Vec<String> = std::fs::read_dir(&queue)
        .expect("queue listing")
        .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
        .filter(|name| name.starts_with("id:"))
        .collect();
    names.sort();
    let truncated = &names[0];
    std::fs::write(queue.join(truncated), b"").expect("truncate entry");
    let unreadable = format!("id:{:06},len:3", names.len() + 7);
    std::fs::create_dir(queue.join(&unreadable)).expect("plant unreadable entry");

    let telemetry = Arc::new(Telemetry::new(0));
    let dir = OutputDir::create(&root)
        .expect("reopen")
        .with_telemetry(Arc::clone(&telemetry));
    let reloaded = dir.load_corpus().expect("damaged corpus still loads");
    assert_eq!(reloaded.len(), output.corpus.len() - 1);
    assert_eq!(telemetry.get(TelemetryEvent::QuarantinedEntry), 2);

    // Both damaged entries moved to quarantine, each with a reason file.
    let quarantined: Vec<String> = std::fs::read_dir(dir.quarantine_dir())
        .expect("quarantine dir exists")
        .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
        .collect();
    assert!(quarantined.iter().any(|n| n.contains(truncated.as_str())));
    assert!(quarantined.iter().any(|n| n.contains(&unreadable)));
    assert_eq!(
        quarantined
            .iter()
            .filter(|n| n.ends_with(".reason"))
            .count(),
        2
    );

    // The surviving corpus is still a usable seed set.
    let mut reseeded = Campaign::new(config(500), &interpreter, &instrumentation);
    reseeded.add_seeds(reloaded);
    let stats = reseeded.run_with_hook(500, |_| {});
    assert!(stats.execs >= 500);

    std::fs::remove_dir_all(&root).ok();
}

/// Hung-worker detection in a real process fleet: one worker wedges at
/// its third sync boundary (executions frozen, heartbeats still
/// flowing). The parent's progress deadline must kill it, count the
/// miss, and restart it through the ordinary supervision path — and the
/// restarted worker still completes its full budget.
#[test]
fn stuck_worker_is_killed_by_the_liveness_deadline_and_restarted() {
    let root = tmp_root("stuck");
    std::fs::create_dir_all(&root).expect("create temp dir");
    let jsonl = root.join("fleet.jsonl");
    let sentinel = root.join("stall-once");

    let config = FleetConfig {
        workers: 2,
        max_restarts: 2,
        backoff: Duration::from_millis(10),
        fleet_jsonl: Some(jsonl.clone()),
        liveness_deadline: Some(Duration::from_millis(1_500)),
    };
    let stats = run_fleet(&config, |index| {
        let mut cmd = Command::new(WORKER);
        cmd.args([
            "--benchmark",
            "gvn",
            "--execs",
            "4000",
            "--sync-every",
            "250",
            "--map-size",
            "m2",
        ]);
        cmd.arg("--checkpoint-dir")
            .arg(root.join(format!("ckpt-{index}")));
        // Fast heartbeats so the frozen-exec-counter detection (not just
        // pipe silence) is what trips the deadline.
        cmd.env("BIGMAP_HEARTBEAT_MS", "100");
        if index == 1 {
            cmd.arg("--stall-once").arg(&sentinel);
        }
        cmd
    })
    .expect("fleet failed to launch");

    assert!(sentinel.exists(), "the injected stall never armed");
    assert_eq!(stats.stats.health[0], InstanceHealth::Running);
    assert!(
        matches!(stats.stats.health[1], InstanceHealth::Restarted(n) if n >= 1),
        "stuck worker was not killed and restarted: {:?}",
        stats.stats.health[1]
    );
    assert!(
        stats.heartbeat_misses >= 1,
        "liveness kill must be counted as a heartbeat miss"
    );
    assert!(
        stats.telemetry.get(TelemetryEvent::HeartbeatMiss) >= 1,
        "the miss must surface in the merged fleet telemetry"
    );
    // The survivor never tripped the deadline, and the restarted worker
    // resumed from its checkpoint to deliver the full budget.
    assert_eq!(stats.stats.instances[0].execs, 4_000);
    assert_eq!(stats.stats.instances[1].execs, 4_000);

    // The merged stream still covers both nodes.
    let text = std::fs::read_to_string(&jsonl).expect("fleet jsonl written");
    let snapshots = parse_jsonl(&text).expect("fleet jsonl parses");
    let nodes: HashSet<usize> = snapshots.iter().map(|s| s.node).collect();
    assert!(nodes.contains(&0) && nodes.contains(&1));

    std::fs::remove_dir_all(&root).ok();
}
