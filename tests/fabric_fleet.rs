//! End-to-end tests for the distributed campaign fabric: real child
//! processes, the binary wire protocol over pipes, supervised restarts,
//! and the single merged fleet telemetry stream.
//!
//! These spawn the `fabric_worker` binary (`src/bin/fabric_worker.rs`)
//! via `CARGO_BIN_EXE_`, so they exercise the full process boundary —
//! frame encode/decode on both sides, pipe backpressure, and exit-status
//! supervision — not an in-process simulation of it.

use std::collections::HashSet;
use std::process::Command;
use std::time::Duration;

use bigmap::fuzzer::{parse_jsonl, run_fleet, FleetConfig, InstanceHealth};

const WORKER: &str = env!("CARGO_BIN_EXE_fabric_worker");

fn base_args(execs: u64) -> Vec<String> {
    vec![
        "--benchmark".into(),
        "gvn".into(),
        "--execs".into(),
        execs.to_string(),
        "--sync-every".into(),
        "250".into(),
        "--map-size".into(),
        "m2".into(),
    ]
}

/// Two clean workers: both complete, per-worker stats come back over the
/// wire, and the fleet telemetry is one merged stream covering both
/// nodes plus a fleet-total summary line.
#[test]
fn two_worker_fleet_completes_and_merges_telemetry() {
    let dir = tempdir("fabric-clean");
    let jsonl = dir.join("fleet.jsonl");
    let config = FleetConfig {
        workers: 2,
        max_restarts: 0,
        backoff: Duration::from_millis(10),
        fleet_jsonl: Some(jsonl.clone()),
        liveness_deadline: None,
    };
    let args = base_args(4_000);
    let stats = run_fleet(&config, |_| {
        let mut cmd = Command::new(WORKER);
        cmd.args(&args);
        cmd
    })
    .expect("fleet failed to launch");

    assert_eq!(stats.stats.instances.len(), 2);
    for (i, health) in stats.stats.health.iter().enumerate() {
        assert_eq!(*health, InstanceHealth::Running, "worker {i}: {health:?}");
    }
    for (i, instance) in stats.stats.instances.iter().enumerate() {
        assert_eq!(instance.execs, 4_000, "worker {i} budget mismatch");
    }
    assert_eq!(stats.stats.total_execs(), 8_000);
    assert_eq!(stats.nodes, 2);

    // The merged stream: snapshots from both nodes, one summary line.
    let text = std::fs::read_to_string(&jsonl).expect("fleet jsonl written");
    let snapshots = parse_jsonl(&text).expect("fleet jsonl parses");
    assert!(!snapshots.is_empty());
    let nodes: HashSet<usize> = snapshots.iter().map(|s| s.node).collect();
    assert_eq!(nodes, HashSet::from([0, 1]), "stream missing a node");
    assert_eq!(
        text.matches("\"fleet_total\":1").count(),
        1,
        "expected exactly one fleet summary line"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// Node-loss recovery: worker 1 panics at its third sync boundary
/// (single-shot via a sentinel file, so the respawn runs clean). The
/// fleet must restart it, resume from its checkpoint, and still end with
/// every worker's results in one merged telemetry stream.
#[test]
fn killed_worker_is_respawned_and_fleet_recovers() {
    let dir = tempdir("fabric-kill");
    let jsonl = dir.join("fleet.jsonl");
    let sentinel = dir.join("panic-once");
    let config = FleetConfig {
        workers: 2,
        max_restarts: 2,
        backoff: Duration::from_millis(10),
        fleet_jsonl: Some(jsonl.clone()),
        liveness_deadline: None,
    };
    let args = base_args(4_000);
    let stats = run_fleet(&config, |index| {
        let mut cmd = Command::new(WORKER);
        cmd.args(&args);
        let checkpoints = dir.join(format!("ckpt-{index}"));
        cmd.arg("--checkpoint-dir").arg(&checkpoints);
        if index == 1 {
            cmd.arg("--panic-once").arg(&sentinel);
        }
        cmd
    })
    .expect("fleet failed to launch");

    assert!(sentinel.exists(), "the injected panic never armed");
    assert_eq!(stats.stats.health[0], InstanceHealth::Running);
    assert!(
        matches!(stats.stats.health[1], InstanceHealth::Restarted(n) if n >= 1),
        "worker 1 should have died and been respawned: {:?}",
        stats.stats.health[1]
    );
    // The respawned worker still completes its budget (resuming from its
    // checkpoint, not double-counting) and the survivor is untouched.
    assert_eq!(stats.stats.instances[0].execs, 4_000);
    assert_eq!(stats.stats.instances[1].execs, 4_000);

    // One merged stream, both nodes present despite the mid-run death.
    let text = std::fs::read_to_string(&jsonl).expect("fleet jsonl written");
    let snapshots = parse_jsonl(&text).expect("fleet jsonl parses");
    let nodes: HashSet<usize> = snapshots.iter().map(|s| s.node).collect();
    assert_eq!(nodes, HashSet::from([0, 1]));
    assert_eq!(text.matches("\"fleet_total\":1").count(), 1);

    std::fs::remove_dir_all(&dir).ok();
}

/// A worker whose restart budget runs out is reported dead with default
/// stats, and the rest of the fleet still completes.
#[test]
fn worker_that_keeps_dying_is_declared_dead() {
    let dir = tempdir("fabric-dead");
    let config = FleetConfig {
        workers: 2,
        max_restarts: 1,
        backoff: Duration::from_millis(10),
        fleet_jsonl: None,
        liveness_deadline: None,
    };
    let args = base_args(2_000);
    let stats = run_fleet(&config, |index| {
        if index == 1 {
            // A command that dies instantly without ever speaking the
            // protocol.
            let mut cmd = Command::new(WORKER);
            cmd.arg("--unknown-flag-kills-me");
            cmd
        } else {
            let mut cmd = Command::new(WORKER);
            cmd.args(&args);
            cmd
        }
    })
    .expect("fleet failed to launch");

    assert_eq!(stats.stats.health[0], InstanceHealth::Running);
    assert!(
        matches!(stats.stats.health[1], InstanceHealth::Dead(_)),
        "unexpected health: {:?}",
        stats.stats.health[1]
    );
    assert_eq!(stats.stats.instances[0].execs, 2_000);
    assert_eq!(
        stats.stats.instances[1].execs, 0,
        "dead worker has zero stats"
    );

    std::fs::remove_dir_all(&dir).ok();
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bigmap-{tag}-{}", std::process::id(),));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}
