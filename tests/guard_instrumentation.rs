//! Cross-crate test of the trace-pc-guard instrumentation model (§II-A2):
//! static edge guards are collision-free but blind to indirect (return)
//! edges, while AFL's random-ID hashing sees everything but collides.

use bigmap::coverage::guard::{GuardTracker, StaticEdgeTable};
use bigmap::prelude::*;
use bigmap::target::TraceSink;
use std::collections::HashSet;

struct GuardSink<'a, 't> {
    tracker: &'a mut GuardTracker<'t>,
    seen: HashSet<u32>,
    drops_before: u64,
}

impl TraceSink for GuardSink<'_, '_> {
    fn on_block(&mut self, global_block: usize) {
        let seen = &mut self.seen;
        self.tracker.on_block(global_block, &mut |guard| {
            seen.insert(guard);
        });
    }
    fn on_call(&mut self, _c: usize) {}
    fn on_return(&mut self) {}
}

#[test]
fn guards_are_collision_free_but_miss_return_edges() {
    let program = GeneratorConfig {
        seed: 14,
        functions: 6,
        gates_per_function: 8,
        ..Default::default()
    }
    .generate();
    let (direct, indirect) = program.static_edge_pairs_classified();
    assert!(!indirect.is_empty(), "calls must produce return edges");
    let table = StaticEdgeTable::new(&direct);
    assert_eq!(table.guard_count(), direct.len());

    // Replay a batch of inputs under guard instrumentation.
    let interp = Interpreter::new(&program);
    let mut tracker = GuardTracker::new(&table);
    let mut covered = HashSet::new();
    let mut dropped_total = 0u64;
    for i in 0..64u8 {
        tracker.begin_execution();
        let before = tracker.dropped_edges();
        let mut sink = GuardSink {
            tracker: &mut tracker,
            seen: HashSet::new(),
            drops_before: before,
        };
        let _ = interp.run(&[i; 48], &mut sink);
        covered.extend(sink.seen);
        dropped_total = sink.tracker.dropped_edges();
        let _ = sink.drops_before;
    }

    // 1. Collision-freedom: guard IDs are dense, so distinct edges can
    //    never alias — every covered guard is a distinct real edge.
    assert!(covered.len() <= direct.len());
    assert!(!covered.is_empty());

    // 2. The limitation: executions that returned from calls produced
    //    transitions with no guard.
    assert!(
        dropped_total > 0,
        "return edges must be invisible to static guards"
    );

    // 3. The same traces under structural replay see strictly more edges
    //    (the dropped ones).
    let corpus: Vec<Vec<u8>> = (0..64u8).map(|i| vec![i; 48]).collect();
    let structural = replay_edge_coverage(&interp, &corpus);
    assert!(
        structural > covered.len(),
        "structural {structural} vs guarded {}",
        covered.len()
    );
}

#[test]
fn classified_split_partitions_all_pairs() {
    let program = GeneratorConfig {
        seed: 3,
        functions: 5,
        ..Default::default()
    }
    .generate();
    let all = program.static_edge_pairs();
    let (direct, indirect) = program.static_edge_pairs_classified();
    let mut merged = direct.clone();
    merged.extend(&indirect);
    merged.sort_unstable();
    merged.dedup();
    assert_eq!(merged, all, "direct + indirect must partition the pair set");
    // Direct and indirect are disjoint.
    let direct_set: HashSet<_> = direct.iter().collect();
    assert!(indirect.iter().all(|e| !direct_set.contains(e)));
}
