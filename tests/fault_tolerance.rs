//! Acceptance tests for the fault-tolerant campaign runtime.
//!
//! Exercises the three layers end to end through the public facade:
//! deterministic fault injection (worker panics, checkpoint-write
//! failures), the supervised fleet that restarts crashed instances from
//! their checkpoints, and single-campaign kill-and-resume via the on-disk
//! checkpoint format.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use bigmap::fuzzer::InstanceHealth;
use bigmap::prelude::*;

fn fixture() -> (Program, Instrumentation, Vec<Vec<u8>>) {
    let program = GeneratorConfig {
        seed: 23,
        functions: 6,
        gates_per_function: 10,
        crash_sites: 2,
        crash_guard_width: 2,
        ..Default::default()
    }
    .generate();
    let instrumentation =
        Instrumentation::assign(program.block_count(), program.call_sites, MapSize::K64, 5);
    (program, instrumentation, vec![vec![0u8; 24]])
}

fn config(execs: u64) -> CampaignConfig {
    CampaignConfig {
        scheme: MapScheme::TwoLevel,
        map_size: MapSize::K64,
        budget: Budget::Execs(execs),
        mutations_per_seed: 32,
        ..Default::default()
    }
}

fn tmp_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bigmap-ft-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// The headline acceptance test: a two-instance fleet with an injected
/// worker panic completes with `Restarted` health, still trades inputs
/// over the hub, and lands within noise of the uninjected fleet's
/// coverage.
#[test]
fn injected_panic_fleet_completes_within_noise_of_clean_fleet() {
    let (program, instrumentation, seeds) = fixture();

    let clean = run_supervised(
        &program,
        &instrumentation,
        &config(2_000),
        &seeds,
        2,
        200,
        &SupervisorConfig::resilient(),
        None,
    );
    assert_eq!(clean.health, vec![InstanceHealth::Running; 2]);

    let root = tmp_root("noise");
    let registry = TelemetryRegistry::new();
    let supervisor = SupervisorConfig {
        backoff: Duration::from_millis(1),
        checkpoint_every: 200,
        checkpoint_root: Some(root.clone()),
        fault_plan: Some(Arc::new(FaultPlan::new().inject(
            FaultSite::WorkerPanic,
            1,
            1,
        ))),
        ..SupervisorConfig::resilient()
    };
    let injected = run_supervised(
        &program,
        &instrumentation,
        &config(2_000),
        &seeds,
        2,
        200,
        &supervisor,
        Some(&registry),
    );

    assert_eq!(injected.health[0], InstanceHealth::Running);
    assert_eq!(injected.health[1], InstanceHealth::Restarted(1));
    assert!(injected.all_completed());
    // The restarted instance resumed from its checkpoint and still
    // delivered its full budget.
    assert!(injected.instances[1].execs >= 2_000);

    // Sync traffic survived the restart: finds were still published to
    // the hub (the content-idempotent hub deduplicates re-publications
    // from the relaunched instance instead of dropping fresh ones).
    assert!(
        registry.fleet_totals().get(TelemetryEvent::SyncPublish) > 0,
        "restarted fleet published nothing"
    );

    // Coverage within noise of the clean fleet: the restart loses at most
    // the work since the last checkpoint, not the campaign.
    let best = |stats: &ParallelStats| {
        stats
            .instances
            .iter()
            .map(|s| s.used_len)
            .max()
            .unwrap_or(0)
    };
    let (clean_cov, injected_cov) = (best(&clean), best(&injected));
    assert!(injected_cov > 0);
    assert!(
        injected_cov as f64 >= clean_cov as f64 * 0.6,
        "injected fleet covered {injected_cov} slots vs clean {clean_cov}"
    );
    std::fs::remove_dir_all(&root).ok();
}

/// Kill-and-resume through the on-disk format: a campaign cut short at a
/// fraction of its budget resumes from its checkpoint and finishes with
/// monotonically increasing exec counts and no duplicate queue entries.
#[test]
fn killed_campaign_resumes_monotonically_without_duplicate_queue_entries() {
    let (program, instrumentation, seeds) = fixture();
    let root = tmp_root("resume");

    // "Kill" at 1200 execs: the run simply ends mid-campaign relative to
    // the full 3000-exec budget, with checkpoints every 300.
    let interpreter = Interpreter::new(&program);
    let mut campaign = Campaign::new(config(1_200), &interpreter, &instrumentation);
    campaign.add_seeds(seeds.clone());
    let mut manager = CheckpointManager::new(&root, 300);
    let partial = campaign.run_with_hook(300, move |c| {
        manager.maybe_checkpoint(c).expect("checkpoint write");
    });
    assert!(partial.execs >= 1_200);

    let snapshot = CheckpointManager::load(&root)
        .expect("checkpoint readable")
        .expect("checkpoint written");
    assert!(snapshot.execs >= 300 && snapshot.execs <= partial.execs);
    let snapshot_execs = snapshot.execs;

    // Resume into the full budget.
    let mut resumed = Campaign::new(config(3_000), &interpreter, &instrumentation);
    resumed.restore(&snapshot);
    assert_eq!(resumed.execs(), snapshot_execs);
    let mut manager = CheckpointManager::new(&root, 300);
    let full = resumed.run_with_hook(300, move |c| {
        manager.maybe_checkpoint(c).expect("checkpoint write");
    });
    assert!(full.execs >= 3_000, "resumed run fell short of its budget");
    assert!(full.execs >= snapshot_execs, "exec count went backwards");

    // The on-disk checkpoint advanced monotonically too.
    let last = CheckpointManager::load(&root)
        .expect("checkpoint readable")
        .expect("checkpoint still present");
    assert!(last.execs >= snapshot_execs);

    // No duplicate queue entries: every checkpointed input is distinct
    // (novelty-gated admission must not replay under restore).
    let unique: HashSet<&[u8]> = last.queue.iter().map(|e| e.input.as_slice()).collect();
    assert_eq!(
        unique.len(),
        last.queue.len(),
        "checkpointed queue contains duplicate inputs"
    );

    // Restore → checkpoint round-trips the queue exactly.
    let mut rehydrated = Campaign::new(config(3_000), &interpreter, &instrumentation);
    rehydrated.restore(&last);
    let round_trip = rehydrated.checkpoint();
    assert_eq!(round_trip.queue.len(), last.queue.len());
    assert_eq!(round_trip.execs, last.execs);
    std::fs::remove_dir_all(&root).ok();
}

/// An injected checkpoint-write failure costs one snapshot, never the
/// campaign — and never corrupts the previous snapshot on disk.
#[test]
fn checkpoint_write_fault_degrades_one_snapshot_not_the_campaign() {
    let (program, instrumentation, seeds) = fixture();
    let root = tmp_root("wfault");

    let plan = Arc::new(FaultPlan::new().inject(FaultSite::CheckpointWrite, 0, 1));
    let interpreter = Interpreter::new(&program);
    let mut campaign = Campaign::new(config(400), &interpreter, &instrumentation);
    campaign.set_faults(Arc::new(InstanceFaults::new(plan, 0)));
    campaign.add_seeds(seeds);

    let manager = CheckpointManager::new(&root, 100);
    // First write succeeds and leaves a good snapshot behind.
    manager.checkpoint_now(&campaign).expect("first write");
    let good = CheckpointManager::load(&root)
        .expect("readable")
        .expect("present");

    // Second write hits the injected fault...
    let err = manager.checkpoint_now(&campaign).unwrap_err();
    assert!(err
        .to_string()
        .contains("injected checkpoint write failure"));

    // ...but the previous snapshot is untouched and still loads.
    let after = CheckpointManager::load(&root)
        .expect("still readable")
        .expect("still present");
    assert_eq!(after.execs, good.execs);
    assert_eq!(after.queue.len(), good.queue.len());

    // And the fault schedule is one-shot: the next write succeeds again.
    manager.checkpoint_now(&campaign).expect("third write");
    std::fs::remove_dir_all(&root).ok();
}

/// The no-supervision containment path: a panicking instance is reported
/// `Dead` while the rest of the fleet finishes untouched.
#[test]
fn unsupervised_fleet_contains_a_dead_instance() {
    let (program, instrumentation, seeds) = fixture();
    let plan = Arc::new(FaultPlan::new().inject(FaultSite::WorkerPanic, 1, 0));
    let stats = bigmap::fuzzer::run_parallel_with_faults(
        &program,
        &instrumentation,
        &config(1_000),
        &seeds,
        2,
        250,
        None,
        Some(plan),
    );
    assert_eq!(stats.health[0], InstanceHealth::Running);
    match &stats.health[1] {
        InstanceHealth::Dead(msg) => assert!(msg.contains("injected worker panic")),
        other => panic!("expected dead instance, got {other:?}"),
    }
    assert!(!stats.all_completed());
    // The survivor's work is intact; the dead instance contributes an
    // all-zero record.
    assert!(stats.instances[0].execs >= 1_000);
    assert_eq!(stats.instances[1].execs, 0);
}
