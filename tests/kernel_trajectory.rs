//! Kernel-independence of coverage trajectories: a campaign's coverage
//! decisions must not depend on which map-op kernel the dispatcher picked.
//!
//! Two layers of evidence:
//!
//! 1. Exec-budgeted campaigns are bit-deterministic run-to-run in one
//!    process (same seeds, same timeline, same discovered coverage) — so
//!    any cross-kernel divergence WOULD show up as a trajectory change.
//! 2. Replaying real target coverage maps through every kernel the host
//!    supports produces identical verdict sequences and identical virgin
//!    state — the per-exec decision is kernel-invariant on real data, not
//!    just on the random regions the property suite generates.
//!
//! (CI additionally runs the whole suite under `BIGMAP_KERNEL=scalar`,
//! which pins the process dispatcher itself to the oracle path.)

use bigmap::core::kernels::{available, table_for};
use bigmap::prelude::*;

fn run_once(seed: u64, sparse: Option<SparseMode>) -> CampaignStats {
    run_configured(seed, sparse, None, None).0
}

fn run_configured(
    seed: u64,
    sparse: Option<SparseMode>,
    trace: Option<TraceMode>,
    interp: Option<InterpMode>,
) -> (CampaignStats, std::sync::Arc<Telemetry>) {
    let spec = BenchmarkSpec::by_name("libpng").unwrap();
    let program = spec.build(0.05);
    let seeds = spec.build_seeds(&program, 8);
    let instrumentation =
        Instrumentation::assign(program.block_count(), program.call_sites, MapSize::M2, 9);
    let interpreter = Interpreter::new(&program);
    let mut campaign = Campaign::new(
        CampaignConfig {
            scheme: MapScheme::TwoLevel,
            map_size: MapSize::M2,
            budget: Budget::Execs(4_000),
            seed,
            sparse,
            trace,
            interp,
            ..Default::default()
        },
        &interpreter,
        &instrumentation,
    );
    let tel = std::sync::Arc::new(Telemetry::new(0));
    campaign.set_telemetry(std::sync::Arc::clone(&tel));
    campaign.add_seeds(seeds);
    (campaign.run(), tel)
}

#[test]
fn exec_budgeted_campaigns_are_bit_deterministic() {
    let a = run_once(11, None);
    let b = run_once(11, None);
    assert_eq!(a.execs, b.execs);
    assert_eq!(a.queue_len, b.queue_len);
    assert_eq!(a.used_len, b.used_len);
    assert_eq!(
        a.timeline.points(),
        b.timeline.points(),
        "coverage trajectory must be bit-identical run-to-run"
    );
}

#[test]
fn campaign_trajectory_is_sparse_mode_invariant() {
    // The sparse journal walk and the dense kernel pass are alternative
    // implementations of the same map ops — forcing either one (or leaving
    // the adaptive policy to flip between them per exec) must not move a
    // single point on the coverage timeline. CI also runs this whole file
    // under BIGMAP_SPARSE=off and BIGMAP_SPARSE=on, pinning the
    // process-wide default both ways.
    let baseline = run_once(23, None);
    for mode in [SparseMode::Off, SparseMode::On, SparseMode::Auto] {
        let forced = run_once(23, Some(mode));
        assert_eq!(baseline.execs, forced.execs, "{mode:?}: exec count");
        assert_eq!(baseline.queue_len, forced.queue_len, "{mode:?}: queue");
        assert_eq!(baseline.used_len, forced.used_len, "{mode:?}: used prefix");
        assert_eq!(
            baseline.timeline.points(),
            forced.timeline.points(),
            "{mode:?}: sparse dispatch changed the coverage trajectory"
        );
    }
}

#[test]
fn campaign_trajectory_is_trace_mode_invariant() {
    // Selective tracing runs most test cases untraced and re-traces only
    // novelty-oracle-flagged ones — an *observation* optimization that
    // must not move a single point on the coverage timeline. CI also runs
    // this whole file under BIGMAP_TRACE_MODE=always and =selective,
    // pinning the process-wide default both ways.
    let (baseline, baseline_tel) = run_configured(31, None, Some(TraceMode::Always), None);
    assert_eq!(baseline_tel.get(TelemetryEvent::FastPathExec), 0);
    for mode in [TraceMode::Selective, TraceMode::Auto] {
        let (two_speed, tel) = run_configured(31, None, Some(mode), None);
        assert_eq!(baseline.execs, two_speed.execs, "{mode:?}: exec count");
        assert_eq!(baseline.queue_len, two_speed.queue_len, "{mode:?}: queue");
        assert_eq!(
            baseline.used_len, two_speed.used_len,
            "{mode:?}: used prefix"
        );
        assert_eq!(
            baseline.total_crashes, two_speed.total_crashes,
            "{mode:?}: crashes"
        );
        assert_eq!(baseline.hangs, two_speed.hangs, "{mode:?}: hangs");
        assert_eq!(
            baseline.timeline.points(),
            two_speed.timeline.points(),
            "{mode:?}: selective tracing changed the coverage trajectory"
        );
        // The equivalence must be earned, not vacuous: the fast path has
        // to have actually skipped executions.
        assert!(
            tel.get(TelemetryEvent::FastPathExec) > 0,
            "{mode:?}: fast path never fired — the test proves nothing"
        );
    }
}

#[test]
fn campaign_trajectory_is_interp_mode_invariant() {
    // The compiled bytecode engine and its snapshot-reset fast path are
    // alternative *executors* of the same target semantics — switching
    // engines (or resuming children from a parent's memoized trace
    // prefix) must not move a single point on the coverage timeline. CI
    // also runs this whole file under BIGMAP_INTERP=tree and =compiled,
    // pinning the process-wide default both ways.
    let (baseline, baseline_tel) = run_configured(47, None, None, Some(InterpMode::Tree));
    assert_eq!(baseline_tel.get(TelemetryEvent::CompiledExec), 0);
    for mode in [InterpMode::Compiled, InterpMode::Auto] {
        let (fast, tel) = run_configured(47, None, None, Some(mode));
        assert_eq!(baseline.execs, fast.execs, "{mode:?}: exec count");
        assert_eq!(baseline.queue_len, fast.queue_len, "{mode:?}: queue");
        assert_eq!(baseline.used_len, fast.used_len, "{mode:?}: used prefix");
        assert_eq!(
            baseline.total_crashes, fast.total_crashes,
            "{mode:?}: crashes"
        );
        assert_eq!(baseline.hangs, fast.hangs, "{mode:?}: hangs");
        assert_eq!(
            baseline.timeline.points(),
            fast.timeline.points(),
            "{mode:?}: the compiled engine changed the coverage trajectory"
        );
        // The equivalence must be earned, not vacuous: the compiled
        // engine has to have served every exec, and auto mode has to
        // have actually reused parent snapshots.
        assert!(
            tel.get(TelemetryEvent::CompiledExec) >= fast.execs,
            "{mode:?}: compiled engine never fired — the test proves nothing"
        );
        if mode == InterpMode::Auto {
            assert!(
                tel.get(TelemetryEvent::SnapshotHit) > 0,
                "auto: no snapshot was ever reused — the test proves nothing"
            );
        }
    }
}

#[test]
fn real_coverage_replay_is_kernel_invariant() {
    // Drive the executor over a deterministic input stream, capturing the
    // raw (unclassified) coverage map of every execution; then push each
    // captured map through every available kernel's fused pipeline against
    // that kernel's own virgin map.
    let spec = BenchmarkSpec::by_name("sqlite3").unwrap();
    let program = spec.build(0.05);
    let seeds = spec.build_seeds(&program, 16);
    let instrumentation =
        Instrumentation::assign(program.block_count(), program.call_sites, MapSize::M2, 9);
    let interpreter = Interpreter::new(&program);
    let mut executor = Executor::new(
        &interpreter,
        &instrumentation,
        Box::new(EdgeHitCount::new()),
    );

    let map_bytes = MapSize::M2.bytes();
    let mut raw_maps: Vec<Vec<u8>> = Vec::new();
    let mut map = FlatBitmap::new(MapSize::M2).unwrap();
    for (i, seed) in seeds.iter().enumerate() {
        // A cheap variant per seed to diversify the hit patterns.
        let mut input = seed.clone();
        if !input.is_empty() {
            input[0] = input[0].wrapping_add(i as u8);
        }
        map.reset();
        executor.run(&input, &mut map);
        raw_maps.push(map.as_slice().to_vec());
    }
    assert!(!raw_maps.is_empty());

    let kernels = available();
    assert!(!kernels.is_empty());

    // Per-kernel pipeline state.
    let mut virgins: Vec<Vec<u8>> = kernels.iter().map(|_| vec![0xFFu8; map_bytes]).collect();
    for raw in &raw_maps {
        let mut outcomes = Vec::new();
        for (k, &kind) in kernels.iter().enumerate() {
            let table = table_for(kind).expect("available kernel has a table");
            let mut cur = raw.clone();
            let verdict = table.classify_and_compare(&mut cur, &mut virgins[k]);
            outcomes.push((kind, verdict, cur));
        }
        let (_, first_verdict, first_cur) = &outcomes[0];
        for (kind, verdict, cur) in &outcomes[1..] {
            assert_eq!(verdict, first_verdict, "{kind}: verdict diverged");
            assert_eq!(cur, first_cur, "{kind}: classified map diverged");
        }
    }
    let (first_virgin, rest_virgins) = virgins.split_first().unwrap();
    for (kind, virgin) in kernels.iter().skip(1).zip(rest_virgins) {
        assert_eq!(
            virgin, first_virgin,
            "{kind}: virgin map diverged after the full replay"
        );
    }
}
