//! Regression tests for the parallel sync protocol and its telemetry.
//!
//! Guards the sync-hub bugfixes: instances must never re-import their own
//! publications (the stale-cursor bug made every instance churn through
//! its own finds each sync period), cursors must advance monotonically,
//! and the hub must stay correct under concurrent publish/fetch traffic.

use std::collections::HashSet;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use bigmap::fuzzer::{parse_jsonl, SharedBuffer, SyncHub};
use bigmap::prelude::*;

fn fleet_fixture() -> (Program, Instrumentation, Vec<Vec<u8>>) {
    let spec = BenchmarkSpec::by_name("gvn").unwrap();
    let program = spec.build(0.05);
    let seeds = spec.build_seeds(&program, 4);
    let instrumentation =
        Instrumentation::assign(program.block_count(), program.call_sites, MapSize::M2, 7);
    (program, instrumentation, seeds)
}

fn fleet_config() -> CampaignConfig {
    CampaignConfig {
        scheme: MapScheme::TwoLevel,
        map_size: MapSize::M2,
        budget: Budget::Time(Duration::from_millis(200)),
        ..Default::default()
    }
}

/// The headline regression: a single-instance "fleet" has nobody to trade
/// inputs with, so after the self-reimport fix its telemetry must show
/// zero sync imports (before the fix it re-imported every one of its own
/// finds each sync period).
#[test]
fn single_instance_fleet_never_imports_its_own_finds() {
    let (program, instrumentation, seeds) = fleet_fixture();
    let registry = TelemetryRegistry::new();
    let stats = run_parallel_with_telemetry(
        &program,
        &instrumentation,
        &fleet_config(),
        &seeds,
        1,
        500,
        Some(&registry),
    );
    assert!(stats.total_execs() > 0);
    let totals = registry.fleet_totals();
    assert_eq!(
        totals.get(TelemetryEvent::SyncImport),
        0,
        "a lone instance re-imported its own publications"
    );
    assert_eq!(totals.get(TelemetryEvent::ImportRejection), 0);
}

/// A two-instance fleet exercises real sync traffic: publications flow and
/// every emitted snapshot parses back from the JSONL sink.
#[test]
fn two_instance_fleet_syncs_and_snapshots_parse() {
    let (program, instrumentation, seeds) = fleet_fixture();
    let buffer = SharedBuffer::new();
    let sink = JsonlSink::new(Box::new(buffer.clone()));
    let registry = TelemetryRegistry::with_sink(sink);
    let stats = run_parallel_with_telemetry(
        &program,
        &instrumentation,
        &fleet_config(),
        &seeds,
        2,
        500,
        Some(&registry),
    );
    assert!(stats.total_execs() > 0);
    let totals = registry.fleet_totals();
    assert!(
        totals.get(TelemetryEvent::SyncPublish) > 0,
        "two busy instances published nothing"
    );

    let text = buffer.contents();
    let snapshots = parse_jsonl(&text).expect("sink emitted malformed JSONL");
    assert!(!snapshots.is_empty());
    let instances: HashSet<usize> = snapshots.iter().map(|s| s.instance).collect();
    assert_eq!(instances, HashSet::from([0, 1]));
}

/// `fetch_since` always advances the cursor to the corpus length — never
/// backwards — so repeated sync rounds see each entry exactly once.
#[test]
fn hub_cursors_are_monotone_and_exactly_once() {
    let hub = SyncHub::new();
    let mut cursor = 0u64;
    let mut seen = Vec::new();
    for round in 0u8..5 {
        hub.publish(1, vec![vec![round], vec![round, round]]);
        let before = cursor;
        let fetched = hub.fetch_since(&mut cursor, 0).expect("valid cursor");
        assert!(cursor >= before, "cursor moved backwards");
        assert_eq!(cursor, hub.published_count());
        seen.extend(fetched.iter().map(|a| a.to_vec()));
    }
    // 5 rounds × 2 inputs, each seen exactly once and in publish order.
    let expected: Vec<Vec<u8>> = (0u8..5).flat_map(|r| [vec![r], vec![r, r]]).collect();
    assert_eq!(seen, expected);
    // Nothing new → nothing fetched, cursor stays put.
    assert!(hub
        .fetch_since(&mut cursor, 0)
        .expect("valid cursor")
        .is_empty());
    assert_eq!(cursor, hub.published_count());
}

/// Concurrent publish/fetch stress: every reader eventually sees every
/// other publisher's entries exactly once, and never one of its own.
#[test]
fn hub_stress_readers_see_others_exactly_once_and_self_never() {
    const WRITERS: usize = 4;
    const PER_WRITER: usize = 64;

    let hub = Arc::new(SyncHub::new());
    let all_published = Arc::new(std::sync::Barrier::new(WRITERS));
    thread::scope(|scope| {
        let mut readers = Vec::new();
        for me in 0..WRITERS {
            let hub = Arc::clone(&hub);
            let all_published = Arc::clone(&all_published);
            readers.push(scope.spawn(move || {
                let mut cursor = 0u64;
                let mut seen: Vec<Vec<u8>> = Vec::new();
                // Interleave publishing our own tagged inputs with fetching.
                for i in 0..PER_WRITER {
                    hub.publish(me, vec![vec![me as u8, i as u8]]);
                    for input in hub.fetch_since(&mut cursor, me).expect("valid cursor") {
                        seen.push(input.to_vec());
                    }
                }
                // Wait for every writer to finish, then drain the rest.
                all_published.wait();
                for input in hub.fetch_since(&mut cursor, me).expect("valid cursor") {
                    seen.push(input.to_vec());
                }
                (me, seen)
            }));
        }
        for reader in readers {
            let (me, seen) = reader.join().unwrap();
            assert!(
                seen.iter().all(|input| input[0] != me as u8),
                "reader {me} fetched one of its own publications"
            );
            let unique: HashSet<&Vec<u8>> = seen.iter().collect();
            assert_eq!(unique.len(), seen.len(), "reader {me} saw a duplicate");
            assert_eq!(
                seen.len(),
                (WRITERS - 1) * PER_WRITER,
                "reader {me} missed entries from other writers"
            );
        }
    });
}

/// Fetches share the stored payload allocation instead of deep-copying it
/// for every reader (the per-fetch clone bug).
#[test]
fn hub_fetches_share_payload_allocations() {
    let hub = SyncHub::new();
    hub.publish(9, vec![vec![0xAB; 4096]]);
    let (mut c0, mut c1) = (0u64, 0u64);
    let a = hub.fetch_since(&mut c0, 0).expect("valid cursor");
    let b = hub.fetch_since(&mut c1, 1).expect("valid cursor");
    assert!(
        Arc::ptr_eq(&a[0], &b[0]),
        "readers received distinct copies of the same published input"
    );
}
