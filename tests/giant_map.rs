//! Giant-map regime: allocation policy must never touch coverage semantics.
//!
//! The giant-map memory subsystem (explicit huge pages, NUMA placement,
//! size-scaled sparse policy) is pure mechanism — where map bytes live and
//! which walk visits them. These tests pin the boundary at a 256 MiB map:
//!
//! 1. Campaigns under `BIGMAP_HUGE=off|thp|explicit` with `BIGMAP_SPARSE`
//!    auto walk bit-identical coverage trajectories (the
//!    `tests/kernel_trajectory.rs` pattern, one regime up).
//! 2. The journal's capacity scales with the map and its PR-5 overflow
//!    policy (flag, bound, dense fallback) holds at giant sizes.
//! 3. Maps report which backend served them, and every policy yields a
//!    correctly aligned, zeroed buffer — telemetry sees fallbacks, the
//!    campaign never does.
//!
//! (CI additionally runs this file under `BIGMAP_HUGE=off` and `=thp`,
//! pinning the process-wide default both ways.)

use bigmap::core::alloc::{with_huge_policy, AllocBackend, HugePolicy, HUGE_PAGE_BYTES};
use bigmap::core::journal::{capacity_for, TouchJournal, MAX_JOURNAL_CAPACITY};
use bigmap::core::sparse::{run_crossover_divisor, select_path, GIANT_REGIME_BYTES};
use bigmap::prelude::*;

const GIANT: MapSize = MapSize::M256;

fn run_giant(seed: u64, policy: HugePolicy) -> (CampaignStats, std::sync::Arc<Telemetry>) {
    with_huge_policy(policy, || {
        let spec = BenchmarkSpec::by_name("libpng").unwrap();
        let program = spec.build(0.05);
        let seeds = spec.build_seeds(&program, 8);
        let instrumentation =
            Instrumentation::assign(program.block_count(), program.call_sites, GIANT, 9);
        let interpreter = Interpreter::new(&program);
        let mut campaign = Campaign::new(
            CampaignConfig {
                scheme: MapScheme::TwoLevel,
                map_size: GIANT,
                budget: Budget::Execs(1_500),
                seed,
                sparse: Some(SparseMode::Auto),
                ..Default::default()
            },
            &interpreter,
            &instrumentation,
        );
        let tel = std::sync::Arc::new(Telemetry::new(0));
        campaign.set_telemetry(std::sync::Arc::clone(&tel));
        campaign.add_seeds(seeds);
        (campaign.run(), tel)
    })
}

#[test]
fn giant_campaign_trajectory_is_huge_policy_invariant() {
    // off / thp / explicit are alternative *homes* for the same bytes —
    // switching the allocation backend (including an explicit request that
    // falls back on a host without hugetlb reservations) must not move a
    // single point on the coverage timeline.
    let (baseline, base_tel) = run_giant(61, HugePolicy::Thp);
    assert!(baseline.execs > 0);
    assert!(
        base_tel.get(TelemetryEvent::AllocThp) >= 1,
        "thp run never attributed its map to the THP backend"
    );
    for policy in [HugePolicy::Off, HugePolicy::Explicit] {
        let (run, tel) = run_giant(61, policy);
        assert_eq!(baseline.execs, run.execs, "{policy:?}: exec count");
        assert_eq!(baseline.queue_len, run.queue_len, "{policy:?}: queue");
        assert_eq!(baseline.used_len, run.used_len, "{policy:?}: used prefix");
        assert_eq!(
            baseline.total_crashes, run.total_crashes,
            "{policy:?}: crashes"
        );
        assert_eq!(
            baseline.timeline.points(),
            run.timeline.points(),
            "{policy:?}: allocation backend changed the coverage trajectory"
        );
        // The equivalence must be telemetry-visible, not vacuous: every
        // policy attributes its map to *some* backend, and an explicit
        // request either lands on hugetlb pages or records the fallback.
        match policy {
            HugePolicy::Off => assert!(
                tel.get(TelemetryEvent::AllocPlain) >= 1,
                "off run never attributed its map to the plain backend"
            ),
            HugePolicy::Explicit => assert!(
                tel.get(TelemetryEvent::AllocExplicitHuge) + tel.get(TelemetryEvent::AllocFallback)
                    >= 1,
                "explicit run neither served huge pages nor recorded a fallback"
            ),
            HugePolicy::Thp => unreachable!(),
        }
    }
}

#[test]
fn giant_journal_capacity_scales_with_map_size() {
    // ≤16 MiB maps keep the PR-5 default; the giant regime scales the
    // bound so realistic touch counts stop forcing the dense fallback,
    // capped so a 1 GiB map cannot demand an unbounded run vector.
    assert_eq!(capacity_for(MapSize::M2.bytes()), 1 << 16);
    assert_eq!(capacity_for(MapSize::M256.bytes()), 1 << 20);
    assert_eq!(capacity_for(MapSize::G1.bytes()), 1 << 22);
    assert_eq!(capacity_for(usize::MAX), MAX_JOURNAL_CAPACITY);

    let journal = TouchJournal::new(MapSize::M256.bytes());
    assert_eq!(journal.capacity(), 1 << 20);
}

#[test]
fn giant_journal_overflow_policy_holds_at_giant_sizes() {
    // The PR-5 overflow contract, one regime up: overflowing a
    // giant-capacity journal sets the flag, keeps the run vector at its
    // bound, and (via select_path's completeness gate) forces the dense
    // path — an incomplete journal may never drive a sparse walk.
    let map_len = MapSize::M256.bytes();
    let mut journal = TouchJournal::with_capacity(map_len, 4);
    for slot in [0u32, 1_000_000, 2_000_000, 3_000_000] {
        journal.touch(slot * 2); // every touch starts a fresh run
    }
    assert!(journal.is_complete());
    journal.touch(8_000_001);
    assert!(journal.overflowed());
    assert_eq!(journal.runs().len(), 4, "overflow must not grow the bound");
    assert_eq!(
        select_path(
            SparseMode::Auto,
            journal.is_complete(),
            journal.len(),
            journal.runs().len(),
            map_len,
        ),
        OpPath::Dense,
        "an overflowed journal must force the dense path"
    );
    // advance() re-arms the journal for the next exec.
    journal.advance();
    assert!(journal.is_complete());
}

#[test]
fn giant_regime_uses_remeasured_crossover() {
    // The dense scan's slope changes once the used prefix outgrows every
    // cache level, so the giant regime runs a re-measured (stricter)
    // divisor while small maps keep the 1 MiB calibration.
    assert!(run_crossover_divisor(GIANT_REGIME_BYTES) > run_crossover_divisor(1 << 20));
    let used = MapSize::M256.bytes();
    // The boundary is the smallest run count where `runs * divisor < used`
    // stops holding.
    let dense_runs = used.div_ceil(run_crossover_divisor(used));
    let sparse_runs = dense_runs - 1;
    assert_eq!(
        select_path(SparseMode::Auto, true, sparse_runs, sparse_runs, used),
        OpPath::Sparse
    );
    assert_eq!(
        select_path(SparseMode::Auto, true, dense_runs, dense_runs, used),
        OpPath::Dense
    );
}

#[test]
fn giant_maps_report_backend_and_stay_sound_under_every_policy() {
    // alloc_info is the telemetry source of truth: every policy must
    // yield a huge-page-aligned, fully usable map and say who served it.
    let size = MapSize::new(64 << 20).unwrap();
    for policy in [HugePolicy::Off, HugePolicy::Thp, HugePolicy::Explicit] {
        with_huge_policy(policy, || {
            let mut map = FlatBitmap::new(size).unwrap();
            let (backend, fell_back) = map.alloc_info().expect("flat maps know their backend");
            match policy {
                HugePolicy::Off => {
                    assert_eq!(backend, AllocBackend::Plain, "off must use plain pages");
                    assert!(!fell_back);
                }
                HugePolicy::Thp => {
                    assert_eq!(backend, AllocBackend::Thp);
                    assert!(!fell_back);
                }
                // Host-dependent: hugetlb pages if the pool has them,
                // recorded fallback to THP otherwise. Both are sound.
                HugePolicy::Explicit => match backend {
                    AllocBackend::ExplicitHuge | AllocBackend::ExplicitGigantic => {
                        assert!(!fell_back)
                    }
                    AllocBackend::Thp => assert!(fell_back, "thp service must record fallback"),
                    AllocBackend::Plain => panic!("explicit request degraded past thp"),
                },
            }
            assert_eq!(map.as_slice().as_ptr() as usize % HUGE_PAGE_BYTES, 0);
            assert!(map.as_slice().iter().all(|&b| b == 0), "map must be zeroed");
            map.reset();
        });
    }
}
