//! Fleet worker binary for the distributed campaign fabric.
//!
//! Spawned by `bigmap::fuzzer::fabric::run_fleet` (see the fabric fleet
//! integration tests and the `fig9_fleet` bench): reconstructs the same
//! benchmark target from its CLI arguments, reads its fleet role from the
//! `BIGMAP_FABRIC_WORKER` handshake, and hands its stdin/stdout to
//! [`run_worker`] to speak the fabric protocol.
//!
//! Arguments (all `--flag value`, all optional):
//!
//! * `--benchmark <name>` — Table II benchmark to fuzz (default `gvn`)
//! * `--execs <n>` — per-worker execution budget (default 20000)
//! * `--sync-every <n>` — sync cadence in executions (default 500)
//! * `--map-size <k64|m2|m8>` — coverage map size (default `m2`)
//! * `--checkpoint-dir <dir>` — resume/checkpoint directory
//! * `--panic-once <sentinel>` — inject one worker panic at the third
//!   sync boundary, but only if `sentinel` does not exist yet (the file
//!   is created first, so the supervised respawn runs clean — this is
//!   how the node-loss recovery test kills exactly one process exactly
//!   once)
//! * `--stall-once <sentinel>` — same single-shot arming, but the fault
//!   wedges the worker indefinitely at the third sync boundary instead
//!   of panicking: executions freeze while heartbeats keep flowing, so
//!   only the parent's liveness deadline can recover the fleet (this is
//!   how the hung-worker detection test gets a genuinely stuck process)

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use bigmap::fuzzer::faults::{FaultPlan, FaultSite, InstanceFaults};
use bigmap::fuzzer::{run_worker, WorkerOptions, WorkerRole};
use bigmap::prelude::*;

fn fail(msg: &str) -> ! {
    eprintln!("fabric_worker: {msg}");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let Some(role) = WorkerRole::from_env() else {
        fail("BIGMAP_FABRIC_WORKER is not set; this binary is spawned by run_fleet");
    };

    let mut benchmark = String::from("gvn");
    let mut execs = 20_000u64;
    let mut sync_every = 500u64;
    let mut map_size = MapSize::M2;
    let mut checkpoint_dir: Option<PathBuf> = None;
    let mut panic_once: Option<PathBuf> = None;
    let mut stall_once: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--benchmark" => benchmark = value("--benchmark"),
            "--execs" => {
                execs = value("--execs")
                    .parse()
                    .unwrap_or_else(|_| fail("--execs: not a number"));
            }
            "--sync-every" => {
                sync_every = value("--sync-every")
                    .parse()
                    .unwrap_or_else(|_| fail("--sync-every: not a number"));
            }
            "--map-size" => {
                map_size = match value("--map-size").as_str() {
                    "k64" => MapSize::K64,
                    "m2" => MapSize::M2,
                    "m8" => MapSize::M8,
                    other => fail(&format!("--map-size: unknown size {other}")),
                };
            }
            "--checkpoint-dir" => checkpoint_dir = Some(PathBuf::from(value("--checkpoint-dir"))),
            "--panic-once" => panic_once = Some(PathBuf::from(value("--panic-once"))),
            "--stall-once" => stall_once = Some(PathBuf::from(value("--stall-once"))),
            other => fail(&format!("unknown flag {other}")),
        }
    }

    let spec = BenchmarkSpec::by_name(&benchmark)
        .unwrap_or_else(|| fail(&format!("unknown benchmark {benchmark}")));
    let program = spec.build(0.05);
    let seeds = spec.build_seeds(&program, 4);
    let instrumentation =
        Instrumentation::assign(program.block_count(), program.call_sites, map_size, 7);

    let config = CampaignConfig::builder()
        .scheme(MapScheme::TwoLevel)
        .map_size(map_size)
        .budget_execs(execs)
        .mutations_per_seed(32)
        .build();

    // Single-shot fault injection: the sentinel file is created *before*
    // the fault is armed, so after the parent respawns this worker the
    // sentinel exists and the replacement runs fault-free.
    let mut plan = FaultPlan::new();
    let mut armed = false;
    let mut arm = |sentinel: &Option<PathBuf>, site: FaultSite| {
        if let Some(sentinel) = sentinel {
            if !sentinel.exists() {
                if let Err(e) = std::fs::write(sentinel, b"armed") {
                    fail(&format!("cannot create fault sentinel: {e}"));
                }
                plan = std::mem::take(&mut plan).inject(site, role.index, 2);
                armed = true;
            }
        }
    };
    arm(&panic_once, FaultSite::WorkerPanic);
    arm(&stall_once, FaultSite::PipeStall);
    let faults = armed.then(|| Arc::new(InstanceFaults::new(Arc::new(plan), role.index)));

    let options = WorkerOptions {
        sync_every,
        checkpoint_dir,
        faults,
    };
    match run_worker(role, &program, &instrumentation, &config, &seeds, &options) {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fabric_worker {}: {e}", role.index);
            ExitCode::FAILURE
        }
    }
}
