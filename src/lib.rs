//! # bigmap
//!
//! A from-scratch Rust reproduction of **BigMap: Future-proofing Fuzzers
//! with Efficient Large Maps** (Ahmed, Hiser, Nguyen-Tuong, Davidson,
//! Skadron — DSN 2021).
//!
//! Coverage-guided fuzzers store coverage in a byte map; enlarging the map
//! to mitigate hash collisions makes the per-test-case whole-map operations
//! (reset, classify, compare, hash) dominate the runtime and collapses
//! throughput. BigMap fixes this with a two-level scheme: an index bitmap
//! assigns each coverage key a slot in a *condensed* coverage map on first
//! touch, so all map operations run over the dense used prefix instead of
//! the whole allocation — making arbitrarily large maps practical.
//!
//! This facade re-exports the whole reproduction:
//!
//! * [`bigmap_core`] (as `core`) — the two-level [`BigMap`](bigmap_core::BigMap)
//!   and the flat AFL baseline behind one
//!   [`CoverageMap`](bigmap_core::CoverageMap) trait,
//! * [`bigmap_coverage`] (as `coverage`) — edge / N-gram / context-sensitive /
//!   block metrics and the compile-time ID assignment,
//! * [`bigmap_target`] (as `target`) — the synthetic instrumented-target
//!   substrate (program IR, interpreter, generator, laf-intel, Table II
//!   benchmark suite),
//! * [`bigmap_fuzzer`] (as `fuzzer`) — the AFL-style campaign loop, parallel
//!   master–secondary fuzzing, Crashwalk dedup, replay coverage, plus the
//!   fault-tolerant runtime: campaign checkpoint/resume, the supervised
//!   fleet with bounded restarts, the deterministic fault-injection
//!   layer that tests both, and the distributed campaign fabric —
//!   process-level workers behind the
//!   [`CorpusSync`](bigmap_fuzzer::CorpusSync) trait, speaking the
//!   `bigmap_core::wire` binary protocol, with fleet-hierarchical
//!   telemetry aggregation,
//! * [`bigmap_cache`] (as `cache`) — the cache-hierarchy simulator behind the
//!   Table I analysis,
//! * [`bigmap_analytics`] (as `analytics`) — collision-rate math (Equation 1)
//!   and report helpers.
//!
//! ## Quickstart
//!
//! ```rust
//! use bigmap::prelude::*;
//!
//! // 1. A fuzz target (stand-in for an instrumented binary).
//! let program = GeneratorConfig::default().generate();
//!
//! // 2. "Compile" it for an 8 MiB map — collision-free at this scale.
//! let inst = Instrumentation::assign(
//!     program.block_count(), program.call_sites, MapSize::M8, 42,
//! );
//!
//! // 3. Fuzz it with the two-level map: large map, no throughput penalty.
//! let interp = Interpreter::new(&program);
//! let config = CampaignConfig::builder()
//!     .scheme(MapScheme::TwoLevel)
//!     .map_size(MapSize::M8)
//!     .budget_execs(5_000)
//!     .build();
//! let mut campaign = Campaign::new(config, &interp, &inst);
//! campaign.add_seeds(vec![vec![0u8; 32]]);
//! let stats = campaign.run();
//! assert_eq!(stats.execs, 5_000);
//! ```

#![deny(missing_docs)]

pub use bigmap_analytics as analytics;
pub use bigmap_cache as cache;
pub use bigmap_core as core;
pub use bigmap_coverage as coverage;
pub use bigmap_fuzzer as fuzzer;
pub use bigmap_target as target;

/// The commonly needed types in one import.
pub mod prelude {
    pub use bigmap_analytics::{collision_rate, geometric_mean, TextTable};
    pub use bigmap_cache::{CacheHierarchy, TraceWorkload};
    pub use bigmap_core::{
        BigMap, CoverageMap, FlatBitmap, InterpMode, MapScheme, MapSize, NewCoverage, OpKind,
        OpPath, OpStats, SparseMode, TraceMode, VirginState,
    };
    pub use bigmap_coverage::{
        CoverageMetric, EdgeHitCount, Instrumentation, MetricKind, MetricStack, NGram, TraceEvent,
    };
    pub use bigmap_fuzzer::{
        replay_edge_coverage, run_fleet, run_parallel, run_parallel_with_faults,
        run_parallel_with_telemetry, run_supervised, run_worker, Budget, Campaign, CampaignConfig,
        CampaignConfigBuilder, CampaignStats, Checkpoint, CheckpointManager, CorpusSync, CrashWalk,
        CursorError, Executor, FaultPlan, FaultSite, FleetAggregator, FleetConfig, FleetStats,
        HangBudget, InstanceFaults, InstanceHealth, JsonlSink, Mutator, ParallelStats, ShardedHub,
        Stage, SupervisorConfig, SyncHub, Telemetry, TelemetryEvent, TelemetryRegistry,
        TelemetrySnapshot, WorkerOptions, WorkerRole,
    };
    pub use bigmap_target::{
        apply_laf_intel, generate_seeds, BenchmarkSpec, CompiledProgram, ExecConfig, ExecOutcome,
        GeneratorConfig, Interpreter, LafIntelStats, NoveltyOracle, NullSink, OracleSnapshot,
        Program, ProgramBuilder, SnapshotOutcome, TargetError, TraceSink,
    };
}
