//! Property tests for the fabric wire format.
//!
//! The fabric feeds `decode_frame` / `decode_sync_batch` bytes that
//! crossed a process boundary, so the decoders must (a) reproduce every
//! encodable value bit-identically and (b) reject — never panic on, never
//! misread — arbitrary, truncated, or bit-flipped input.

use proptest::prelude::*;

use bigmap_core::wire::{
    decode_frame, decode_sync_batch, encode_frame, encode_sync_batch, get_varint, put_varint,
    read_frame, SyncBatch, WireError, FRAME_MAGIC, MAX_FRAME_PAYLOAD, WIRE_VERSION,
};

fn arb_entries() -> impl Strategy<Value = Vec<(u64, Vec<u8>)>> {
    prop::collection::vec(
        (any::<u64>(), prop::collection::vec(any::<u8>(), 0..256)),
        0..24,
    )
}

proptest! {
    #[test]
    fn varint_round_trips(value in any::<u64>()) {
        let mut buf = Vec::new();
        put_varint(&mut buf, value);
        prop_assert_eq!(get_varint(&buf), Ok((value, buf.len())));
    }

    #[test]
    fn varint_never_panics_on_arbitrary_bytes(buf in prop::collection::vec(any::<u8>(), 0..16)) {
        let _ = get_varint(&buf);
    }

    /// Arbitrary batches encode → frame → decode bit-identically.
    #[test]
    fn batch_round_trips_bit_identically(
        cursor in any::<u64>(),
        entries in arb_entries(),
        kind in any::<u8>(),
    ) {
        let borrowed: Vec<(u64, &[u8])> =
            entries.iter().map(|(p, i)| (*p, i.as_slice())).collect();
        let payload = encode_sync_batch(cursor, &borrowed);
        let frame = encode_frame(kind, &payload);

        let (got_kind, got_payload, used) = decode_frame(&frame).unwrap();
        prop_assert_eq!(got_kind, kind);
        prop_assert_eq!(used, frame.len());
        prop_assert_eq!(&got_payload, &payload);

        let batch = decode_sync_batch(&got_payload).unwrap();
        prop_assert_eq!(batch, SyncBatch { cursor, entries });
    }

    /// The stream reader agrees with the buffer decoder, frame after frame.
    #[test]
    fn stream_reader_matches_buffer_decoder(
        frames in prop::collection::vec(
            (any::<u8>(), prop::collection::vec(any::<u8>(), 0..128)),
            1..8,
        ),
    ) {
        let mut stream = Vec::new();
        for (kind, payload) in &frames {
            stream.extend(encode_frame(*kind, payload));
        }
        let mut reader = std::io::Cursor::new(&stream);
        for (kind, payload) in &frames {
            prop_assert_eq!(read_frame(&mut reader), Ok((*kind, payload.clone())));
        }
        prop_assert_eq!(read_frame(&mut reader), Err(WireError::Eof));
    }

    /// Every strict prefix of a valid frame is rejected, never decoded.
    #[test]
    fn truncated_frames_are_rejected(
        kind in any::<u8>(),
        payload in prop::collection::vec(any::<u8>(), 0..128),
        cut_fraction in 0.0f64..1.0,
    ) {
        let frame = encode_frame(kind, &payload);
        let cut = ((frame.len() as f64) * cut_fraction) as usize;
        prop_assume!(cut < frame.len());
        let err = match decode_frame(&frame[..cut]) {
            Ok(_) => panic!("decoded a truncated frame (cut at {cut})"),
            Err(err) => err,
        };
        prop_assert!(matches!(
            err,
            WireError::Eof | WireError::Truncated | WireError::BadChecksum
        ));
        let mut reader = std::io::Cursor::new(&frame[..cut]);
        prop_assert!(read_frame(&mut reader).is_err());
    }

    /// A single flipped bit anywhere in the frame is detected (by the
    /// checksum, or earlier by magic/version/length validation). The only
    /// byte allowed to decode "successfully" is none — every flip must
    /// error or change nothing, and flips never change decoded content
    /// silently.
    #[test]
    fn bit_flips_never_pass_silently(
        kind in any::<u8>(),
        payload in prop::collection::vec(any::<u8>(), 0..96),
        flip_byte_fraction in 0.0f64..1.0,
        flip_bit in 0u8..8,
    ) {
        let frame = encode_frame(kind, &payload);
        let at = ((frame.len() as f64) * flip_byte_fraction) as usize % frame.len();
        let mut corrupt = frame.clone();
        corrupt[at] ^= 1 << flip_bit;
        match decode_frame(&corrupt) {
            // CRC32 detects every 1-bit error over frames this small.
            Ok(_) => panic!("1-bit flip at byte {at} bit {flip_bit} decoded successfully"),
            Err(
                WireError::BadMagic(_)
                | WireError::BadVersion(_)
                | WireError::BadChecksum
                | WireError::Oversize(_)
                | WireError::VarintOverflow
                | WireError::Truncated,
            ) => {}
            Err(other) => panic!("unexpected error class {other:?}"),
        }
    }

    /// Arbitrary garbage never panics either decoder and never yields a
    /// frame unless it genuinely starts with a valid one.
    #[test]
    fn arbitrary_bytes_never_panic(buf in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_frame(&buf);
        let mut reader = std::io::Cursor::new(&buf);
        let _ = read_frame(&mut reader);
        let _ = decode_sync_batch(&buf);
    }

    /// Garbage that happens to start with the magic byte still cannot
    /// produce an oversize allocation or a bogus success.
    #[test]
    fn magic_prefixed_garbage_is_safe(tail in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut buf = vec![FRAME_MAGIC];
        buf.extend(&tail);
        if let Ok((_, payload, used)) = decode_frame(&buf) {
            // If it decodes, the declared structure really was present.
            prop_assert!(used <= buf.len());
            prop_assert!(payload.len() <= buf.len());
        }
    }

    /// One byte under the cap behaves like any other size (proptest-sized
    /// sanity companion to the exact-cap unit tests below).
    #[test]
    fn near_cap_declarations_without_payload_are_truncated_not_oversize(
        kind in any::<u8>(),
        under in 1u64..4096,
    ) {
        // A declared length at or under the cap with a missing payload is
        // a *truncation*, never an oversize rejection.
        let mut buf = vec![FRAME_MAGIC, WIRE_VERSION, kind];
        put_varint(&mut buf, MAX_FRAME_PAYLOAD as u64 - under);
        prop_assert_eq!(decode_frame(&buf), Err(WireError::Truncated));
    }

    /// Batch payloads with trailing junk are rejected — a frame carries
    /// exactly one batch.
    #[test]
    fn batch_trailing_bytes_rejected(
        cursor in any::<u64>(),
        entries in arb_entries(),
        junk in prop::collection::vec(any::<u8>(), 1..16),
    ) {
        let borrowed: Vec<(u64, &[u8])> =
            entries.iter().map(|(p, i)| (*p, i.as_slice())).collect();
        let mut payload = encode_sync_batch(cursor, &borrowed);
        payload.extend(&junk);
        let err = decode_sync_batch(&payload).unwrap_err();
        prop_assert!(
            matches!(err, WireError::TrailingBytes | WireError::Truncated | WireError::VarintOverflow),
            "got {err:?}"
        );
    }
}

/// Deterministic boundary tests at the frame-payload cap. The cap exists
/// so a corrupt or hostile length field cannot drive an allocation; these
/// pin the exact fence-post behaviour on both sides of it.
mod payload_cap_boundaries {
    use super::*;

    /// `[magic, version, kind, varint(declared)]` — a frame header that
    /// declares a payload the buffer does not carry.
    fn header_declaring(kind: u8, declared: u64) -> Vec<u8> {
        let mut buf = vec![FRAME_MAGIC, WIRE_VERSION, kind];
        put_varint(&mut buf, declared);
        buf
    }

    #[test]
    fn exactly_cap_sized_payload_round_trips() {
        let payload = vec![0xA5u8; MAX_FRAME_PAYLOAD];
        let frame = encode_frame(7, &payload);
        let (kind, decoded, used) = decode_frame(&frame).expect("cap-sized frame must decode");
        assert_eq!((kind, used), (7, frame.len()));
        assert_eq!(decoded, payload);
        let mut reader = std::io::Cursor::new(&frame);
        let (kind, decoded) = read_frame(&mut reader).expect("stream reader too");
        assert_eq!(kind, 7);
        assert_eq!(decoded.len(), MAX_FRAME_PAYLOAD);
    }

    #[test]
    fn cap_plus_one_is_rejected_before_the_payload_is_read() {
        // The header alone, with no payload bytes behind it: if the
        // decoder validated the declared length only after sizing or
        // reading the payload, this would surface as `Truncated` (or an
        // allocation attempt). `Oversize` proves the cap check runs
        // first.
        let over = MAX_FRAME_PAYLOAD as u64 + 1;
        let header = header_declaring(0, over);
        assert_eq!(decode_frame(&header), Err(WireError::Oversize(over)));
        let mut reader = std::io::Cursor::new(&header);
        assert_eq!(read_frame(&mut reader), Err(WireError::Oversize(over)));

        // A hostile length field: 16 EiB declared in 5 header bytes must
        // still be rejected without touching payload machinery.
        let hostile = header_declaring(0, u64::MAX);
        assert_eq!(decode_frame(&hostile), Err(WireError::Oversize(u64::MAX)));
    }

    #[test]
    fn truncation_inside_the_length_prefix_is_detected() {
        // The stream ends on a continuation byte of the length varint:
        // the declared length never completes, so the decoder must report
        // truncation (not misread a short length).
        let cut = vec![FRAME_MAGIC, WIRE_VERSION, 0, 0x80];
        assert_eq!(decode_frame(&cut), Err(WireError::Truncated));
        let mut reader = std::io::Cursor::new(&cut);
        assert_eq!(read_frame(&mut reader), Err(WireError::Truncated));

        // Fence-post on the other side: the same frame with the varint
        // completed decodes as declaring 128 payload bytes (which are
        // then missing → still truncated, but *after* the length parsed).
        let complete = header_declaring(0, 128);
        assert_eq!(decode_frame(&complete), Err(WireError::Truncated));
    }
}
