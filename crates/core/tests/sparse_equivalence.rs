//! Sparse-pipeline equivalence property suite: the run-dispatch sparse map
//! ops (`bigmap_core::sparse`) must be byte-identical to the dense scalar
//! oracle on the touched slots and leave untouched slots alone — for every
//! kernel the host can run — and a `BigMap` forced onto the sparse path
//! must produce bit-identical verdicts, hashes, coverage bytes and virgin
//! state to one forced onto the dense path over arbitrary exec streams,
//! including journals small enough to overflow mid-exec.
//!
//! CI runs this file under every `BIGMAP_KERNEL` setting it exercises for
//! `kernel_equivalence` — the function-level properties loop over
//! `available()` explicitly, and the map-level properties go through
//! whatever table the dispatcher pinned.

use bigmap_core::classify::classify_slice;
use bigmap_core::diff::classify_and_compare_region;
use bigmap_core::journal::TouchJournal;
use bigmap_core::kernels::{available, table_for};
use bigmap_core::sparse::{classify_and_compare_runs, classify_runs, compare_runs, reset_runs};
use bigmap_core::{BigMap, CoverageMap, MapSize, SparseMode, VirginState};
use proptest::prelude::*;

/// Region length for the function-level properties. Bursts up to
/// [`BURST_MAX`] slots cross the vector-dispatch threshold
/// (`sparse::VECTOR_RUN_MIN` = 32), so both the scalar per-slot loop and
/// the sub-slice kernel calls are exercised.
const REGION: usize = 1024;
const BURST_MAX: u32 = 48;

/// Replays touch bursts through a real journal. Each raw `u32` encodes a
/// burst — base slot in the low bits, length 1..[`BURST_MAX`] in the high
/// bits (the vendored proptest shim has no tuple strategies) — touching
/// consecutive slots clipped to the region, with duplicates and overlaps
/// deduplicated by the epoch stamps exactly as in production.
fn journal_from_bursts(bursts: &[u32]) -> TouchJournal {
    let mut j = TouchJournal::new(REGION);
    for &raw in bursts {
        let base = raw % REGION as u32;
        let len = 1 + (raw >> 16) % (BURST_MAX - 1);
        for s in base..(base + len).min(REGION as u32) {
            j.touch(s);
        }
    }
    j
}

/// Virgin contents mixing fully-virgin, partially-cleared and arbitrary
/// bytes (same scheme as the kernel_equivalence suite).
fn virgin_from_seed(seed: &[u8]) -> Vec<u8> {
    seed.iter()
        .map(|&s| match s % 4 {
            0 | 1 => 0xFF,
            2 => !(1u8 << (s % 8)),
            _ => s,
        })
        .collect()
}

/// Zeroes every byte the journal did NOT record, restoring the invariant
/// the sparse pipeline relies on: a complete journal covers all nonzero
/// bytes of the region.
fn enforce_journal_completeness(cur: &mut [u8], journal: &TouchJournal) {
    let mut keep = vec![false; cur.len()];
    for s in journal.iter_slots() {
        keep[s as usize] = true;
    }
    for (b, &k) in cur.iter_mut().zip(&keep) {
        if !k {
            *b = 0;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `classify_runs` buckets exactly the journaled slots and leaves the
    /// rest of the region untouched, matching the scalar oracle per slot.
    #[test]
    fn classify_runs_matches_dense_oracle_on_touched_slots(
        payload in prop::collection::vec(any::<u8>(), REGION..REGION + 1),
        bursts in prop::collection::vec(any::<u32>(), 0..64),
    ) {
        let journal = journal_from_bursts(&bursts);

        let mut oracle_full = payload.clone();
        classify_slice(&mut oracle_full);
        let mut expect = payload.clone();
        for s in journal.iter_slots() {
            expect[s as usize] = oracle_full[s as usize];
        }

        for kind in available() {
            let mut got = payload.clone();
            classify_runs(&mut got, journal.runs(), table_for(kind).unwrap());
            prop_assert_eq!(&got, &expect, "{} classify_runs diverged", kind);
        }
    }

    /// With the completeness invariant in force (every nonzero byte is
    /// journaled), `compare_runs` and `classify_and_compare_runs` must
    /// return the same verdict and leave the same virgin bytes as the
    /// dense whole-region oracle.
    #[test]
    fn run_compare_matches_dense_oracle_under_completeness(
        payload in prop::collection::vec(any::<u8>(), REGION..REGION + 1),
        virgin_seed in prop::collection::vec(any::<u8>(), REGION..REGION + 1),
        bursts in prop::collection::vec(any::<u32>(), 0..64),
    ) {
        let journal = journal_from_bursts(&bursts);
        let mut raw = payload.clone();
        enforce_journal_completeness(&mut raw, &journal);
        let virgin = virgin_from_seed(&virgin_seed);

        // Dense oracle over the whole region.
        let mut oracle_cur = raw.clone();
        let mut oracle_virgin = virgin.clone();
        let oracle = classify_and_compare_region(&mut oracle_cur, &mut oracle_virgin);

        for kind in available() {
            let table = table_for(kind).unwrap();

            // Merged sparse pass.
            let mut fused_cur = raw.clone();
            let mut fused_virgin = virgin.clone();
            let fused = classify_and_compare_runs(
                &mut fused_cur, &mut fused_virgin, journal.runs(), table,
            );
            prop_assert_eq!(fused, oracle, "{} fused verdict diverged", kind);
            prop_assert_eq!(&fused_cur, &oracle_cur, "{} fused classified bytes", kind);
            prop_assert_eq!(&fused_virgin, &oracle_virgin, "{} fused virgin bytes", kind);

            // Split sparse pipeline: classify_runs then compare_runs.
            let mut split_cur = raw.clone();
            let mut split_virgin = virgin.clone();
            classify_runs(&mut split_cur, journal.runs(), table);
            let split = compare_runs(&split_cur, &mut split_virgin, journal.runs(), table);
            prop_assert_eq!(split, oracle, "{} split verdict diverged", kind);
            prop_assert_eq!(&split_cur, &oracle_cur, "{} split classified bytes", kind);
            prop_assert_eq!(&split_virgin, &oracle_virgin, "{} split virgin bytes", kind);
        }
    }

    /// `reset_runs` clears exactly the journaled slots: journaled bytes go
    /// to zero, everything else keeps its value.
    #[test]
    fn reset_runs_clears_exactly_the_journal(
        payload in prop::collection::vec(any::<u8>(), REGION..REGION + 1),
        bursts in prop::collection::vec(any::<u32>(), 0..64),
    ) {
        let journal = journal_from_bursts(&bursts);
        let mut expect = payload.clone();
        for s in journal.iter_slots() {
            expect[s as usize] = 0;
        }
        let mut got = payload;
        reset_runs(&mut got, journal.runs());
        prop_assert_eq!(got, expect);
    }

    /// A sparse-forced `BigMap` is observationally identical to a
    /// dense-forced one across multi-exec streams: same verdicts (merged
    /// and split pipelines), same hashes, same coverage bytes, same virgin
    /// state. A third map with a tiny journal capacity rides along so the
    /// overflow → dense-fallback boundary stays inside the property.
    #[test]
    fn forced_sparse_map_matches_forced_dense_map(
        execs in prop::collection::vec(
            prop::collection::vec(any::<u32>(), 0..160), 1..8),
        tiny_capacity in 0usize..6,
    ) {
        let mut dense = BigMap::new(MapSize::K64).unwrap();
        let mut sparse = BigMap::new(MapSize::K64).unwrap();
        let mut tiny = BigMap::with_journal_capacity(MapSize::K64, tiny_capacity).unwrap();
        dense.set_sparse_override(Some(SparseMode::Off));
        sparse.set_sparse_override(Some(SparseMode::On));
        tiny.set_sparse_override(Some(SparseMode::On));

        let mut dense_virgin = VirginState::new(MapSize::K64);
        let mut sparse_virgin = VirginState::new(MapSize::K64);
        let mut tiny_virgin = VirginState::new(MapSize::K64);

        for (i, keys) in execs.iter().enumerate() {
            for &key in keys {
                dense.record(key);
                sparse.record(key);
                tiny.record(key);
            }
            prop_assert_eq!(dense.hash(), sparse.hash(), "exec {}: raw hash", i);
            prop_assert_eq!(dense.hash(), tiny.hash(), "exec {}: raw hash (tiny)", i);

            // Alternate between the merged pass and the split pipeline so
            // both sparse entry points face the dense reference.
            let (vd, vs, vt) = if i % 2 == 0 {
                (
                    dense.classify_and_compare(&mut dense_virgin),
                    sparse.classify_and_compare(&mut sparse_virgin),
                    tiny.classify_and_compare(&mut tiny_virgin),
                )
            } else {
                dense.classify();
                sparse.classify();
                tiny.classify();
                (
                    dense.compare(&mut dense_virgin),
                    sparse.compare(&mut sparse_virgin),
                    tiny.compare(&mut tiny_virgin),
                )
            };
            prop_assert_eq!(vd, vs, "exec {}: verdict sparse vs dense", i);
            prop_assert_eq!(vd, vt, "exec {}: verdict tiny vs dense", i);
            prop_assert_eq!(dense.hash(), sparse.hash(), "exec {}: classified hash", i);
            prop_assert_eq!(dense.active_region(), sparse.active_region(),
                "exec {}: active region", i);
            prop_assert_eq!(dense.active_region(), tiny.active_region(),
                "exec {}: active region (tiny)", i);
            prop_assert_eq!(dense_virgin.as_slice(), sparse_virgin.as_slice(),
                "exec {}: virgin bytes", i);
            prop_assert_eq!(dense_virgin.as_slice(), tiny_virgin.as_slice(),
                "exec {}: virgin bytes (tiny)", i);

            dense.reset();
            sparse.reset();
            tiny.reset();
            prop_assert!(dense.active_region().iter().all(|&b| b == 0));
            prop_assert_eq!(dense.active_region(), sparse.active_region(),
                "exec {}: post-reset region", i);
            prop_assert_eq!(dense.active_region(), tiny.active_region(),
                "exec {}: post-reset region (tiny)", i);
        }
    }
}

/// Deterministic overflow-boundary walk: capacities straddling the exact
/// number of scattered runs an exec produces. At `capacity == runs` the
/// journal is complete and the forced-sparse map takes the sparse path; at
/// `capacity == runs - 1` it overflows and must fall back dense — the
/// observable state must be identical either way.
#[test]
fn overflow_boundary_is_observationally_invisible() {
    // Slot scatter needs two execs: exec #1 assigns slots 0..10 in
    // discovery order (a single run); after reset, exec #2 touches every
    // other key -> slots {0, 2, 4, 6, 8}: five singleton runs.
    let first: Vec<u32> = (0..10).collect();
    let second: Vec<u32> = (0..10).step_by(2).collect();

    let mut reference = BigMap::new(MapSize::K64).unwrap();
    reference.set_sparse_override(Some(SparseMode::Off));
    let mut ref_virgin = VirginState::new(MapSize::K64);
    for &k in &first {
        reference.record(k);
    }
    reference.classify_and_compare(&mut ref_virgin);
    reference.reset();
    for &k in &second {
        reference.record(k);
    }
    let ref_verdict = reference.classify_and_compare(&mut ref_virgin);
    let ref_hash = reference.hash();
    let ref_region = reference.active_region().to_vec();

    for capacity in 3..=7usize {
        let mut map = BigMap::with_journal_capacity(MapSize::K64, capacity).unwrap();
        map.set_sparse_override(Some(SparseMode::On));
        let mut virgin = VirginState::new(MapSize::K64);
        for &k in &first {
            map.record(k);
        }
        map.classify_and_compare(&mut virgin);
        map.reset();
        for &k in &second {
            map.record(k);
        }
        // 5 singleton runs: capacities 3..=4 overflow, 5..=7 stay complete.
        assert_eq!(
            map.journal_overflowed(),
            capacity < second.len(),
            "capacity {capacity}: unexpected overflow state"
        );
        let verdict = map.classify_and_compare(&mut virgin);
        assert_eq!(verdict, ref_verdict, "capacity {capacity}: verdict");
        assert_eq!(map.hash(), ref_hash, "capacity {capacity}: hash");
        assert_eq!(
            map.active_region(),
            &ref_region[..],
            "capacity {capacity}: region"
        );
    }
}
