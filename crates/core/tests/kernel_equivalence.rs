//! Kernel-equivalence property suite: every vector kernel the host can run
//! must be byte-identical to the scalar oracle (`bigmap_core::diff` /
//! `bigmap_core::classify`) on arbitrary region contents, lengths 0–8192,
//! and all 8 alignment offsets of both operands.
//!
//! CI runs this file twice: once with the dispatcher forced to the scalar
//! path (`BIGMAP_KERNEL=scalar`, which also pins `kernels::active()` for
//! the whole process) and once with AVX2 codegen flags — the per-kind
//! loops below always cover every kernel the CPU supports regardless of
//! what `active()` resolved to.

use bigmap_core::classify::classify_slice;
use bigmap_core::diff::{classify_and_compare_region, compare_region};
use bigmap_core::kernels::{available, table_for};
use bigmap_core::NewCoverage;
use proptest::prelude::*;

/// Max region length exercised by the properties (ISSUE spec: 0–8192).
const MAX_LEN: usize = 8192;

/// Builds an offset view: a buffer with `off` bytes of 0xA5 padding before
/// the `len` payload bytes, so the payload slice starts at alignment phase
/// `off` (mod 8, and mod vector width).
fn offset_buf(payload: &[u8], off: usize) -> Vec<u8> {
    let mut buf = vec![0xA5u8; off + payload.len() + 8];
    buf[off..off + payload.len()].copy_from_slice(payload);
    buf
}

/// Virgin contents mixing realistic states: fully-virgin 0xFF bytes,
/// partially-cleared buckets, and fully-cleared zeros, derived
/// deterministically from a random seed vector.
fn virgin_from_seed(seed: &[u8]) -> Vec<u8> {
    seed.iter()
        .map(|&s| match s % 4 {
            0 | 1 => 0xFF,          // never seen (the NewEdge case)
            2 => !(1u8 << (s % 8)), // some buckets cleared
            _ => s,                 // arbitrary residue
        })
        .collect()
}

/// Asserts padding bytes around an offset view were never touched.
fn assert_padding_intact(buf: &[u8], off: usize, len: usize, what: &str) {
    assert!(
        buf[..off].iter().all(|&b| b == 0xA5),
        "{what}: head padding clobbered at offset {off}"
    );
    assert!(
        buf[off + len..].iter().all(|&b| b == 0xA5),
        "{what}: tail padding clobbered at offset {off}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn classify_matches_scalar_oracle(
        payload in prop::collection::vec(any::<u8>(), 0..MAX_LEN),
        off in 0usize..8,
    ) {
        let mut expect = payload.clone();
        classify_slice(&mut expect);
        for kind in available() {
            let mut buf = offset_buf(&payload, off);
            table_for(kind).unwrap().classify(&mut buf[off..off + payload.len()]);
            prop_assert_eq!(
                &buf[off..off + payload.len()],
                &expect[..],
                "{} classify diverged at offset {}", kind, off
            );
            assert_padding_intact(&buf, off, payload.len(), kind.label());
        }
    }

    #[test]
    fn compare_matches_scalar_oracle(
        payload in prop::collection::vec(any::<u8>(), 0..MAX_LEN),
        virgin_seed in prop::collection::vec(any::<u8>(), 0..MAX_LEN),
        cur_off in 0usize..8,
        vir_off in 0usize..8,
    ) {
        let n = payload.len().min(virgin_seed.len());
        // `compare` runs on already-classified data in the real pipeline.
        let mut cur = payload[..n].to_vec();
        classify_slice(&mut cur);
        let virgin = virgin_from_seed(&virgin_seed[..n]);

        let mut oracle_virgin = virgin.clone();
        let oracle = compare_region(&cur, &mut oracle_virgin);

        for kind in available() {
            let cur_buf = offset_buf(&cur, cur_off);
            let mut vir_buf = offset_buf(&virgin, vir_off);
            let got = table_for(kind).unwrap().compare(
                &cur_buf[cur_off..cur_off + n],
                &mut vir_buf[vir_off..vir_off + n],
            );
            prop_assert_eq!(
                got, oracle,
                "{} compare verdict diverged at offsets ({},{})", kind, cur_off, vir_off
            );
            prop_assert_eq!(
                &vir_buf[vir_off..vir_off + n],
                &oracle_virgin[..],
                "{} compare virgin bytes diverged at offsets ({},{})", kind, cur_off, vir_off
            );
            assert_padding_intact(&vir_buf, vir_off, n, kind.label());
        }
    }

    #[test]
    fn fused_matches_scalar_oracle(
        payload in prop::collection::vec(any::<u8>(), 0..MAX_LEN),
        virgin_seed in prop::collection::vec(any::<u8>(), 0..MAX_LEN),
        cur_off in 0usize..8,
        vir_off in 0usize..8,
    ) {
        let n = payload.len().min(virgin_seed.len());
        let raw = &payload[..n];
        let virgin = virgin_from_seed(&virgin_seed[..n]);

        let mut oracle_cur = raw.to_vec();
        let mut oracle_virgin = virgin.clone();
        let oracle = classify_and_compare_region(&mut oracle_cur, &mut oracle_virgin);

        for kind in available() {
            let mut cur_buf = offset_buf(raw, cur_off);
            let mut vir_buf = offset_buf(&virgin, vir_off);
            let got = table_for(kind).unwrap().classify_and_compare(
                &mut cur_buf[cur_off..cur_off + n],
                &mut vir_buf[vir_off..vir_off + n],
            );
            prop_assert_eq!(
                got, oracle,
                "{} fused verdict diverged at offsets ({},{})", kind, cur_off, vir_off
            );
            prop_assert_eq!(
                &cur_buf[cur_off..cur_off + n],
                &oracle_cur[..],
                "{} fused classified bytes diverged at offsets ({},{})", kind, cur_off, vir_off
            );
            prop_assert_eq!(
                &vir_buf[vir_off..vir_off + n],
                &oracle_virgin[..],
                "{} fused virgin bytes diverged at offsets ({},{})", kind, cur_off, vir_off
            );
            assert_padding_intact(&cur_buf, cur_off, n, kind.label());
            assert_padding_intact(&vir_buf, vir_off, n, kind.label());
        }
    }

    #[test]
    fn fused_equals_split_through_any_kernel(
        payload in prop::collection::vec(any::<u8>(), 0..MAX_LEN),
        virgin_seed in prop::collection::vec(any::<u8>(), 0..MAX_LEN),
    ) {
        // The §IV-E merge must stay observationally identical to
        // classify-then-compare *within* each kernel too.
        let n = payload.len().min(virgin_seed.len());
        let raw = &payload[..n];
        let virgin = virgin_from_seed(&virgin_seed[..n]);
        for kind in available() {
            let table = table_for(kind).unwrap();

            let mut split_cur = raw.to_vec();
            let mut split_virgin = virgin.clone();
            table.classify(&mut split_cur);
            let split = table.compare(&split_cur, &mut split_virgin);

            let mut fused_cur = raw.to_vec();
            let mut fused_virgin = virgin.clone();
            let fused = table.classify_and_compare(&mut fused_cur, &mut fused_virgin);

            prop_assert_eq!(split, fused, "{}: fused vs split verdict", kind);
            prop_assert_eq!(split_cur, fused_cur, "{}: fused vs split classified", kind);
            prop_assert_eq!(split_virgin, fused_virgin, "{}: fused vs split virgin", kind);
        }
    }
}

#[test]
fn exhaustive_verdict_cases_across_kernels() {
    // Deterministic spot checks at a vector-unfriendly length (one partial
    // block + tail) covering all three verdicts per kernel.
    let len = 67;
    for kind in available() {
        let table = table_for(kind).unwrap();
        let mut virgin = vec![0xFFu8; len];
        let mut cur = vec![0u8; len];
        cur[0] = 1;
        cur[33] = 3;
        cur[66] = 200;
        assert_eq!(
            table.classify_and_compare(&mut cur, &mut virgin),
            NewCoverage::NewEdge,
            "{kind}: first touch"
        );
        let mut again = vec![0u8; len];
        again[0] = 1;
        again[33] = 3;
        again[66] = 200;
        assert_eq!(
            table.classify_and_compare(&mut again, &mut virgin),
            NewCoverage::None,
            "{kind}: identical rerun"
        );
        let mut hotter = vec![0u8; len];
        hotter[33] = 9; // bucket 16 instead of 4: new bucket, not new edge
        assert_eq!(
            table.classify_and_compare(&mut hotter, &mut virgin),
            NewCoverage::NewBucket,
            "{kind}: higher bucket"
        );
    }
}

#[test]
fn forced_scalar_dispatch_is_honoured() {
    // When CI pins BIGMAP_KERNEL=scalar the process-wide dispatcher must
    // resolve to the scalar table; without the pin this just asserts the
    // dispatcher picked something the host supports.
    let active = bigmap_core::kernels::active();
    match std::env::var("BIGMAP_KERNEL").ok().as_deref() {
        Some("scalar") => assert_eq!(active.kind, bigmap_core::KernelKind::Scalar),
        _ => assert!(available().contains(&active.kind)),
    }
}
