//! Quick probe for the giant-regime sparse walk: times
//! `classify_and_compare_runs` over the bench_mapops giant-arm layout
//! (constant ~1.3 Mi-slot active set, 64-byte clusters) at a chosen map
//! size, isolating the run-walk cost from the full bench harness so
//! prefetch-depth experiments turn around in seconds.
//!
//! Usage: `cargo run --release -p bigmap-core --example giant_probe -- [MiB] [iters]`

use bigmap_core::alloc::MapBuffer;
use bigmap_core::journal::SlotRun;
use bigmap_core::kernels;
use bigmap_core::sparse::classify_and_compare_runs;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let mib: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(256);
    let iters: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(400);
    let size = mib << 20;
    let touched = (64 << 20) / 50 / 64 * 64; // the bench giant arm's active set
    let n_runs = touched / 64;
    let stride = size / n_runs;

    // Deterministic shuffled cluster order, mimicking first-touch order.
    let mut bases: Vec<usize> = (0..n_runs).map(|i| i * stride).collect();
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    for i in (1..bases.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        bases.swap(i, (state >> 33) as usize % (i + 1));
    }
    let runs: Vec<SlotRun> = bases
        .iter()
        .map(|&b| SlotRun {
            base: b as u32,
            len: 64,
        })
        .collect();

    let mut cur = MapBuffer::<u8>::zeroed(size);
    for r in &runs {
        for (off, b) in cur.as_mut_slice()[r.range()].iter_mut().enumerate() {
            *b = (off as u8) | 1;
        }
    }
    let mut virgin = MapBuffer::<u8>::filled(size, 0xFF);
    let table = kernels::active();

    for _ in 0..3 {
        let _ = classify_and_compare_runs(cur.as_mut_slice(), virgin.as_mut_slice(), &runs, table);
    }
    let start = Instant::now();
    for _ in 0..iters {
        let _ = classify_and_compare_runs(cur.as_mut_slice(), virgin.as_mut_slice(), &runs, table);
    }
    let ns = start.elapsed().as_nanos() as f64 / iters as f64;
    println!(
        "{mib}M sparse fused: {ns:.0} ns/op ({n_runs} runs, backend {})",
        cur.backend().label()
    );
}
