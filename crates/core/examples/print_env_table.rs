//! Prints the generated environment-knob table
//! (`bigmap_core::env::markdown_table()`).
//!
//! The README's "Environment knobs" table is pasted from this output, and
//! a facade test asserts they stay in sync:
//!
//! ```bash
//! cargo run -p bigmap-core --example print_env_table
//! ```

fn main() {
    print!("{}", bigmap_core::env::markdown_table());
}
