//! Non-temporal (streaming) map reset (§IV-E).
//!
//! The flat bitmap is `memset` to zero before every test case. A regular
//! memset pulls every cache line of the map into the cache hierarchy even
//! though most lines hold no coverage data and will never be read — pure
//! pollution. The paper's second §IV-E optimization replaces the reset with
//! **non-temporal stores**, which bypass the cache. (BigMap itself barely
//! benefits: its reset already touches only the used prefix.)
//!
//! On x86-64 we use `_mm_stream_si128`; elsewhere this degrades to a plain
//! `fill(0)`, preserving semantics.

/// Zeroes `buf` without displacing existing cache contents where the
/// platform supports it.
///
/// Semantically identical to `buf.fill(0)`; the only difference is the cache
/// side effect. Unaligned head/tail bytes (relative to 16-byte boundaries)
/// are zeroed with regular stores.
///
/// # Examples
///
/// ```rust
/// use bigmap_core::simd::nontemporal_zero;
///
/// let mut buf = vec![0xAAu8; 10_000];
/// nontemporal_zero(&mut buf);
/// assert!(buf.iter().all(|&b| b == 0));
/// ```
pub fn nontemporal_zero(buf: &mut [u8]) {
    #[cfg(target_arch = "x86_64")]
    {
        nontemporal_zero_x86(buf);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        buf.fill(0);
    }
}

#[cfg(target_arch = "x86_64")]
fn nontemporal_zero_x86(buf: &mut [u8]) {
    use std::arch::x86_64::{__m128i, _mm_setzero_si128, _mm_sfence, _mm_stream_si128};

    let len = buf.len();
    let start = buf.as_mut_ptr();
    let addr = start as usize;
    // Bytes until the first 16-byte boundary.
    let head = (16 - (addr & 15)) & 15;
    let head = head.min(len);
    buf[..head].fill(0);
    let aligned_len = (len - head) & !15usize;

    // SAFETY: `start + head` is 16-byte aligned by construction, and
    // `aligned_len` 16-byte chunks fit within the slice.
    unsafe {
        let zero = _mm_setzero_si128();
        let mut ptr = start.add(head).cast::<__m128i>();
        let end = start.add(head + aligned_len).cast::<__m128i>();
        while ptr < end {
            _mm_stream_si128(ptr, zero);
            ptr = ptr.add(1);
        }
        // Make the streaming stores globally visible before anyone reads
        // the map (the interpreter runs on the same thread, but keep the
        // ordering contract explicit).
        _mm_sfence();
    }
    buf[head + aligned_len..].fill(0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeroes_aligned_buffer() {
        let mut buf = crate::alloc::MapBuffer::<u8>::zeroed(1 << 16);
        buf.as_mut_slice().fill(0x5A);
        nontemporal_zero(buf.as_mut_slice());
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn zeroes_misaligned_windows() {
        for offset in 0..17 {
            for len in [0usize, 1, 15, 16, 17, 31, 100] {
                let mut buf = vec![0xFFu8; offset + len + 32];
                nontemporal_zero(&mut buf[offset..offset + len]);
                assert!(buf[offset..offset + len].iter().all(|&b| b == 0));
                // Surrounding bytes untouched.
                assert!(buf[..offset].iter().all(|&b| b == 0xFF));
                assert!(buf[offset + len..].iter().all(|&b| b == 0xFF));
            }
        }
    }

    #[test]
    fn empty_slice_is_fine() {
        nontemporal_zero(&mut []);
    }

    proptest! {
        #[test]
        fn equivalent_to_fill_zero(
            mut data in prop::collection::vec(any::<u8>(), 0..4096),
        ) {
            nontemporal_zero(&mut data);
            prop_assert!(data.iter().all(|&b| b == 0));
        }
    }
}
