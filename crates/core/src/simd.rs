//! Non-temporal (streaming) map reset (§IV-E).
//!
//! The flat bitmap is `memset` to zero before every test case. A regular
//! memset pulls every cache line of the map into the cache hierarchy even
//! though most lines hold no coverage data and will never be read — pure
//! pollution. The paper's second §IV-E optimization replaces the reset with
//! **non-temporal stores**, which bypass the cache. (BigMap itself barely
//! benefits: its reset already touches only the used prefix.)
//!
//! On x86-64 we use `_mm_stream_si128`; elsewhere this degrades to a plain
//! `fill(0)`, preserving semantics.
//!
//! Streaming is not free, though: below roughly L2 capacity the map is
//! about to be re-read (classify/compare touch the same lines), so a
//! cached memset is both faster and leaves the lines warm. The public
//! [`nontemporal_zero`] is therefore **threshold-aware** — plain `fill(0)`
//! at or below [`nt_threshold`] (default 256 KiB, `BIGMAP_NT_THRESHOLD`
//! overrides; measured crossover recorded in EXPERIMENTS.md from the
//! `bench_mapops` reset sweep) and streaming stores above it.
//! [`stream_zero`] always streams, for ablation arms that force the
//! strategy.

use std::sync::OnceLock;

/// Default [`nt_threshold`] cutoff: buffers at or below this size zero with
/// a plain cached memset (the modeled per-core L2 capacity).
pub const NT_THRESHOLD_DEFAULT: usize = 256 * 1024;

/// The streaming-store cutoff in bytes, resolved once per process:
/// `BIGMAP_NT_THRESHOLD` (bytes, decimal, via
/// [`crate::env::nt_threshold_request`]) if set and parseable, else
/// [`NT_THRESHOLD_DEFAULT`].
pub fn nt_threshold() -> usize {
    static THRESHOLD: OnceLock<usize> = OnceLock::new();
    *THRESHOLD.get_or_init(|| crate::env::nt_threshold_request().unwrap_or(NT_THRESHOLD_DEFAULT))
}

/// Zeroes `buf`, choosing the reset strategy by size: a plain cached
/// `fill(0)` at or below [`nt_threshold`] (small maps are about to be
/// re-read — cache pollution is a non-issue and NT stores just add fence
/// latency), streaming non-temporal stores above it.
///
/// Semantically identical to `buf.fill(0)` in every case.
///
/// # Examples
///
/// ```rust
/// use bigmap_core::simd::nontemporal_zero;
///
/// let mut buf = vec![0xAAu8; 10_000];
/// nontemporal_zero(&mut buf);
/// assert!(buf.iter().all(|&b| b == 0));
/// ```
pub fn nontemporal_zero(buf: &mut [u8]) {
    if buf.len() <= nt_threshold() {
        buf.fill(0);
    } else {
        stream_zero(buf);
    }
}

/// Zeroes `buf` with non-temporal streaming stores unconditionally (where
/// the platform supports them), bypassing the cache regardless of size.
///
/// This is the raw §IV-E mechanism; prefer [`nontemporal_zero`] unless you
/// are deliberately forcing the strategy (the `ResetKind::NonTemporal`
/// ablation arm and the `bench_mapops` reset sweep do).
pub fn stream_zero(buf: &mut [u8]) {
    #[cfg(target_arch = "x86_64")]
    {
        nontemporal_zero_x86(buf);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        buf.fill(0);
    }
}

#[cfg(target_arch = "x86_64")]
fn nontemporal_zero_x86(buf: &mut [u8]) {
    use std::arch::x86_64::{__m128i, _mm_setzero_si128, _mm_sfence, _mm_stream_si128};

    let len = buf.len();
    let start = buf.as_mut_ptr();
    let addr = start as usize;
    // Bytes until the first 16-byte boundary.
    let head = (16 - (addr & 15)) & 15;
    let head = head.min(len);
    buf[..head].fill(0);
    let aligned_len = (len - head) & !15usize;

    // SAFETY: `start + head` is 16-byte aligned by construction, and
    // `aligned_len` 16-byte chunks fit within the slice.
    unsafe {
        let zero = _mm_setzero_si128();
        let mut ptr = start.add(head).cast::<__m128i>();
        let end = start.add(head + aligned_len).cast::<__m128i>();
        while ptr < end {
            _mm_stream_si128(ptr, zero);
            ptr = ptr.add(1);
        }
        // Make the streaming stores globally visible before anyone reads
        // the map (the interpreter runs on the same thread, but keep the
        // ordering contract explicit).
        _mm_sfence();
    }
    buf[head + aligned_len..].fill(0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeroes_aligned_buffer() {
        let mut buf = crate::alloc::MapBuffer::<u8>::zeroed(1 << 16);
        buf.as_mut_slice().fill(0x5A);
        nontemporal_zero(buf.as_mut_slice());
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn zeroes_misaligned_windows() {
        for offset in 0..17 {
            for len in [0usize, 1, 15, 16, 17, 31, 100] {
                let mut buf = vec![0xFFu8; offset + len + 32];
                stream_zero(&mut buf[offset..offset + len]);
                assert!(buf[offset..offset + len].iter().all(|&b| b == 0));
                // Surrounding bytes untouched.
                assert!(buf[..offset].iter().all(|&b| b == 0xFF));
                assert!(buf[offset + len..].iter().all(|&b| b == 0xFF));
            }
        }
    }

    #[test]
    fn empty_slice_is_fine() {
        nontemporal_zero(&mut []);
        stream_zero(&mut []);
    }

    #[test]
    fn default_threshold_matches_documented_l2_cutoff() {
        // BIGMAP_NT_THRESHOLD is not set in the test environment, so the
        // resolved cutoff must be the documented default.
        assert_eq!(NT_THRESHOLD_DEFAULT, 256 * 1024);
        assert_eq!(nt_threshold(), NT_THRESHOLD_DEFAULT);
    }

    #[test]
    fn both_strategies_zero_above_and_below_threshold() {
        for len in [1024usize, NT_THRESHOLD_DEFAULT, NT_THRESHOLD_DEFAULT + 4096] {
            let mut a = vec![0x77u8; len];
            let mut b = vec![0x77u8; len];
            nontemporal_zero(&mut a);
            stream_zero(&mut b);
            assert_eq!(a, b);
            assert!(a.iter().all(|&x| x == 0));
        }
    }

    proptest! {
        #[test]
        fn equivalent_to_fill_zero(
            mut data in prop::collection::vec(any::<u8>(), 0..4096),
        ) {
            nontemporal_zero(&mut data);
            prop_assert!(data.iter().all(|&b| b == 0));
        }
    }
}
