//! Hit-count classification (bucketing).
//!
//! AFL does not compare exact hit counts between runs: it first maps each
//! count into one of eight coarse buckets — `[1]`, `[2]`, `[3]`, `[4-7]`,
//! `[8-15]`, `[16-31]`, `[32-127]`, `[128,∞)` — represented as the bytes
//! `1, 2, 4, 8, 16, 32, 64, 128`. Transitions *between* buckets count as an
//! interesting control-flow change; transitions *within* a bucket are
//! ignored, which also provides some protection against accidental hash
//! collisions (§II-A of the paper).
//!
//! Classification is one of the per-test-case whole-map operations whose
//! cost the paper attacks, so the implementation matters: like AFL, we build
//! a 16-bit lookup table once and classify the map one 64-bit word at a
//! time, skipping zero words.

use std::sync::OnceLock;

/// The byte each raw hit count classifies to.
///
/// Index = exact hit count, value = bucket byte.
/// Matches AFL's `count_class_lookup8` exactly.
///
/// # Examples
///
/// ```rust
/// use bigmap_core::classify::bucket_of;
///
/// assert_eq!(bucket_of(0), 0);
/// assert_eq!(bucket_of(1), 1);
/// assert_eq!(bucket_of(3), 4);
/// assert_eq!(bucket_of(7), 8);
/// assert_eq!(bucket_of(127), 64);
/// assert_eq!(bucket_of(255), 128);
/// ```
#[inline]
pub const fn bucket_of(count: u8) -> u8 {
    match count {
        0 => 0,
        1 => 1,
        2 => 2,
        3 => 4,
        4..=7 => 8,
        8..=15 => 16,
        16..=31 => 32,
        32..=127 => 64,
        128..=255 => 128,
    }
}

/// The eight bucket bytes in ascending order (excluding the zero bucket).
pub const BUCKET_BYTES: [u8; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// [`bucket_of`] as a 256-entry table.
///
/// The sparse (journal-driven) classify path buckets one touched slot at a
/// time; a branchless table load beats the range match when the access
/// pattern gives the branch predictor nothing to work with.
pub static BUCKET_LUT: [u8; 256] = {
    let mut lut = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        lut[i] = bucket_of(i as u8);
        i += 1;
    }
    lut
};

/// Classifies exactly the listed condensed slots of `counts` in place.
///
/// This is the journal-driven counterpart of [`classify_slice`]: cost is
/// `O(slots.len())` instead of `O(counts.len())`. For dense-equivalent
/// behaviour the slot list must be **unique** (classification is not
/// idempotent — see the module docs) and must cover every nonzero byte of
/// `counts`; unlisted zero bytes are fine because `bucket_of(0) == 0`. The
/// BigMap touch journal guarantees both by construction.
///
/// # Panics
///
/// Panics if any slot index is out of bounds for `counts`.
pub fn classify_slots(counts: &mut [u8], slots: &[u32]) {
    let len = counts.len();
    assert!(
        slots.iter().all(|&s| (s as usize) < len),
        "slot index out of bounds"
    );
    for &s in slots {
        // SAFETY: every slot was bounds-checked above.
        unsafe {
            let b = counts.get_unchecked_mut(s as usize);
            *b = BUCKET_LUT[*b as usize];
        }
    }
}

fn lut16() -> &'static [u16; 65536] {
    static LUT: OnceLock<Box<[u16; 65536]>> = OnceLock::new();
    LUT.get_or_init(|| {
        let mut lut = vec![0u16; 65536].into_boxed_slice();
        for (i, slot) in lut.iter_mut().enumerate() {
            let lo = bucket_of((i & 0xff) as u8) as u16;
            let hi = bucket_of((i >> 8) as u8) as u16;
            *slot = (hi << 8) | lo;
        }
        lut.try_into().expect("length 65536")
    })
}

/// Classifies one 64-bit word of hit counts (eight map slots) via the
/// 16-bit LUT, mirroring AFL's `classify_counts` inner loop.
#[inline]
pub fn classify_word(word: u64) -> u64 {
    if word == 0 {
        return 0;
    }
    let lut = lut16();
    let a = lut[(word & 0xffff) as usize] as u64;
    let b = lut[((word >> 16) & 0xffff) as usize] as u64;
    let c = lut[((word >> 32) & 0xffff) as usize] as u64;
    let d = lut[(word >> 48) as usize] as u64;
    a | (b << 16) | (c << 32) | (d << 48)
}

/// Classifies a byte slice of hit counts in place, 64 bits at a time.
///
/// Zero words are skipped (AFL's `unlikely(*current)` fast path); the slice
/// does not need any particular alignment.
pub fn classify_slice(counts: &mut [u8]) {
    let (head, words, tail) = unsafe { counts.align_to_mut::<u64>() };
    for b in head {
        *b = bucket_of(*b);
    }
    for w in words {
        if *w != 0 {
            *w = classify_word(*w);
        }
    }
    for b in tail {
        *b = bucket_of(*b);
    }
}

/// Whether a byte is a valid classified value (zero or a bucket byte).
#[inline]
pub fn is_classified(byte: u8) -> bool {
    byte == 0 || byte.is_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn buckets_match_afl_table() {
        let expect: &[(u8, u8)] = &[
            (0, 0),
            (1, 1),
            (2, 2),
            (3, 4),
            (4, 8),
            (7, 8),
            (8, 16),
            (15, 16),
            (16, 32),
            (31, 32),
            (32, 64),
            (127, 64),
            (128, 128),
            (200, 128),
            (255, 128),
        ];
        for &(count, bucket) in expect {
            assert_eq!(bucket_of(count), bucket, "count {count}");
        }
    }

    #[test]
    fn word_classify_agrees_with_scalar() {
        let word = u64::from_le_bytes([0, 1, 3, 7, 16, 40, 130, 255]);
        let classified = classify_word(word).to_le_bytes();
        assert_eq!(classified, [0, 1, 4, 8, 32, 64, 128, 128]);
    }

    #[test]
    fn slice_classify_handles_unaligned_head_tail() {
        let mut buf = [5u8; 100];
        // Classify a misaligned interior window.
        classify_slice(&mut buf[3..97]);
        assert!(buf[3..97].iter().all(|&b| b == 8));
        assert!(buf[..3].iter().all(|&b| b == 5));
        assert!(buf[97..].iter().all(|&b| b == 5));
    }

    #[test]
    fn zero_word_fast_path_leaves_zeroes() {
        let mut buf = vec![0u8; 4096];
        classify_slice(&mut buf);
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn classification_is_not_idempotent_which_is_why_afl_classifies_once() {
        // Only 0, 1, 2, 64 and 128 are fixed points; e.g. bucket 4
        // re-classifies to 8. AFL therefore classifies exactly once per
        // test case — our fuzzer pipeline does the same.
        for &b in &[0u8, 1, 2, 64, 128] {
            assert_eq!(bucket_of(b), b);
        }
        assert_eq!(bucket_of(4), 8);
        assert_eq!(bucket_of(8), 16);
        assert_eq!(bucket_of(16), 32);
        assert_eq!(bucket_of(32), 64);
    }

    #[test]
    fn bucket_bytes_are_exactly_the_powers_of_two() {
        for &b in &BUCKET_BYTES {
            assert!(is_classified(b));
        }
        assert!(is_classified(0));
        assert!(!is_classified(3));
        assert!(!is_classified(255));
    }

    #[test]
    fn bucket_lut_matches_bucket_of() {
        for i in 0..=255u8 {
            assert_eq!(BUCKET_LUT[i as usize], bucket_of(i), "count {i}");
        }
    }

    #[test]
    #[should_panic(expected = "slot index out of bounds")]
    fn classify_slots_rejects_out_of_bounds() {
        let mut buf = [1u8; 8];
        classify_slots(&mut buf, &[8]);
    }

    proptest! {
        #[test]
        fn classify_slots_equals_slice_on_covering_unique_slots(
            data in prop::collection::vec(any::<u8>(), 1..512),
            extra in prop::collection::vec(any::<usize>(), 0..32),
        ) {
            // Slots = every nonzero position (the journal guarantee) plus
            // some arbitrary zero positions, deduped.
            let mut slots: Vec<u32> = data
                .iter()
                .enumerate()
                .filter(|(_, &b)| b != 0)
                .map(|(i, _)| i as u32)
                .collect();
            for idx in &extra {
                let i = idx % data.len();
                if data[i] == 0 && !slots.contains(&(i as u32)) {
                    slots.push(i as u32);
                }
            }
            let mut dense = data.clone();
            classify_slice(&mut dense);
            let mut sparse = data;
            classify_slots(&mut sparse, &slots);
            prop_assert_eq!(sparse, dense);
        }

        #[test]
        fn word_equals_bytewise(bytes in prop::array::uniform8(any::<u8>())) {
            let word = u64::from_le_bytes(bytes);
            let got = classify_word(word).to_le_bytes();
            for i in 0..8 {
                prop_assert_eq!(got[i], bucket_of(bytes[i]));
            }
        }

        #[test]
        fn slice_equals_bytewise(mut data in prop::collection::vec(any::<u8>(), 0..512)) {
            let expect: Vec<u8> = data.iter().map(|&b| bucket_of(b)).collect();
            classify_slice(&mut data);
            prop_assert_eq!(data, expect);
        }

        #[test]
        fn classified_values_are_always_valid_buckets(
            mut data in prop::collection::vec(any::<u8>(), 0..256),
        ) {
            classify_slice(&mut data);
            for &b in &data {
                prop_assert!(is_classified(b), "invalid classified byte {b}");
            }
        }

        #[test]
        fn monotone_in_bucket_lattice(a in any::<u8>(), b in any::<u8>()) {
            // Higher raw count never maps to a strictly lower bucket.
            if a <= b {
                prop_assert!(bucket_of(a) <= bucket_of(b));
            }
        }
    }
}
