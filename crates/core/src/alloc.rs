//! Page-aligned, huge-page-backed, NUMA-placed map buffers (§IV-E and the
//! giant-map regime).
//!
//! Large coverage maps occupy many DTLB slots; the paper's final §IV-E
//! optimization backs the index and coverage bitmaps with huge pages to cut
//! page-walk overhead. This module implements three backends behind one
//! policy knob (`BIGMAP_HUGE`):
//!
//! * **`explicit`** — `mmap(MAP_HUGETLB)` against the hugetlbfs pool,
//!   trying 1 GiB pages first for gigantic buffers and 2 MiB pages
//!   otherwise. Reservation can fail at any moment (empty pool, fragmented
//!   host, unsupported kernel), so the allocator falls back to the THP path
//!   and records the fallback — never an error.
//! * **`thp`** (default) — `alloc_zeroed` aligned to the huge-page size
//!   plus a best-effort `madvise(MADV_HUGEPAGE)`, the PR-1 behaviour.
//! * **`off`** — plain pages, with `madvise(MADV_NOHUGEPAGE)` so even a
//!   `transparent_hugepage=always` host does not promote the range. The
//!   control arm for benchmarking.
//!
//! Which backend actually served each buffer is recorded per buffer
//! ([`MapBuffer::backend`]) and in process-wide counters
//! ([`backend_allocs`], [`huge_fallbacks`]) that the fuzzer's telemetry
//! layer surfaces.
//!
//! NUMA placement (`BIGMAP_NUMA`) is first-touch driven: a worker thread
//! that calls [`apply_worker_numa`] is pinned to its node's CPUs
//! (`sched_setaffinity`), so the pages it faults in land on the node that
//! hammers them; a best-effort `mbind(MPOL_PREFERRED)` additionally tags
//! freshly mapped regions so lazily-faulted pages follow even if the
//! scheduler migrates the thread. Every NUMA path degrades to a recorded
//! no-op on single-node hosts, denied syscalls and non-Linux builds.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::cell::Cell;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::OnceLock;

use crate::counters::EventCounter;

/// Alignment used for map allocations: the x86-64 huge-page size (2 MiB).
/// Smaller maps still benefit from the page alignment (no straddled lines,
/// SIMD stores are always aligned).
pub const HUGE_PAGE_BYTES: usize = 2 * 1024 * 1024;

/// The x86-64 gigantic-page size (1 GiB), tried first by the explicit
/// backend for buffers that are a whole multiple of it.
pub const GIGANTIC_PAGE_BYTES: usize = 1024 * 1024 * 1024;

// ---------------------------------------------------------------- policies

/// How map memory is requested from the kernel (`BIGMAP_HUGE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HugePolicy {
    /// Reserve hugetlbfs pages via `mmap(MAP_HUGETLB)`; fall back to THP.
    Explicit,
    /// Transparent huge pages via `madvise(MADV_HUGEPAGE)` (the default).
    #[default]
    Thp,
    /// Plain pages; actively opt out of THP promotion.
    Off,
}

impl HugePolicy {
    /// The knob spelling of this policy.
    pub fn label(self) -> &'static str {
        match self {
            HugePolicy::Explicit => "explicit",
            HugePolicy::Thp => "thp",
            HugePolicy::Off => "off",
        }
    }
}

impl fmt::Display for HugePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The pure parse policy behind `BIGMAP_HUGE` (`None` = unset). Unknown
/// values warn on stderr and read as the default.
pub fn parse_huge(raw: Option<&str>) -> HugePolicy {
    let Some(raw) = raw else {
        return HugePolicy::default();
    };
    match raw.trim() {
        "explicit" => HugePolicy::Explicit,
        "thp" => HugePolicy::Thp,
        "off" => HugePolicy::Off,
        _ => {
            eprintln!("BIGMAP_HUGE={raw}: unknown policy (expected explicit|thp|off), using thp");
            HugePolicy::default()
        }
    }
}

/// Where map memory is placed across NUMA nodes (`BIGMAP_NUMA`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NumaPolicy {
    /// Workers spread round-robin across the host's nodes; a no-op on
    /// single-node hosts (the default).
    #[default]
    Auto,
    /// No pinning, no binding: kernel first-touch only.
    Off,
    /// Every worker pins to this node.
    Node(u32),
}

impl fmt::Display for NumaPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumaPolicy::Auto => f.write_str("auto"),
            NumaPolicy::Off => f.write_str("off"),
            NumaPolicy::Node(n) => write!(f, "node:{n}"),
        }
    }
}

/// The pure parse policy behind `BIGMAP_NUMA` (`None` = unset). Unknown
/// values warn on stderr and read as the default.
pub fn parse_numa(raw: Option<&str>) -> NumaPolicy {
    let Some(raw) = raw else {
        return NumaPolicy::default();
    };
    let trimmed = raw.trim();
    match trimmed {
        "auto" => return NumaPolicy::Auto,
        "off" => return NumaPolicy::Off,
        _ => {}
    }
    if let Some(node) = trimmed.strip_prefix("node:") {
        if let Ok(n) = node.trim().parse::<u32>() {
            return NumaPolicy::Node(n);
        }
    }
    eprintln!("BIGMAP_NUMA={raw}: unknown policy (expected auto|off|node:<n>), using auto");
    NumaPolicy::default()
}

/// The backend that actually served an allocation — what the telemetry
/// layer reports per buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocBackend {
    /// `mmap(MAP_HUGETLB | MAP_HUGE_1GB)` gigantic pages.
    ExplicitGigantic,
    /// `mmap(MAP_HUGETLB)` 2 MiB hugetlb pages.
    ExplicitHuge,
    /// Heap allocation advised into transparent huge pages.
    Thp,
    /// Heap allocation on plain pages (small buffer, `off` policy, or a
    /// host without huge-page support).
    Plain,
}

impl AllocBackend {
    /// Stable label used in telemetry and bench output.
    pub fn label(self) -> &'static str {
        match self {
            AllocBackend::ExplicitGigantic => "explicit_1g",
            AllocBackend::ExplicitHuge => "explicit_2m",
            AllocBackend::Thp => "thp",
            AllocBackend::Plain => "plain",
        }
    }

    fn slot(self) -> usize {
        match self {
            AllocBackend::ExplicitGigantic => 0,
            AllocBackend::ExplicitHuge => 1,
            AllocBackend::Thp => 2,
            AllocBackend::Plain => 3,
        }
    }
}

impl fmt::Display for AllocBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

// -------------------------------------------------- process / thread state

thread_local! {
    static HUGE_OVERRIDE: Cell<Option<HugePolicy>> = const { Cell::new(None) };
    static PREFERRED_NODE: Cell<Option<u32>> = const { Cell::new(None) };
    static NUMA_OUTCOME: Cell<Option<bool>> = const { Cell::new(None) };
}

/// The effective huge-page policy for allocations on this thread: a scoped
/// [`with_huge_policy`] override if active, else the process-wide
/// `BIGMAP_HUGE` value (parsed once).
pub fn huge_policy() -> HugePolicy {
    if let Some(p) = HUGE_OVERRIDE.with(Cell::get) {
        return p;
    }
    static PROCESS: OnceLock<HugePolicy> = OnceLock::new();
    *PROCESS.get_or_init(crate::env::huge_request)
}

/// The process-wide NUMA policy (`BIGMAP_NUMA`, parsed once).
pub fn numa_policy() -> NumaPolicy {
    static PROCESS: OnceLock<NumaPolicy> = OnceLock::new();
    *PROCESS.get_or_init(crate::env::numa_request)
}

/// Runs `f` with this thread's allocations forced to `policy`, restoring
/// the previous override on exit. This is how the bench harness and the
/// cross-policy equivalence tests compare backends inside one process
/// without touching the environment.
pub fn with_huge_policy<R>(policy: HugePolicy, f: impl FnOnce() -> R) -> R {
    let prev = HUGE_OVERRIDE.with(|c| c.replace(Some(policy)));
    struct Restore(Option<HugePolicy>);
    impl Drop for Restore {
        fn drop(&mut self) {
            HUGE_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// Sets (or clears) the NUMA node this thread's future map allocations
/// should prefer. [`apply_worker_numa`] is the usual caller; tests use it
/// directly to exercise the bind path.
pub fn set_thread_node(node: Option<u32>) {
    PREFERRED_NODE.with(|c| c.set(node));
}

/// The NUMA node this thread's allocations prefer, if any.
pub fn thread_node() -> Option<u32> {
    PREFERRED_NODE.with(Cell::get)
}

/// The outcome of this thread's [`apply_worker_numa`] call: `None` if NUMA
/// placement was a policy no-op (off, or single-node auto), `Some(true)` if
/// the thread was pinned to its node, `Some(false)` if pinning was refused
/// and the thread fell back to unpinned first-touch.
pub fn thread_numa_outcome() -> Option<bool> {
    NUMA_OUTCOME.with(Cell::get)
}

/// Number of NUMA nodes the host exposes (1 when the sysfs topology is
/// absent, i.e. non-Linux or single-node).
pub fn numa_node_count() -> usize {
    static COUNT: OnceLock<usize> = OnceLock::new();
    *COUNT.get_or_init(|| probe_node_count().max(1))
}

#[cfg(target_os = "linux")]
fn probe_node_count() -> usize {
    let Ok(entries) = std::fs::read_dir("/sys/devices/system/node") else {
        return 1;
    };
    entries
        .filter_map(Result::ok)
        .filter(|e| {
            let name = e.file_name();
            let name = name.to_string_lossy();
            name.strip_prefix("node")
                .is_some_and(|n| n.chars().all(|c| c.is_ascii_digit()) && !n.is_empty())
        })
        .count()
}

#[cfg(not(target_os = "linux"))]
fn probe_node_count() -> usize {
    1
}

/// Resolves the NUMA policy to a concrete target node for worker `worker`,
/// without touching any thread state.
///
/// `None` means placement is a policy no-op: `off`, or `auto` on a
/// single-node host. Fleet parents use this to forward `node:<n>` to the
/// worker processes they spawn; [`apply_worker_numa`] uses it in-process.
pub fn worker_node(worker: usize) -> Option<u32> {
    let nodes = numa_node_count();
    match numa_policy() {
        NumaPolicy::Off => None,
        NumaPolicy::Node(n) => Some(n),
        NumaPolicy::Auto => (nodes > 1).then(|| (worker % nodes) as u32),
    }
}

/// Resolves the NUMA policy for worker `worker`, remembers the chosen node
/// for this thread's allocations and pins the thread to that node's CPUs.
///
/// Returns `None` when placement is a policy no-op (`off`, or `auto` on a
/// single-node host), `Some(true)` on a successful pin, `Some(false)` when
/// the pin was refused (denied syscall, bogus node) — the thread then runs
/// unpinned and placement degrades to kernel first-touch.
pub fn apply_worker_numa(worker: usize) -> Option<bool> {
    let nodes = numa_node_count();
    let outcome = worker_node(worker).map(|node| {
        set_thread_node(Some(node));
        let ok = (node as usize) < nodes && pin_thread_to_node(node);
        if ok {
            NUMA_PINS.incr();
        } else {
            NUMA_PIN_FAILS.incr();
        }
        ok
    });
    NUMA_OUTCOME.with(|c| c.set(outcome));
    outcome
}

/// Pins the calling thread to the CPUs of NUMA node `node` via
/// `sched_setaffinity`. Best-effort: returns `false` (and leaves the
/// affinity untouched) when the node or its CPU list cannot be resolved or
/// the syscall is denied.
#[cfg(target_os = "linux")]
pub fn pin_thread_to_node(node: u32) -> bool {
    let path = format!("/sys/devices/system/node/node{node}/cpulist");
    let Ok(list) = std::fs::read_to_string(path) else {
        return false;
    };
    let Some(cpus) = parse_cpulist(&list) else {
        return false;
    };
    let mut set = libc::cpu_set_t { bits: [0u64; 16] };
    let mut any = false;
    for cpu in cpus {
        let (word, bit) = (cpu / 64, cpu % 64);
        if word < set.bits.len() {
            set.bits[word] |= 1u64 << bit;
            any = true;
        }
    }
    if !any {
        return false;
    }
    // SAFETY: `set` is a properly initialized cpu_set_t; pid 0 = this thread.
    unsafe { libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &set) == 0 }
}

/// Non-Linux stub: no NUMA topology, nothing to pin.
#[cfg(not(target_os = "linux"))]
pub fn pin_thread_to_node(_node: u32) -> bool {
    false
}

/// Parses a sysfs cpulist (`"0-3,8,10-11"`) into CPU indices. `None` on
/// malformed input.
fn parse_cpulist(list: &str) -> Option<Vec<usize>> {
    let mut cpus = Vec::new();
    for part in list.trim().split(',') {
        if part.is_empty() {
            continue;
        }
        match part.split_once('-') {
            Some((lo, hi)) => {
                let lo = lo.trim().parse::<usize>().ok()?;
                let hi = hi.trim().parse::<usize>().ok()?;
                if lo > hi {
                    return None;
                }
                cpus.extend(lo..=hi);
            }
            None => cpus.push(part.trim().parse::<usize>().ok()?),
        }
    }
    (!cpus.is_empty()).then_some(cpus)
}

// ----------------------------------------------------------------- counters

static ALLOC_BACKENDS: [EventCounter; 4] = [
    EventCounter::new(),
    EventCounter::new(),
    EventCounter::new(),
    EventCounter::new(),
];
static HUGE_FALLBACKS: EventCounter = EventCounter::new();
static NUMA_BINDS: EventCounter = EventCounter::new();
static NUMA_BIND_FAILS: EventCounter = EventCounter::new();
static NUMA_PINS: EventCounter = EventCounter::new();
static NUMA_PIN_FAILS: EventCounter = EventCounter::new();

/// Process-wide count of buffers served by `backend` since start.
pub fn backend_allocs(backend: AllocBackend) -> u64 {
    ALLOC_BACKENDS[backend.slot()].get()
}

/// Process-wide count of explicit-huge-page requests that fell back to the
/// THP path (empty hugetlb pool, unsupported kernel, non-Linux build).
pub fn huge_fallbacks() -> u64 {
    HUGE_FALLBACKS.get()
}

/// Process-wide count of successful `mbind` region tags.
pub fn numa_binds() -> u64 {
    NUMA_BINDS.get()
}

/// Process-wide count of refused `mbind` calls (denied syscall, bad node).
pub fn numa_bind_fails() -> u64 {
    NUMA_BIND_FAILS.get()
}

/// Process-wide count of successful worker-thread node pins.
pub fn numa_pins() -> u64 {
    NUMA_PINS.get()
}

/// Process-wide count of refused worker-thread node pins.
pub fn numa_pin_fails() -> u64 {
    NUMA_PIN_FAILS.get()
}

// ---------------------------------------------------------------- MapBuffer

/// A fixed-size, zero-initialized, huge-page-aligned buffer of `T`.
///
/// `T` is restricted (via the sealed [`MapElement`] trait) to plain integer
/// element types for which the all-zeroes bit pattern is a valid value,
/// which is what makes zero-initialized allocation sound.
///
/// # Examples
///
/// ```rust
/// use bigmap_core::alloc::MapBuffer;
///
/// let mut buf: MapBuffer<u8> = MapBuffer::zeroed(4096);
/// assert!(buf.iter().all(|&b| b == 0));
/// buf[7] = 42;
/// assert_eq!(buf[7], 42);
/// ```
pub struct MapBuffer<T: MapElement> {
    ptr: *mut T,
    len: usize,
    /// Bytes covered by the backing `mmap`, or 0 for heap allocations —
    /// tells `Drop` whether to `munmap` or `dealloc`.
    mapped: usize,
    backend: AllocBackend,
    fell_back: bool,
    _marker: PhantomData<T>,
}

// SAFETY: MapBuffer owns its allocation exclusively; T is a plain integer.
unsafe impl<T: MapElement> Send for MapBuffer<T> {}
// SAFETY: shared access only hands out &[T]; no interior mutability.
unsafe impl<T: MapElement> Sync for MapBuffer<T> {}

mod private {
    pub trait Sealed {}
    impl Sealed for u8 {}
    impl Sealed for u16 {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
}

/// Element types allowed in a [`MapBuffer`].
///
/// This trait is sealed: it is implemented for `u8`, `u16`, `u32` and `u64`
/// and cannot be implemented outside this crate. All implementors are plain
/// integers whose all-zeroes bit pattern is a valid value.
pub trait MapElement: private::Sealed + Copy + 'static {}

impl MapElement for u8 {}
impl MapElement for u16 {}
impl MapElement for u32 {}
impl MapElement for u64 {}

impl<T: MapElement> MapBuffer<T> {
    /// Allocates a zeroed buffer of `len` elements, aligned to
    /// [`HUGE_PAGE_BYTES`], using the thread's effective huge-page policy
    /// ([`huge_policy`]).
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or if the allocation size overflows `isize`.
    /// Aborts (via [`handle_alloc_error`]) if the allocator fails.
    pub fn zeroed(len: usize) -> Self {
        Self::zeroed_with(len, huge_policy())
    }

    /// Allocates a zeroed buffer of `len` elements under an explicit
    /// huge-page policy, bypassing the process/thread default.
    ///
    /// Every policy yields a correctly aligned, fully zeroed buffer; only
    /// the backing pages differ. When `policy` asks for explicit huge pages
    /// and the host cannot serve them, the buffer silently degrades to the
    /// THP path and [`MapBuffer::fell_back`] reports it.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or if the allocation size overflows `isize`.
    pub fn zeroed_with(len: usize, policy: HugePolicy) -> Self {
        assert!(len > 0, "MapBuffer length must be non-zero");
        let layout = Self::layout(len);
        let bytes = layout.size();

        let mut fell_back = false;
        if policy == HugePolicy::Explicit && bytes >= HUGE_PAGE_BYTES {
            if let Some(buf) = Self::try_explicit(len, bytes) {
                bind_region(buf.ptr.cast(), buf.mapped);
                ALLOC_BACKENDS[buf.backend.slot()].incr();
                return buf;
            }
            fell_back = true;
            HUGE_FALLBACKS.incr();
        }

        // Heap path: THP advice for `thp` (and the explicit fallback),
        // active THP opt-out for `off`.
        // SAFETY: layout has non-zero size (len > 0, size_of::<T>() >= 1).
        let raw = unsafe { alloc_zeroed(layout) };
        if raw.is_null() {
            handle_alloc_error(layout);
        }
        let backend = match policy {
            HugePolicy::Off => {
                advise_no_huge_pages(raw, bytes);
                AllocBackend::Plain
            }
            _ if bytes >= HUGE_PAGE_BYTES => {
                advise_huge_pages(raw, bytes);
                AllocBackend::Thp
            }
            // Sub-huge-page buffers: nothing to promote.
            _ => AllocBackend::Plain,
        };
        bind_region(raw.cast(), bytes);
        ALLOC_BACKENDS[backend.slot()].incr();
        MapBuffer {
            ptr: raw.cast::<T>(),
            len,
            mapped: 0,
            backend,
            fell_back,
            _marker: PhantomData,
        }
    }

    /// Attempts the explicit hugetlb backend: 1 GiB pages when `bytes` is a
    /// whole multiple of the gigantic-page size, else 2 MiB pages. `None`
    /// when the kernel refuses (no pool, no support) — the caller falls
    /// back.
    #[cfg(target_os = "linux")]
    fn try_explicit(len: usize, bytes: usize) -> Option<Self> {
        let mut attempts: [Option<(usize, libc::c_int, AllocBackend)>; 2] = [None, None];
        if bytes.is_multiple_of(GIGANTIC_PAGE_BYTES) {
            attempts[0] = Some((bytes, libc::MAP_HUGE_1GB, AllocBackend::ExplicitGigantic));
        }
        let huge_rounded = bytes.div_ceil(HUGE_PAGE_BYTES) * HUGE_PAGE_BYTES;
        attempts[1] = Some((huge_rounded, libc::MAP_HUGE_2MB, AllocBackend::ExplicitHuge));
        for (mapped, size_flag, backend) in attempts.into_iter().flatten() {
            // SAFETY: anonymous private mapping with no address hint; the
            // kernel either returns a fresh zeroed region of `mapped` bytes
            // or MAP_FAILED.
            let addr = unsafe {
                libc::mmap(
                    std::ptr::null_mut(),
                    mapped,
                    libc::PROT_READ | libc::PROT_WRITE,
                    libc::MAP_PRIVATE | libc::MAP_ANONYMOUS | libc::MAP_HUGETLB | size_flag,
                    -1,
                    0,
                )
            };
            if addr != libc::MAP_FAILED {
                debug_assert_eq!(addr as usize % HUGE_PAGE_BYTES, 0);
                return Some(MapBuffer {
                    ptr: addr.cast::<T>(),
                    len,
                    mapped,
                    backend,
                    fell_back: false,
                    _marker: PhantomData,
                });
            }
        }
        None
    }

    /// Non-Linux stub: explicit huge pages are unavailable, always fall
    /// back.
    #[cfg(not(target_os = "linux"))]
    fn try_explicit(_len: usize, _bytes: usize) -> Option<Self> {
        None
    }

    /// Allocates a buffer of `len` elements with every element set to `fill`.
    ///
    /// BigMap's index bitmap uses this with `u32::MAX` (the paper's `-1`
    /// sentinel) — the single whole-map touch of the entire campaign.
    pub fn filled(len: usize, fill: T) -> Self {
        let mut buf = Self::zeroed(len);
        buf.as_mut_slice().fill(fill);
        buf
    }

    /// The backend that actually served this buffer.
    #[inline]
    pub fn backend(&self) -> AllocBackend {
        self.backend
    }

    /// Whether an explicit-huge-page request degraded to the THP path.
    #[inline]
    pub fn fell_back(&self) -> bool {
        self.fell_back
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds zero elements. Always `false` (construction
    /// rejects empty buffers); provided for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// View of the whole buffer.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: ptr is valid for len elements for the lifetime of self.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Mutable view of the whole buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: ptr is valid for len elements; &mut self guarantees
        // exclusivity.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }

    /// Raw pointer to the first element (used by the non-temporal reset).
    #[inline]
    pub fn as_ptr(&self) -> *const T {
        self.ptr
    }

    /// Raw mutable pointer to the first element.
    #[inline]
    pub fn as_mut_ptr(&mut self) -> *mut T {
        self.ptr
    }

    fn layout(len: usize) -> Layout {
        let size = len
            .checked_mul(std::mem::size_of::<T>())
            .expect("MapBuffer size overflow");
        Layout::from_size_align(size, HUGE_PAGE_BYTES).expect("valid layout")
    }
}

impl<T: MapElement> Drop for MapBuffer<T> {
    fn drop(&mut self) {
        if self.mapped > 0 {
            // SAFETY: [ptr, ptr+mapped) is exactly the region mmap returned
            // in `try_explicit`.
            unsafe {
                libc::munmap(self.ptr.cast(), self.mapped);
            }
        } else {
            let layout = Self::layout(self.len);
            // SAFETY: ptr was allocated with exactly this layout in
            // `zeroed_with`.
            unsafe { dealloc(self.ptr.cast(), layout) }
        }
    }
}

impl<T: MapElement> Deref for MapBuffer<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: MapElement> DerefMut for MapBuffer<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: MapElement + fmt::Debug> fmt::Debug for MapBuffer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MapBuffer")
            .field("len", &self.len)
            .field("align", &HUGE_PAGE_BYTES)
            .field("backend", &self.backend)
            .finish()
    }
}

impl<T: MapElement> Clone for MapBuffer<T> {
    fn clone(&self) -> Self {
        let mut out = Self::zeroed(self.len);
        out.as_mut_slice().copy_from_slice(self.as_slice());
        out
    }
}

// ------------------------------------------------------------------ advice

/// Best-effort request to back `[ptr, ptr+len)` with transparent huge pages.
///
/// A failed or unsupported call is silently ignored: huge pages are an
/// optimization (§IV-E), never a correctness requirement.
#[cfg(target_os = "linux")]
fn advise_huge_pages(ptr: *mut u8, len: usize) {
    if len >= HUGE_PAGE_BYTES {
        // SAFETY: the range [ptr, ptr+len) is a live allocation we own;
        // MADV_HUGEPAGE does not alter memory contents.
        unsafe {
            libc::madvise(ptr.cast(), len, libc::MADV_HUGEPAGE);
        }
    }
}

#[cfg(not(target_os = "linux"))]
fn advise_huge_pages(_ptr: *mut u8, _len: usize) {}

/// Best-effort opt-out of THP promotion for the `off` policy's control
/// buffers, so a `transparent_hugepage=always` host measures plain pages.
#[cfg(target_os = "linux")]
fn advise_no_huge_pages(ptr: *mut u8, len: usize) {
    if len >= HUGE_PAGE_BYTES {
        // SAFETY: as `advise_huge_pages`; MADV_NOHUGEPAGE is advice only.
        unsafe {
            libc::madvise(ptr.cast(), len, libc::MADV_NOHUGEPAGE);
        }
    }
}

#[cfg(not(target_os = "linux"))]
fn advise_no_huge_pages(_ptr: *mut u8, _len: usize) {}

// -------------------------------------------------------------------- NUMA

/// Tags `[ptr, ptr+len)` with `MPOL_PREFERRED` for the thread's preferred
/// node so lazily-faulted pages land there. Best-effort: a refused or
/// unavailable `mbind` is counted and ignored (placement degrades to
/// first-touch, which thread pinning already steers).
#[cfg(target_os = "linux")]
fn bind_region(ptr: *mut u8, len: usize) {
    if numa_policy() == NumaPolicy::Off || len == 0 {
        return;
    }
    let Some(node) = thread_node().or(match numa_policy() {
        NumaPolicy::Node(n) => Some(n),
        _ => None,
    }) else {
        return;
    };
    if node >= 64 {
        NUMA_BIND_FAILS.incr();
        return;
    }
    let nodemask: u64 = 1u64 << node;
    // SAFETY: raw mbind syscall over a region we own; the kernel validates
    // the mask and mode and fails cleanly on nonsense (counted below).
    let rc = unsafe {
        libc::syscall(
            libc::SYS_mbind,
            ptr,
            len,
            libc::MPOL_PREFERRED,
            &nodemask as *const u64,
            64usize,
            0usize,
        )
    };
    if rc == 0 {
        NUMA_BINDS.incr();
    } else {
        NUMA_BIND_FAILS.incr();
    }
}

#[cfg(not(target_os = "linux"))]
fn bind_region(_ptr: *mut u8, _len: usize) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_all_zero() {
        let buf: MapBuffer<u8> = MapBuffer::zeroed(1 << 16);
        assert!(buf.iter().all(|&b| b == 0));
        assert_eq!(buf.len(), 1 << 16);
        assert!(!buf.is_empty());
    }

    #[test]
    fn filled_sets_sentinel() {
        let buf: MapBuffer<u32> = MapBuffer::filled(1024, u32::MAX);
        assert!(buf.iter().all(|&w| w == u32::MAX));
    }

    #[test]
    fn alignment_is_huge_page() {
        let buf: MapBuffer<u8> = MapBuffer::zeroed(4096);
        assert_eq!(buf.as_ptr() as usize % HUGE_PAGE_BYTES, 0);
    }

    #[test]
    fn deref_and_index() {
        let mut buf: MapBuffer<u8> = MapBuffer::zeroed(64);
        buf[3] = 9;
        assert_eq!(buf[3], 9);
        assert_eq!(buf.iter().filter(|&&b| b != 0).count(), 1);
    }

    #[test]
    fn clone_copies_contents() {
        let mut buf: MapBuffer<u64> = MapBuffer::zeroed(128);
        buf[100] = 0xdead_beef;
        let copy = buf.clone();
        assert_eq!(copy[100], 0xdead_beef);
        assert_eq!(copy.len(), 128);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_length_rejected() {
        let _ = MapBuffer::<u8>::zeroed(0);
    }

    #[test]
    fn large_allocation_works() {
        // The paper's 8 MiB point plus the 32 MiB sweep extreme.
        let buf: MapBuffer<u8> = MapBuffer::zeroed(32 << 20);
        assert_eq!(buf.len(), 32 << 20);
        assert_eq!(buf[32 << 20 >> 1], 0);
    }

    #[test]
    fn every_policy_yields_aligned_zeroed_memory() {
        // The fallback contract: no matter what the host supports, every
        // policy produces a correctly aligned, fully zeroed buffer.
        for policy in [HugePolicy::Explicit, HugePolicy::Thp, HugePolicy::Off] {
            let mut buf: MapBuffer<u8> = MapBuffer::zeroed_with(4 << 20, policy);
            assert_eq!(
                buf.as_ptr() as usize % HUGE_PAGE_BYTES,
                0,
                "{policy}: misaligned"
            );
            assert!(buf.iter().all(|&b| b == 0), "{policy}: not zeroed");
            buf[3 << 20] = 7;
            assert_eq!(buf[3 << 20], 7, "{policy}: not writable");
        }
    }

    #[test]
    fn explicit_request_is_served_or_recorded_as_fallback() {
        let fallbacks_before = huge_fallbacks();
        let buf: MapBuffer<u8> = MapBuffer::zeroed_with(4 << 20, HugePolicy::Explicit);
        match buf.backend() {
            AllocBackend::ExplicitHuge | AllocBackend::ExplicitGigantic => {
                assert!(!buf.fell_back());
            }
            AllocBackend::Thp => {
                // No hugetlb pool on this host: the fallback must be
                // visible both per-buffer and in the process counter.
                assert!(buf.fell_back());
                assert!(huge_fallbacks() > fallbacks_before);
            }
            AllocBackend::Plain => panic!("explicit request degraded past THP"),
        }
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn off_policy_reports_plain_backend() {
        let buf: MapBuffer<u8> = MapBuffer::zeroed_with(4 << 20, HugePolicy::Off);
        assert_eq!(buf.backend(), AllocBackend::Plain);
        assert!(!buf.fell_back());
    }

    #[test]
    fn sub_huge_page_buffers_never_use_hugetlb() {
        // Explicit policy on a 4 KiB buffer: hugetlb would waste a full
        // 2 MiB page, so the small-buffer path stays on the heap and is
        // not a fallback.
        let buf: MapBuffer<u8> = MapBuffer::zeroed_with(4096, HugePolicy::Explicit);
        assert_eq!(buf.backend(), AllocBackend::Plain);
        assert!(!buf.fell_back());
    }

    #[test]
    fn backend_counters_are_monotone_and_attributed() {
        let before = backend_allocs(AllocBackend::Plain);
        let _buf: MapBuffer<u8> = MapBuffer::zeroed_with(4096, HugePolicy::Thp);
        assert!(backend_allocs(AllocBackend::Plain) > before);
    }

    #[test]
    fn with_huge_policy_scopes_and_restores() {
        let outer = huge_policy();
        with_huge_policy(HugePolicy::Off, || {
            assert_eq!(huge_policy(), HugePolicy::Off);
            with_huge_policy(HugePolicy::Explicit, || {
                assert_eq!(huge_policy(), HugePolicy::Explicit);
            });
            assert_eq!(huge_policy(), HugePolicy::Off);
        });
        assert_eq!(huge_policy(), outer);
    }

    #[test]
    fn parse_huge_policy_values() {
        assert_eq!(parse_huge(None), HugePolicy::Thp);
        assert_eq!(parse_huge(Some("explicit")), HugePolicy::Explicit);
        assert_eq!(parse_huge(Some(" thp ")), HugePolicy::Thp);
        assert_eq!(parse_huge(Some("off")), HugePolicy::Off);
        assert_eq!(parse_huge(Some("gigantic")), HugePolicy::Thp);
    }

    #[test]
    fn parse_numa_policy_values() {
        assert_eq!(parse_numa(None), NumaPolicy::Auto);
        assert_eq!(parse_numa(Some("auto")), NumaPolicy::Auto);
        assert_eq!(parse_numa(Some("off")), NumaPolicy::Off);
        assert_eq!(parse_numa(Some("node:3")), NumaPolicy::Node(3));
        assert_eq!(parse_numa(Some("node:zero")), NumaPolicy::Auto);
        assert_eq!(parse_numa(Some("numa")), NumaPolicy::Auto);
    }

    #[test]
    fn bogus_thread_node_degrades_gracefully() {
        // Node 63 does not exist on any test host. Whether the kernel
        // refuses the preferred-node tag (EINVAL) or accepts it for a
        // possible-but-absent node is host-specific — the contract is
        // only that the attempt is counted, nothing panics, and the
        // buffer is correct either way.
        set_thread_node(Some(63));
        let buf: MapBuffer<u8> = MapBuffer::zeroed(1 << 20);
        set_thread_node(None);
        assert!(buf.iter().all(|&b| b == 0));
        #[cfg(target_os = "linux")]
        if numa_policy() != NumaPolicy::Off {
            assert!(numa_binds() + numa_bind_fails() > 0);
        }
    }

    #[test]
    fn node_topology_probe_is_sane() {
        let nodes = numa_node_count();
        assert!(nodes >= 1);
        // Pinning to a node far past the topology must refuse cleanly.
        assert!(!pin_thread_to_node(1023));
    }

    #[test]
    fn worker_numa_application_is_graceful() {
        // Whatever the host topology and policy, applying worker placement
        // must not panic and must leave a consistent outcome record.
        let outcome = apply_worker_numa(0);
        assert_eq!(outcome, thread_numa_outcome());
        set_thread_node(None);
    }

    #[test]
    fn cpulist_parser_handles_ranges_and_holes() {
        assert_eq!(parse_cpulist("0-3"), Some(vec![0, 1, 2, 3]));
        assert_eq!(parse_cpulist("0,2,4"), Some(vec![0, 2, 4]));
        assert_eq!(parse_cpulist("0-1,8,10-11"), Some(vec![0, 1, 8, 10, 11]));
        assert_eq!(parse_cpulist(""), None);
        assert_eq!(parse_cpulist("3-1"), None);
        assert_eq!(parse_cpulist("x"), None);
    }

    #[test]
    fn explicit_buffers_survive_clone_and_drop() {
        // Clone of an explicit (or fallen-back) buffer re-allocates under
        // the current thread policy; both drops must take the right
        // deallocation path (munmap vs dealloc) without corruption.
        with_huge_policy(HugePolicy::Explicit, || {
            let mut a: MapBuffer<u8> = MapBuffer::zeroed(4 << 20);
            a[123] = 45;
            let b = a.clone();
            drop(a);
            assert_eq!(b[123], 45);
        });
    }
}
