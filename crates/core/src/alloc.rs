//! Page-aligned, optionally huge-page-backed map buffers (§IV-E).
//!
//! Large coverage maps occupy many DTLB slots; the paper's final §IV-E
//! optimization backs the index and coverage bitmaps with huge pages to cut
//! page-walk overhead. [`MapBuffer`] allocates zeroed memory aligned to the
//! huge-page size and, on Linux, issues a best-effort
//! `madvise(MADV_HUGEPAGE)` so the kernel promotes the range to transparent
//! huge pages.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};

/// Alignment used for map allocations: the x86-64 huge-page size (2 MiB).
/// Smaller maps still benefit from the page alignment (no straddled lines,
/// SIMD stores are always aligned).
pub const HUGE_PAGE_BYTES: usize = 2 * 1024 * 1024;

/// A fixed-size, zero-initialized, huge-page-aligned buffer of `T`.
///
/// `T` is restricted (via the sealed [`MapElement`] trait) to plain integer
/// element types for which the all-zeroes bit pattern is a valid value, which
/// is what makes `alloc_zeroed` initialization sound.
///
/// # Examples
///
/// ```rust
/// use bigmap_core::alloc::MapBuffer;
///
/// let mut buf: MapBuffer<u8> = MapBuffer::zeroed(4096);
/// assert!(buf.iter().all(|&b| b == 0));
/// buf[7] = 42;
/// assert_eq!(buf[7], 42);
/// ```
pub struct MapBuffer<T: MapElement> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<T>,
}

// SAFETY: MapBuffer owns its allocation exclusively; T is a plain integer.
unsafe impl<T: MapElement> Send for MapBuffer<T> {}
// SAFETY: shared access only hands out &[T]; no interior mutability.
unsafe impl<T: MapElement> Sync for MapBuffer<T> {}

mod private {
    pub trait Sealed {}
    impl Sealed for u8 {}
    impl Sealed for u16 {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
}

/// Element types allowed in a [`MapBuffer`].
///
/// This trait is sealed: it is implemented for `u8`, `u16`, `u32` and `u64`
/// and cannot be implemented outside this crate. All implementors are plain
/// integers whose all-zeroes bit pattern is a valid value.
pub trait MapElement: private::Sealed + Copy + 'static {}

impl MapElement for u8 {}
impl MapElement for u16 {}
impl MapElement for u32 {}
impl MapElement for u64 {}

impl<T: MapElement> MapBuffer<T> {
    /// Allocates a zeroed buffer of `len` elements, aligned to
    /// [`HUGE_PAGE_BYTES`], and advises the kernel to back it with huge
    /// pages where supported.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or if the allocation size overflows `isize`.
    /// Aborts (via [`handle_alloc_error`]) if the allocator fails.
    pub fn zeroed(len: usize) -> Self {
        assert!(len > 0, "MapBuffer length must be non-zero");
        let layout = Self::layout(len);
        // SAFETY: layout has non-zero size (len > 0, size_of::<T>() >= 1).
        let raw = unsafe { alloc_zeroed(layout) };
        if raw.is_null() {
            handle_alloc_error(layout);
        }
        let ptr = raw.cast::<T>();
        advise_huge_pages(raw, layout.size());
        MapBuffer {
            ptr,
            len,
            _marker: PhantomData,
        }
    }

    /// Allocates a buffer of `len` elements with every element set to `fill`.
    ///
    /// BigMap's index bitmap uses this with `u32::MAX` (the paper's `-1`
    /// sentinel) — the single whole-map touch of the entire campaign.
    pub fn filled(len: usize, fill: T) -> Self {
        let mut buf = Self::zeroed(len);
        buf.as_mut_slice().fill(fill);
        buf
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds zero elements. Always `false` (construction
    /// rejects empty buffers); provided for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// View of the whole buffer.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: ptr is valid for len elements for the lifetime of self.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Mutable view of the whole buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: ptr is valid for len elements; &mut self guarantees
        // exclusivity.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }

    /// Raw pointer to the first element (used by the non-temporal reset).
    #[inline]
    pub fn as_ptr(&self) -> *const T {
        self.ptr
    }

    /// Raw mutable pointer to the first element.
    #[inline]
    pub fn as_mut_ptr(&mut self) -> *mut T {
        self.ptr
    }

    fn layout(len: usize) -> Layout {
        let size = len
            .checked_mul(std::mem::size_of::<T>())
            .expect("MapBuffer size overflow");
        Layout::from_size_align(size, HUGE_PAGE_BYTES).expect("valid layout")
    }
}

impl<T: MapElement> Drop for MapBuffer<T> {
    fn drop(&mut self) {
        let layout = Self::layout(self.len);
        // SAFETY: ptr was allocated with exactly this layout in `zeroed`.
        unsafe { dealloc(self.ptr.cast(), layout) }
    }
}

impl<T: MapElement> Deref for MapBuffer<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: MapElement> DerefMut for MapBuffer<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: MapElement + fmt::Debug> fmt::Debug for MapBuffer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MapBuffer")
            .field("len", &self.len)
            .field("align", &HUGE_PAGE_BYTES)
            .finish()
    }
}

impl<T: MapElement> Clone for MapBuffer<T> {
    fn clone(&self) -> Self {
        let mut out = Self::zeroed(self.len);
        out.as_mut_slice().copy_from_slice(self.as_slice());
        out
    }
}

/// Best-effort request to back `[ptr, ptr+len)` with transparent huge pages.
///
/// A failed or unsupported call is silently ignored: huge pages are an
/// optimization (§IV-E), never a correctness requirement.
#[cfg(target_os = "linux")]
fn advise_huge_pages(ptr: *mut u8, len: usize) {
    if len >= HUGE_PAGE_BYTES {
        // SAFETY: the range [ptr, ptr+len) is a live allocation we own;
        // MADV_HUGEPAGE does not alter memory contents.
        unsafe {
            libc::madvise(ptr.cast(), len, libc::MADV_HUGEPAGE);
        }
    }
}

#[cfg(not(target_os = "linux"))]
fn advise_huge_pages(_ptr: *mut u8, _len: usize) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_all_zero() {
        let buf: MapBuffer<u8> = MapBuffer::zeroed(1 << 16);
        assert!(buf.iter().all(|&b| b == 0));
        assert_eq!(buf.len(), 1 << 16);
        assert!(!buf.is_empty());
    }

    #[test]
    fn filled_sets_sentinel() {
        let buf: MapBuffer<u32> = MapBuffer::filled(1024, u32::MAX);
        assert!(buf.iter().all(|&w| w == u32::MAX));
    }

    #[test]
    fn alignment_is_huge_page() {
        let buf: MapBuffer<u8> = MapBuffer::zeroed(4096);
        assert_eq!(buf.as_ptr() as usize % HUGE_PAGE_BYTES, 0);
    }

    #[test]
    fn deref_and_index() {
        let mut buf: MapBuffer<u8> = MapBuffer::zeroed(64);
        buf[3] = 9;
        assert_eq!(buf[3], 9);
        assert_eq!(buf.iter().filter(|&&b| b != 0).count(), 1);
    }

    #[test]
    fn clone_copies_contents() {
        let mut buf: MapBuffer<u64> = MapBuffer::zeroed(128);
        buf[100] = 0xdead_beef;
        let copy = buf.clone();
        assert_eq!(copy[100], 0xdead_beef);
        assert_eq!(copy.len(), 128);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_length_rejected() {
        let _ = MapBuffer::<u8>::zeroed(0);
    }

    #[test]
    fn large_allocation_works() {
        // The paper's 8 MiB point plus the 32 MiB sweep extreme.
        let buf: MapBuffer<u8> = MapBuffer::zeroed(32 << 20);
        assert_eq!(buf.len(), 32 << 20);
        assert_eq!(buf[32 << 20 >> 1], 0);
    }
}
