//! The global "virgin" coverage state that `compare` diffs against.
//!
//! AFL keeps one global map per outcome class — coverage, crashes, hangs —
//! initialized to all-ones. After classifying a test case's local map, the
//! fuzzer ANDs the inverse into the matching virgin map: any overlap between
//! the local map and the still-virgin bits means the test case produced
//! behaviour never seen before (a brand-new edge, or a new hit-count bucket
//! on a known edge).
//!
//! The virgin map has the same shape as the local map, so under BigMap it is
//! condensed too: location `k` always denotes the same coverage key because
//! the index bitmap is never reset (§IV-B).

use crate::alloc::MapBuffer;
use crate::map_size::MapSize;

/// A virgin map: one byte per coverage slot, `0xFF` = never seen.
///
/// # Examples
///
/// ```rust
/// use bigmap_core::{MapSize, VirginState};
///
/// let virgin = VirginState::new(MapSize::K64);
/// assert_eq!(virgin.discovered_in(virgin.as_slice().len()), 0);
/// ```
#[derive(Debug, Clone)]
pub struct VirginState {
    buf: MapBuffer<u8>,
    size: MapSize,
}

impl VirginState {
    /// Creates an all-virgin (all `0xFF`) map of `size` bytes.
    pub fn new(size: MapSize) -> Self {
        let buf = MapBuffer::filled(size.bytes(), 0xFF);
        VirginState { buf, size }
    }

    /// The logical map size this virgin state was created for.
    #[inline]
    pub fn map_size(&self) -> MapSize {
        self.size
    }

    /// Read-only view of the raw virgin bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        self.buf.as_slice()
    }

    /// Mutable view of the raw virgin bytes (used by the map `compare`
    /// implementations).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        self.buf.as_mut_slice()
    }

    /// Number of slots within the first `region` bytes that have been
    /// discovered (byte != `0xFF`).
    ///
    /// For a flat map pass the full map size; for BigMap pass `used_key`.
    /// Mirrors AFL's `count_non_255_bytes`, which feeds the UI's "map
    /// density" statistic.
    pub fn discovered_in(&self, region: usize) -> usize {
        self.buf[..region.min(self.buf.len())]
            .iter()
            .filter(|&&b| b != 0xFF)
            .count()
    }

    /// Resets every slot to virgin. Used between independent campaigns that
    /// share an allocation.
    pub fn reset(&mut self) {
        self.buf.as_mut_slice().fill(0xFF);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_all_virgin() {
        let v = VirginState::new(MapSize::K64);
        assert!(v.as_slice().iter().all(|&b| b == 0xFF));
        assert_eq!(v.map_size(), MapSize::K64);
        assert_eq!(v.discovered_in(1 << 16), 0);
    }

    #[test]
    fn discovered_counts_non_ff_in_region_only() {
        let mut v = VirginState::new(MapSize::K64);
        v.as_mut_slice()[10] = 0xFE;
        v.as_mut_slice()[100] = 0x00;
        v.as_mut_slice()[50_000] = 0x7F;
        assert_eq!(v.discovered_in(1 << 16), 3);
        assert_eq!(v.discovered_in(1000), 2);
        assert_eq!(v.discovered_in(5), 0);
    }

    #[test]
    fn discovered_region_clamps_to_len() {
        let v = VirginState::new(MapSize::K64);
        assert_eq!(v.discovered_in(usize::MAX), 0);
    }

    #[test]
    fn reset_restores_virginity() {
        let mut v = VirginState::new(MapSize::K64);
        v.as_mut_slice().fill(0);
        v.reset();
        assert_eq!(v.discovered_in(1 << 16), 0);
    }

    #[test]
    fn clone_is_independent() {
        let mut a = VirginState::new(MapSize::K64);
        a.as_mut_slice()[0] = 0;
        let b = a.clone();
        a.as_mut_slice()[1] = 0;
        assert_eq!(b.discovered_in(16), 1);
        assert_eq!(a.discovered_in(16), 2);
    }
}
