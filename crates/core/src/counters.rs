//! Lock-free event counters and wall-time accumulators for runtime
//! telemetry.
//!
//! The fuzzer layer threads a per-instance statistics registry through the
//! campaign loop (see `bigmap-fuzzer::telemetry`); the primitives live here
//! because the same hooks are useful to anything that owns a coverage map.
//! Both types are single writers' worth of cost — one relaxed atomic add —
//! so they can sit directly on the per-test-case path without perturbing
//! the Figure 3 / Figure 6 measurements they exist to observe.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A lock-free monotone event counter.
///
/// Writers use relaxed atomics: counts are statistics, not synchronization
/// edges, and the campaign threads that increment them never contend with
/// anything but the (rare) snapshot reader.
///
/// # Examples
///
/// ```rust
/// use bigmap_core::EventCounter;
///
/// let resets = EventCounter::new();
/// resets.incr();
/// resets.add(4);
/// assert_eq!(resets.get(), 5);
/// ```
#[derive(Debug, Default)]
pub struct EventCounter(AtomicU64);

impl EventCounter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        EventCounter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free wall-time accumulator (nanoseconds).
///
/// The atomic sibling of one [`OpStats`](crate::OpStats) slot: stages add
/// their elapsed [`Duration`]s, observers read a consistent total at any
/// time without stopping the writer.
///
/// # Examples
///
/// ```rust
/// use bigmap_core::StageNanos;
/// use std::time::Duration;
///
/// let clock = StageNanos::new();
/// clock.add(Duration::from_millis(2));
/// clock.add(Duration::from_millis(3));
/// assert_eq!(clock.total(), Duration::from_millis(5));
/// ```
#[derive(Debug, Default)]
pub struct StageNanos(AtomicU64);

impl StageNanos {
    /// Creates an accumulator at zero.
    pub const fn new() -> Self {
        StageNanos(AtomicU64::new(0))
    }

    /// Adds an elapsed duration. Saturates at `u64::MAX` nanoseconds
    /// (~584 years) rather than wrapping.
    #[inline]
    pub fn add(&self, elapsed: Duration) {
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.0.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Accumulated nanoseconds.
    #[inline]
    pub fn nanos(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Accumulated time as a [`Duration`].
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.nanos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_accumulates() {
        let c = EventCounter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn stage_nanos_accumulates() {
        let s = StageNanos::new();
        s.add(Duration::from_nanos(40));
        s.add(Duration::from_nanos(2));
        assert_eq!(s.nanos(), 42);
        assert_eq!(s.total(), Duration::from_nanos(42));
    }

    #[test]
    fn counters_are_shareable_across_threads() {
        let c = Arc::new(EventCounter::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        c.incr();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 4_000);
    }
}
