//! Trace-mode selection for two-speed execution.
//!
//! The campaign can run every test case with full coverage tracing
//! (`always`), run untraced fast execs and re-trace only the ones the
//! novelty oracle flags (`selective`), or let the campaign fall back to
//! direct tracing in windows where selective tracing is re-tracing
//! almost everything anyway (`auto`). The mode is a pure dispatch
//! choice: selective tracing is coverage-preserving by construction
//! (the oracle is strictly conservative), so all three modes produce
//! bit-identical campaign trajectories.

/// Which execution speed(s) the campaign uses per test case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Every exec runs fully traced into the coverage map. The default:
    /// maximum telemetry fidelity, no oracle in the loop.
    #[default]
    Always,
    /// Execs run untraced first; only oracle-flagged ones re-run traced.
    Selective,
    /// Selective, with a deterministic windowed fallback to direct
    /// tracing when recent re-trace rates make the fast pass pure
    /// overhead.
    Auto,
}

impl TraceMode {
    /// The canonical lowercase label (`always` / `selective` / `auto`).
    pub fn label(self) -> &'static str {
        match self {
            TraceMode::Always => "always",
            TraceMode::Selective => "selective",
            TraceMode::Auto => "auto",
        }
    }

    /// Parses a label, case-insensitively. `None` for unknown values.
    pub fn from_label(label: &str) -> Option<Self> {
        match label.to_ascii_lowercase().as_str() {
            "always" => Some(TraceMode::Always),
            "selective" => Some(TraceMode::Selective),
            "auto" => Some(TraceMode::Auto),
            _ => None,
        }
    }

    /// All modes, for exhaustive tests and equivalence sweeps.
    pub const ALL: [TraceMode; 3] = [TraceMode::Always, TraceMode::Selective, TraceMode::Auto];
}

/// Resolves the trace mode from an env override (the raw value of
/// `BIGMAP_TRACE_MODE`, if set). Unknown values warn on stderr and fall
/// back to the default ([`TraceMode::Always`]).
pub fn select_trace_mode(env_override: Option<&str>) -> TraceMode {
    match env_override {
        None => TraceMode::default(),
        Some(raw) => match TraceMode::from_label(raw.trim()) {
            Some(mode) => mode,
            None => {
                eprintln!(
                    "BIGMAP_TRACE_MODE={raw}: unknown mode (expected always|selective|auto), \
                     using always"
                );
                TraceMode::default()
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for mode in TraceMode::ALL {
            assert_eq!(TraceMode::from_label(mode.label()), Some(mode));
        }
        assert_eq!(
            TraceMode::from_label("SELECTIVE"),
            Some(TraceMode::Selective)
        );
        assert_eq!(TraceMode::from_label("fast"), None);
    }

    #[test]
    fn select_falls_back_to_always() {
        assert_eq!(select_trace_mode(None), TraceMode::Always);
        assert_eq!(select_trace_mode(Some("selective")), TraceMode::Selective);
        assert_eq!(select_trace_mode(Some(" Auto ")), TraceMode::Auto);
        assert_eq!(select_trace_mode(Some("bogus")), TraceMode::Always);
    }

    #[test]
    fn default_is_always() {
        assert_eq!(TraceMode::default(), TraceMode::Always);
    }
}
