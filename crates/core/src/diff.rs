//! Word-wise region diffing shared by both map schemes.
//!
//! This is the engine behind the *compare* operation (AFL's
//! `has_new_bits`) and the §IV-E merged *classify + compare*: a single pass
//! over the active region, eight map slots at a time, with a fast skip for
//! all-zero words.

use crate::classify::{bucket_of, classify_word, BUCKET_LUT};
use crate::traits::NewCoverage;

/// Lookahead distance for the journal-walk prefetches: far enough to cover
/// load latency on a cold line, near enough to stay inside the L2 miss
/// queue.
const PREFETCH_AHEAD: usize = 16;

/// Software-prefetches the `cur`/`virgin` bytes a few journal entries
/// ahead. The journal walks are random single-byte accesses over large
/// regions — latency-bound, not bandwidth-bound — so overlapping the misses
/// is where the sparse path's constant factor comes from.
#[inline(always)]
fn prefetch_slot(cur: &[u8], virgin: &[u8], slots: &[u32], i: usize) {
    #[cfg(target_arch = "x86_64")]
    if let Some(&s) = slots.get(i + PREFETCH_AHEAD) {
        // SAFETY: every journal slot is bounds-checked by the caller before
        // the walk starts, so the pointer arithmetic stays in bounds;
        // `_mm_prefetch` itself is a hint with no memory-safety contract.
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch(cur.as_ptr().add(s as usize).cast(), _MM_HINT_T0);
            _mm_prefetch(virgin.as_ptr().add(s as usize).cast(), _MM_HINT_T0);
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (cur, virgin, slots, i);
    }
}

#[inline]
pub(crate) fn diff_byte(cur: u8, virgin: &mut u8, verdict: &mut NewCoverage) {
    if cur != 0 && (cur & *virgin) != 0 {
        let v = if *virgin == 0xFF {
            NewCoverage::NewEdge
        } else {
            NewCoverage::NewBucket
        };
        *verdict = (*verdict).max(v);
        *virgin &= !cur;
    }
}

#[inline]
pub(crate) fn diff_word(cur: u64, virgin: &mut u64, verdict: &mut NewCoverage) {
    if cur != 0 && (cur & *virgin) != 0 {
        if *verdict < NewCoverage::NewEdge {
            // Inspect bytes only when the word-level test fires — the
            // AFL fast path.
            let cur_b = cur.to_ne_bytes();
            let vir_b = virgin.to_ne_bytes();
            for i in 0..8 {
                if cur_b[i] != 0 && (cur_b[i] & vir_b[i]) != 0 {
                    if vir_b[i] == 0xFF {
                        *verdict = NewCoverage::NewEdge;
                        break;
                    }
                    *verdict = (*verdict).max(NewCoverage::NewBucket);
                }
            }
        }
        *virgin &= !cur;
    }
}

/// Diffs an already-classified region against the matching virgin region,
/// clearing the virgin bits now covered. Returns the strongest novelty
/// verdict found.
///
/// # Panics
///
/// Panics if the regions have different lengths.
pub fn compare_region(cur: &[u8], virgin: &mut [u8]) -> NewCoverage {
    assert_eq!(cur.len(), virgin.len(), "region length mismatch");
    let mut verdict = NewCoverage::None;

    // Word-wise processing is cheapest when the two regions share their
    // alignment phase (they always do in practice: both come from
    // huge-page-aligned buffers at offset 0).
    if cur.as_ptr() as usize % 8 == virgin.as_ptr() as usize % 8 {
        let (cur_head, cur_words, cur_tail) = unsafe { cur.align_to::<u64>() };
        let head_len = cur_head.len();
        let words_len = cur_words.len();
        for (i, b) in cur_head.iter().enumerate() {
            diff_byte(*b, &mut virgin[i], &mut verdict);
        }
        let (_, virgin_words, _) = unsafe { virgin[head_len..].align_to_mut::<u64>() };
        for (c, v) in cur_words.iter().zip(virgin_words.iter_mut()) {
            diff_word(*c, v, &mut verdict);
        }
        let base = head_len + words_len * 8;
        for (i, b) in cur_tail.iter().enumerate() {
            diff_byte(*b, &mut virgin[base + i], &mut verdict);
        }
    } else {
        // Mixed alignment phase: align the written side (`virgin`) and read
        // `cur` words unaligned — the interior still moves 8 slots per
        // iteration instead of degrading the whole region to bytes.
        let len = cur.len();
        let head_len = virgin.as_ptr().align_offset(8).min(len);
        for i in 0..head_len {
            diff_byte(cur[i], &mut virgin[i], &mut verdict);
        }
        let words_len = (len - head_len) / 8;
        for w in 0..words_len {
            let base = head_len + w * 8;
            // SAFETY: `base + 8 <= len` by construction of `words_len`;
            // the `cur` read is unaligned, the `virgin` word is 8-aligned
            // by construction of `head_len`.
            unsafe {
                let c = cur.as_ptr().add(base).cast::<u64>().read_unaligned();
                let vp = virgin.as_mut_ptr().add(base).cast::<u64>();
                let mut v = vp.read();
                let before = v;
                diff_word(c, &mut v, &mut verdict);
                if v != before {
                    vp.write(v);
                }
            }
        }
        for i in (head_len + words_len * 8)..len {
            diff_byte(cur[i], &mut virgin[i], &mut verdict);
        }
    }
    verdict
}

/// Merged classify + compare (§IV-E): classifies `cur` in place and diffs it
/// against `virgin` in the same pass.
///
/// Observationally identical to [`crate::classify::classify_slice`] followed
/// by [`compare_region`], but touches each cache line of the region once
/// instead of twice.
///
/// # Panics
///
/// Panics if the regions have different lengths.
pub fn classify_and_compare_region(cur: &mut [u8], virgin: &mut [u8]) -> NewCoverage {
    assert_eq!(cur.len(), virgin.len(), "region length mismatch");
    let mut verdict = NewCoverage::None;

    let cur_ptr = cur.as_ptr() as usize;
    let vir_ptr = virgin.as_ptr() as usize;
    if cur_ptr % 8 == vir_ptr % 8 {
        let (head, words, tail) = unsafe { cur.align_to_mut::<u64>() };
        let head_len = head.len();
        let words_len = words.len();
        for (i, b) in head.iter_mut().enumerate() {
            *b = bucket_of(*b);
            diff_byte(*b, &mut virgin[i], &mut verdict);
        }
        let (_, virgin_words, _) = unsafe { virgin[head_len..].align_to_mut::<u64>() };
        for (c, v) in words.iter_mut().zip(virgin_words.iter_mut()) {
            if *c != 0 {
                *c = classify_word(*c);
                diff_word(*c, v, &mut verdict);
            }
        }
        let base = head_len + words_len * 8;
        for (i, b) in tail.iter_mut().enumerate() {
            *b = bucket_of(*b);
            diff_byte(*b, &mut virgin[base + i], &mut verdict);
        }
    } else {
        // Mixed alignment phase: same interior-word strategy as
        // `compare_region`, with the classified word written back to `cur`.
        let len = cur.len();
        let head_len = virgin.as_ptr().align_offset(8).min(len);
        for i in 0..head_len {
            cur[i] = bucket_of(cur[i]);
            diff_byte(cur[i], &mut virgin[i], &mut verdict);
        }
        let words_len = (len - head_len) / 8;
        for w in 0..words_len {
            let base = head_len + w * 8;
            // SAFETY: `base + 8 <= len` by construction of `words_len`;
            // `cur` accesses are unaligned, the `virgin` word is 8-aligned
            // by construction of `head_len`.
            unsafe {
                let cp = cur.as_mut_ptr().add(base).cast::<u64>();
                let c = cp.read_unaligned();
                if c == 0 {
                    continue;
                }
                let classified = classify_word(c);
                cp.write_unaligned(classified);
                let vp = virgin.as_mut_ptr().add(base).cast::<u64>();
                let mut v = vp.read();
                let before = v;
                diff_word(classified, &mut v, &mut verdict);
                if v != before {
                    vp.write(v);
                }
            }
        }
        for i in (head_len + words_len * 8)..len {
            cur[i] = bucket_of(cur[i]);
            diff_byte(cur[i], &mut virgin[i], &mut verdict);
        }
    }
    verdict
}

/// Journal-driven sparse compare: diffs only the listed condensed slots of
/// an already-classified region against `virgin`.
///
/// Byte-for-byte equivalent to [`compare_region`] — same verdict, same
/// virgin bytes — whenever `slots` covers every nonzero byte of `cur`,
/// which the BigMap touch journal guarantees by construction (untouched
/// slots are zero after reset, and a zero `cur` byte can neither raise a
/// verdict nor clear a virgin bit). This includes the
/// `hash_to_last_nonzero` new-coverage semantics for the crash and hang
/// virgin maps: those maps diff the same classified region through this
/// same entry point, so a first crash/hang still reports `NewEdge` against
/// its own all-0xFF virgin state.
///
/// # Panics
///
/// Panics if the regions have different lengths or any slot index is out
/// of bounds.
pub fn compare_slots(cur: &[u8], virgin: &mut [u8], slots: &[u32]) -> NewCoverage {
    assert_eq!(cur.len(), virgin.len(), "region length mismatch");
    let len = cur.len();
    assert!(
        slots.iter().all(|&s| (s as usize) < len),
        "slot index out of bounds"
    );
    let mut verdict = NewCoverage::None;
    for (i, &s) in slots.iter().enumerate() {
        prefetch_slot(cur, virgin, slots, i);
        // SAFETY: every slot was bounds-checked above.
        unsafe {
            let c = *cur.get_unchecked(s as usize);
            diff_byte(c, virgin.get_unchecked_mut(s as usize), &mut verdict);
        }
    }
    verdict
}

/// Journal-driven sparse merged classify + compare: buckets and diffs only
/// the listed condensed slots.
///
/// Equivalent to [`classify_and_compare_region`] under the journal
/// guarantee (see [`compare_slots`]), with the additional requirement that
/// `slots` is **unique** — classification is not idempotent, so a
/// duplicated slot would be bucketed twice. The touch journal's epoch dedup
/// guarantees uniqueness.
///
/// The classified byte is only stored when it changed, keeping already-
/// classified lines clean in the steady state (same store elision as the
/// dense kernels).
///
/// # Panics
///
/// Panics if the regions have different lengths or any slot index is out
/// of bounds.
pub fn classify_and_compare_slots(cur: &mut [u8], virgin: &mut [u8], slots: &[u32]) -> NewCoverage {
    assert_eq!(cur.len(), virgin.len(), "region length mismatch");
    let len = cur.len();
    assert!(
        slots.iter().all(|&s| (s as usize) < len),
        "slot index out of bounds"
    );
    let mut verdict = NewCoverage::None;
    for (i, &s) in slots.iter().enumerate() {
        prefetch_slot(cur, virgin, slots, i);
        // SAFETY: every slot was bounds-checked above.
        unsafe {
            let p = cur.get_unchecked_mut(s as usize);
            let b = BUCKET_LUT[*p as usize];
            if b != *p {
                *p = b;
            }
            diff_byte(b, virgin.get_unchecked_mut(s as usize), &mut verdict);
        }
    }
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify_slice;
    use proptest::prelude::*;

    #[test]
    fn first_touch_is_new_edge() {
        let cur = vec![0, 1, 0, 0];
        let mut virgin = vec![0xFF; 4];
        assert_eq!(compare_region(&cur, &mut virgin), NewCoverage::NewEdge);
        assert_eq!(virgin, vec![0xFF, 0xFE, 0xFF, 0xFF]);
    }

    #[test]
    fn repeat_touch_is_none() {
        let cur = vec![0, 1, 0, 0];
        let mut virgin = vec![0xFF; 4];
        compare_region(&cur, &mut virgin);
        assert_eq!(compare_region(&cur, &mut virgin), NewCoverage::None);
    }

    #[test]
    fn new_bucket_on_known_slot() {
        let mut virgin = vec![0xFF; 4];
        compare_region(&[0, 1, 0, 0], &mut virgin);
        // Same slot, higher bucket (2): new bucket, not new edge.
        assert_eq!(
            compare_region(&[0, 2, 0, 0], &mut virgin),
            NewCoverage::NewBucket
        );
        // Third time with bucket already cleared: nothing.
        assert_eq!(
            compare_region(&[0, 2, 0, 0], &mut virgin),
            NewCoverage::None
        );
    }

    #[test]
    fn new_edge_dominates_new_bucket() {
        let mut virgin = vec![0xFF; 16];
        compare_region(
            [1; 16][..8]
                .to_vec()
                .iter()
                .map(|_| 0)
                .chain([1u8; 8])
                .collect::<Vec<_>>()
                .as_slice(),
            &mut virgin,
        );
        // slots 8..16 seen with bucket 1. Now bucket 2 on slot 8 (new
        // bucket) plus first touch of slot 0 (new edge): verdict NewEdge.
        let mut cur = vec![0u8; 16];
        cur[8] = 2;
        cur[0] = 1;
        assert_eq!(compare_region(&cur, &mut virgin), NewCoverage::NewEdge);
    }

    #[test]
    fn merged_equals_split() {
        let mut raw = vec![0u8; 256];
        raw[3] = 5;
        raw[64] = 200;
        raw[255] = 1;
        let mut split_cur = raw.clone();
        let mut split_virgin = vec![0xFF; 256];
        classify_slice(&mut split_cur);
        let split_verdict = compare_region(&split_cur, &mut split_virgin);

        let mut merged_cur = raw.clone();
        let mut merged_virgin = vec![0xFF; 256];
        let merged_verdict = classify_and_compare_region(&mut merged_cur, &mut merged_virgin);

        assert_eq!(split_verdict, merged_verdict);
        assert_eq!(split_cur, merged_cur);
        assert_eq!(split_virgin, merged_virgin);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        compare_region(&[0; 4], &mut [0xFF; 8]);
    }

    #[test]
    fn sparse_compare_matches_dense_on_covering_slots() {
        let mut cur = vec![0u8; 64];
        cur[3] = 1;
        cur[40] = 2;
        cur[63] = 128;
        let slots = [3u32, 40, 63, 10]; // 10 is an untouched (zero) slot
        let mut dense_virgin = vec![0xFFu8; 64];
        let mut sparse_virgin = vec![0xFFu8; 64];
        let dense = compare_region(&cur, &mut dense_virgin);
        let sparse = compare_slots(&cur, &mut sparse_virgin, &slots);
        assert_eq!(sparse, dense);
        assert_eq!(sparse_virgin, dense_virgin);
        // Replay: both report None once the virgin bits are cleared.
        assert_eq!(
            compare_slots(&cur, &mut sparse_virgin, &slots),
            NewCoverage::None
        );
    }

    #[test]
    fn sparse_fused_matches_dense_on_covering_slots() {
        let mut raw = vec![0u8; 64];
        raw[0] = 5;
        raw[17] = 200;
        raw[33] = 1;
        let slots = [17u32, 0, 33];
        let mut dense_cur = raw.clone();
        let mut dense_virgin = vec![0xFFu8; 64];
        let dense = classify_and_compare_region(&mut dense_cur, &mut dense_virgin);
        let mut sparse_cur = raw;
        let mut sparse_virgin = vec![0xFFu8; 64];
        let sparse = classify_and_compare_slots(&mut sparse_cur, &mut sparse_virgin, &slots);
        assert_eq!(sparse, dense);
        assert_eq!(sparse_cur, dense_cur);
        assert_eq!(sparse_virgin, dense_virgin);
    }

    #[test]
    #[should_panic(expected = "slot index out of bounds")]
    fn sparse_compare_rejects_out_of_bounds_slot() {
        compare_slots(&[0; 8], &mut [0xFF; 8], &[8]);
    }

    #[test]
    fn mixed_alignment_phase_matches_bytewise_model() {
        // Slice the two regions at every pair of distinct offsets so the
        // mixed-phase (word-wise interior over unaligned `cur`) path runs,
        // and check verdict + virgin + classified bytes against a plain
        // byte loop.
        let len = 200;
        let mut raw = vec![0u8; len + 8];
        for (i, b) in raw.iter_mut().enumerate() {
            *b = if i % 5 == 0 { (i % 250) as u8 } else { 0 };
        }
        for cur_off in 0..8usize {
            for vir_off in 0..8usize {
                let mut cur_buf = vec![0u8; len + 8];
                cur_buf[cur_off..cur_off + len].copy_from_slice(&raw[..len]);
                let mut vir_buf = vec![0u8; len + 8];
                for (i, v) in vir_buf.iter_mut().enumerate() {
                    *v = if i % 3 == 0 { 0xFF } else { (i % 251) as u8 };
                }

                // Byte-wise model.
                let mut model_cur: Vec<u8> = cur_buf[cur_off..cur_off + len].to_vec();
                let mut model_vir: Vec<u8> = vir_buf[vir_off..vir_off + len].to_vec();
                let mut model = NewCoverage::None;
                for i in 0..len {
                    model_cur[i] = bucket_of(model_cur[i]);
                    diff_byte(model_cur[i], &mut model_vir[i], &mut model);
                }

                let got = classify_and_compare_region(
                    &mut cur_buf[cur_off..cur_off + len],
                    &mut vir_buf[vir_off..vir_off + len],
                );
                assert_eq!(got, model, "offsets ({cur_off},{vir_off})");
                assert_eq!(
                    &cur_buf[cur_off..cur_off + len],
                    &model_cur[..],
                    "classified bytes at offsets ({cur_off},{vir_off})"
                );
                assert_eq!(
                    &vir_buf[vir_off..vir_off + len],
                    &model_vir[..],
                    "virgin bytes at offsets ({cur_off},{vir_off})"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn merged_equals_split_prop(
            raw in prop::collection::vec(any::<u8>(), 0..300),
            prior in prop::collection::vec(any::<u8>(), 0..300),
        ) {
            // Build a virgin state with some history: classify `prior` and
            // fold it in first, so virgin bytes are a realistic mix.
            let n = raw.len().min(prior.len());
            let raw = &raw[..n];
            let mut virgin_a = vec![0xFFu8; n];
            let mut virgin_b = vec![0xFFu8; n];
            let mut prior_c = prior[..n].to_vec();
            classify_slice(&mut prior_c);
            compare_region(&prior_c, &mut virgin_a);
            compare_region(&prior_c, &mut virgin_b);

            let mut split_cur = raw.to_vec();
            classify_slice(&mut split_cur);
            let split = compare_region(&split_cur, &mut virgin_a);

            let mut merged_cur = raw.to_vec();
            let merged = classify_and_compare_region(&mut merged_cur, &mut virgin_b);

            prop_assert_eq!(split, merged);
            prop_assert_eq!(split_cur, merged_cur);
            prop_assert_eq!(virgin_a, virgin_b);
        }

        #[test]
        fn compare_agrees_with_bytewise_model(
            cur in prop::collection::vec(any::<u8>(), 0..300),
            virgin_seed in prop::collection::vec(any::<u8>(), 0..300),
        ) {
            let n = cur.len().min(virgin_seed.len());
            let cur = &cur[..n];
            let mut virgin = virgin_seed[..n].to_vec();
            let mut model_virgin = virgin.clone();

            // Reference model: plain byte loop.
            let mut model = NewCoverage::None;
            for i in 0..n {
                let c = cur[i];
                if c != 0 && (c & model_virgin[i]) != 0 {
                    let v = if model_virgin[i] == 0xFF {
                        NewCoverage::NewEdge
                    } else {
                        NewCoverage::NewBucket
                    };
                    model = model.max(v);
                    model_virgin[i] &= !c;
                }
            }

            let got = compare_region(cur, &mut virgin);
            prop_assert_eq!(got, model);
            prop_assert_eq!(virgin, model_virgin);
        }
    }
}
