//! The `BIGMAP_*` environment knobs, in one place.
//!
//! Every runtime tunable the workspace reads from the environment is
//! declared here as a [`Knob`]: its name, accepted values, default and
//! one-line description. The typed accessors ([`kernel_request`],
//! [`sparse_request`], [`trace_request`], [`interp_request`],
//! [`nt_threshold_request`], [`huge_request`], [`numa_request`],
//! [`sync_batch`], [`fabric_worker`], [`ckpt_keep`], [`heartbeat_ms`],
//! [`liveness_deadline_ms`]) parse and validate in one pass and are the only
//! code in the workspace that calls `std::env::var` for a `BIGMAP_*`
//! name, so the registry cannot drift from the behaviour.
//!
//! Two consequences of centralizing:
//!
//! * The README's knob table is **generated** from the registry
//!   ([`markdown_table`]) and a facade test asserts the README contains
//!   it verbatim — documentation cannot go stale.
//! * The first knob read scans the process environment for `BIGMAP_*`
//!   names the registry does not know and warns once per process
//!   ([`warn_unrecognized_once`]) — a typo like `BIGMAP_KERNAL=avx2`
//!   surfaces immediately instead of silently doing nothing.
//!
//! # Examples
//!
//! ```rust
//! use bigmap_core::env;
//!
//! // The registry knows every knob and renders the README table.
//! assert!(env::KNOBS.iter().any(|k| k.name == "BIGMAP_KERNEL"));
//! let table = env::markdown_table();
//! assert!(table.contains("`BIGMAP_SPARSE`"));
//! ```

use std::sync::OnceLock;

use crate::alloc::{HugePolicy, NumaPolicy};
use crate::interp::InterpMode;
use crate::kernels::KernelKind;
use crate::sparse::SparseMode;
use crate::trace::TraceMode;

/// One documented environment knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Knob {
    /// The environment variable name.
    pub name: &'static str,
    /// Accepted values, human-readable.
    pub values: &'static str,
    /// The effective default when unset.
    pub default: &'static str,
    /// One-line description (README table cell).
    pub description: &'static str,
}

/// Every `BIGMAP_*` knob the workspace reads, in documentation order.
pub const KNOBS: &[Knob] = &[
    Knob {
        name: "BIGMAP_KERNEL",
        values: "`scalar` \\| `sse2` \\| `avx2`",
        default: "widest CPU-supported",
        description: "Pins the map-op kernel table (classify / compare / fused) for the whole \
                      process; unsupported values warn and fall back to detection.",
    },
    Knob {
        name: "BIGMAP_SPARSE",
        values: "`on` \\| `off` \\| `auto`",
        default: "`auto`",
        description: "Sparse touched-slot pipeline: `on` forces the journal walk whenever the \
                      journal is complete, `off` forces the dense prefix kernels, `auto` picks \
                      per exec by the measured run/touched crossover.",
    },
    Knob {
        name: "BIGMAP_TRACE_MODE",
        values: "`always` \\| `selective` \\| `auto`",
        default: "`always`",
        description: "Two-speed execution: `always` traces every exec into the coverage map, \
                      `selective` runs untraced fast execs and re-traces only novelty-oracle \
                      flagged ones, `auto` adds a fallback to direct tracing in re-trace-heavy \
                      windows. All modes produce bit-identical campaign trajectories.",
    },
    Knob {
        name: "BIGMAP_INTERP",
        values: "`tree` \\| `compiled` \\| `auto`",
        default: "`auto`",
        description: "Target execution engine: `tree` walks the CFG IR, `compiled` runs the \
                      flattened threaded bytecode, `auto` adds snapshot resets that resume \
                      mutated children from the scheduled parent's memoized trace prefix. All \
                      modes produce bit-identical campaign trajectories.",
    },
    Knob {
        name: "BIGMAP_NT_THRESHOLD",
        values: "bytes (integer)",
        default: "`262144`",
        description: "Streaming-store cutoff for zeroing: buffers at or below this use a plain \
                      cached `fill(0)`, larger ones use non-temporal stores.",
    },
    Knob {
        name: "BIGMAP_HUGE",
        values: "`explicit` \\| `thp` \\| `off`",
        default: "`thp`",
        description: "Map-buffer page backend: `explicit` reserves hugetlbfs pages via \
                      `mmap(MAP_HUGETLB)` (1 GiB pages where the size allows, else 2 MiB) and \
                      falls back to `thp` with a telemetry-visible record when the pool is \
                      empty; `thp` advises transparent huge pages; `off` opts out of THP — the \
                      benchmark control arm.",
    },
    Knob {
        name: "BIGMAP_NUMA",
        values: "`auto` \\| `off` \\| `node:<n>`",
        default: "`auto`",
        description: "NUMA placement for worker maps: `auto` spreads workers round-robin \
                      across nodes (pinning each thread so first-touch lands its maps \
                      locally; a no-op on single-node hosts), `node:<n>` pins every worker to \
                      one node, `off` leaves kernel first-touch untouched. Refused syscalls \
                      degrade to unpinned execution, never an error.",
    },
    Knob {
        name: "BIGMAP_SYNC_BATCH",
        values: "entries (integer ≥ 1)",
        default: "`64`",
        description: "Max corpus entries coalesced into one wire frame by the process-fleet \
                      sync client; publishes larger than this are split across frames.",
    },
    Knob {
        name: "BIGMAP_FABRIC_WORKER",
        values: "`<index>/<count>`",
        default: "unset",
        description: "Internal handshake set by the fleet parent on its child processes; a \
                      host binary that sees it assumes the worker role. Not for manual use.",
    },
    Knob {
        name: "BIGMAP_CKPT_KEEP",
        values: "generations (integer ≥ 1)",
        default: "`3`",
        description: "Checkpoint generations retained per instance (`checkpoint`, \
                      `checkpoint.1`, …); restore falls back to the newest generation whose \
                      section checksums verify.",
    },
    Knob {
        name: "BIGMAP_HEARTBEAT_MS",
        values: "milliseconds (integer, `0` disables)",
        default: "`500`",
        description: "Cadence at which fleet workers emit `HEARTBEAT` frames carrying their \
                      exec counter, so the parent can tell a hung worker from a slow one.",
    },
    Knob {
        name: "BIGMAP_LIVENESS_DEADLINE_MS",
        values: "milliseconds (integer, `0` disables)",
        default: "`30000`",
        description: "Max time the fleet parent tolerates a worker making no progress (no \
                      frames, or heartbeats with a frozen exec counter) before killing and \
                      restarting it through the supervisor path.",
    },
];

/// Looks a knob up by name.
pub fn knob(name: &str) -> Option<&'static Knob> {
    KNOBS.iter().find(|k| k.name == name)
}

/// Renders the registry as the README's GitHub-flavored markdown table.
pub fn markdown_table() -> String {
    let mut out = String::from("| Variable | Values | Default | Effect |\n|---|---|---|---|\n");
    for knob in KNOBS {
        out.push_str(&format!(
            "| `{}` | {} | {} | {} |\n",
            knob.name, knob.values, knob.default, knob.description
        ));
    }
    out
}

/// Scans the environment for `BIGMAP_*` names the registry does not
/// declare and warns on stderr — once per process, on the first knob
/// read. Returns the unrecognized names (empty almost always).
pub fn warn_unrecognized_once() -> &'static [String] {
    static UNRECOGNIZED: OnceLock<Vec<String>> = OnceLock::new();
    UNRECOGNIZED.get_or_init(|| {
        let mut unknown: Vec<String> = std::env::vars_os()
            .filter_map(|(name, _)| name.into_string().ok())
            .filter(|name| name.starts_with("BIGMAP_") && knob(name).is_none())
            .collect();
        unknown.sort();
        for name in &unknown {
            eprintln!(
                "bigmap: unrecognized environment knob {name} (known: {}); ignoring it",
                KNOBS.iter().map(|k| k.name).collect::<Vec<_>>().join(", ")
            );
        }
        unknown
    })
}

/// Reads a declared knob's raw value, triggering the one-time
/// unrecognized-name scan.
///
/// # Panics
///
/// Panics if `name` is not in [`KNOBS`] — reading an undeclared knob is
/// a bug in this crate, not a user error.
pub fn raw(name: &str) -> Option<String> {
    assert!(knob(name).is_some(), "undeclared BIGMAP knob {name}");
    warn_unrecognized_once();
    std::env::var(name).ok()
}

/// `BIGMAP_KERNEL`: the requested kernel kind, if set and well-formed.
///
/// Unknown values warn on stderr and read as `None` (auto-detection).
/// CPU-support validation stays with the kernel dispatcher, which knows
/// what the host supports.
pub fn kernel_request() -> Option<KernelKind> {
    parse_kernel(raw("BIGMAP_KERNEL").as_deref())
}

/// The pure parse policy behind [`kernel_request`] (`None` = unset), so
/// tests can cover it without touching the process environment.
pub fn parse_kernel(raw: Option<&str>) -> Option<KernelKind> {
    let raw = raw?;
    match KernelKind::from_label(raw.trim()) {
        Some(kind) => Some(kind),
        None => {
            eprintln!(
                "BIGMAP_KERNEL={raw}: unknown kernel (expected scalar|sse2|avx2), \
                 falling back to auto-detection"
            );
            None
        }
    }
}

/// `BIGMAP_SPARSE`: the requested sparse dispatch mode.
///
/// Unknown values warn on stderr and read as [`SparseMode::Auto`]; the
/// parse policy itself lives in [`crate::sparse::select_mode`].
pub fn sparse_request() -> SparseMode {
    crate::sparse::select_mode(raw("BIGMAP_SPARSE").as_deref())
}

/// `BIGMAP_TRACE_MODE`: the requested two-speed execution mode.
///
/// Unknown values warn on stderr and read as [`TraceMode::Always`]; the
/// parse policy itself lives in [`crate::trace::select_trace_mode`].
pub fn trace_request() -> TraceMode {
    crate::trace::select_trace_mode(raw("BIGMAP_TRACE_MODE").as_deref())
}

/// `BIGMAP_INTERP`: the requested target execution engine.
///
/// Unknown values warn on stderr and read as [`InterpMode::Auto`]; the
/// parse policy itself lives in [`crate::interp::select_interp_mode`].
pub fn interp_request() -> InterpMode {
    crate::interp::select_interp_mode(raw("BIGMAP_INTERP").as_deref())
}

/// `BIGMAP_NT_THRESHOLD`: the requested non-temporal-store cutoff in
/// bytes, if set and parseable. Malformed values warn and read as `None`
/// (keep the measured default).
pub fn nt_threshold_request() -> Option<usize> {
    let raw = raw("BIGMAP_NT_THRESHOLD")?;
    match raw.trim().parse::<usize>() {
        Ok(bytes) => Some(bytes),
        Err(_) => {
            eprintln!("BIGMAP_NT_THRESHOLD={raw}: not a byte count, using default");
            None
        }
    }
}

/// `BIGMAP_HUGE`: the requested map-buffer page backend.
///
/// Unknown values warn on stderr and read as [`HugePolicy::Thp`]; the
/// parse policy itself lives in [`crate::alloc::parse_huge`].
pub fn huge_request() -> HugePolicy {
    crate::alloc::parse_huge(raw("BIGMAP_HUGE").as_deref())
}

/// `BIGMAP_NUMA`: the requested NUMA placement policy.
///
/// Unknown values warn on stderr and read as [`NumaPolicy::Auto`]; the
/// parse policy itself lives in [`crate::alloc::parse_numa`].
pub fn numa_request() -> NumaPolicy {
    crate::alloc::parse_numa(raw("BIGMAP_NUMA").as_deref())
}

/// Default for [`sync_batch`].
pub const SYNC_BATCH_DEFAULT: usize = 64;

/// `BIGMAP_SYNC_BATCH`: max corpus entries per sync wire frame.
/// Malformed or zero values warn and read as the default.
pub fn sync_batch() -> usize {
    match raw("BIGMAP_SYNC_BATCH") {
        None => SYNC_BATCH_DEFAULT,
        Some(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!(
                    "BIGMAP_SYNC_BATCH={raw}: expected an integer ≥ 1, \
                     using {SYNC_BATCH_DEFAULT}"
                );
                SYNC_BATCH_DEFAULT
            }
        },
    }
}

/// `BIGMAP_FABRIC_WORKER`: the `(index, count)` worker handshake, if this
/// process was spawned as a fleet worker. Malformed values (wrong shape,
/// `index >= count`, zero count) warn and read as `None` — the process
/// then runs its normal (parent) role rather than a half-configured
/// worker.
pub fn fabric_worker() -> Option<(usize, usize)> {
    let raw = raw("BIGMAP_FABRIC_WORKER")?;
    let parsed = raw.trim().split_once('/').and_then(|(index, count)| {
        let index = index.trim().parse::<usize>().ok()?;
        let count = count.trim().parse::<usize>().ok()?;
        (index < count).then_some((index, count))
    });
    if parsed.is_none() {
        eprintln!(
            "BIGMAP_FABRIC_WORKER={raw}: expected <index>/<count> with index < count; \
             ignoring (running as a normal process)"
        );
    }
    parsed
}

/// Default for [`ckpt_keep`].
pub const CKPT_KEEP_DEFAULT: usize = 3;

/// `BIGMAP_CKPT_KEEP`: how many checkpoint generations to retain.
/// Malformed or zero values warn and read as the default.
pub fn ckpt_keep() -> usize {
    match raw("BIGMAP_CKPT_KEEP") {
        None => CKPT_KEEP_DEFAULT,
        Some(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!(
                    "BIGMAP_CKPT_KEEP={raw}: expected an integer ≥ 1, \
                     using {CKPT_KEEP_DEFAULT}"
                );
                CKPT_KEEP_DEFAULT
            }
        },
    }
}

/// Default for [`heartbeat_ms`].
pub const HEARTBEAT_MS_DEFAULT: u64 = 500;

/// `BIGMAP_HEARTBEAT_MS`: worker heartbeat cadence in milliseconds;
/// `0` disables the heartbeat thread. Malformed values warn and read as
/// the default.
pub fn heartbeat_ms() -> u64 {
    millis_knob("BIGMAP_HEARTBEAT_MS", HEARTBEAT_MS_DEFAULT)
}

/// Default for [`liveness_deadline_ms`].
pub const LIVENESS_DEADLINE_MS_DEFAULT: u64 = 30_000;

/// `BIGMAP_LIVENESS_DEADLINE_MS`: fleet-parent no-progress deadline in
/// milliseconds; `0` disables liveness enforcement. Malformed values
/// warn and read as the default.
pub fn liveness_deadline_ms() -> u64 {
    millis_knob("BIGMAP_LIVENESS_DEADLINE_MS", LIVENESS_DEADLINE_MS_DEFAULT)
}

fn millis_knob(name: &str, default: u64) -> u64 {
    match raw(name) {
        None => default,
        Some(raw) => match raw.trim().parse::<u64>() {
            Ok(ms) => ms,
            Err(_) => {
                eprintln!("{name}={raw}: expected milliseconds (integer), using {default}");
                default
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_prefixed() {
        let mut names: Vec<&str> = KNOBS.iter().map(|k| k.name).collect();
        names.sort_unstable();
        let len = names.len();
        names.dedup();
        assert_eq!(names.len(), len, "duplicate knob names");
        assert!(names.iter().all(|n| n.starts_with("BIGMAP_")));
    }

    #[test]
    fn lookup_finds_declared_knobs_only() {
        assert!(knob("BIGMAP_KERNEL").is_some());
        assert!(knob("BIGMAP_SPARSE").is_some());
        assert!(knob("BIGMAP_KERNAL").is_none());
    }

    #[test]
    fn markdown_table_lists_every_knob() {
        let table = markdown_table();
        for knob in KNOBS {
            assert!(
                table.contains(&format!("`{}`", knob.name)),
                "{} missing from the table",
                knob.name
            );
        }
        // Header plus one row per knob.
        assert_eq!(table.lines().count(), 2 + KNOBS.len());
    }

    #[test]
    #[should_panic(expected = "undeclared BIGMAP knob")]
    fn raw_rejects_undeclared_names() {
        let _ = raw("BIGMAP_NOT_A_KNOB");
    }

    // The typed accessors read the live process environment; tests cover
    // the unset path only (setting env vars in a threaded test binary is
    // racy). The parse policies are covered through their pure `select`
    // counterparts in `kernels`/`sparse` and the fabric handshake tests.
    #[test]
    fn unset_knobs_read_as_defaults() {
        // The test environment does not set these (CI pins happen in
        // dedicated jobs that only run the equivalence suites).
        if std::env::var_os("BIGMAP_SYNC_BATCH").is_none() {
            assert_eq!(sync_batch(), SYNC_BATCH_DEFAULT);
        }
        if std::env::var_os("BIGMAP_FABRIC_WORKER").is_none() {
            assert_eq!(fabric_worker(), None);
        }
        if std::env::var_os("BIGMAP_TRACE_MODE").is_none() {
            assert_eq!(trace_request(), TraceMode::Always);
        }
        if std::env::var_os("BIGMAP_INTERP").is_none() {
            assert_eq!(interp_request(), InterpMode::Auto);
        }
        if std::env::var_os("BIGMAP_HUGE").is_none() {
            assert_eq!(huge_request(), HugePolicy::Thp);
        }
        if std::env::var_os("BIGMAP_NUMA").is_none() {
            assert_eq!(numa_request(), NumaPolicy::Auto);
        }
        if std::env::var_os("BIGMAP_CKPT_KEEP").is_none() {
            assert_eq!(ckpt_keep(), CKPT_KEEP_DEFAULT);
        }
        if std::env::var_os("BIGMAP_HEARTBEAT_MS").is_none() {
            assert_eq!(heartbeat_ms(), HEARTBEAT_MS_DEFAULT);
        }
        if std::env::var_os("BIGMAP_LIVENESS_DEADLINE_MS").is_none() {
            assert_eq!(liveness_deadline_ms(), LIVENESS_DEADLINE_MS_DEFAULT);
        }
    }

    #[test]
    fn unrecognized_scan_is_stable() {
        // Whatever it returns, it returns the same slice forever after.
        let first = warn_unrecognized_once();
        let second = warn_unrecognized_once();
        assert_eq!(first.as_ptr(), second.as_ptr());
    }
}
