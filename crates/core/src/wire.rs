//! Versioned binary wire format for crossing process boundaries.
//!
//! The in-memory sync hub hands `Arc<[u8]>` payloads between threads for
//! free; a process-level fleet has to serialize them. This module defines
//! the compact framing the fabric speaks and the batch codec for corpus
//! sync entries. Everything here is **fuzz-resistant by construction**:
//! decoding arbitrary bytes returns a typed [`WireError`], never panics,
//! and never allocates more than the declared (and capped) sizes.
//!
//! # Framing
//!
//! ```text
//! +------+---------+------+----------------------+-------------+----------+
//! | 0xB6 | version | kind | payload_len (varint) |   payload   | crc32 LE |
//! +------+---------+------+----------------------+-------------+----------+
//!   1 B      1 B     1 B        1–5 B              payload_len      4 B
//! ```
//!
//! * `0xB6` is the frame magic ("B6" ≈ BigMap). A stream that does not
//!   start with it is rejected immediately ([`WireError::BadMagic`]).
//! * `version` is [`WIRE_VERSION`]. Readers reject newer versions
//!   ([`WireError::BadVersion`]) rather than guessing at semantics;
//!   bumping the version is the upgrade path for incompatible layouts.
//! * `kind` tags the payload so one duplex pipe can carry the whole
//!   fabric protocol. Kinds are defined by the transport layer; the
//!   framing does not interpret them.
//! * `payload_len` is an unsigned LEB128 varint, capped at
//!   [`MAX_FRAME_PAYLOAD`] so a corrupt length byte cannot OOM the reader.
//! * `crc32` (little-endian, zlib polynomial — the crate's [`Crc32`])
//!   covers `kind` and `payload`, catching corruption the length field
//!   lets through.
//!
//! # Sync batches
//!
//! [`encode_sync_batch`] / [`decode_sync_batch`] serialize a cursor plus
//! a list of `(publisher, input)` corpus entries:
//!
//! ```text
//! varint cursor | varint count | count × (varint publisher | varint len | bytes)
//! ```
//!
//! Cursors are `u64` on the wire regardless of the host's pointer width,
//! so a 32-bit worker and a 64-bit parent agree on corpus positions.
//!
//! # Examples
//!
//! ```rust
//! use bigmap_core::wire;
//!
//! let payload = wire::encode_sync_batch(7, &[(0, b"seed"), (2, b"find")]);
//! let frame = wire::encode_frame(3, &payload);
//! let (kind, decoded, used) = wire::decode_frame(&frame).unwrap();
//! assert_eq!((kind, used), (3, frame.len()));
//! let batch = wire::decode_sync_batch(&decoded).unwrap();
//! assert_eq!(batch.cursor, 7);
//! assert_eq!(batch.entries[1], (2, b"find".to_vec()));
//!
//! // Corruption is detected, never trusted.
//! let mut bad = frame.clone();
//! *bad.last_mut().unwrap() ^= 0xFF;
//! assert_eq!(wire::decode_frame(&bad), Err(wire::WireError::BadChecksum));
//! ```

use std::io::{self, Read, Write};

use crate::hash::Crc32;

/// Current wire format version. Readers reject frames with any other
/// version; incompatible layout changes must bump this.
pub const WIRE_VERSION: u8 = 1;

/// First byte of every frame.
pub const FRAME_MAGIC: u8 = 0xB6;

/// Upper bound on a frame payload (32 MiB). A declared length above this
/// is rejected before any allocation, so corrupt or hostile length fields
/// cannot exhaust memory.
pub const MAX_FRAME_PAYLOAD: usize = 32 << 20;

/// Decode failure. Every variant is a rejection — decoding never panics
/// on malformed input and never partially applies a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer or stream ended cleanly before a frame started.
    Eof,
    /// The first byte was not [`FRAME_MAGIC`].
    BadMagic(u8),
    /// The frame declared a version this reader does not speak.
    BadVersion(u8),
    /// The checksum did not match the received `kind` + payload.
    BadChecksum,
    /// The declared payload length exceeds [`MAX_FRAME_PAYLOAD`].
    Oversize(u64),
    /// A varint ran past 10 bytes (more than 64 bits of payload).
    VarintOverflow,
    /// The frame or batch ended mid-field.
    Truncated,
    /// A batch payload decoded cleanly but left unconsumed bytes behind.
    TrailingBytes,
    /// The underlying stream failed with this I/O error kind.
    Io(io::ErrorKind),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Eof => write!(f, "end of stream before a frame"),
            WireError::BadMagic(byte) => {
                write!(
                    f,
                    "bad frame magic {byte:#04x} (expected {FRAME_MAGIC:#04x})"
                )
            }
            WireError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported wire version {v} (this reader speaks {WIRE_VERSION})"
                )
            }
            WireError::BadChecksum => write!(f, "frame checksum mismatch"),
            WireError::Oversize(len) => write!(
                f,
                "declared payload of {len} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte cap"
            ),
            WireError::VarintOverflow => write!(f, "varint longer than 64 bits"),
            WireError::Truncated => write!(f, "frame truncated mid-field"),
            WireError::TrailingBytes => write!(f, "trailing bytes after a complete batch"),
            WireError::Io(kind) => write!(f, "stream error: {kind}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(err: io::Error) -> WireError {
        if err.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(err.kind())
        }
    }
}

/// Appends `value` to `out` as an unsigned LEB128 varint (1–10 bytes).
pub fn put_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint from the front of `buf`, returning the
/// value and the bytes consumed.
pub fn get_varint(buf: &[u8]) -> Result<(u64, usize), WireError> {
    let mut value = 0u64;
    for (i, &byte) in buf.iter().enumerate().take(10) {
        let chunk = u64::from(byte & 0x7F);
        // The 10th byte may only carry the top bit of a u64.
        if i == 9 && byte > 0x01 {
            return Err(WireError::VarintOverflow);
        }
        value |= chunk << (7 * i);
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
    }
    if buf.len() >= 10 {
        Err(WireError::VarintOverflow)
    } else {
        Err(WireError::Truncated)
    }
}

/// Encodes one frame: magic, version, `kind`, varint length, payload,
/// CRC32 over `kind` + payload.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_FRAME_PAYLOAD`] — encoding an
/// oversize frame is a caller bug (decoders would reject it anyway).
pub fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_FRAME_PAYLOAD,
        "frame payload of {} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte cap",
        payload.len()
    );
    let mut out = Vec::with_capacity(payload.len() + 16);
    out.push(FRAME_MAGIC);
    out.push(WIRE_VERSION);
    out.push(kind);
    put_varint(&mut out, payload.len() as u64);
    out.extend_from_slice(payload);
    let mut crc = Crc32::new();
    crc.update(&[kind]);
    crc.update(payload);
    out.extend_from_slice(&crc.finalize().to_le_bytes());
    out
}

/// Decodes one frame from the front of `buf`, returning `(kind, payload,
/// bytes_consumed)`. Bytes after the frame are left for the caller —
/// streams concatenate frames back to back.
pub fn decode_frame(buf: &[u8]) -> Result<(u8, Vec<u8>, usize), WireError> {
    if buf.is_empty() {
        return Err(WireError::Eof);
    }
    if buf[0] != FRAME_MAGIC {
        return Err(WireError::BadMagic(buf[0]));
    }
    if buf.len() < 3 {
        return Err(WireError::Truncated);
    }
    if buf[1] != WIRE_VERSION {
        return Err(WireError::BadVersion(buf[1]));
    }
    let kind = buf[2];
    let (declared, len_bytes) = get_varint(&buf[3..])?;
    if declared > MAX_FRAME_PAYLOAD as u64 {
        return Err(WireError::Oversize(declared));
    }
    let payload_at = 3 + len_bytes;
    let crc_at = payload_at + declared as usize;
    if buf.len() < crc_at + 4 {
        return Err(WireError::Truncated);
    }
    let payload = &buf[payload_at..crc_at];
    let mut crc = Crc32::new();
    crc.update(&[kind]);
    crc.update(payload);
    let received = u32::from_le_bytes(buf[crc_at..crc_at + 4].try_into().unwrap());
    if crc.finalize() != received {
        return Err(WireError::BadChecksum);
    }
    Ok((kind, payload.to_vec(), crc_at + 4))
}

/// Writes one frame to a stream. Blocking writes on a full pipe are the
/// fabric's backpressure mechanism — this function does not buffer.
pub fn write_frame(writer: &mut impl Write, kind: u8, payload: &[u8]) -> io::Result<()> {
    writer.write_all(&encode_frame(kind, payload))?;
    writer.flush()
}

/// Reads one frame from a stream, returning `(kind, payload)`.
///
/// A clean EOF *before* the magic byte returns [`WireError::Eof`] (the
/// peer closed between frames); EOF anywhere later is
/// [`WireError::Truncated`]. Validation mirrors [`decode_frame`].
pub fn read_frame(reader: &mut impl Read) -> Result<(u8, Vec<u8>), WireError> {
    let mut header = [0u8; 3];
    match reader.read(&mut header[..1]) {
        Ok(0) => return Err(WireError::Eof),
        Ok(_) => {}
        Err(err) => return Err(err.into()),
    }
    if header[0] != FRAME_MAGIC {
        return Err(WireError::BadMagic(header[0]));
    }
    reader.read_exact(&mut header[1..])?;
    if header[1] != WIRE_VERSION {
        return Err(WireError::BadVersion(header[1]));
    }
    let kind = header[2];

    // Varint length, one byte at a time off the stream.
    let mut len_bytes = Vec::with_capacity(5);
    let declared = loop {
        let mut byte = [0u8; 1];
        reader.read_exact(&mut byte)?;
        len_bytes.push(byte[0]);
        if byte[0] & 0x80 == 0 {
            break get_varint(&len_bytes)?.0;
        }
        if len_bytes.len() == 10 {
            return Err(WireError::VarintOverflow);
        }
    };
    if declared > MAX_FRAME_PAYLOAD as u64 {
        return Err(WireError::Oversize(declared));
    }

    let mut payload = vec![0u8; declared as usize];
    reader.read_exact(&mut payload)?;
    let mut crc_buf = [0u8; 4];
    reader.read_exact(&mut crc_buf)?;
    let mut crc = Crc32::new();
    crc.update(&[kind]);
    crc.update(&payload);
    if crc.finalize() != u32::from_le_bytes(crc_buf) {
        return Err(WireError::BadChecksum);
    }
    Ok((kind, payload))
}

/// A decoded corpus sync batch: the hub cursor the batch brings the
/// reader up to, plus `(publisher, input)` entries in publish order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncBatch {
    /// Hub cursor after applying this batch.
    pub cursor: u64,
    /// Corpus entries as `(publisher id, input bytes)`.
    pub entries: Vec<(u64, Vec<u8>)>,
}

/// Serializes a sync batch payload (framing is separate — see
/// [`encode_frame`]).
pub fn encode_sync_batch(cursor: u64, entries: &[(u64, &[u8])]) -> Vec<u8> {
    let body: usize = entries.iter().map(|(_, input)| input.len() + 12).sum();
    let mut out = Vec::with_capacity(body + 12);
    put_varint(&mut out, cursor);
    put_varint(&mut out, entries.len() as u64);
    for (publisher, input) in entries {
        put_varint(&mut out, *publisher);
        put_varint(&mut out, input.len() as u64);
        out.extend_from_slice(input);
    }
    out
}

/// Deserializes a sync batch payload. The payload must be exactly one
/// batch: unconsumed bytes are [`WireError::TrailingBytes`], counts and
/// lengths that overrun the buffer are [`WireError::Truncated`] — checked
/// against the real buffer size before allocating, so a hostile count
/// cannot reserve unbounded memory.
pub fn decode_sync_batch(payload: &[u8]) -> Result<SyncBatch, WireError> {
    let (cursor, mut at) = get_varint(payload)?;
    let (count, used) = get_varint(&payload[at..])?;
    at += used;
    // Each entry costs at least 2 bytes (publisher varint + length varint),
    // so a count beyond the remaining bytes / 2 is corrupt regardless of
    // content — reject before reserving.
    if count > ((payload.len() - at) / 2 + 1) as u64 {
        return Err(WireError::Truncated);
    }
    let mut entries = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let (publisher, used) = get_varint(&payload[at..])?;
        at += used;
        let (len, used) = get_varint(&payload[at..])?;
        at += used;
        let end = at
            .checked_add(len as usize)
            .filter(|&end| end <= payload.len())
            .ok_or(WireError::Truncated)?;
        entries.push((publisher, payload[at..end].to_vec()));
        at = end;
    }
    if at != payload.len() {
        return Err(WireError::TrailingBytes);
    }
    Ok(SyncBatch { cursor, entries })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_boundaries() {
        for value in [0, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, value);
            assert_eq!(get_varint(&buf), Ok((value, buf.len())), "value {value}");
        }
    }

    #[test]
    fn varint_rejects_overflow_and_truncation() {
        // 10 continuation bytes: more than 64 bits.
        assert_eq!(get_varint(&[0x80; 10]), Err(WireError::VarintOverflow));
        // 10th byte carries more than the top bit of a u64.
        let mut buf = vec![0x80; 9];
        buf.push(0x02);
        assert_eq!(get_varint(&buf), Err(WireError::VarintOverflow));
        // Continuation bit set but stream ends.
        assert_eq!(get_varint(&[0x80]), Err(WireError::Truncated));
        assert_eq!(get_varint(&[]), Err(WireError::Truncated));
    }

    #[test]
    fn frame_round_trips_through_buffer_and_stream() {
        let frame = encode_frame(5, b"hello fabric");
        let (kind, payload, used) = decode_frame(&frame).unwrap();
        assert_eq!(
            (kind, payload.as_slice(), used),
            (5, &b"hello fabric"[..], frame.len())
        );

        let mut stream = io::Cursor::new(&frame);
        assert_eq!(
            read_frame(&mut stream).unwrap(),
            (5, b"hello fabric".to_vec())
        );
        assert_eq!(read_frame(&mut stream), Err(WireError::Eof));
    }

    #[test]
    fn concatenated_frames_decode_in_order() {
        let mut stream = encode_frame(1, b"a");
        stream.extend(encode_frame(2, b"bb"));
        let (k1, p1, used) = decode_frame(&stream).unwrap();
        let (k2, p2, _) = decode_frame(&stream[used..]).unwrap();
        assert_eq!((k1, p1), (1, b"a".to_vec()));
        assert_eq!((k2, p2), (2, b"bb".to_vec()));
    }

    #[test]
    fn frame_rejects_each_corruption_class() {
        let good = encode_frame(3, b"payload");
        assert_eq!(decode_frame(&[]), Err(WireError::Eof));
        assert_eq!(decode_frame(&[0x00]), Err(WireError::BadMagic(0x00)));

        let mut wrong_version = good.clone();
        wrong_version[1] = WIRE_VERSION + 1;
        assert_eq!(
            decode_frame(&wrong_version),
            Err(WireError::BadVersion(WIRE_VERSION + 1))
        );

        let mut bit_flip = good.clone();
        bit_flip[4] ^= 0x01; // payload byte
        assert_eq!(decode_frame(&bit_flip), Err(WireError::BadChecksum));

        let mut kind_flip = good.clone();
        kind_flip[2] ^= 0x01; // kind is covered by the checksum too
        assert_eq!(decode_frame(&kind_flip), Err(WireError::BadChecksum));

        for cut in 1..good.len() {
            let err = decode_frame(&good[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated | WireError::BadChecksum),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn oversize_length_rejected_before_allocation() {
        // Hand-build a header declaring a 1 TiB payload.
        let mut frame = vec![FRAME_MAGIC, WIRE_VERSION, 0];
        put_varint(&mut frame, 1 << 40);
        assert_eq!(decode_frame(&frame), Err(WireError::Oversize(1 << 40)));
        let mut stream = io::Cursor::new(&frame);
        assert_eq!(read_frame(&mut stream), Err(WireError::Oversize(1 << 40)));
    }

    #[test]
    fn sync_batch_round_trips() {
        let entries: Vec<(u64, &[u8])> = vec![(0, b"alpha"), (3, b""), (u64::MAX, b"\x00\xFF\x80")];
        let payload = encode_sync_batch(42, &entries);
        let batch = decode_sync_batch(&payload).unwrap();
        assert_eq!(batch.cursor, 42);
        assert_eq!(
            batch.entries,
            entries
                .iter()
                .map(|(p, i)| (*p, i.to_vec()))
                .collect::<Vec<_>>()
        );

        let empty = decode_sync_batch(&encode_sync_batch(0, &[])).unwrap();
        assert_eq!(
            empty,
            SyncBatch {
                cursor: 0,
                entries: vec![]
            }
        );
    }

    #[test]
    fn sync_batch_rejects_corrupt_counts_and_trailing_bytes() {
        let mut payload = encode_sync_batch(1, &[(2, b"xy")]);
        payload.push(0x00);
        assert_eq!(decode_sync_batch(&payload), Err(WireError::TrailingBytes));

        // A count far beyond the buffer cannot trigger a huge reserve.
        let mut hostile = Vec::new();
        put_varint(&mut hostile, 0); // cursor
        put_varint(&mut hostile, u64::MAX); // count
        assert_eq!(decode_sync_batch(&hostile), Err(WireError::Truncated));

        // Entry length overruns the buffer.
        let mut overrun = Vec::new();
        put_varint(&mut overrun, 0); // cursor
        put_varint(&mut overrun, 1); // count
        put_varint(&mut overrun, 0); // publisher
        put_varint(&mut overrun, 100); // len, but no bytes follow
        assert_eq!(decode_sync_batch(&overrun), Err(WireError::Truncated));

        // Entry length that would wrap usize.
        let mut wrap = Vec::new();
        put_varint(&mut wrap, 0);
        put_varint(&mut wrap, 1);
        put_varint(&mut wrap, 0);
        put_varint(&mut wrap, u64::MAX);
        assert_eq!(decode_sync_batch(&wrap), Err(WireError::Truncated));
    }

    #[test]
    fn error_display_is_informative() {
        assert!(WireError::BadMagic(0x7F).to_string().contains("0x7f"));
        assert!(WireError::BadVersion(9).to_string().contains('9'));
        assert!(WireError::Io(io::ErrorKind::BrokenPipe)
            .to_string()
            .contains("broken pipe"));
    }
}
