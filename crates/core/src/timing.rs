//! Per-operation runtime accounting (regenerates Figure 3).
//!
//! The paper's Figure 3 decomposes a campaign's wall-clock time into target
//! execution plus the five map operations. The fuzzer wraps each stage in a
//! timer and accumulates into an [`OpStats`]; the Figure 3 harness prints the
//! same stacked rows as the paper.

use std::fmt;
use std::time::Duration;

/// The stages of the per-test-case pipeline that the paper accounts for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Running the (instrumented) target — includes the bitmap *update*
    /// cost, exactly as in the paper, where the update happens inside the
    /// instrumented target's execution.
    Execution,
    /// Bitmap reset before each test case.
    Reset,
    /// Bitmap classify (bucketing) after each test case.
    Classify,
    /// Bitmap compare against the virgin map(s).
    Compare,
    /// Bitmap hash (interesting test cases only).
    Hash,
    /// Everything else: scheduling, mutation, queue maintenance, sync.
    Other,
}

impl OpKind {
    /// All kinds, in the order Figure 3 stacks them.
    pub const ALL: [OpKind; 6] = [
        OpKind::Execution,
        OpKind::Classify,
        OpKind::Compare,
        OpKind::Reset,
        OpKind::Hash,
        OpKind::Other,
    ];

    /// Figure-3-compatible label.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Execution => "Execution",
            OpKind::Reset => "Map Reset",
            OpKind::Classify => "Map Classify",
            OpKind::Compare => "Map Compare",
            OpKind::Hash => "Map Hash",
            OpKind::Other => "Others",
        }
    }

    fn slot(self) -> usize {
        match self {
            OpKind::Execution => 0,
            OpKind::Reset => 1,
            OpKind::Classify => 2,
            OpKind::Compare => 3,
            OpKind::Hash => 4,
            OpKind::Other => 5,
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Accumulated time per pipeline stage.
///
/// # Examples
///
/// ```rust
/// use bigmap_core::{OpKind, OpStats};
/// use std::time::Duration;
///
/// let mut stats = OpStats::new();
/// stats.add(OpKind::Execution, Duration::from_millis(30));
/// stats.add(OpKind::Reset, Duration::from_millis(10));
/// assert_eq!(stats.total(), Duration::from_millis(40));
/// assert_eq!(stats.fraction(OpKind::Reset), 0.25);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpStats {
    nanos: [u128; 6],
    counts: [u64; 6],
}

impl OpStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        OpStats::default()
    }

    /// Adds `elapsed` to the accumulator for `kind` and counts one
    /// invocation of the stage.
    #[inline]
    pub fn add(&mut self, kind: OpKind, elapsed: Duration) {
        self.nanos[kind.slot()] += elapsed.as_nanos();
        self.counts[kind.slot()] += 1;
    }

    /// Number of times `kind` was recorded (telemetry: per-stage pass
    /// counts alongside the per-stage time).
    pub fn count(&self, kind: OpKind) -> u64 {
        self.counts[kind.slot()]
    }

    /// Total time recorded for `kind`.
    pub fn get(&self, kind: OpKind) -> Duration {
        nanos_to_duration(self.nanos[kind.slot()])
    }

    /// Sum over all stages.
    pub fn total(&self) -> Duration {
        nanos_to_duration(self.nanos.iter().sum())
    }

    /// Fraction of total time spent in `kind` (0.0 if nothing recorded).
    pub fn fraction(&self, kind: OpKind) -> f64 {
        let total: u128 = self.nanos.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.nanos[kind.slot()] as f64 / total as f64
        }
    }

    /// Folds another accumulator into this one (parallel instances).
    pub fn merge(&mut self, other: &OpStats) {
        for i in 0..self.nanos.len() {
            self.nanos[i] += other.nanos[i];
            self.counts[i] += other.counts[i];
        }
    }

    /// Scales every accumulator by `factor` — used to extrapolate a measured
    /// run to the paper's "time per one million test cases" normalization.
    /// Invocation counts are extrapolated with the same factor.
    pub fn scaled(&self, factor: f64) -> OpStats {
        let mut out = OpStats::new();
        for (i, &n) in self.nanos.iter().enumerate() {
            out.nanos[i] = (n as f64 * factor) as u128;
            out.counts[i] = (self.counts[i] as f64 * factor) as u64;
        }
        out
    }

    /// Sum of the map-operation stages only (everything except execution
    /// and "others") — the quantity BigMap attacks.
    pub fn map_ops_total(&self) -> Duration {
        let sum = self.nanos[OpKind::Reset.slot()]
            + self.nanos[OpKind::Classify.slot()]
            + self.nanos[OpKind::Compare.slot()]
            + self.nanos[OpKind::Hash.slot()];
        nanos_to_duration(sum)
    }
}

fn nanos_to_duration(nanos: u128) -> Duration {
    Duration::new(
        (nanos / 1_000_000_000) as u64,
        (nanos % 1_000_000_000) as u32,
    )
}

impl fmt::Display for OpStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for kind in OpKind::ALL {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{}: {:?}", kind.label(), self.get(kind))?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_totals() {
        let mut s = OpStats::new();
        s.add(OpKind::Execution, Duration::from_millis(5));
        s.add(OpKind::Execution, Duration::from_millis(5));
        s.add(OpKind::Hash, Duration::from_millis(10));
        assert_eq!(s.get(OpKind::Execution), Duration::from_millis(10));
        assert_eq!(s.total(), Duration::from_millis(20));
        assert_eq!(s.fraction(OpKind::Hash), 0.5);
    }

    #[test]
    fn empty_stats_fraction_is_zero() {
        assert_eq!(OpStats::new().fraction(OpKind::Reset), 0.0);
        assert_eq!(OpStats::new().total(), Duration::ZERO);
    }

    #[test]
    fn counts_track_invocations() {
        let mut s = OpStats::new();
        s.add(OpKind::Reset, Duration::from_nanos(1));
        s.add(OpKind::Reset, Duration::from_nanos(1));
        s.add(OpKind::Compare, Duration::from_nanos(1));
        assert_eq!(s.count(OpKind::Reset), 2);
        assert_eq!(s.count(OpKind::Compare), 1);
        assert_eq!(s.count(OpKind::Hash), 0);
        let mut other = OpStats::new();
        other.add(OpKind::Reset, Duration::from_nanos(1));
        s.merge(&other);
        assert_eq!(s.count(OpKind::Reset), 3);
        assert_eq!(s.scaled(2.0).count(OpKind::Reset), 6);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = OpStats::new();
        a.add(OpKind::Reset, Duration::from_secs(1));
        let mut b = OpStats::new();
        b.add(OpKind::Reset, Duration::from_secs(2));
        b.add(OpKind::Other, Duration::from_secs(3));
        a.merge(&b);
        assert_eq!(a.get(OpKind::Reset), Duration::from_secs(3));
        assert_eq!(a.get(OpKind::Other), Duration::from_secs(3));
    }

    #[test]
    fn scaled_extrapolates() {
        let mut s = OpStats::new();
        s.add(OpKind::Classify, Duration::from_millis(100));
        let doubled = s.scaled(2.0);
        assert_eq!(doubled.get(OpKind::Classify), Duration::from_millis(200));
    }

    #[test]
    fn map_ops_total_excludes_execution_and_other() {
        let mut s = OpStats::new();
        s.add(OpKind::Execution, Duration::from_secs(100));
        s.add(OpKind::Other, Duration::from_secs(100));
        s.add(OpKind::Reset, Duration::from_secs(1));
        s.add(OpKind::Classify, Duration::from_secs(2));
        s.add(OpKind::Compare, Duration::from_secs(3));
        s.add(OpKind::Hash, Duration::from_secs(4));
        assert_eq!(s.map_ops_total(), Duration::from_secs(10));
    }

    #[test]
    fn display_mentions_every_stage() {
        let text = OpStats::new().to_string();
        for kind in OpKind::ALL {
            assert!(text.contains(kind.label()), "missing {kind}");
        }
    }

    #[test]
    fn duration_conversion_handles_large_values() {
        let mut s = OpStats::new();
        for _ in 0..1000 {
            s.add(OpKind::Execution, Duration::from_secs(10_000));
        }
        assert_eq!(s.total(), Duration::from_secs(10_000_000));
    }
}
