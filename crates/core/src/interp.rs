//! Interpreter-engine selection for compiled target execution.
//!
//! The synthetic-target substrate can execute programs with the original
//! tree-walking interpreter (`tree`), with the flattened threaded-bytecode
//! engine (`compiled`), or with the compiled engine plus snapshot/dirty-
//! state resets that resume mutated children from the parent's memoized
//! trace prefix (`auto`). The mode is a pure dispatch choice: the
//! compiled engine is equivalence-proven against the tree walker (same
//! outcomes, same full trace-event sequence, same step counts) and
//! snapshot resumes are strictly conservative (any read possibly touched
//! by the mutated byte range forces re-execution from before that read),
//! so all three modes produce bit-identical campaign trajectories.

/// Which execution engine the target interpreter dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InterpMode {
    /// The original recursive tree-walking interpreter over the CFG IR.
    Tree,
    /// The flattened struct-of-arrays bytecode engine; every exec runs
    /// the program front to back.
    Compiled,
    /// The compiled engine plus snapshot resets: the campaign memoizes
    /// the scheduled parent's trace and resumes each mutated child from
    /// the last step provably unaffected by the mutated byte range. The
    /// default: fastest path, trajectory-identical by construction.
    #[default]
    Auto,
}

impl InterpMode {
    /// The canonical lowercase label (`tree` / `compiled` / `auto`).
    pub fn label(self) -> &'static str {
        match self {
            InterpMode::Tree => "tree",
            InterpMode::Compiled => "compiled",
            InterpMode::Auto => "auto",
        }
    }

    /// Parses a label, case-insensitively. `None` for unknown values.
    pub fn from_label(label: &str) -> Option<Self> {
        match label.to_ascii_lowercase().as_str() {
            "tree" => Some(InterpMode::Tree),
            "compiled" => Some(InterpMode::Compiled),
            "auto" => Some(InterpMode::Auto),
            _ => None,
        }
    }

    /// Whether this mode runs the compiled bytecode engine at all.
    pub fn uses_compiled(self) -> bool {
        !matches!(self, InterpMode::Tree)
    }

    /// Whether this mode additionally arms snapshot/dirty-state resets.
    pub fn uses_snapshots(self) -> bool {
        matches!(self, InterpMode::Auto)
    }

    /// All modes, for exhaustive tests and equivalence sweeps.
    pub const ALL: [InterpMode; 3] = [InterpMode::Tree, InterpMode::Compiled, InterpMode::Auto];
}

/// Resolves the interpreter mode from an env override (the raw value of
/// `BIGMAP_INTERP`, if set). Unknown values warn on stderr and fall back
/// to the default ([`InterpMode::Auto`]).
pub fn select_interp_mode(env_override: Option<&str>) -> InterpMode {
    match env_override {
        None => InterpMode::default(),
        Some(raw) => match InterpMode::from_label(raw.trim()) {
            Some(mode) => mode,
            None => {
                eprintln!(
                    "BIGMAP_INTERP={raw}: unknown engine (expected tree|compiled|auto), \
                     using auto"
                );
                InterpMode::default()
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for mode in InterpMode::ALL {
            assert_eq!(InterpMode::from_label(mode.label()), Some(mode));
        }
        assert_eq!(
            InterpMode::from_label("COMPILED"),
            Some(InterpMode::Compiled)
        );
        assert_eq!(InterpMode::from_label("jit"), None);
    }

    #[test]
    fn select_falls_back_to_auto() {
        assert_eq!(select_interp_mode(None), InterpMode::Auto);
        assert_eq!(select_interp_mode(Some("tree")), InterpMode::Tree);
        assert_eq!(select_interp_mode(Some(" Compiled ")), InterpMode::Compiled);
        assert_eq!(select_interp_mode(Some("bogus")), InterpMode::Auto);
    }

    #[test]
    fn mode_capabilities_are_monotone() {
        assert!(!InterpMode::Tree.uses_compiled());
        assert!(InterpMode::Compiled.uses_compiled());
        assert!(InterpMode::Auto.uses_compiled());
        assert!(InterpMode::Auto.uses_snapshots());
        assert!(!InterpMode::Compiled.uses_snapshots());
        assert_eq!(InterpMode::default(), InterpMode::Auto);
    }
}
