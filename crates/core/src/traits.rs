//! The [`CoverageMap`] trait: one interface over both map schemes.
//!
//! The fuzzer, metrics, benchmarks and cache-trace adapters are all written
//! against this trait, so switching a campaign between AFL's flat map and
//! BigMap's two-level map is a one-argument change — exactly the property
//! the paper exploits when it drops BigMap into AFL and AFL++ unmodified.

use std::fmt;

use crate::map_size::MapSize;
use crate::sparse::{OpPath, SparseMode};
use crate::virgin::VirginState;

/// Which map data structure a campaign uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MapScheme {
    /// AFL's one-level bitmap: key indexes the map directly; whole-map
    /// reset / classify / compare / hash.
    Flat,
    /// BigMap's two-level bitmap: key → index bitmap → condensed slot;
    /// operations run over `[0 .. used_key)` only.
    TwoLevel,
}

impl fmt::Display for MapScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MapScheme::Flat => "AFL",
            MapScheme::TwoLevel => "BigMap",
        })
    }
}

/// Result of comparing a classified local map against the virgin map.
///
/// Ordered: `None < NewBucket < NewEdge`, so `max` composes verdicts.
/// Matches AFL's `has_new_bits` return values 0 / 1 / 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum NewCoverage {
    /// Nothing new: every (slot, bucket) pair was already in the virgin map.
    #[default]
    None,
    /// A known slot reached a hit-count bucket not seen before.
    NewBucket,
    /// A slot was touched for the very first time.
    NewEdge,
}

impl NewCoverage {
    /// Whether the fitness function considers the test case interesting.
    #[inline]
    pub fn is_interesting(self) -> bool {
        self != NewCoverage::None
    }
}

/// A coverage bitmap with the five AFL map operations.
///
/// The hot path is [`record`](CoverageMap::record) — called once per edge
/// event during target execution. Everything else runs once per test case
/// (`reset`, `classify`, `compare`) or once per interesting test case
/// (`hash`).
///
/// Implementations must preserve **observational equivalence**: for the same
/// stream of recorded keys, both schemes must agree on classify buckets,
/// `compare` verdicts (against virgin state of equal history) and
/// interestingness. The cross-scheme property tests in
/// `tests/equivalence.rs` enforce this.
pub trait CoverageMap: Send {
    /// The scheme implemented by this map.
    fn scheme(&self) -> MapScheme;

    /// The logical hash-space size (number of addressable coverage keys).
    fn map_size(&self) -> MapSize;

    /// **Bitmap update** (hot path): records one coverage event for `key`.
    ///
    /// `key` is a raw coverage hash; the map folds it with
    /// `key & (map_size - 1)`, matching AFL's modulo-by-map-size ID
    /// generation. Hit counts saturate at 255 rather than wrapping, so a
    /// slot can never silently return to "unvisited".
    fn record(&mut self, key: u32);

    /// **Bitmap reset**: restores the *active* region to zero.
    ///
    /// Flat: the whole map. BigMap: `[0 .. used_key)` only — the index
    /// bitmap is deliberately untouched so slot assignments persist for the
    /// whole campaign.
    fn reset(&mut self);

    /// **Bitmap classify**: buckets the exact hit counts in the active
    /// region (see [`crate::classify`]).
    fn classify(&mut self);

    /// **Bitmap compare**: diffs the (classified) active region against
    /// `virgin`, clearing the virgin bits this map now covers.
    ///
    /// `virgin` must have been created with the same [`MapSize`].
    ///
    /// # Panics
    ///
    /// Panics if `virgin.map_size() != self.map_size()`.
    fn compare(&mut self, virgin: &mut VirginState) -> NewCoverage;

    /// Merged **classify + compare** (§IV-E optimization): one pass over the
    /// active region doing both. Must be observationally identical to
    /// `classify()` followed by `compare(virgin)`.
    ///
    /// # Panics
    ///
    /// Panics if `virgin.map_size() != self.map_size()`.
    fn classify_and_compare(&mut self, virgin: &mut VirginState) -> NewCoverage {
        self.classify();
        self.compare(virgin)
    }

    /// **Bitmap hash**: CRC32 of the active region under the scheme's
    /// watermark rule (flat: whole map; BigMap: up to last non-zero byte).
    fn hash(&self) -> u32;

    /// Number of non-zero bytes in the active region (AFL's `count_bytes`;
    /// feeds queue scoring).
    fn count_nonzero(&self) -> usize;

    /// Length of the active region: the whole map for flat, `used_key` for
    /// BigMap. This is what the per-test-case operations iterate over, so it
    /// is the quantity that explains the paper's entire performance story.
    fn used_len(&self) -> usize;

    /// Visits every non-zero (slot, value) pair in the active region.
    ///
    /// Slot numbers are scheme-local (edge IDs for flat, condensed indices
    /// for BigMap) but stable across the campaign, which is all the
    /// favored-seed culling needs.
    fn for_each_nonzero(&self, f: &mut dyn FnMut(usize, u8));

    /// Read-only view of the active region (used by tests, the cache-trace
    /// adapters and corpus replay).
    fn active_region(&self) -> &[u8];

    /// The current classified/raw value stored for a *logical* coverage key
    /// (after folding). Returns 0 for keys never recorded.
    fn value_of_key(&self, key: u32) -> u8;

    /// Overrides the process-wide `BIGMAP_SPARSE` dispatch policy for this
    /// map instance; `None` restores the process default.
    ///
    /// Exists so one process can run sparse and dense pipelines side by
    /// side (equivalence tests, benchmark arms) despite the env policy
    /// being resolved once. Maps without a sparse pipeline (the flat
    /// scheme) ignore the override — the default implementation is a no-op.
    fn set_sparse_override(&mut self, _mode: Option<SparseMode>) {}

    /// Which path the most recent classify/compare/merged op dispatched
    /// to. Maps without a sparse pipeline always report [`OpPath::Dense`].
    fn last_op_path(&self) -> OpPath {
        OpPath::Dense
    }

    /// Number of distinct condensed slots first-touched since the last
    /// reset, when the map keeps a complete touch journal. `None` when the
    /// map has no journal (flat scheme) or the journal overflowed this
    /// exec.
    fn touched_len(&self) -> Option<usize> {
        None
    }

    /// Whether the touch journal overflowed its capacity this exec,
    /// forcing the dense fallback. Always `false` for maps without a
    /// journal.
    fn journal_overflowed(&self) -> bool {
        false
    }

    /// The allocation backend that served this map's coverage buffer plus
    /// whether an explicit-huge-page request fell back to THP, when the
    /// scheme exposes it. `None` for map types that do not track their
    /// allocation (the default).
    ///
    /// This is how the fuzzer's telemetry layer attributes each instance's
    /// map memory to a page backend (`BIGMAP_HUGE`).
    fn alloc_info(&self) -> Option<(crate::alloc::AllocBackend, bool)> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_coverage_ordering() {
        assert!(NewCoverage::None < NewCoverage::NewBucket);
        assert!(NewCoverage::NewBucket < NewCoverage::NewEdge);
        assert_eq!(
            NewCoverage::NewBucket.max(NewCoverage::NewEdge),
            NewCoverage::NewEdge
        );
    }

    #[test]
    fn interestingness() {
        assert!(!NewCoverage::None.is_interesting());
        assert!(NewCoverage::NewBucket.is_interesting());
        assert!(NewCoverage::NewEdge.is_interesting());
        assert_eq!(NewCoverage::default(), NewCoverage::None);
    }

    #[test]
    fn scheme_display_matches_paper_labels() {
        assert_eq!(MapScheme::Flat.to_string(), "AFL");
        assert_eq!(MapScheme::TwoLevel.to_string(), "BigMap");
    }
}
