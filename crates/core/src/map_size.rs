//! Validated coverage-map sizes.
//!
//! AFL-family fuzzers require the map size to be a power of two so that a raw
//! coverage hash can be folded into the map with a single mask instead of a
//! division. [`MapSize`] enforces that invariant at construction time and
//! provides the sizes the paper evaluates (64 KiB, 256 KiB, 2 MiB, 8 MiB) as
//! constants.

use std::fmt;

/// Smallest supported map: 1 KiB. Below this the classify LUT and word-wise
/// loops stop being meaningful.
pub const MIN_MAP_BYTES: usize = 1 << 10;
/// Largest supported map: 1 GiB. The paper's Figure 2 sweeps to 32 MiB; the
/// headroom is the point of the scheme ("arbitrarily large").
pub const MAX_MAP_BYTES: usize = 1 << 30;

/// A validated coverage-map size in bytes.
///
/// Always a power of two in `[MIN_MAP_BYTES, MAX_MAP_BYTES]`, so that
/// `key & (size - 1)` is a correct and cheap fold of a raw coverage hash
/// into the map.
///
/// # Examples
///
/// ```rust
/// use bigmap_core::MapSize;
///
/// # fn main() -> Result<(), bigmap_core::MapSizeError> {
/// let size = MapSize::new(1 << 20)?;
/// assert_eq!(size.bytes(), 1048576);
/// assert_eq!(size.mask(), 1048575);
/// assert_eq!(MapSize::K64.bytes(), 65536);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MapSize(usize);

/// Error returned when constructing a [`MapSize`] from an invalid byte count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapSizeError {
    /// The requested size is not a power of two.
    NotPowerOfTwo(usize),
    /// The requested size lies outside `[MIN_MAP_BYTES, MAX_MAP_BYTES]`.
    OutOfRange(usize),
}

impl fmt::Display for MapSizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MapSizeError::NotPowerOfTwo(n) => {
                write!(f, "map size {n} is not a power of two")
            }
            MapSizeError::OutOfRange(n) => write!(
                f,
                "map size {n} is outside the supported range [{MIN_MAP_BYTES}, {MAX_MAP_BYTES}]"
            ),
        }
    }
}

impl std::error::Error for MapSizeError {}

impl MapSize {
    /// AFL's carefully tuned default: 64 KiB.
    pub const K64: MapSize = MapSize(1 << 16);
    /// 256 KiB — the paper's second evaluation point.
    pub const K256: MapSize = MapSize(1 << 18);
    /// 1 MiB.
    pub const M1: MapSize = MapSize(1 << 20);
    /// 2 MiB — the paper's headline "4.5x average speedup" point.
    pub const M2: MapSize = MapSize(1 << 21);
    /// 8 MiB — the paper's "33.1x average speedup" point.
    pub const M8: MapSize = MapSize(1 << 23);
    /// 32 MiB — the largest size in the paper's Figure 2 sweep.
    pub const M32: MapSize = MapSize(1 << 25);
    /// 256 MiB — the giant-regime evaluation point past the paper's sweep.
    pub const M256: MapSize = MapSize(1 << 28);
    /// 1 GiB — the largest supported map, the "future-proof" end of the
    /// giant regime.
    pub const G1: MapSize = MapSize(1 << 30);

    /// The four sizes evaluated throughout the paper's Section V-B.
    pub const EVALUATED: [MapSize; 4] = [Self::K64, Self::K256, Self::M2, Self::M8];

    /// Creates a map size from a byte count.
    ///
    /// # Errors
    ///
    /// Returns [`MapSizeError::NotPowerOfTwo`] if `bytes` is not a power of
    /// two, or [`MapSizeError::OutOfRange`] if it falls outside
    /// `[MIN_MAP_BYTES, MAX_MAP_BYTES]`.
    pub fn new(bytes: usize) -> Result<Self, MapSizeError> {
        if !bytes.is_power_of_two() {
            return Err(MapSizeError::NotPowerOfTwo(bytes));
        }
        if !(MIN_MAP_BYTES..=MAX_MAP_BYTES).contains(&bytes) {
            return Err(MapSizeError::OutOfRange(bytes));
        }
        Ok(MapSize(bytes))
    }

    /// The size in bytes (also the number of addressable coverage slots,
    /// since each slot is one byte).
    #[inline]
    pub fn bytes(self) -> usize {
        self.0
    }

    /// The mask that folds a raw coverage hash into this map:
    /// `key & mask` is always a valid slot index.
    #[inline]
    pub fn mask(self) -> u32 {
        (self.0 - 1) as u32
    }

    /// log2 of the size in bytes.
    #[inline]
    pub fn bits(self) -> u32 {
        self.0.trailing_zeros()
    }

    /// Human-friendly rendering used in benchmark report headers
    /// (`64k`, `256k`, `2M`, ...), matching the paper's figure labels.
    pub fn label(self) -> String {
        let b = self.0;
        if b >= 1 << 20 && b.is_multiple_of(1 << 20) {
            format!("{}M", b >> 20)
        } else {
            format!("{}k", b >> 10)
        }
    }
}

impl fmt::Display for MapSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

impl TryFrom<usize> for MapSize {
    type Error = MapSizeError;

    fn try_from(bytes: usize) -> Result<Self, Self::Error> {
        MapSize::new(bytes)
    }
}

impl From<MapSize> for usize {
    fn from(size: MapSize) -> usize {
        size.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructs_powers_of_two() {
        for bits in 10..=30 {
            let size = MapSize::new(1 << bits).unwrap();
            assert_eq!(size.bytes(), 1 << bits);
            assert_eq!(size.bits(), bits as u32);
        }
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert_eq!(MapSize::new(65537), Err(MapSizeError::NotPowerOfTwo(65537)));
        assert_eq!(MapSize::new(0), Err(MapSizeError::NotPowerOfTwo(0)));
        assert_eq!(
            MapSize::new(3 << 16),
            Err(MapSizeError::NotPowerOfTwo(3 << 16))
        );
    }

    #[test]
    fn rejects_out_of_range() {
        assert_eq!(MapSize::new(512), Err(MapSizeError::OutOfRange(512)));
        assert_eq!(
            MapSize::new(1 << 31),
            Err(MapSizeError::OutOfRange(1 << 31))
        );
    }

    #[test]
    fn mask_folds_keys_in_range() {
        let size = MapSize::K64;
        assert_eq!(size.mask(), 0xFFFF);
        assert_eq!(0xdead_beef_u32 & size.mask(), 0xbeef);
    }

    #[test]
    fn paper_constants_match() {
        assert_eq!(MapSize::K64.bytes(), 64 * 1024);
        assert_eq!(MapSize::K256.bytes(), 256 * 1024);
        assert_eq!(MapSize::M2.bytes(), 2 * 1024 * 1024);
        assert_eq!(MapSize::M8.bytes(), 8 * 1024 * 1024);
        assert_eq!(MapSize::M32.bytes(), 32 * 1024 * 1024);
    }

    #[test]
    fn labels_match_paper_figures() {
        assert_eq!(MapSize::K64.label(), "64k");
        assert_eq!(MapSize::K256.label(), "256k");
        assert_eq!(MapSize::M2.label(), "2M");
        assert_eq!(MapSize::M8.label(), "8M");
        assert_eq!(MapSize::M32.to_string(), "32M");
    }

    #[test]
    fn conversions_round_trip() {
        let size = MapSize::try_from(1usize << 21).unwrap();
        assert_eq!(usize::from(size), 1 << 21);
    }

    #[test]
    fn error_display_is_lowercase_and_informative() {
        let msg = MapSizeError::NotPowerOfTwo(100).to_string();
        assert!(msg.contains("100"));
        assert!(msg.starts_with("map size"));
    }
}
