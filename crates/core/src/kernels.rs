//! Vectorized map-op kernels with runtime CPU dispatch.
//!
//! The paper's argument (§IV-E, Figures 3/6) is that the whole-map
//! operations — classify, compare, and the merged classify+compare —
//! dominate fuzzer-side cost as maps grow. The word-wise loops in
//! [`crate::classify`] and [`crate::diff`] top out at 8 bytes per
//! iteration; this module adds SSE2 (16 B) and AVX2 (32 B) kernels for the
//! same three operations and selects an implementation **once per
//! process**, at first use, into a function-pointer table. The hot path
//! pays zero per-call feature branching: callers grab
//! [`active()`](active) (one `OnceLock` load) and jump through the table.
//!
//! Selection policy, in order:
//!
//! 1. `BIGMAP_KERNEL=scalar|sse2|avx2` forces a kernel. Requesting a
//!    kernel the CPU cannot run falls back to auto-detection with a
//!    warning on stderr (a forced *downgrade* is always honoured — that is
//!    how CI pins the scalar path).
//! 2. Otherwise the widest kernel the CPU supports, probed with
//!    [`std::arch::is_x86_feature_detected!`]: AVX2, then SSE2, then the
//!    portable scalar code.
//!
//! The scalar implementations in [`crate::classify`] / [`crate::diff`]
//! remain the **semantic oracle**: every vector kernel must be
//! byte-identical to them on arbitrary inputs (enforced by the
//! `kernel_equivalence` property-test suite) and they serve as the
//! portable fallback on non-x86-64 targets and for region tails shorter
//! than one vector block.
//!
//! Each dispatched call bumps a global per-kernel [`EventCounter`], so
//! telemetry (and the `bench_mapops` harness) can prove which
//! implementation a campaign actually ran.
//!
//! # Examples
//!
//! ```rust
//! use bigmap_core::kernels;
//!
//! let table = kernels::active();
//! let mut counts = vec![0u8; 4096];
//! counts[17] = 5;
//! let mut virgin = vec![0xFFu8; 4096];
//! let verdict = table.classify_and_compare(&mut counts, &mut virgin);
//! assert_eq!(verdict, bigmap_core::NewCoverage::NewEdge);
//! assert_eq!(counts[17], 8); // 5 hits → bucket [4-7]
//! ```

use std::fmt;
use std::sync::OnceLock;

use crate::classify::classify_slice;
use crate::counters::EventCounter;
use crate::diff::{classify_and_compare_region, compare_region};
use crate::traits::NewCoverage;

/// The kernel implementations this build knows about.
///
/// `Sse2` and `Avx2` exist on every build (so configuration and telemetry
/// can name them portably) but [`table_for`] only returns a table for the
/// ones the *running* CPU supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Portable word-wise Rust (`crate::classify` / `crate::diff`) — the
    /// semantic oracle and universal fallback.
    Scalar,
    /// 128-bit x86-64 kernels: SIMD zero-skim and compare, LUT classify.
    Sse2,
    /// 256-bit x86-64 kernels: in-register nibble-LUT classify plus
    /// `vptest`-based compare.
    Avx2,
}

impl KernelKind {
    /// Every kind, narrowest to widest.
    pub const ALL: [KernelKind; 3] = [KernelKind::Scalar, KernelKind::Sse2, KernelKind::Avx2];

    /// Stable lower-case label (`"scalar"`, `"sse2"`, `"avx2"`) used by
    /// `BIGMAP_KERNEL`, benchmark reports and telemetry keys.
    pub fn label(self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Sse2 => "sse2",
            KernelKind::Avx2 => "avx2",
        }
    }

    /// Parses a [`label`](KernelKind::label) back into a kind.
    pub fn from_label(label: &str) -> Option<KernelKind> {
        match label {
            "scalar" => Some(KernelKind::Scalar),
            "sse2" => Some(KernelKind::Sse2),
            "avx2" => Some(KernelKind::Avx2),
            _ => None,
        }
    }

    #[inline]
    fn slot(self) -> usize {
        match self {
            KernelKind::Scalar => 0,
            KernelKind::Sse2 => 1,
            KernelKind::Avx2 => 2,
        }
    }
}

impl fmt::Display for KernelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A resolved set of map-op kernels: one function pointer per operation,
/// selected once, no per-call branching.
///
/// The pointed-to functions are safe `fn`s; the vector variants contain
/// `unsafe` intrinsic blocks whose safety argument is that a table for a
/// vector kind is only ever constructed after
/// `is_x86_feature_detected!` confirmed the feature (see [`table_for`]).
#[derive(Debug)]
pub struct KernelTable {
    /// Which implementation this table dispatches to.
    pub kind: KernelKind,
    classify_fn: fn(&mut [u8]),
    compare_fn: fn(&[u8], &mut [u8]) -> NewCoverage,
    fused_fn: fn(&mut [u8], &mut [u8]) -> NewCoverage,
}

impl KernelTable {
    /// Classifies hit counts into buckets in place
    /// (kernel-dispatched [`crate::classify::classify_slice`]).
    #[inline]
    pub fn classify(&self, counts: &mut [u8]) {
        INVOCATIONS[self.kind.slot()].incr();
        (self.classify_fn)(counts)
    }

    /// Diffs an already-classified region against `virgin`
    /// (kernel-dispatched [`crate::diff::compare_region`]).
    ///
    /// # Panics
    ///
    /// Panics if the regions have different lengths.
    #[inline]
    pub fn compare(&self, cur: &[u8], virgin: &mut [u8]) -> NewCoverage {
        INVOCATIONS[self.kind.slot()].incr();
        (self.compare_fn)(cur, virgin)
    }

    /// Merged classify + compare in one pass
    /// (kernel-dispatched [`crate::diff::classify_and_compare_region`]).
    ///
    /// # Panics
    ///
    /// Panics if the regions have different lengths.
    #[inline]
    pub fn classify_and_compare(&self, cur: &mut [u8], virgin: &mut [u8]) -> NewCoverage {
        INVOCATIONS[self.kind.slot()].incr();
        (self.fused_fn)(cur, virgin)
    }

    // Uncounted entry points for the sparse run dispatcher
    // (`crate::sparse`): a sparse pass may make one kernel call per long
    // run, and counting each would make `invocations` useless as a
    // "how many dense passes ran" telemetry signal. Sparse work is
    // accounted through `crate::sparse::dispatches` instead.

    #[inline]
    pub(crate) fn classify_uncounted(&self, counts: &mut [u8]) {
        (self.classify_fn)(counts)
    }

    #[inline]
    pub(crate) fn compare_uncounted(&self, cur: &[u8], virgin: &mut [u8]) -> NewCoverage {
        (self.compare_fn)(cur, virgin)
    }

    #[inline]
    pub(crate) fn fused_uncounted(&self, cur: &mut [u8], virgin: &mut [u8]) -> NewCoverage {
        (self.fused_fn)(cur, virgin)
    }
}

/// Global per-kernel invocation totals, indexed by [`KernelKind::slot`].
static INVOCATIONS: [EventCounter; 3] = [
    EventCounter::new(),
    EventCounter::new(),
    EventCounter::new(),
];

/// How many kernel calls (classify, compare, or fused — each counts one)
/// have dispatched to `kind` since process start.
pub fn invocations(kind: KernelKind) -> u64 {
    INVOCATIONS[kind.slot()].get()
}

static SCALAR_TABLE: KernelTable = KernelTable {
    kind: KernelKind::Scalar,
    classify_fn: classify_slice,
    compare_fn: compare_region,
    fused_fn: classify_and_compare_region,
};

#[cfg(target_arch = "x86_64")]
static SSE2_TABLE: KernelTable = KernelTable {
    kind: KernelKind::Sse2,
    classify_fn: x86::classify_sse2,
    compare_fn: x86::compare_sse2,
    // Demoted to the scalar fused routine: every SSE2 fused variant tried
    // (vector classify + reload compare, then a 16-byte zero skim over
    // word-wise fusing — kept below as `fused_sse2` for the record) lost
    // to plain scalar fused at every size from 64 KiB up in bench_mapops,
    // while the separate classify/compare entries keep their measured
    // vector wins. The scalar routine is also the equivalence oracle, so
    // this entry is correct by construction.
    fused_fn: classify_and_compare_region,
};

#[cfg(target_arch = "x86_64")]
static AVX2_TABLE: KernelTable = KernelTable {
    kind: KernelKind::Avx2,
    classify_fn: x86::classify_avx2,
    compare_fn: x86::compare_avx2,
    fused_fn: x86::fused_avx2,
};

/// The kernel table for `kind`, if the running CPU supports it.
///
/// [`KernelKind::Scalar`] is always available. The vector kinds require an
/// x86-64 build *and* a positive runtime feature probe — this function is
/// the only constructor of vector tables, which is the safety argument for
/// the `unsafe` blocks inside them.
pub fn table_for(kind: KernelKind) -> Option<&'static KernelTable> {
    match kind {
        KernelKind::Scalar => Some(&SCALAR_TABLE),
        #[cfg(target_arch = "x86_64")]
        KernelKind::Sse2 => std::arch::is_x86_feature_detected!("sse2").then_some(&SSE2_TABLE),
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx2 => std::arch::is_x86_feature_detected!("avx2").then_some(&AVX2_TABLE),
        #[cfg(not(target_arch = "x86_64"))]
        KernelKind::Sse2 | KernelKind::Avx2 => None,
    }
}

/// Every kernel the running CPU can execute, narrowest to widest.
pub fn available() -> Vec<KernelKind> {
    KernelKind::ALL
        .into_iter()
        .filter(|&k| table_for(k).is_some())
        .collect()
}

/// Resolves the selection policy for a requested kind (`None` = unset or
/// unparseable): honour a CPU-supported request, warn and fall back to
/// auto-detection otherwise. Pure so tests can cover the policy without
/// touching process environment.
fn select_kind(request: Option<KernelKind>) -> &'static KernelTable {
    if let Some(kind) = request {
        match table_for(kind) {
            Some(table) => return table,
            None => eprintln!(
                "BIGMAP_KERNEL={}: kernel not supported by this CPU, \
                 falling back to auto-detection",
                kind.label()
            ),
        }
    }
    table_for(KernelKind::Avx2)
        .or_else(|| table_for(KernelKind::Sse2))
        .unwrap_or(&SCALAR_TABLE)
}

/// Resolves the selection policy for a given `BIGMAP_KERNEL` value
/// (`None` = unset), parsing through the shared [`crate::env`] policy.
#[cfg(test)]
fn select(env_override: Option<&str>) -> &'static KernelTable {
    select_kind(crate::env::parse_kernel(env_override))
}

/// The process-wide active kernel table.
///
/// Resolved once, at first call, from `BIGMAP_KERNEL` (via
/// [`crate::env::kernel_request`]) and runtime feature detection; every
/// later call is a single atomic load. Both map schemes route their
/// classify/compare/fused operations through this table.
pub fn active() -> &'static KernelTable {
    static ACTIVE: OnceLock<&'static KernelTable> = OnceLock::new();
    ACTIVE.get_or_init(|| select_kind(crate::env::kernel_request()))
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! x86-64 vector kernels.
    //!
    //! Safety argument, shared by every function here: the `unsafe` blocks
    //! are (a) intrinsic calls gated by `#[target_feature]`, reached only
    //! through the tables `table_for` hands out after a positive
    //! `is_x86_feature_detected!` probe, and (b) raw slice accesses whose
    //! bounds are established by the surrounding block arithmetic
    //! (`blocks * WIDTH <= len`). All loads/stores use the unaligned
    //! variants, so the kernels are correct for any region offset — the
    //! alignment-phase concerns of the scalar path do not apply.

    use super::*;
    use crate::classify::classify_word;
    use crate::diff::diff_word;
    use std::arch::x86_64::*;

    /// Verdict accumulator mirroring `diff.rs`: once `NewEdge` is found the
    /// per-block edge test is skipped (virgin clearing still proceeds).
    #[inline]
    fn raise(verdict: &mut NewCoverage, v: NewCoverage) {
        if v > *verdict {
            *verdict = v;
        }
    }

    // ---------------------------------------------------------------- SSE2

    /// SSE2 classify: 16-byte zero skim, 16-bit-LUT classification of the
    /// words inside non-zero blocks.
    ///
    /// SSE2 has no byte shuffle (`pshufb` is SSSE3), so the bucket mapping
    /// itself stays on the scalar LUT; the win is skipping zero blocks
    /// twice as fast as the word loop, which on sparse coverage maps is
    /// almost all of the work.
    pub(super) fn classify_sse2(counts: &mut [u8]) {
        let len = counts.len();
        let blocks = len / 16;
        let ptr = counts.as_mut_ptr();
        // SAFETY: see module-level safety argument; `i * 16 + 16 <= len`.
        unsafe {
            let zero = _mm_setzero_si128();
            for i in 0..blocks {
                let p = ptr.add(i * 16);
                let v = _mm_loadu_si128(p.cast::<__m128i>());
                if _mm_movemask_epi8(_mm_cmpeq_epi8(v, zero)) == 0xFFFF {
                    continue;
                }
                for j in 0..2 {
                    let wp = p.add(j * 8).cast::<u64>();
                    let w = wp.read_unaligned();
                    let classified = classify_word(w);
                    // Store elision: counts 0/1/2 and already-bucketed
                    // values are fixed points of the classifier, so most
                    // real coverage words come out unchanged — skipping
                    // the store keeps their cache lines clean.
                    if classified != w {
                        wp.write_unaligned(classified);
                    }
                }
            }
        }
        classify_slice(&mut counts[blocks * 16..]);
    }

    /// SSE2 compare: 16-byte blocks, `pand` + zero test for the skip path,
    /// `pcmpeqb` against 0xFF for the new-edge test, `pandn` clear.
    pub(super) fn compare_sse2(cur: &[u8], virgin: &mut [u8]) -> NewCoverage {
        assert_eq!(cur.len(), virgin.len(), "region length mismatch");
        let len = cur.len();
        let blocks = len / 16;
        let mut verdict = NewCoverage::None;
        let cur_ptr = cur.as_ptr();
        let vir_ptr = virgin.as_mut_ptr();
        // SAFETY: see module-level safety argument.
        unsafe {
            let zero = _mm_setzero_si128();
            let ff = _mm_set1_epi8(-1);
            for i in 0..blocks {
                let cp = cur_ptr.add(i * 16).cast::<__m128i>();
                let vp = vir_ptr.add(i * 16).cast::<__m128i>();
                let c = _mm_loadu_si128(cp);
                let v = _mm_loadu_si128(vp);
                let hits = _mm_and_si128(c, v);
                if _mm_movemask_epi8(_mm_cmpeq_epi8(hits, zero)) == 0xFFFF {
                    continue;
                }
                if verdict < NewCoverage::NewEdge {
                    let virgin_ff = _mm_cmpeq_epi8(v, ff);
                    let edge = _mm_and_si128(hits, virgin_ff);
                    if _mm_movemask_epi8(_mm_cmpeq_epi8(edge, zero)) != 0xFFFF {
                        raise(&mut verdict, NewCoverage::NewEdge);
                    } else {
                        raise(&mut verdict, NewCoverage::NewBucket);
                    }
                }
                _mm_storeu_si128(vp, _mm_andnot_si128(c, v));
            }
        }
        let tail = blocks * 16;
        verdict.max(compare_region(&cur[tail..], &mut virgin[tail..]))
    }

    /// SSE2 fused classify+compare: zero skim on the raw counts, then a
    /// scalar word-wise classify + diff of the non-zero blocks — one pass
    /// over each cache line, no second trip through the vector unit.
    ///
    /// An earlier version classified the block with scalar word stores and
    /// then *reloaded* it as a vector for an SSE2 compare step. The reload
    /// straddled the just-written words (store-forwarding stall) and
    /// re-did the hit test the scalar diff gets almost for free, which
    /// made the fused kernel measurably slower than plain scalar fused at
    /// every size ≥ 64 KiB (BENCH_mapops.json, PR-3). This zero-skim
    /// variant narrowed the gap but still lost to plain scalar fused at
    /// every size, so the dispatch table routes SSE2 fused work to the
    /// scalar routine. The kernel stays compiled and equivalence-tested
    /// (`demoted_sse2_fused_matches_the_oracle`) so re-promoting it on
    /// hardware where it wins is a one-line table change.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(super) fn fused_sse2(cur: &mut [u8], virgin: &mut [u8]) -> NewCoverage {
        assert_eq!(cur.len(), virgin.len(), "region length mismatch");
        let len = cur.len();
        let blocks = len / 16;
        let mut verdict = NewCoverage::None;
        let cur_ptr = cur.as_mut_ptr();
        let vir_ptr = virgin.as_mut_ptr();
        // SAFETY: see module-level safety argument.
        unsafe {
            let zero = _mm_setzero_si128();
            for i in 0..blocks {
                let cp = cur_ptr.add(i * 16);
                let raw = _mm_loadu_si128(cp.cast::<__m128i>());
                if _mm_movemask_epi8(_mm_cmpeq_epi8(raw, zero)) == 0xFFFF {
                    continue;
                }
                for j in 0..2 {
                    let wp = cp.add(j * 8).cast::<u64>();
                    let w = wp.read_unaligned();
                    if w == 0 {
                        continue;
                    }
                    let classified = classify_word(w);
                    // Same store elision as classify_sse2.
                    if classified != w {
                        wp.write_unaligned(classified);
                    }
                    let vp = vir_ptr.add(i * 16 + j * 8).cast::<u64>();
                    let mut v = vp.read_unaligned();
                    let before = v;
                    diff_word(classified, &mut v, &mut verdict);
                    if v != before {
                        vp.write_unaligned(v);
                    }
                }
            }
        }
        let tail = blocks * 16;
        verdict.max(classify_and_compare_region(
            &mut cur[tail..],
            &mut virgin[tail..],
        ))
    }

    // ---------------------------------------------------------------- AVX2

    /// The bucket byte for counts 0–15 (used when the high nibble is 0),
    /// i.e. `bucket_of(i)` for `i in 0..16`.
    const LUT_LO: [i8; 16] = [0, 1, 2, 4, 8, 8, 8, 8, 16, 16, 16, 16, 16, 16, 16, 16];
    /// The bucket byte determined by a non-zero high nibble: counts 16–31
    /// bucket to 32, 32–127 to 64, 128–255 to 128. Index 0 is unused (the
    /// low-nibble LUT is selected instead).
    const LUT_HI: [i8; 16] = [
        0,
        32,
        64,
        64,
        64,
        64,
        64,
        64,
        128u8 as i8,
        128u8 as i8,
        128u8 as i8,
        128u8 as i8,
        128u8 as i8,
        128u8 as i8,
        128u8 as i8,
        128u8 as i8,
    ];

    /// Classifies 32 bytes of hit counts in-register: two `vpshufb` nibble
    /// lookups blended on "high nibble == 0". Exactly `bucket_of` per byte.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn classify_bytes_avx2(v: __m256i) -> __m256i {
        let mask0f = _mm256_set1_epi8(0x0F);
        // SAFETY: both LUTs are 16-byte arrays read in full, unaligned.
        let (lut_lo, lut_hi) = unsafe {
            (
                _mm256_broadcastsi128_si256(_mm_loadu_si128(LUT_LO.as_ptr().cast())),
                _mm256_broadcastsi128_si256(_mm_loadu_si128(LUT_HI.as_ptr().cast())),
            )
        };
        let lo = _mm256_and_si256(v, mask0f);
        let hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), mask0f);
        let lo_b = _mm256_shuffle_epi8(lut_lo, lo);
        let hi_b = _mm256_shuffle_epi8(lut_hi, hi);
        let hi_is_zero = _mm256_cmpeq_epi8(hi, _mm256_setzero_si256());
        _mm256_blendv_epi8(hi_b, lo_b, hi_is_zero)
    }

    /// Per-32-bit-lane "store these lanes" mask for a masked write-back:
    /// sign bit set exactly in the lanes where `c` differs from `v`.
    ///
    /// Classification fixes zero blocks and already-bucketed bytes in
    /// place, so masking the store on "changed" both keeps clean cache
    /// lines clean *and* removes the data-dependent skip branch — on real
    /// coverage maps block-nonzero occupancy sits near 50% at typical
    /// densities, the worst case for the branch predictor, and a
    /// mispredicted skip costs more than the classify arithmetic it saves.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn changed_lanes(c: __m256i, v: __m256i) -> __m256i {
        let changed = _mm256_xor_si256(c, v);
        let lane_unchanged = _mm256_cmpeq_epi32(changed, _mm256_setzero_si256());
        // NOT(lane_unchanged): andnot(a, ones) = !a.
        _mm256_andnot_si256(lane_unchanged, _mm256_set1_epi8(-1))
    }

    /// AVX2 classify: 32-byte blocks, branchless in-register bucket
    /// mapping, masked write-back of only the lanes classification
    /// changed (no branches in the loop at all).
    pub(super) fn classify_avx2(counts: &mut [u8]) {
        // SAFETY: see module-level safety argument.
        unsafe { classify_avx2_body(counts) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn classify_avx2_body(counts: &mut [u8]) {
        let len = counts.len();
        let blocks = len / 32;
        let ptr = counts.as_mut_ptr();
        // SAFETY: see module-level safety argument.
        unsafe {
            for i in 0..blocks {
                let p = ptr.add(i * 32);
                let v = _mm256_loadu_si256(p.cast::<__m256i>());
                let c = classify_bytes_avx2(v);
                // Zero blocks classify to themselves: mask is empty, no
                // store, no branch.
                _mm256_maskstore_epi32(p.cast::<i32>(), changed_lanes(c, v), c);
            }
        }
        classify_slice(&mut counts[blocks * 32..]);
    }

    /// AVX2 compare: 32-byte blocks; `vptest` on `cur & virgin` skips
    /// no-news blocks without a store, `vpcmpeqb` against 0xFF detects
    /// brand-new edges, `vpandn` clears covered virgin bits.
    pub(super) fn compare_avx2(cur: &[u8], virgin: &mut [u8]) -> NewCoverage {
        // SAFETY: see module-level safety argument.
        unsafe { compare_avx2_body(cur, virgin) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn compare_avx2_body(cur: &[u8], virgin: &mut [u8]) -> NewCoverage {
        assert_eq!(cur.len(), virgin.len(), "region length mismatch");
        let len = cur.len();
        let blocks = len / 32;
        let mut verdict = NewCoverage::None;
        let cur_ptr = cur.as_ptr();
        let vir_ptr = virgin.as_mut_ptr();
        // SAFETY: see module-level safety argument.
        unsafe {
            let ff = _mm256_set1_epi8(-1);
            for i in 0..blocks {
                let cp = cur_ptr.add(i * 32).cast::<__m256i>();
                let vp = vir_ptr.add(i * 32).cast::<__m256i>();
                let c = _mm256_loadu_si256(cp);
                let v = _mm256_loadu_si256(vp);
                let hits = _mm256_and_si256(c, v);
                if _mm256_testz_si256(hits, hits) != 0 {
                    continue;
                }
                if verdict < NewCoverage::NewEdge {
                    let virgin_ff = _mm256_cmpeq_epi8(v, ff);
                    let edge = _mm256_and_si256(hits, virgin_ff);
                    if _mm256_testz_si256(edge, edge) == 0 {
                        raise(&mut verdict, NewCoverage::NewEdge);
                    } else {
                        raise(&mut verdict, NewCoverage::NewBucket);
                    }
                }
                _mm256_storeu_si256(vp, _mm256_andnot_si256(c, v));
            }
        }
        let tail = blocks * 32;
        verdict.max(compare_region(&cur[tail..], &mut virgin[tail..]))
    }

    /// AVX2 fused classify+compare: classify a block in-register, store the
    /// classified counts, and diff them against virgin while both are still
    /// in registers — each cache line of the region is touched once.
    pub(super) fn fused_avx2(cur: &mut [u8], virgin: &mut [u8]) -> NewCoverage {
        // SAFETY: see module-level safety argument.
        unsafe { fused_avx2_body(cur, virgin) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn fused_avx2_body(cur: &mut [u8], virgin: &mut [u8]) -> NewCoverage {
        assert_eq!(cur.len(), virgin.len(), "region length mismatch");
        let len = cur.len();
        let blocks = len / 32;
        let mut verdict = NewCoverage::None;
        let cur_ptr = cur.as_mut_ptr();
        let vir_ptr = virgin.as_mut_ptr();
        // SAFETY: see module-level safety argument.
        unsafe {
            let ff = _mm256_set1_epi8(-1);
            for i in 0..blocks {
                let cp = cur_ptr.add(i * 32);
                let raw = _mm256_loadu_si256(cp.cast::<__m256i>());
                // Branchless classify + masked write-back, exactly as
                // classify_avx2 (zero blocks produce an empty mask).
                let c = classify_bytes_avx2(raw);
                _mm256_maskstore_epi32(cp.cast::<i32>(), changed_lanes(c, raw), c);
                let vp = vir_ptr.add(i * 32).cast::<__m256i>();
                let v = _mm256_loadu_si256(vp);
                let hits = _mm256_and_si256(c, v);
                // This skip branch stays: in steady state virgin already
                // absorbed the covered bits, so `hits` is almost always
                // zero and the branch predicts near-perfectly — unlike
                // the raw-counts occupancy it replaced.
                if _mm256_testz_si256(hits, hits) != 0 {
                    continue;
                }
                if verdict < NewCoverage::NewEdge {
                    let virgin_ff = _mm256_cmpeq_epi8(v, ff);
                    let edge = _mm256_and_si256(hits, virgin_ff);
                    if _mm256_testz_si256(edge, edge) == 0 {
                        raise(&mut verdict, NewCoverage::NewEdge);
                    } else {
                        raise(&mut verdict, NewCoverage::NewBucket);
                    }
                }
                _mm256_storeu_si256(vp, _mm256_andnot_si256(c, v));
            }
        }
        let tail = blocks * 32;
        verdict.max(classify_and_compare_region(
            &mut cur[tail..],
            &mut virgin[tail..],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::bucket_of;

    #[test]
    fn scalar_table_always_available() {
        let table = table_for(KernelKind::Scalar).expect("scalar is universal");
        assert_eq!(table.kind, KernelKind::Scalar);
        assert!(available().contains(&KernelKind::Scalar));
    }

    #[test]
    fn labels_round_trip() {
        for kind in KernelKind::ALL {
            assert_eq!(KernelKind::from_label(kind.label()), Some(kind));
            assert_eq!(kind.to_string(), kind.label());
        }
        assert_eq!(KernelKind::from_label("neon"), None);
    }

    #[test]
    fn select_honours_supported_override() {
        assert_eq!(select(Some("scalar")).kind, KernelKind::Scalar);
    }

    #[test]
    fn select_falls_back_on_unknown_override() {
        let auto = select(None).kind;
        assert_eq!(select(Some("quantum")).kind, auto);
    }

    #[test]
    fn auto_selection_prefers_widest_available() {
        let auto = select(None).kind;
        let avail = available();
        assert_eq!(auto, *avail.last().unwrap());
    }

    #[test]
    fn active_is_stable_and_counts_invocations() {
        let table = active();
        assert_eq!(active().kind, table.kind);
        let before = invocations(table.kind);
        let mut buf = vec![3u8; 64];
        table.classify(&mut buf);
        assert!(invocations(table.kind) > before);
        assert!(buf.iter().all(|&b| b == 4)); // 3 hits → bucket 4
    }

    #[test]
    fn every_available_kernel_matches_scalar_on_a_smoke_region() {
        // The exhaustive equivalence check lives in
        // tests/kernel_equivalence.rs; this is a cheap always-on guard.
        let mut raw = vec![0u8; 300];
        for (i, b) in raw.iter_mut().enumerate() {
            if i % 7 == 0 {
                *b = (i % 256) as u8;
            }
        }
        for kind in available() {
            let table = table_for(kind).unwrap();

            let mut expect_cur = raw.clone();
            let mut expect_virgin = vec![0xFFu8; 300];
            let expect = classify_and_compare_region(&mut expect_cur, &mut expect_virgin);

            let mut got_cur = raw.clone();
            let mut got_virgin = vec![0xFFu8; 300];
            let got = table.classify_and_compare(&mut got_cur, &mut got_virgin);

            assert_eq!(got, expect, "{kind}: fused verdict");
            assert_eq!(got_cur, expect_cur, "{kind}: classified bytes");
            assert_eq!(got_virgin, expect_virgin, "{kind}: virgin bytes");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn demoted_sse2_fused_matches_the_oracle() {
        // SSE2_TABLE routes fused work to the scalar oracle (the vector
        // variant measured slower at every size — see the table comment),
        // but the demoted kernel stays equivalence-tested so re-promoting
        // it on different hardware is a one-line change.
        let mut raw = vec![0u8; 300];
        for (i, b) in raw.iter_mut().enumerate() {
            if i % 5 == 0 {
                *b = (i % 256) as u8;
            }
        }
        let mut expect_cur = raw.clone();
        let mut expect_virgin = vec![0xFFu8; 300];
        let expect = classify_and_compare_region(&mut expect_cur, &mut expect_virgin);

        let mut got_cur = raw;
        let mut got_virgin = vec![0xFFu8; 300];
        let got = x86::fused_sse2(&mut got_cur, &mut got_virgin);

        assert_eq!(got, expect, "fused verdict");
        assert_eq!(got_cur, expect_cur, "classified bytes");
        assert_eq!(got_virgin, expect_virgin, "virgin bytes");
    }

    #[test]
    fn vector_classify_handles_all_byte_values() {
        // One of each possible byte value, long enough to hit the vector
        // path, plus a short tail.
        let raw: Vec<u8> = (0..=255u8).chain(0..37u8).collect();
        let expect: Vec<u8> = raw.iter().map(|&b| bucket_of(b)).collect();
        for kind in available() {
            let mut got = raw.clone();
            table_for(kind).unwrap().classify(&mut got);
            assert_eq!(got, expect, "{kind}: classify table");
        }
    }

    #[test]
    fn verdict_detection_matches_on_edge_vs_bucket() {
        for kind in available() {
            let table = table_for(kind).unwrap();
            let mut virgin = vec![0xFFu8; 128];
            let mut cur = vec![0u8; 128];
            cur[65] = 1;
            assert_eq!(
                table.compare(&cur, &mut virgin),
                NewCoverage::NewEdge,
                "{kind}: first touch"
            );
            assert_eq!(
                table.compare(&cur, &mut virgin),
                NewCoverage::None,
                "{kind}: repeat"
            );
            cur[65] = 2;
            assert_eq!(
                table.compare(&cur, &mut virgin),
                NewCoverage::NewBucket,
                "{kind}: higher bucket on known slot"
            );
        }
    }
}
