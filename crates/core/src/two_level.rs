//! BigMap's adaptive two-level coverage bitmap — the paper's contribution.
//!
//! Three data structures (§IV-A):
//!
//! 1. an **index bitmap** mapping each coverage key to a slot in the
//!    condensed coverage map (`u32::MAX` = the paper's `-1` sentinel:
//!    "no slot assigned yet"),
//! 2. a **coverage bitmap** holding the hit counts, densely packed,
//! 3. **`used_key`**, the next free slot / length of the used prefix.
//!
//! On the first touch of a key the update path assigns the next free slot
//! and bumps `used_key` (Listing 2 of the paper); every later touch is one
//! extra well-cached index load plus the same coverage increment AFL does.
//! Because the index bitmap is **never reset**, a key keeps its slot for the
//! whole campaign, so the global virgin maps can be condensed the same way
//! and every per-test-case operation runs over `[0 .. used_key)` instead of
//! the whole allocation.

use crate::alloc::MapBuffer;
use crate::hash::hash_to_last_nonzero;
use crate::kernels;
use crate::map_size::{MapSize, MapSizeError};
use crate::traits::{CoverageMap, MapScheme, NewCoverage};
use crate::virgin::VirginState;

/// The paper's `-1`: "this key has no condensed slot yet".
pub const UNASSIGNED: u32 = u32::MAX;

/// BigMap's two-level condensed coverage bitmap.
///
/// # Examples
///
/// ```rust
/// use bigmap_core::{BigMap, CoverageMap, MapSize};
///
/// # fn main() -> Result<(), bigmap_core::MapSizeError> {
/// let mut map = BigMap::new(MapSize::M8)?;
///
/// // Three events on two distinct keys consume two condensed slots:
/// map.record(0xAAAA);
/// map.record(0xBBBB);
/// map.record(0xAAAA);
/// assert_eq!(map.used_len(), 2);
///
/// // Slots are assigned in discovery order and are stable:
/// assert_eq!(map.slot_of_key(0xAAAA), Some(0));
/// assert_eq!(map.slot_of_key(0xBBBB), Some(1));
/// assert_eq!(map.value_of_key(0xAAAA), 2);
///
/// // Reset clears the 2-byte used prefix, not 8 MiB — and keeps the
/// // slot assignments.
/// map.reset();
/// assert_eq!(map.slot_of_key(0xAAAA), Some(0));
/// assert_eq!(map.value_of_key(0xAAAA), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BigMap {
    index: MapBuffer<u32>,
    coverage: MapBuffer<u8>,
    used_key: u32,
    size: MapSize,
    mask: u32,
}

impl BigMap {
    /// Creates a two-level bitmap for a hash space of `size` keys.
    ///
    /// This performs the campaign's **single** whole-map touch: the index
    /// bitmap is filled with the [`UNASSIGNED`] sentinel and the coverage
    /// bitmap is zeroed (§IV-B "initialize").
    ///
    /// # Errors
    ///
    /// Infallible for validated [`MapSize`] values; the `Result` mirrors the
    /// construction-from-bytes path used by callers that parse sizes.
    pub fn new(size: MapSize) -> Result<Self, MapSizeError> {
        Ok(BigMap {
            index: MapBuffer::filled(size.bytes(), UNASSIGNED),
            coverage: MapBuffer::zeroed(size.bytes()),
            used_key: 0,
            size,
            mask: size.mask(),
        })
    }

    /// The current `used_key` watermark: number of condensed slots assigned
    /// so far (= number of distinct coverage keys ever recorded).
    #[inline]
    pub fn used_key(&self) -> u32 {
        self.used_key
    }

    /// The condensed slot assigned to `key`, or `None` if the key has never
    /// been recorded.
    pub fn slot_of_key(&self, key: u32) -> Option<u32> {
        let entry = self.index[self.fold(key)];
        (entry != UNASSIGNED).then_some(entry)
    }

    /// Read-only view of the full index bitmap (tests, cache-trace adapters).
    pub fn index_slice(&self) -> &[u32] {
        self.index.as_slice()
    }

    /// Read-only view of the full coverage allocation (not just the used
    /// prefix).
    pub fn coverage_slice(&self) -> &[u8] {
        self.coverage.as_slice()
    }

    #[inline]
    fn fold(&self, key: u32) -> usize {
        (key & self.mask) as usize
    }

    #[inline]
    fn used(&self) -> usize {
        self.used_key as usize
    }
}

impl CoverageMap for BigMap {
    fn scheme(&self) -> MapScheme {
        MapScheme::TwoLevel
    }

    fn map_size(&self) -> MapSize {
        self.size
    }

    #[inline]
    fn record(&mut self, key: u32) {
        // Listing 2: query the index bitmap; assign the next free slot on
        // first touch; bump the condensed hit count. The sentinel check is
        // almost always not-taken (new-edge discovery is rare), which is
        // why the indirection is nearly free in practice (§IV-D).
        let e = self.fold(key);
        let mut k = self.index[e];
        if k == UNASSIGNED {
            k = self.used_key;
            self.index[e] = k;
            self.used_key += 1;
        }
        let v = &mut self.coverage[k as usize];
        *v = v.saturating_add(1);
    }

    fn reset(&mut self) {
        // Only the used prefix — the whole point. The index bitmap is NOT
        // touched: slot assignments persist for the campaign (§IV-B).
        let used = self.used();
        self.coverage[..used].fill(0);
    }

    fn classify(&mut self) {
        // The condensed prefix goes through the same dispatch table as the
        // flat map's whole-allocation pass: the kernels are offset- and
        // length-agnostic, so `[0 .. used_key)` needs no special casing.
        let used = self.used();
        kernels::active().classify(&mut self.coverage[..used]);
    }

    fn compare(&mut self, virgin: &mut VirginState) -> NewCoverage {
        assert_eq!(virgin.map_size(), self.size, "virgin map size mismatch");
        let used = self.used();
        kernels::active().compare(&self.coverage[..used], &mut virgin.as_mut_slice()[..used])
    }

    fn classify_and_compare(&mut self, virgin: &mut VirginState) -> NewCoverage {
        assert_eq!(virgin.map_size(), self.size, "virgin map size mismatch");
        let used = self.used();
        kernels::active().classify_and_compare(
            &mut self.coverage[..used],
            &mut virgin.as_mut_slice()[..used],
        )
    }

    fn hash(&self) -> u32 {
        // §IV-D: hash up to the last non-zero byte, so the hash is a pure
        // function of the path and not of how far used_key has grown.
        hash_to_last_nonzero(&self.coverage[..self.used()])
    }

    fn count_nonzero(&self) -> usize {
        self.coverage[..self.used()]
            .iter()
            .filter(|&&b| b != 0)
            .count()
    }

    fn used_len(&self) -> usize {
        self.used()
    }

    fn for_each_nonzero(&self, f: &mut dyn FnMut(usize, u8)) {
        for (i, &b) in self.coverage[..self.used()].iter().enumerate() {
            if b != 0 {
                f(i, b);
            }
        }
    }

    fn active_region(&self) -> &[u8] {
        &self.coverage[..self.used()]
    }

    fn value_of_key(&self, key: u32) -> u8 {
        match self.slot_of_key(key) {
            Some(slot) => self.coverage[slot as usize],
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small() -> BigMap {
        BigMap::new(MapSize::K64).unwrap()
    }

    #[test]
    fn paper_figure4_update_example() {
        // Figure 4(b): edge ID 8 arrives when used_key = 5; it gets slot 5.
        let mut map = small();
        for key in [1u32, 2, 8, 12, 5] {
            map.record(key);
        }
        assert_eq!(map.used_key(), 5);
        map.record(8); // existing key: no new slot
        assert_eq!(map.used_key(), 5);
        assert_eq!(map.slot_of_key(8), Some(2));
        map.record(40); // brand-new key: next slot = 5
        assert_eq!(map.slot_of_key(40), Some(5));
        assert_eq!(map.used_key(), 6);
    }

    #[test]
    fn slots_assigned_in_discovery_order() {
        let mut map = small();
        map.record(0xCAFE);
        map.record(0x0001);
        map.record(0xBEEF);
        assert_eq!(map.slot_of_key(0xCAFE), Some(0));
        assert_eq!(map.slot_of_key(0x0001), Some(1));
        assert_eq!(map.slot_of_key(0xBEEF), Some(2));
        assert_eq!(map.slot_of_key(0x1234), None);
    }

    #[test]
    fn reset_preserves_index_and_clears_prefix_only() {
        let mut map = small();
        map.record(7);
        map.record(9);
        map.reset();
        assert_eq!(map.used_key(), 2);
        assert_eq!(map.slot_of_key(7), Some(0));
        assert_eq!(map.value_of_key(7), 0);
        // Re-recording reuses the same slot.
        map.record(7);
        assert_eq!(map.slot_of_key(7), Some(0));
        assert_eq!(map.used_key(), 2);
    }

    #[test]
    fn used_key_never_exceeds_distinct_keys() {
        let mut map = small();
        for i in 0..1000u32 {
            map.record(i % 100);
        }
        assert_eq!(map.used_key(), 100);
        assert_eq!(map.used_len(), 100);
    }

    #[test]
    fn folding_collides_like_afl() {
        // Keys equal modulo map size collide — that is the hash collision
        // the paper mitigates with LARGER maps, not with the indirection.
        let mut map = small();
        map.record(5);
        map.record(5 + (1 << 16));
        assert_eq!(map.used_key(), 1);
        assert_eq!(map.value_of_key(5), 2);
    }

    #[test]
    fn classify_operates_on_prefix() {
        let mut map = small();
        for _ in 0..20 {
            map.record(11);
        }
        map.record(13);
        map.classify();
        assert_eq!(map.value_of_key(11), 32); // 20 hits → [16-31] = 32
        assert_eq!(map.value_of_key(13), 1);
    }

    #[test]
    fn compare_lifecycle_condensed_virgin() {
        let mut map = small();
        let mut virgin = VirginState::new(MapSize::K64);

        map.record(0xAB);
        map.classify();
        assert_eq!(map.compare(&mut virgin), NewCoverage::NewEdge);

        map.reset();
        map.record(0xAB);
        map.classify();
        assert_eq!(map.compare(&mut virgin), NewCoverage::None);

        map.reset();
        map.record(0xAB);
        map.record(0xAB);
        map.record(0xAB);
        map.classify();
        assert_eq!(map.compare(&mut virgin), NewCoverage::NewBucket);
    }

    #[test]
    fn hash_stable_across_used_key_growth() {
        // The §IV-D P1/P3 scenario end-to-end on the real structure.
        let mut map = small();
        let run = |map: &mut BigMap, keys: &[u32]| {
            map.reset();
            for &k in keys {
                map.record(k);
            }
            map.classify();
            map.hash()
        };
        let p1 = run(&mut map, &[10, 20]); // A->B->C
        let p2 = run(&mut map, &[10, 20, 30]); // discovers D, used_key -> 3
        let p3 = run(&mut map, &[10, 20]); // same path as P1
        assert_eq!(p1, p3, "same path must hash identically after growth");
        assert_ne!(p1, p2);
    }

    #[test]
    fn empty_map_operations_are_noops() {
        let mut map = small();
        let mut virgin = VirginState::new(MapSize::K64);
        map.reset();
        map.classify();
        assert_eq!(map.compare(&mut virgin), NewCoverage::None);
        assert_eq!(map.hash(), crate::hash::Crc32::checksum(b""));
        assert_eq!(map.count_nonzero(), 0);
        assert_eq!(map.used_len(), 0);
    }

    #[test]
    fn for_each_nonzero_uses_condensed_slots() {
        let mut map = small();
        map.record(0xF00);
        map.record(0xF00);
        map.record(0x00F);
        let mut seen = Vec::new();
        map.for_each_nonzero(&mut |slot, v| seen.push((slot, v)));
        assert_eq!(seen, vec![(0, 2), (1, 1)]);
    }

    #[test]
    #[should_panic(expected = "virgin map size mismatch")]
    fn mismatched_virgin_panics() {
        let mut map = small();
        let mut virgin = VirginState::new(MapSize::M2);
        map.compare(&mut virgin);
    }

    proptest! {
        #[test]
        fn index_entries_unique_and_below_used_key(
            keys in prop::collection::vec(any::<u32>(), 0..500),
        ) {
            let mut map = BigMap::new(MapSize::K64).unwrap();
            for &k in &keys {
                map.record(k);
            }
            let used = map.used_key();
            let mut seen = std::collections::HashSet::new();
            for &entry in map.index_slice() {
                if entry != UNASSIGNED {
                    prop_assert!(entry < used);
                    prop_assert!(seen.insert(entry), "duplicate slot {entry}");
                }
            }
            prop_assert_eq!(seen.len() as u32, used);
        }

        #[test]
        fn used_key_monotone_under_any_interleaving(
            ops in prop::collection::vec(any::<u32>(), 0..300),
        ) {
            let mut map = BigMap::new(MapSize::K64).unwrap();
            let mut last = 0;
            for (i, &k) in ops.iter().enumerate() {
                if i % 7 == 6 {
                    map.reset(); // resets never shrink used_key
                }
                map.record(k);
                prop_assert!(map.used_key() >= last);
                last = map.used_key();
            }
        }

        #[test]
        fn hit_counts_match_reference_counter(
            keys in prop::collection::vec(0u32..2048, 0..400),
        ) {
            let mut map = BigMap::new(MapSize::K64).unwrap();
            let mut reference = std::collections::HashMap::<u32, u32>::new();
            for &k in &keys {
                map.record(k);
                *reference.entry(k).or_default() += 1;
            }
            for (&k, &count) in &reference {
                prop_assert_eq!(
                    map.value_of_key(k) as u32,
                    count.min(255)
                );
            }
        }
    }
}
