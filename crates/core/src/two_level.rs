//! BigMap's adaptive two-level coverage bitmap — the paper's contribution.
//!
//! Three data structures (§IV-A):
//!
//! 1. an **index bitmap** mapping each coverage key to a slot in the
//!    condensed coverage map (`u32::MAX` = the paper's `-1` sentinel:
//!    "no slot assigned yet"),
//! 2. a **coverage bitmap** holding the hit counts, densely packed,
//! 3. **`used_key`**, the next free slot / length of the used prefix.
//!
//! On the first touch of a key the update path assigns the next free slot
//! and bumps `used_key` (Listing 2 of the paper); every later touch is one
//! extra well-cached index load plus the same coverage increment AFL does.
//! Because the index bitmap is **never reset**, a key keeps its slot for the
//! whole campaign, so the global virgin maps can be condensed the same way
//! and every per-test-case operation runs over `[0 .. used_key)` instead of
//! the whole allocation.

use crate::alloc::MapBuffer;
use crate::hash::hash_to_last_nonzero;
use crate::journal::{TouchJournal, DEFAULT_JOURNAL_CAPACITY};
use crate::kernels;
use crate::map_size::{MapSize, MapSizeError};
use crate::sparse::{self, OpPath, SparseMode};
use crate::traits::{CoverageMap, MapScheme, NewCoverage};
use crate::virgin::VirginState;

/// The paper's `-1`: "this key has no condensed slot yet".
pub const UNASSIGNED: u32 = u32::MAX;

/// BigMap's two-level condensed coverage bitmap.
///
/// # Examples
///
/// ```rust
/// use bigmap_core::{BigMap, CoverageMap, MapSize};
///
/// # fn main() -> Result<(), bigmap_core::MapSizeError> {
/// let mut map = BigMap::new(MapSize::M8)?;
///
/// // Three events on two distinct keys consume two condensed slots:
/// map.record(0xAAAA);
/// map.record(0xBBBB);
/// map.record(0xAAAA);
/// assert_eq!(map.used_len(), 2);
///
/// // Slots are assigned in discovery order and are stable:
/// assert_eq!(map.slot_of_key(0xAAAA), Some(0));
/// assert_eq!(map.slot_of_key(0xBBBB), Some(1));
/// assert_eq!(map.value_of_key(0xAAAA), 2);
///
/// // Reset clears the 2-byte used prefix, not 8 MiB — and keeps the
/// // slot assignments.
/// map.reset();
/// assert_eq!(map.slot_of_key(0xAAAA), Some(0));
/// assert_eq!(map.value_of_key(0xAAAA), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BigMap {
    index: MapBuffer<u32>,
    coverage: MapBuffer<u8>,
    used_key: u32,
    size: MapSize,
    mask: u32,
    /// Condensed slots first-touched this exec, epoch-deduped; drives the
    /// sparse pipeline when complete.
    journal: TouchJournal,
    /// Per-instance `BIGMAP_SPARSE` override (`None` = process default).
    sparse_override: Option<SparseMode>,
    /// Path the most recent classify/compare/merged op dispatched to.
    last_path: OpPath,
}

impl BigMap {
    /// Creates a two-level bitmap for a hash space of `size` keys.
    ///
    /// This performs the campaign's **single** whole-map touch: the index
    /// bitmap is filled with the [`UNASSIGNED`] sentinel and the coverage
    /// bitmap is zeroed (§IV-B "initialize").
    ///
    /// # Errors
    ///
    /// Infallible for validated [`MapSize`] values; the `Result` mirrors the
    /// construction-from-bytes path used by callers that parse sizes.
    pub fn new(size: MapSize) -> Result<Self, MapSizeError> {
        Self::with_journal_capacity(size, DEFAULT_JOURNAL_CAPACITY)
    }

    /// Creates a two-level bitmap with an explicit touch-journal bound.
    ///
    /// Mostly for tests and benchmarks: a tiny capacity forces journal
    /// overflow (and thus the dense fallback) cheaply; the default
    /// ([`DEFAULT_JOURNAL_CAPACITY`]) is far above realistic per-exec touch
    /// counts.
    ///
    /// # Errors
    ///
    /// Infallible for validated [`MapSize`] values, like [`BigMap::new`].
    pub fn with_journal_capacity(
        size: MapSize,
        journal_capacity: usize,
    ) -> Result<Self, MapSizeError> {
        Ok(BigMap {
            index: MapBuffer::filled(size.bytes(), UNASSIGNED),
            coverage: MapBuffer::zeroed(size.bytes()),
            used_key: 0,
            size,
            mask: size.mask(),
            journal: TouchJournal::with_capacity(size.bytes(), journal_capacity),
            sparse_override: None,
            last_path: OpPath::Dense,
        })
    }

    /// The current `used_key` watermark: number of condensed slots assigned
    /// so far (= number of distinct coverage keys ever recorded).
    #[inline]
    pub fn used_key(&self) -> u32 {
        self.used_key
    }

    /// The condensed slot assigned to `key`, or `None` if the key has never
    /// been recorded.
    pub fn slot_of_key(&self, key: u32) -> Option<u32> {
        let entry = self.index[self.fold(key)];
        (entry != UNASSIGNED).then_some(entry)
    }

    /// Read-only view of the full index bitmap (tests, cache-trace adapters).
    pub fn index_slice(&self) -> &[u32] {
        self.index.as_slice()
    }

    /// Read-only view of the full coverage allocation (not just the used
    /// prefix).
    pub fn coverage_slice(&self) -> &[u8] {
        self.coverage.as_slice()
    }

    /// The touch journal of the current exec (tests, benchmarks).
    pub fn journal(&self) -> &TouchJournal {
        &self.journal
    }

    #[inline]
    fn fold(&self, key: u32) -> usize {
        (key & self.mask) as usize
    }

    #[inline]
    fn used(&self) -> usize {
        self.used_key as usize
    }

    /// The dispatch policy in force for this instance.
    #[inline]
    fn sparse_mode(&self) -> SparseMode {
        self.sparse_override.unwrap_or_else(sparse::sparse_mode)
    }

    /// One dispatch decision per exec, shared by every per-exec op: the
    /// journal does not change between classify, compare and the merged
    /// pass (and `reset` consumes the same journal at the start of the
    /// next exec), so recomputing the pure policy gives the same answer
    /// each time.
    #[inline]
    fn dispatch_path(&self) -> OpPath {
        sparse::select_path(
            self.sparse_mode(),
            self.journal.is_complete(),
            self.journal.len(),
            self.journal.runs().len(),
            self.used(),
        )
    }
}

impl CoverageMap for BigMap {
    fn scheme(&self) -> MapScheme {
        MapScheme::TwoLevel
    }

    fn map_size(&self) -> MapSize {
        self.size
    }

    #[inline]
    fn record(&mut self, key: u32) {
        // Listing 2: query the index bitmap; assign the next free slot on
        // first touch; bump the condensed hit count. The sentinel check is
        // almost always not-taken (new-edge discovery is rare), which is
        // why the indirection is nearly free in practice (§IV-D).
        let e = self.fold(key);
        let mut k = self.index[e];
        if k == UNASSIGNED {
            k = self.used_key;
            self.index[e] = k;
            self.used_key += 1;
        }
        self.journal.touch(k);
        let v = &mut self.coverage[k as usize];
        *v = v.saturating_add(1);
    }

    fn reset(&mut self) {
        // Only the used prefix — the whole point. The index bitmap is NOT
        // touched: slot assignments persist for the campaign (§IV-B).
        //
        // The journal of the exec being discarded lists every slot written
        // since the previous reset (when complete), so the sparse path can
        // clear exactly those slots instead of memsetting the prefix. The
        // journal then advances: the next exec starts with an empty journal
        // over an all-zero prefix, which re-establishes the completeness
        // invariant inductively.
        let used = self.used();
        match self.dispatch_path() {
            OpPath::Sparse => sparse::reset_runs(&mut self.coverage[..used], self.journal.runs()),
            OpPath::Dense => self.coverage[..used].fill(0),
        }
        if self.journal.overflowed() {
            sparse::note_overflow();
        }
        self.journal.advance();
    }

    fn classify(&mut self) {
        // Dense: the condensed prefix goes through the same dispatch table
        // as the flat map's whole-allocation pass — the kernels are offset-
        // and length-agnostic, so `[0 .. used_key)` needs no special
        // casing. Sparse: bucket only this exec's journaled runs, handing
        // long runs back to the same kernels as sub-slices.
        let used = self.used();
        let path = self.dispatch_path();
        sparse::note_dispatch(path);
        self.last_path = path;
        match path {
            OpPath::Sparse => sparse::classify_runs(
                &mut self.coverage[..used],
                self.journal.runs(),
                kernels::active(),
            ),
            OpPath::Dense => kernels::active().classify(&mut self.coverage[..used]),
        }
    }

    fn compare(&mut self, virgin: &mut VirginState) -> NewCoverage {
        assert_eq!(virgin.map_size(), self.size, "virgin map size mismatch");
        let used = self.used();
        let path = self.dispatch_path();
        sparse::note_dispatch(path);
        self.last_path = path;
        match path {
            OpPath::Sparse => sparse::compare_runs(
                &self.coverage[..used],
                &mut virgin.as_mut_slice()[..used],
                self.journal.runs(),
                kernels::active(),
            ),
            OpPath::Dense => kernels::active()
                .compare(&self.coverage[..used], &mut virgin.as_mut_slice()[..used]),
        }
    }

    fn classify_and_compare(&mut self, virgin: &mut VirginState) -> NewCoverage {
        assert_eq!(virgin.map_size(), self.size, "virgin map size mismatch");
        let used = self.used();
        let path = self.dispatch_path();
        sparse::note_dispatch(path);
        self.last_path = path;
        match path {
            OpPath::Sparse => sparse::classify_and_compare_runs(
                &mut self.coverage[..used],
                &mut virgin.as_mut_slice()[..used],
                self.journal.runs(),
                kernels::active(),
            ),
            OpPath::Dense => kernels::active().classify_and_compare(
                &mut self.coverage[..used],
                &mut virgin.as_mut_slice()[..used],
            ),
        }
    }

    fn hash(&self) -> u32 {
        // §IV-D: hash up to the last non-zero byte, so the hash is a pure
        // function of the path and not of how far used_key has grown.
        // Deliberately dense regardless of the journal: the CRC runs over
        // the prefix in slot order, which a first-touch-ordered journal
        // walk cannot reproduce.
        hash_to_last_nonzero(&self.coverage[..self.used()])
    }

    fn count_nonzero(&self) -> usize {
        self.coverage[..self.used()]
            .iter()
            .filter(|&&b| b != 0)
            .count()
    }

    fn used_len(&self) -> usize {
        self.used()
    }

    fn for_each_nonzero(&self, f: &mut dyn FnMut(usize, u8)) {
        for (i, &b) in self.coverage[..self.used()].iter().enumerate() {
            if b != 0 {
                f(i, b);
            }
        }
    }

    fn active_region(&self) -> &[u8] {
        &self.coverage[..self.used()]
    }

    fn value_of_key(&self, key: u32) -> u8 {
        match self.slot_of_key(key) {
            Some(slot) => self.coverage[slot as usize],
            None => 0,
        }
    }

    fn set_sparse_override(&mut self, mode: Option<SparseMode>) {
        self.sparse_override = mode;
    }

    fn last_op_path(&self) -> OpPath {
        self.last_path
    }

    fn touched_len(&self) -> Option<usize> {
        if self.journal.is_complete() {
            Some(self.journal.len())
        } else {
            None
        }
    }

    fn journal_overflowed(&self) -> bool {
        self.journal.overflowed()
    }

    fn alloc_info(&self) -> Option<(crate::alloc::AllocBackend, bool)> {
        Some((self.coverage.backend(), self.coverage.fell_back()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small() -> BigMap {
        BigMap::new(MapSize::K64).unwrap()
    }

    #[test]
    fn paper_figure4_update_example() {
        // Figure 4(b): edge ID 8 arrives when used_key = 5; it gets slot 5.
        let mut map = small();
        for key in [1u32, 2, 8, 12, 5] {
            map.record(key);
        }
        assert_eq!(map.used_key(), 5);
        map.record(8); // existing key: no new slot
        assert_eq!(map.used_key(), 5);
        assert_eq!(map.slot_of_key(8), Some(2));
        map.record(40); // brand-new key: next slot = 5
        assert_eq!(map.slot_of_key(40), Some(5));
        assert_eq!(map.used_key(), 6);
    }

    #[test]
    fn slots_assigned_in_discovery_order() {
        let mut map = small();
        map.record(0xCAFE);
        map.record(0x0001);
        map.record(0xBEEF);
        assert_eq!(map.slot_of_key(0xCAFE), Some(0));
        assert_eq!(map.slot_of_key(0x0001), Some(1));
        assert_eq!(map.slot_of_key(0xBEEF), Some(2));
        assert_eq!(map.slot_of_key(0x1234), None);
    }

    #[test]
    fn reset_preserves_index_and_clears_prefix_only() {
        let mut map = small();
        map.record(7);
        map.record(9);
        map.reset();
        assert_eq!(map.used_key(), 2);
        assert_eq!(map.slot_of_key(7), Some(0));
        assert_eq!(map.value_of_key(7), 0);
        // Re-recording reuses the same slot.
        map.record(7);
        assert_eq!(map.slot_of_key(7), Some(0));
        assert_eq!(map.used_key(), 2);
    }

    #[test]
    fn used_key_never_exceeds_distinct_keys() {
        let mut map = small();
        for i in 0..1000u32 {
            map.record(i % 100);
        }
        assert_eq!(map.used_key(), 100);
        assert_eq!(map.used_len(), 100);
    }

    #[test]
    fn folding_collides_like_afl() {
        // Keys equal modulo map size collide — that is the hash collision
        // the paper mitigates with LARGER maps, not with the indirection.
        let mut map = small();
        map.record(5);
        map.record(5 + (1 << 16));
        assert_eq!(map.used_key(), 1);
        assert_eq!(map.value_of_key(5), 2);
    }

    #[test]
    fn classify_operates_on_prefix() {
        let mut map = small();
        for _ in 0..20 {
            map.record(11);
        }
        map.record(13);
        map.classify();
        assert_eq!(map.value_of_key(11), 32); // 20 hits → [16-31] = 32
        assert_eq!(map.value_of_key(13), 1);
    }

    #[test]
    fn compare_lifecycle_condensed_virgin() {
        let mut map = small();
        let mut virgin = VirginState::new(MapSize::K64);

        map.record(0xAB);
        map.classify();
        assert_eq!(map.compare(&mut virgin), NewCoverage::NewEdge);

        map.reset();
        map.record(0xAB);
        map.classify();
        assert_eq!(map.compare(&mut virgin), NewCoverage::None);

        map.reset();
        map.record(0xAB);
        map.record(0xAB);
        map.record(0xAB);
        map.classify();
        assert_eq!(map.compare(&mut virgin), NewCoverage::NewBucket);
    }

    #[test]
    fn hash_stable_across_used_key_growth() {
        // The §IV-D P1/P3 scenario end-to-end on the real structure.
        let mut map = small();
        let run = |map: &mut BigMap, keys: &[u32]| {
            map.reset();
            for &k in keys {
                map.record(k);
            }
            map.classify();
            map.hash()
        };
        let p1 = run(&mut map, &[10, 20]); // A->B->C
        let p2 = run(&mut map, &[10, 20, 30]); // discovers D, used_key -> 3
        let p3 = run(&mut map, &[10, 20]); // same path as P1
        assert_eq!(p1, p3, "same path must hash identically after growth");
        assert_ne!(p1, p2);
    }

    #[test]
    fn empty_map_operations_are_noops() {
        let mut map = small();
        let mut virgin = VirginState::new(MapSize::K64);
        map.reset();
        map.classify();
        assert_eq!(map.compare(&mut virgin), NewCoverage::None);
        assert_eq!(map.hash(), crate::hash::Crc32::checksum(b""));
        assert_eq!(map.count_nonzero(), 0);
        assert_eq!(map.used_len(), 0);
    }

    #[test]
    fn for_each_nonzero_uses_condensed_slots() {
        let mut map = small();
        map.record(0xF00);
        map.record(0xF00);
        map.record(0x00F);
        let mut seen = Vec::new();
        map.for_each_nonzero(&mut |slot, v| seen.push((slot, v)));
        assert_eq!(seen, vec![(0, 2), (1, 1)]);
    }

    #[test]
    #[should_panic(expected = "virgin map size mismatch")]
    fn mismatched_virgin_panics() {
        let mut map = small();
        let mut virgin = VirginState::new(MapSize::M2);
        map.compare(&mut virgin);
    }

    #[test]
    fn journal_lists_first_touched_slots_and_resets() {
        use crate::journal::SlotRun;
        let mut map = small();
        map.record(7);
        map.record(9);
        map.record(7);
        // Slots 0 and 1 are assigned in discovery order and touched
        // back-to-back, so they coalesce into one journal run.
        assert_eq!(map.journal().runs(), &[SlotRun { base: 0, len: 2 }]);
        assert_eq!(map.journal().iter_slots().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(map.touched_len(), Some(2));
        map.reset();
        assert!(map.journal().is_empty());
        map.record(9); // existing slot 1, first touch of this exec
        assert_eq!(map.journal().runs(), &[SlotRun { base: 1, len: 1 }]);
    }

    #[test]
    fn forced_sparse_matches_forced_dense_pipeline() {
        let mut sparse_map = small();
        sparse_map.set_sparse_override(Some(SparseMode::On));
        let mut dense_map = small();
        dense_map.set_sparse_override(Some(SparseMode::Off));
        let mut sparse_virgin = VirginState::new(MapSize::K64);
        let mut dense_virgin = VirginState::new(MapSize::K64);

        let execs: &[&[u32]] = &[
            &[1, 2, 3, 2, 2],
            &[1, 2],
            &[9, 9, 9, 9, 9, 9, 9, 9, 9],
            &[1, 2, 3, 9, 40],
            &[],
        ];
        for keys in execs {
            for map in [&mut sparse_map, &mut dense_map] {
                map.reset();
                for &k in *keys {
                    map.record(k);
                }
            }
            let sv = sparse_map.classify_and_compare(&mut sparse_virgin);
            let dv = dense_map.classify_and_compare(&mut dense_virgin);
            assert_eq!(sv, dv, "verdict diverged on {keys:?}");
            assert_eq!(sparse_map.last_op_path(), OpPath::Sparse);
            assert_eq!(dense_map.last_op_path(), OpPath::Dense);
            assert_eq!(sparse_map.hash(), dense_map.hash());
            assert_eq!(sparse_map.active_region(), dense_map.active_region());
            assert_eq!(
                sparse_virgin.as_slice(),
                dense_virgin.as_slice(),
                "virgin state diverged on {keys:?}"
            );
        }
    }

    #[test]
    fn journal_overflow_falls_back_dense_and_stays_correct() {
        let mut map = BigMap::with_journal_capacity(MapSize::K64, 2).unwrap();
        map.set_sparse_override(Some(SparseMode::On));
        let mut virgin = VirginState::new(MapSize::K64);
        let mut reference = small();
        reference.set_sparse_override(Some(SparseMode::Off));
        let mut ref_virgin = VirginState::new(MapSize::K64);

        // Fresh keys get consecutive slots and coalesce into one run, so
        // the first exec fits capacity 2 however many keys it records.
        // Overflow needs ≥ 3 *scattered* runs: re-touching alternating
        // established slots does exactly that.
        let execs: &[(&[u32], bool)] = &[
            (&[1, 2, 3, 4, 5, 6], false), // slots 0..6: one run
            (&[1, 3], false),             // slots 0, 2: two runs
            (&[1, 3, 5], true),           // slots 0, 2, 4: third run dropped
            (&[2, 3, 4], false),          // slots 1..4: one run again
        ];
        for &(keys, expect_overflow) in execs {
            map.reset();
            reference.reset();
            for &k in keys {
                map.record(k);
                reference.record(k);
            }
            let overflowed = map.journal_overflowed();
            assert_eq!(overflowed, expect_overflow, "keys {keys:?}");
            assert_eq!(map.touched_len().is_none(), overflowed);
            let got = map.classify_and_compare(&mut virgin);
            let want = reference.classify_and_compare(&mut ref_virgin);
            assert_eq!(got, want);
            if overflowed {
                assert_eq!(map.last_op_path(), OpPath::Dense);
            } else {
                assert_eq!(map.last_op_path(), OpPath::Sparse);
            }
            assert_eq!(map.hash(), reference.hash());
        }
        assert_eq!(
            &virgin.as_slice()[..map.used_len()],
            &ref_virgin.as_slice()[..reference.used_len()]
        );
    }

    proptest! {
        #[test]
        fn index_entries_unique_and_below_used_key(
            keys in prop::collection::vec(any::<u32>(), 0..500),
        ) {
            let mut map = BigMap::new(MapSize::K64).unwrap();
            for &k in &keys {
                map.record(k);
            }
            let used = map.used_key();
            let mut seen = std::collections::HashSet::new();
            for &entry in map.index_slice() {
                if entry != UNASSIGNED {
                    prop_assert!(entry < used);
                    prop_assert!(seen.insert(entry), "duplicate slot {entry}");
                }
            }
            prop_assert_eq!(seen.len() as u32, used);
        }

        #[test]
        fn used_key_monotone_under_any_interleaving(
            ops in prop::collection::vec(any::<u32>(), 0..300),
        ) {
            let mut map = BigMap::new(MapSize::K64).unwrap();
            let mut last = 0;
            for (i, &k) in ops.iter().enumerate() {
                if i % 7 == 6 {
                    map.reset(); // resets never shrink used_key
                }
                map.record(k);
                prop_assert!(map.used_key() >= last);
                last = map.used_key();
            }
        }

        #[test]
        fn hit_counts_match_reference_counter(
            keys in prop::collection::vec(0u32..2048, 0..400),
        ) {
            let mut map = BigMap::new(MapSize::K64).unwrap();
            let mut reference = std::collections::HashMap::<u32, u32>::new();
            for &k in &keys {
                map.record(k);
                *reference.entry(k).or_default() += 1;
            }
            for (&k, &count) in &reference {
                prop_assert_eq!(
                    map.value_of_key(k) as u32,
                    count.min(255)
                );
            }
        }
    }
}
