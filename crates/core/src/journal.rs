//! Per-exec touch journal: the list of condensed slots first-touched by
//! the current execution, deduplicated by an epoch-stamped side array and
//! stored as maximal runs of consecutive slots.
//!
//! Every per-exec map operation — reset, classify, compare, the merged
//! classify+compare — is bounded by BigMap's condensation to the used
//! prefix `[0 .. used_key)` (§IV-B), but a single execution writes only a
//! small fraction of that prefix. The journal records exactly which
//! condensed slots this exec touched, so the sparse pipeline
//! ([`crate::sparse`]) can process `O(touched)` bytes instead of
//! `O(used_key)`.
//!
//! Three design points matter for the hot path:
//!
//! * **Epoch stamps instead of clearing.** Deduplication uses a per-slot
//!   `u16` epoch array compared against the journal's current epoch; a slot
//!   is journaled only when its stamp is stale. Advancing to the next exec
//!   is a single epoch increment — clearing a per-slot "seen" bitmap (or
//!   the stamps themselves) every exec would itself be an `O(used)` pass
//!   and reintroduce exactly the cost the journal exists to remove. On
//!   `u16` wraparound (once every 65 535 execs) the stamps are refilled
//!   densely; amortized over the wrap period that is well under a byte per
//!   exec.
//! * **Run-length encoding.** Condensation assigns slots in discovery
//!   order, so the edges of one basic-block chain land in consecutive
//!   condensed slots and are touched back-to-back on every later exec.
//!   The journal exploits that: a touch extending the current run is a
//!   single `len += 1`, clustered coverage compresses by the run length,
//!   and — decisively for throughput — the sparse ops can hand whole runs
//!   to the vectorized kernels instead of walking bytes
//!   ([`crate::sparse::classify_and_compare_runs`]).
//! * **Bounded journal with an overflow flag.** The run vector is bounded
//!   (default [`DEFAULT_JOURNAL_CAPACITY`]); a pathological exec that
//!   starts more runs than that sets `overflowed` instead of growing the
//!   vector, and the dispatcher falls back to the dense kernels for that
//!   exec. (Extending an existing run never overflows — it allocates
//!   nothing.) The bound also guarantees `push` never reallocates after
//!   construction.

use crate::alloc::MapBuffer;

/// Default bound on the number of touch runs tracked per exec.
///
/// 64 Ki runs is far above realistic per-exec touch counts (a few percent
/// of the used prefix, mostly coalesced) while keeping the journal's
/// worst-case memory at 512 KiB; executions that exceed it are exactly the
/// high-density scattered execs for which the dense kernels win anyway.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1 << 16;

/// Upper bound on the size-scaled journal capacity (4 Mi runs = 32 MiB of
/// run storage) — proportionally small next to the gigantic map it serves.
pub const MAX_JOURNAL_CAPACITY: usize = 1 << 22;

/// The size-scaled journal capacity for a map of `map_len` condensed slots:
/// `map_len / 256`, clamped to `[DEFAULT_JOURNAL_CAPACITY,
/// MAX_JOURNAL_CAPACITY]`.
///
/// The default 64 Ki bound was tuned at ≤ 16 MiB maps; at 256 MiB–1 GiB a
/// fixed bound would overflow (and force the dense fallback) at densities
/// the sparse path still wins, so the bound grows with the map. Maps at or
/// below 16 MiB get exactly the default — behaviour at the paper's sizes is
/// unchanged.
pub fn capacity_for(map_len: usize) -> usize {
    (map_len >> 8).clamp(DEFAULT_JOURNAL_CAPACITY, MAX_JOURNAL_CAPACITY)
}

/// A maximal run of consecutively-numbered condensed slots, in first-touch
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotRun {
    /// First condensed slot of the run.
    pub base: u32,
    /// Number of consecutive slots; always ≥ 1 for journal-produced runs.
    pub len: u32,
}

impl SlotRun {
    /// One past the last slot of the run.
    #[inline]
    pub fn end(self) -> u32 {
        self.base + self.len
    }

    /// The index range this run covers in a condensed region.
    #[inline]
    pub fn range(self) -> std::ops::Range<usize> {
        self.base as usize..self.end() as usize
    }
}

/// Coalesces an explicit slot list into maximal consecutive runs, in order.
///
/// Test and benchmark helper: the journal itself coalesces during
/// [`TouchJournal::touch`], this reproduces the same encoding from a flat
/// list.
pub fn runs_from_slots(slots: &[u32]) -> Vec<SlotRun> {
    let mut runs: Vec<SlotRun> = Vec::new();
    for &s in slots {
        match runs.last_mut() {
            Some(r) if r.end() == s => r.len += 1,
            _ => runs.push(SlotRun { base: s, len: 1 }),
        }
    }
    runs
}

/// Epoch-stamped journal of the condensed slots first-touched this exec.
///
/// `touch` is called from the map-update hot path and does no journal scan:
/// dedup is one load + compare against the per-slot epoch stamp, and run
/// maintenance is one compare against the last run's end.
#[derive(Debug)]
pub struct TouchJournal {
    /// Maximal runs of distinct slots touched this exec, first-touch order.
    runs: Vec<SlotRun>,
    /// Total distinct slots journaled this exec (sum of run lengths).
    touched: usize,
    /// Per-slot epoch stamp; `epochs[s] == epoch` iff `s` is journaled.
    epochs: MapBuffer<u16>,
    /// Current exec's epoch. Never 0 — 0 is the "never stamped" state.
    epoch: u16,
    /// Bound on `runs.len()`.
    capacity: usize,
    /// Set when a touch was dropped because the journal was full.
    overflowed: bool,
}

impl TouchJournal {
    /// Creates a journal for a map of `map_len` condensed slots with the
    /// size-scaled capacity ([`capacity_for`]).
    ///
    /// # Panics
    ///
    /// Panics if `map_len` is zero (the epoch buffer cannot be empty).
    pub fn new(map_len: usize) -> Self {
        Self::with_capacity(map_len, capacity_for(map_len))
    }

    /// Creates a journal with an explicit run-vector bound.
    ///
    /// A capacity of 0 makes every exec overflow immediately — useful for
    /// forcing the dense fallback in tests.
    ///
    /// # Panics
    ///
    /// Panics if `map_len` is zero.
    pub fn with_capacity(map_len: usize, capacity: usize) -> Self {
        TouchJournal {
            runs: Vec::with_capacity(capacity),
            touched: 0,
            epochs: MapBuffer::zeroed(map_len),
            epoch: 1,
            capacity,
            overflowed: false,
        }
    }

    /// Records that condensed slot `slot` was touched this exec.
    ///
    /// First touch of a slot extends the current run when consecutive,
    /// otherwise starts a new run (or sets the overflow flag if the run
    /// vector is full); repeat touches are a single load + compare.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is outside the map this journal was built for.
    #[inline]
    pub fn touch(&mut self, slot: u32) {
        let stamp = &mut self.epochs[slot as usize];
        if *stamp != self.epoch {
            *stamp = self.epoch;
            if let Some(r) = self.runs.last_mut() {
                if r.end() == slot {
                    r.len += 1;
                    self.touched += 1;
                    return;
                }
            }
            if self.runs.len() < self.capacity {
                self.runs.push(SlotRun { base: slot, len: 1 });
                self.touched += 1;
            } else {
                self.overflowed = true;
            }
        }
    }

    /// Starts the next exec: forgets this exec's touches in O(1).
    ///
    /// The epoch increment invalidates every stamp at once. On `u16`
    /// wraparound the stamp array is refilled with zeroes so stale stamps
    /// from 65 535 execs ago cannot collide with the restarted epoch.
    pub fn advance(&mut self) {
        self.runs.clear();
        self.touched = 0;
        self.overflowed = false;
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.epochs.as_mut_slice().fill(0);
            self.epoch = 1;
        }
    }

    /// The maximal runs of distinct slots touched this exec, in
    /// first-touch order.
    pub fn runs(&self) -> &[SlotRun] {
        &self.runs
    }

    /// The journaled slots, flattened run by run (tests, diagnostics).
    pub fn iter_slots(&self) -> impl Iterator<Item = u32> + '_ {
        self.runs.iter().flat_map(|r| r.base..r.end())
    }

    /// Number of distinct slots journaled this exec.
    pub fn len(&self) -> usize {
        self.touched
    }

    /// Whether no slot has been journaled this exec.
    pub fn is_empty(&self) -> bool {
        self.touched == 0
    }

    /// The journal's run-vector bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether a touch was dropped this exec because the journal was full.
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Whether the journal is a complete account of this exec's touches
    /// (i.e. it did not overflow). Only a complete journal may drive the
    /// sparse pipeline.
    pub fn is_complete(&self) -> bool {
        !self.overflowed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(base: u32, len: u32) -> SlotRun {
        SlotRun { base, len }
    }

    #[test]
    fn first_touch_journals_repeat_touch_dedups() {
        let mut j = TouchJournal::new(64);
        j.touch(5);
        j.touch(9);
        j.touch(5);
        j.touch(5);
        j.touch(0);
        assert_eq!(j.runs(), &[run(5, 1), run(9, 1), run(0, 1)]);
        assert_eq!(j.iter_slots().collect::<Vec<_>>(), vec![5, 9, 0]);
        assert_eq!(j.len(), 3);
        assert!(j.is_complete());
    }

    #[test]
    fn consecutive_touches_coalesce_into_runs() {
        let mut j = TouchJournal::new(64);
        for s in [3, 4, 5, 9, 10, 2] {
            j.touch(s);
        }
        assert_eq!(j.runs(), &[run(3, 3), run(9, 2), run(2, 1)]);
        assert_eq!(j.len(), 6);
        // Descending adjacency does NOT coalesce — only forward extension
        // (`slot == last.end()`) is O(1) on the hot path.
        let mut k = TouchJournal::new(64);
        k.touch(4);
        k.touch(3);
        assert_eq!(k.runs(), &[run(4, 1), run(3, 1)]);
    }

    #[test]
    fn advance_forgets_previous_exec() {
        let mut j = TouchJournal::new(64);
        j.touch(1);
        j.touch(2);
        j.advance();
        assert!(j.is_empty());
        j.touch(2);
        j.touch(3);
        assert_eq!(j.runs(), &[run(2, 2)]);
    }

    #[test]
    fn overflow_sets_flag_and_keeps_bound() {
        let mut j = TouchJournal::with_capacity(64, 2);
        j.touch(0);
        j.touch(5);
        assert!(j.is_complete());
        j.touch(9); // third non-adjacent run start: dropped
        assert!(j.overflowed());
        assert!(!j.is_complete());
        assert_eq!(j.runs().len(), 2, "journal never grows past its capacity");
        // Extending an existing run allocates nothing and is still allowed
        // (the journal is incomplete either way).
        j.touch(6);
        assert_eq!(j.runs(), &[run(0, 1), run(5, 2)]);
        assert_eq!(j.len(), 3);
        // Re-touching an already-journaled slot does not re-trip anything.
        j.touch(0);
        assert_eq!(j.len(), 3);
        // The next exec starts clean.
        j.advance();
        assert!(j.is_complete());
        assert!(j.is_empty());
    }

    #[test]
    fn zero_capacity_always_overflows() {
        let mut j = TouchJournal::with_capacity(16, 0);
        j.touch(0);
        assert!(j.overflowed());
        assert!(j.is_empty());
    }

    #[test]
    fn epoch_wraparound_refills_stamps() {
        let mut j = TouchJournal::new(16);
        // Walk the epoch all the way around. Touch slot 7 in the first
        // exec only; after 65 535 advances the epoch counter has wrapped
        // through its full range and the stamps have been refilled.
        j.touch(7);
        for _ in 0..u16::MAX {
            j.advance();
        }
        // If wraparound failed to refill, slot 7's ancient stamp could
        // equal the restarted epoch and suppress journaling.
        j.touch(7);
        assert_eq!(j.runs(), &[run(7, 1)]);
    }

    #[test]
    fn capacity_scales_with_map_size() {
        // Paper-regime sizes keep the tuned default…
        assert_eq!(capacity_for(1 << 16), DEFAULT_JOURNAL_CAPACITY);
        assert_eq!(capacity_for(2 << 20), DEFAULT_JOURNAL_CAPACITY);
        assert_eq!(capacity_for(16 << 20), DEFAULT_JOURNAL_CAPACITY);
        // …the giant regime scales linearly…
        assert_eq!(capacity_for(256 << 20), 1 << 20);
        // …and the bound caps the journal's own footprint.
        assert_eq!(capacity_for(1 << 30), MAX_JOURNAL_CAPACITY);
        assert_eq!(capacity_for(usize::MAX / 2), MAX_JOURNAL_CAPACITY);
        // The constructor uses the scaled bound.
        assert_eq!(TouchJournal::new(64).capacity(), DEFAULT_JOURNAL_CAPACITY);
    }

    #[test]
    fn runs_from_slots_matches_touch_coalescing() {
        let slots = [3u32, 4, 5, 9, 10, 2, 40];
        let mut j = TouchJournal::new(64);
        for &s in &slots {
            j.touch(s);
        }
        assert_eq!(runs_from_slots(&slots), j.runs());
        assert_eq!(runs_from_slots(&[]), &[]);
    }
}
