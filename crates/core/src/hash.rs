//! Bitmap hashing: CRC32 with the paper's watermark rule (§IV-D).
//!
//! AFL hashes the classified coverage bitmap of every interesting test case
//! so that future executions can be compared by hash instead of a full map
//! diff. The paper keeps AFL's CRC32 but must decide *how much* of the
//! condensed map to hash: always hashing `[0 .. used_key)` is wrong, because
//! `used_key` grows over the campaign and the same execution path would then
//! hash differently before and after an unrelated discovery (the paper's
//! P1/P3 example). BigMap therefore hashes **up to the last non-zero byte**
//! of the used region, making the hash a pure function of the path.

/// Table-driven CRC32 (IEEE 802.3 polynomial, reflected: `0xEDB88320`).
///
/// Implemented from scratch — the reproduction has no external hashing
/// dependency. Matches the standard `crc32` used by zlib and by AFL's
/// toolchain.
///
/// # Examples
///
/// ```rust
/// use bigmap_core::Crc32;
///
/// // Standard test vector: crc32("123456789") = 0xCBF43926.
/// assert_eq!(Crc32::checksum(b"123456789"), 0xCBF4_3926);
///
/// // Incremental hashing produces the same result.
/// let mut h = Crc32::new();
/// h.update(b"1234");
/// h.update(b"56789");
/// assert_eq!(h.finalize(), 0xCBF4_3926);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32 {
    state: u32,
}

const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

impl Crc32 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `data` into the hash.
    pub fn update(&mut self, data: &[u8]) {
        let table = table();
        let mut crc = self.state;
        for &byte in data {
            crc = (crc >> 8) ^ table[((crc ^ byte as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Returns the final CRC value.
    pub fn finalize(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }

    /// One-shot convenience: CRC32 of `data`.
    pub fn checksum(data: &[u8]) -> u32 {
        let mut h = Crc32::new();
        h.update(data);
        h.finalize()
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// Hashes a coverage region using BigMap's watermark rule: only the bytes up
/// to and including the **last non-zero** byte participate.
///
/// With this rule, two executions that produce identical hit counts hash
/// identically even if `used_key` grew in between (the §IV-D P1 = P3 case).
/// An all-zero region hashes as the empty string.
///
/// # Examples
///
/// ```rust
/// use bigmap_core::hash::{hash_to_last_nonzero, Crc32};
///
/// // The §IV-D example: {1,1} and {1,1,0,...} must hash identically.
/// assert_eq!(
///     hash_to_last_nonzero(&[1, 1]),
///     hash_to_last_nonzero(&[1, 1, 0, 0, 0]),
/// );
/// assert_eq!(hash_to_last_nonzero(&[1, 1]), Crc32::checksum(&[1, 1]));
/// ```
pub fn hash_to_last_nonzero(region: &[u8]) -> u32 {
    let end = match region.iter().rposition(|&b| b != 0) {
        Some(pos) => pos + 1,
        None => 0,
    };
    Crc32::checksum(&region[..end])
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_vectors() {
        assert_eq!(Crc32::checksum(b""), 0);
        assert_eq!(Crc32::checksum(b"123456789"), 0xCBF4_3926);
        assert_eq!(Crc32::checksum(b"a"), 0xE8B7_BE43);
        assert_eq!(
            Crc32::checksum(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn hash_paper_example_p1_p2_p3() {
        // §IV-D: P1 = A->B->C with used_key 2, P2 discovers D (used_key 3),
        // P3 repeats P1 but with used_key now 3. Naive prefix hashing gives
        // crc({1,1}) != crc({1,1,0}); the watermark rule restores equality.
        let p1 = [1u8, 1];
        let p2 = [1u8, 1, 1];
        let p3 = [1u8, 1, 0];

        // Demonstrate the discrepancy the paper warns about:
        assert_ne!(Crc32::checksum(&p1), Crc32::checksum(&p3));

        // And that the watermark rule fixes it without conflating P2:
        assert_eq!(hash_to_last_nonzero(&p1), hash_to_last_nonzero(&p3));
        assert_ne!(hash_to_last_nonzero(&p1), hash_to_last_nonzero(&p2));
    }

    #[test]
    fn all_zero_region_hashes_like_empty() {
        assert_eq!(hash_to_last_nonzero(&[0; 64]), Crc32::checksum(b""));
        assert_eq!(hash_to_last_nonzero(&[]), 0);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255).collect();
        let mut h = Crc32::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), Crc32::checksum(&data));
    }

    #[test]
    fn default_equals_new() {
        assert_eq!(Crc32::default(), Crc32::new());
    }

    proptest! {
        #[test]
        fn watermark_invariant_under_zero_padding(
            data in prop::collection::vec(any::<u8>(), 0..256),
            pad in 0usize..64,
        ) {
            let mut padded = data.clone();
            padded.extend(std::iter::repeat_n(0, pad));
            prop_assert_eq!(
                hash_to_last_nonzero(&data),
                hash_to_last_nonzero(&padded)
            );
        }

        #[test]
        fn split_updates_agree(
            data in prop::collection::vec(any::<u8>(), 0..512),
            split in 0usize..512,
        ) {
            let split = split.min(data.len());
            let mut h = Crc32::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            prop_assert_eq!(h.finalize(), Crc32::checksum(&data));
        }

        #[test]
        fn different_last_nonzero_changes_hash(
            data in prop::collection::vec(1u8..=255, 1..128),
        ) {
            // Appending a nonzero byte must change the hashed region.
            let mut longer = data.clone();
            longer.push(1);
            // (CRC32 collisions are possible in principle but not for a
            // one-byte extension of the same prefix.)
            prop_assert_ne!(
                hash_to_last_nonzero(&data),
                hash_to_last_nonzero(&longer)
            );
        }
    }
}
