//! AFL's one-level coverage bitmap — the paper's baseline.
//!
//! The coverage key (e.g. the edge ID `(B_x >> 1) ^ B_y`) indexes the map
//! directly, so hit counts end up scattered across the whole allocation.
//! Every per-test-case operation — reset, classify, compare — must therefore
//! iterate the **full map**, and the hash too: this is precisely the cost
//! the paper measures exploding as the map grows (Figure 3).

use crate::alloc::MapBuffer;
use crate::hash::Crc32;
use crate::kernels;
use crate::map_size::{MapSize, MapSizeError};
use crate::simd::{nontemporal_zero, stream_zero};
use crate::traits::{CoverageMap, MapScheme, NewCoverage};
use crate::virgin::VirginState;

/// Reset strategy for the flat map (§IV-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResetKind {
    /// Plain `memset(0)` — pulls the whole map through the cache.
    Standard,
    /// Non-temporal streaming stores — bypasses the cache.
    NonTemporal,
    /// Standard memset for maps that fit the per-core caches (where the
    /// cached reset is both faster and harmless), non-temporal streaming
    /// for larger maps (where a cached reset would evict everything else —
    /// the §IV-E pollution argument only applies to maps that don't fit).
    /// This is the default and matches the spirit of the paper's setup
    /// ("optimizations mentioned in Section IV-E applied to both AFL and
    /// BigMap").
    #[default]
    Adaptive,
}

/// Maps at or below this size reset with a plain memset under
/// [`ResetKind::Adaptive`] (the modeled L2 capacity). This is the default
/// cutoff of [`crate::simd::nt_threshold`], which `BIGMAP_NT_THRESHOLD`
/// can override at runtime.
pub const ADAPTIVE_RESET_THRESHOLD: usize = crate::simd::NT_THRESHOLD_DEFAULT;

/// AFL's flat, one-level coverage bitmap.
///
/// # Examples
///
/// ```rust
/// use bigmap_core::{CoverageMap, FlatBitmap, MapSize, NewCoverage, VirginState};
///
/// # fn main() -> Result<(), bigmap_core::MapSizeError> {
/// let mut map = FlatBitmap::new(MapSize::K64)?;
/// let mut virgin = VirginState::new(MapSize::K64);
///
/// map.record(42);
/// map.record(42);
/// assert_eq!(map.classify_and_compare(&mut virgin), NewCoverage::NewEdge);
/// assert_eq!(map.value_of_key(42), 2); // two hits → bucket 2
///
/// // The active region of a flat map is always the whole map:
/// assert_eq!(map.used_len(), MapSize::K64.bytes());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FlatBitmap {
    coverage: MapBuffer<u8>,
    size: MapSize,
    mask: u32,
    reset_kind: ResetKind,
}

impl FlatBitmap {
    /// Creates a zeroed flat bitmap of `size` bytes with the default
    /// (adaptive) reset strategy.
    ///
    /// # Errors
    ///
    /// Infallible for validated [`MapSize`] values; the `Result` mirrors the
    /// construction-from-bytes path used by callers that parse sizes.
    pub fn new(size: MapSize) -> Result<Self, MapSizeError> {
        Ok(FlatBitmap {
            coverage: MapBuffer::zeroed(size.bytes()),
            size,
            mask: size.mask(),
            reset_kind: ResetKind::default(),
        })
    }

    /// Creates a flat bitmap with an explicit reset strategy (used by the
    /// §IV-E ablation benches).
    ///
    /// # Errors
    ///
    /// Same contract as [`FlatBitmap::new`].
    pub fn with_reset_kind(size: MapSize, reset_kind: ResetKind) -> Result<Self, MapSizeError> {
        let mut map = Self::new(size)?;
        map.reset_kind = reset_kind;
        Ok(map)
    }

    /// The reset strategy in use.
    pub fn reset_kind(&self) -> ResetKind {
        self.reset_kind
    }

    /// Read-only view of the raw map bytes.
    pub fn as_slice(&self) -> &[u8] {
        self.coverage.as_slice()
    }

    #[inline]
    fn fold(&self, key: u32) -> usize {
        (key & self.mask) as usize
    }
}

impl CoverageMap for FlatBitmap {
    fn scheme(&self) -> MapScheme {
        MapScheme::Flat
    }

    fn alloc_info(&self) -> Option<(crate::alloc::AllocBackend, bool)> {
        Some((self.coverage.backend(), self.coverage.fell_back()))
    }

    fn map_size(&self) -> MapSize {
        self.size
    }

    #[inline]
    fn record(&mut self, key: u32) {
        let slot = self.fold(key);
        let v = &mut self.coverage[slot];
        *v = v.saturating_add(1);
    }

    fn reset(&mut self) {
        match self.reset_kind {
            ResetKind::Standard => self.coverage.as_mut_slice().fill(0),
            // Forced streaming, regardless of size — the ablation arm.
            ResetKind::NonTemporal => stream_zero(self.coverage.as_mut_slice()),
            // Threshold-aware: plain memset below the cutoff, streaming
            // above it (see `simd::nt_threshold`).
            ResetKind::Adaptive => nontemporal_zero(self.coverage.as_mut_slice()),
        }
    }

    fn classify(&mut self) {
        kernels::active().classify(self.coverage.as_mut_slice());
    }

    fn compare(&mut self, virgin: &mut VirginState) -> NewCoverage {
        assert_eq!(virgin.map_size(), self.size, "virgin map size mismatch");
        kernels::active().compare(self.coverage.as_slice(), virgin.as_mut_slice())
    }

    fn classify_and_compare(&mut self, virgin: &mut VirginState) -> NewCoverage {
        assert_eq!(virgin.map_size(), self.size, "virgin map size mismatch");
        kernels::active().classify_and_compare(self.coverage.as_mut_slice(), virgin.as_mut_slice())
    }

    fn hash(&self) -> u32 {
        // AFL hashes the whole map: the operation the paper's Figure 3
        // shows growing with map size.
        Crc32::checksum(self.coverage.as_slice())
    }

    fn count_nonzero(&self) -> usize {
        self.coverage.iter().filter(|&&b| b != 0).count()
    }

    fn used_len(&self) -> usize {
        self.size.bytes()
    }

    fn for_each_nonzero(&self, f: &mut dyn FnMut(usize, u8)) {
        for (i, &b) in self.coverage.iter().enumerate() {
            if b != 0 {
                f(i, b);
            }
        }
    }

    fn active_region(&self) -> &[u8] {
        self.coverage.as_slice()
    }

    fn value_of_key(&self, key: u32) -> u8 {
        self.coverage[self.fold(key)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FlatBitmap {
        FlatBitmap::new(MapSize::K64).unwrap()
    }

    #[test]
    fn record_folds_key_with_mask() {
        let mut map = small();
        map.record(0x0001_0005); // folds to 5 in a 64k map
        assert_eq!(map.value_of_key(5), 1);
        assert_eq!(map.value_of_key(0x0001_0005), 1);
    }

    #[test]
    fn hit_counts_saturate() {
        let mut map = small();
        for _ in 0..300 {
            map.record(9);
        }
        assert_eq!(map.value_of_key(9), 255);
    }

    #[test]
    fn reset_clears_whole_map() {
        for kind in [
            ResetKind::Standard,
            ResetKind::NonTemporal,
            ResetKind::Adaptive,
        ] {
            let mut map = FlatBitmap::with_reset_kind(MapSize::K64, kind).unwrap();
            map.record(1);
            map.record(60_000);
            map.reset();
            assert_eq!(map.count_nonzero(), 0);
            assert_eq!(map.reset_kind(), kind);
        }
    }

    #[test]
    fn classify_buckets_counts() {
        let mut map = small();
        for _ in 0..5 {
            map.record(7);
        }
        map.classify();
        assert_eq!(map.value_of_key(7), 8); // 5 hits → bucket [4-7] = 8
    }

    #[test]
    fn compare_lifecycle() {
        let mut map = small();
        let mut virgin = VirginState::new(MapSize::K64);

        map.record(100);
        map.classify();
        assert_eq!(map.compare(&mut virgin), NewCoverage::NewEdge);

        map.reset();
        map.record(100);
        map.classify();
        assert_eq!(map.compare(&mut virgin), NewCoverage::None);

        map.reset();
        map.record(100);
        map.record(100);
        map.classify();
        assert_eq!(map.compare(&mut virgin), NewCoverage::NewBucket);
    }

    #[test]
    fn used_len_is_full_map() {
        let map = FlatBitmap::new(MapSize::M2).unwrap();
        assert_eq!(map.used_len(), 2 << 20);
    }

    #[test]
    fn for_each_nonzero_reports_slots() {
        let mut map = small();
        map.record(3);
        map.record(500);
        map.record(500);
        let mut seen = Vec::new();
        map.for_each_nonzero(&mut |slot, v| seen.push((slot, v)));
        assert_eq!(seen, vec![(3, 1), (500, 2)]);
    }

    #[test]
    fn hash_differs_when_coverage_differs() {
        let mut a = small();
        let mut b = small();
        a.record(1);
        b.record(2);
        assert_ne!(a.hash(), b.hash());
        b.reset();
        b.record(1);
        assert_eq!(a.hash(), b.hash());
    }

    #[test]
    #[should_panic(expected = "virgin map size mismatch")]
    fn mismatched_virgin_panics() {
        let mut map = small();
        let mut virgin = VirginState::new(MapSize::M2);
        map.compare(&mut virgin);
    }
}
