//! # bigmap-core
//!
//! Core data structures of the BigMap reproduction (Ahmed et al., *BigMap:
//! Future-proofing Fuzzers with Efficient Large Maps*, DSN 2021).
//!
//! Coverage-guided fuzzers in the AFL family track coverage in a byte map
//! indexed by a hash of the program location (for AFL: the edge ID
//! `(B_x >> 1) ^ B_y`). Between test cases the fuzzer performs several
//! whole-map operations — *reset*, *classify*, *compare* and *hash* — whose
//! cost is proportional to the **map size**, even though only a small
//! fraction of the map is ever touched by the target. Enlarging the map to
//! mitigate hash collisions therefore collapses test-case throughput.
//!
//! BigMap's fix is a second level of indirection: an *index bitmap* assigns
//! each coverage key a slot in a *condensed* coverage map on first touch, so
//! the active region is a dense prefix `[0 .. used_key)` and every map
//! operation except the update itself runs over that prefix only.
//!
//! This crate provides both schemes behind one trait:
//!
//! * [`FlatBitmap`] — AFL's one-level map (the baseline),
//! * [`BigMap`] — the paper's adaptive two-level map,
//! * [`CoverageMap`] — the common interface used by the fuzzer,
//! * [`VirginState`] — the global "virgin" map that `compare` diffs against,
//! * the §IV-E optimizations: merged classify+compare, non-temporal reset
//!   ([`simd`]) and huge-page-backed allocation ([`alloc`]),
//! * [`kernels`] — SSE2/AVX2 vector kernels for classify, compare and the
//!   merged pass, selected once at startup into a dispatch table,
//! * [`journal`] / [`sparse`] — the per-exec touched-slot journal and the
//!   adaptive sparse/dense dispatcher that shrink the per-exec map ops
//!   from `O(used_key)` to `O(touched)` at low densities,
//! * [`hash`] — CRC32 with the paper's hash-up-to-last-non-zero rule,
//! * [`timing`] — per-operation runtime accounting used to regenerate the
//!   paper's Figure 3,
//! * [`counters`] — lock-free event counters and wall-time accumulators,
//!   the substrate of the fuzzer's live telemetry layer,
//! * [`env`] — the documented registry of every `BIGMAP_*` environment
//!   knob with typed parse-and-validate accessors,
//! * [`wire`] — the versioned, checksummed binary framing the process
//!   fleet uses to move corpus sync batches across process boundaries.
//!
//! ## Example
//!
//! ```rust
//! use bigmap_core::{BigMap, CoverageMap, MapSize, NewCoverage, VirginState};
//!
//! # fn main() -> Result<(), bigmap_core::MapSizeError> {
//! let mut map = BigMap::new(MapSize::M2)?;
//! let mut virgin = VirginState::new(MapSize::M2);
//!
//! // A test case executes: the instrumentation records raw coverage keys.
//! for key in [0x1234, 0xfeed_beef, 0x1234] {
//!     map.record(key);
//! }
//!
//! // Post-execution pipeline: classify hit counts into buckets and diff
//! // against the global virgin map. Only the 2-slot used prefix is scanned,
//! // not the whole 2 MiB map.
//! assert_eq!(map.classify_and_compare(&mut virgin), NewCoverage::NewEdge);
//! assert_eq!(map.used_len(), 2);
//!
//! map.reset(); // clears the used prefix only
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod alloc;
pub mod classify;
pub mod counters;
pub mod diff;
pub mod env;
pub mod flat;
pub mod hash;
pub mod interp;
pub mod journal;
pub mod kernels;
pub mod map_size;
pub mod simd;
pub mod sparse;
pub mod timing;
pub mod trace;
pub mod traits;
pub mod two_level;
pub mod virgin;
pub mod wire;

pub use alloc::{AllocBackend, HugePolicy, NumaPolicy};
pub use counters::{EventCounter, StageNanos};
pub use env::Knob;
pub use flat::FlatBitmap;
pub use hash::Crc32;
pub use interp::InterpMode;
pub use journal::{SlotRun, TouchJournal};
pub use kernels::{KernelKind, KernelTable};
pub use map_size::{MapSize, MapSizeError};
pub use sparse::{OpPath, SparseMode};
pub use timing::{OpKind, OpStats};
pub use trace::TraceMode;
pub use traits::{CoverageMap, MapScheme, NewCoverage};
pub use two_level::BigMap;
pub use virgin::VirginState;
pub use wire::{SyncBatch, WireError};

/// Builds a boxed coverage map of the given scheme and size.
///
/// Convenience for callers that select the scheme at runtime (the benchmark
/// harness does this per experiment arm).
///
/// # Errors
///
/// Returns [`MapSizeError`] if `size` construction failed upstream — the
/// signature takes an already-validated [`MapSize`], so this function itself
/// is infallible and returns the map directly.
///
/// # Examples
///
/// ```rust
/// use bigmap_core::{build_map, MapScheme, MapSize};
///
/// let map = build_map(MapScheme::TwoLevel, MapSize::K64);
/// assert_eq!(map.map_size(), MapSize::K64);
/// ```
pub fn build_map(scheme: MapScheme, size: MapSize) -> Box<dyn CoverageMap> {
    match scheme {
        MapScheme::Flat => Box::new(FlatBitmap::new(size).expect("validated size")),
        MapScheme::TwoLevel => Box::new(BigMap::new(size).expect("validated size")),
    }
}

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn build_map_selects_scheme() {
        let flat = build_map(MapScheme::Flat, MapSize::K64);
        let two = build_map(MapScheme::TwoLevel, MapSize::K64);
        assert_eq!(flat.scheme(), MapScheme::Flat);
        assert_eq!(two.scheme(), MapScheme::TwoLevel);
        assert_eq!(flat.map_size(), MapSize::K64);
        assert_eq!(two.map_size(), MapSize::K64);
    }

    #[test]
    fn send_sync_bounds() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<FlatBitmap>();
        assert_sync::<FlatBitmap>();
        assert_send::<BigMap>();
        assert_sync::<BigMap>();
        assert_send::<VirginState>();
        assert_sync::<VirginState>();
    }
}
