//! Adaptive sparse/dense dispatch for the per-exec map operations.
//!
//! The PR-4 kernel table ([`crate::kernels`]) picks *how* a dense pass over
//! the used prefix runs (scalar/SSE2/AVX2). This module sits next to it and
//! picks *whether* a dense pass runs at all: when the touch journal
//! ([`crate::journal`]) is a complete account of this exec's writes, the
//! sparse pipeline (classify/compare/fused/reset over journaled slots only)
//! costs `O(touched)` instead of `O(used_key)`.
//!
//! The decision is made once per exec from the journal's density
//! (`touched / used`) against a measured crossover, and is overridable
//! process-wide with `BIGMAP_SPARSE=on|off|auto` (mirroring
//! `BIGMAP_KERNEL`) or per map instance via
//! [`crate::traits::CoverageMap::set_sparse_override`] — the per-instance
//! override exists so one process can run both paths side by side
//! (equivalence tests, benchmark arms).

use std::sync::OnceLock;

use crate::classify::BUCKET_LUT;
use crate::counters::EventCounter;
use crate::diff;
use crate::journal::SlotRun;
use crate::kernels::KernelTable;
use crate::traits::NewCoverage;

/// Dispatch policy for the sparse pipeline, settable via `BIGMAP_SPARSE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SparseMode {
    /// Use the journal-driven sparse path whenever the journal is complete.
    On,
    /// Always use the dense kernel-table path.
    Off,
    /// Pick per exec by journal density against the measured crossover.
    #[default]
    Auto,
}

impl SparseMode {
    /// The env-var spelling of this mode.
    pub fn label(self) -> &'static str {
        match self {
            SparseMode::On => "on",
            SparseMode::Off => "off",
            SparseMode::Auto => "auto",
        }
    }

    /// Parses an env-var spelling (case-insensitive).
    pub fn from_label(label: &str) -> Option<Self> {
        match label.to_ascii_lowercase().as_str() {
            "on" => Some(SparseMode::On),
            "off" => Some(SparseMode::Off),
            "auto" => Some(SparseMode::Auto),
            _ => None,
        }
    }
}

/// Which implementation a per-exec map op dispatched to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OpPath {
    /// Dense kernel-table pass over the whole used prefix.
    #[default]
    Dense,
    /// Journal-driven walk over this exec's touched slots.
    Sparse,
}

impl OpPath {
    /// Stable index for per-path counters.
    fn slot(self) -> usize {
        match self {
            OpPath::Dense => 0,
            OpPath::Sparse => 1,
        }
    }
}

/// Run-count crossover for [`SparseMode::Auto`], as a divisor: the sparse
/// path requires `runs * RUN_CROSSOVER_DIVISOR < used`.
///
/// Each journal run costs a roughly fixed overhead (loop step, prefetch,
/// scalar entry or kernel sub-call) on top of its bytes, so the run count
/// is the sparse walk's primary cost driver. Measured with `bench_mapops`
/// (density sweep, uniform slot layout — all-singleton runs, the worst
/// case) on a 1 MiB prefix: the sparse fused walk costs ~3 ns per
/// singleton run against ~0.07 ns per dense AVX2 byte, putting break-even
/// at `used / runs ≈ 44`; 48 rounds conservative. Clustered layouts (the
/// realistic case — condensation assigns related edges consecutive slots)
/// compress runs by the cluster length and so stay sparse to much higher
/// touched densities, automatically.
pub const RUN_CROSSOVER_DIVISOR: usize = 48;

/// Used-prefix size (bytes) at which the giant-regime crossover divisor
/// takes over.
///
/// Up to tens of MiB the dense pass streams at cache speed and the 1 MiB
/// calibration above transfers. Past ~64 MiB the dense scan's slope
/// changes — the prefix no longer fits any cache level and (without huge
/// pages) every 4 KiB of it costs a DTLB walk — while the sparse walk's
/// per-run cost stays roughly flat, so break-even moves and a re-measured
/// divisor applies.
pub const GIANT_REGIME_BYTES: usize = 64 << 20;

/// Run-count crossover divisor for used prefixes at or above
/// [`GIANT_REGIME_BYTES`].
///
/// Re-measured with `bench_mapops --giant` (uniform singleton runs, the
/// worst case): interpolated break-even sits at `used / runs ≈ 98` for a
/// 256 MiB prefix and `≈ 83` at 1 GiB — a scattered singleton touch over a
/// giant region costs several cache-plus-TLB misses against a dense pass
/// that still streams, so break-even moves well past the base divisor's
/// 48. The constant splits toward the stricter 256 MiB measurement
/// (misclassifying the band between the two as dense costs a slow-but-
/// correct scan; misclassifying it as sparse pays the degrading scattered
/// walk). Re-measure on target hardware with `--giant`; the
/// `giant_probe` example in `bigmap-core` times the sparse walk alone.
pub const GIANT_RUN_CROSSOVER_DIVISOR: usize = 96;

/// The size-aware run-count crossover divisor: the base tuning below
/// [`GIANT_REGIME_BYTES`], the giant-regime re-measurement at or above it.
#[inline]
pub fn run_crossover_divisor(used: usize) -> usize {
    if used >= GIANT_REGIME_BYTES {
        GIANT_RUN_CROSSOVER_DIVISOR
    } else {
        RUN_CROSSOVER_DIVISOR
    }
}

/// Touched-byte crossover for [`SparseMode::Auto`], as a divisor: the
/// sparse path also requires `touched * TOUCHED_CROSSOVER_DIVISOR < used`.
///
/// Long runs are processed by kernel sub-slice calls whose per-byte cost is
/// about twice the single big dense pass (measured: 0.21 vs 0.11 ns/byte at
/// 50% clustered density, where the two paths tie). Requiring touched bytes
/// below half the used prefix caps the worst case for heavily-clustered,
/// high-density execs that the run-count term alone would let through.
pub const TOUCHED_CROSSOVER_DIVISOR: usize = 2;

/// Decides the path for one exec's map ops.
///
/// Pure function of the mode, the journal's completeness, and the work
/// triple (`touched` slots in `runs` runs, against a `used`-byte prefix) —
/// so the decision is testable and identical across classify, compare,
/// fused and reset within one exec. An overflowed (incomplete) journal
/// always forces [`OpPath::Dense`]: the journal no longer lists every
/// touched slot, so the sparse walk would miss coverage.
pub fn select_path(
    mode: SparseMode,
    complete: bool,
    touched: usize,
    runs: usize,
    used: usize,
) -> OpPath {
    if !complete {
        return OpPath::Dense;
    }
    match mode {
        SparseMode::Off => OpPath::Dense,
        SparseMode::On => OpPath::Sparse,
        SparseMode::Auto => {
            if runs.saturating_mul(run_crossover_divisor(used)) < used
                && touched.saturating_mul(TOUCHED_CROSSOVER_DIVISOR) < used
            {
                OpPath::Sparse
            } else {
                OpPath::Dense
            }
        }
    }
}

/// Resolves the process-wide default mode from `BIGMAP_SPARSE`.
///
/// Pure helper behind [`sparse_mode`]; unknown values fall back to
/// [`SparseMode::Auto`] with a warning on stderr, mirroring the
/// `BIGMAP_KERNEL` fallback behaviour.
pub fn select_mode(env_override: Option<&str>) -> SparseMode {
    match env_override {
        None => SparseMode::Auto,
        Some(raw) => match SparseMode::from_label(raw.trim()) {
            Some(mode) => mode,
            None => {
                eprintln!("bigmap: BIGMAP_SPARSE={raw:?} is not one of on|off|auto; using auto");
                SparseMode::Auto
            }
        },
    }
}

/// The process-wide default dispatch mode, resolved once from
/// `BIGMAP_SPARSE` (via [`crate::env::sparse_request`]) on first use.
pub fn sparse_mode() -> SparseMode {
    static MODE: OnceLock<SparseMode> = OnceLock::new();
    *MODE.get_or_init(crate::env::sparse_request)
}

/// Per-path dispatch counters (indexed by `OpPath::slot`), mirroring the
/// kernel table's invocation counters.
static DISPATCHES: [EventCounter; 2] = [EventCounter::new(), EventCounter::new()];

/// Execs whose journal overflowed (dense fallback forced).
static OVERFLOWS: EventCounter = EventCounter::new();

/// Records one dispatched map op on `path`.
#[inline]
pub(crate) fn note_dispatch(path: OpPath) {
    DISPATCHES[path.slot()].incr();
}

/// Records one exec whose journal overflowed.
#[inline]
pub(crate) fn note_overflow() {
    OVERFLOWS.incr();
}

/// Process-wide count of map ops dispatched to `path` so far.
///
/// Diagnostic mirror of [`crate::kernels::invocations`]; the fuzzer's
/// telemetry layer keeps its own per-exec counters on top of this.
pub fn dispatches(path: OpPath) -> u64 {
    DISPATCHES[path.slot()].get()
}

/// Process-wide count of journal overflows observed so far.
pub fn journal_overflows() -> u64 {
    OVERFLOWS.get()
}

/// Journal-driven reset: zeroes exactly the listed condensed slots.
///
/// Equivalent to `counts.fill(0)` over the used prefix whenever `slots`
/// covers every nonzero byte — the journal guarantee — at `O(touched)`
/// cost.
///
/// # Panics
///
/// Panics if any slot index is out of bounds.
pub fn reset_slots(counts: &mut [u8], slots: &[u32]) {
    let len = counts.len();
    assert!(
        slots.iter().all(|&s| (s as usize) < len),
        "slot index out of bounds"
    );
    for &s in slots {
        // SAFETY: every slot was bounds-checked above.
        unsafe {
            *counts.get_unchecked_mut(s as usize) = 0;
        }
    }
}

// ---------------------------------------------------------------- run ops
//
// The journal stores maximal runs of consecutive slots
// ([`crate::journal::SlotRun`]), and these are the ops the BigMap hot path
// actually dispatches to. Runs at or above [`VECTOR_RUN_MIN`] are handed to
// the PR-4 vector kernels as ordinary sub-slices — the kernels are offset-
// and length-agnostic — so clustered coverage is processed at full SIMD
// width; shorter runs take a scalar per-slot loop. Equivalence with the
// dense pass holds under the journal guarantee (runs cover every nonzero
// byte, slots are unique) because each sub-slice call is byte-identical to
// the scalar oracle on that sub-slice and `NewCoverage` verdicts merge by
// `max`.

/// Minimum run length worth a vector-kernel sub-slice call instead of the
/// scalar per-slot loop: one AVX2 block. Below this the kernel's call and
/// head/tail handling cost more than the bytes it would vectorize.
pub const VECTOR_RUN_MIN: usize = 32;

/// Lookahead distance for the run-walk prefetches: far enough to cover a
/// cold line's load latency, near enough to stay inside the L2 miss queue.
const PREFETCH_RUNS_AHEAD: usize = 8;

/// Software-prefetches the `cur`/`virgin` bytes a few runs ahead. The run
/// walk is a latency-bound sequence of random region accesses — overlapping
/// the misses is where the sparse path's constant factor comes from.
#[inline(always)]
fn prefetch_run(cur: &[u8], virgin: &[u8], runs: &[SlotRun], i: usize) {
    #[cfg(target_arch = "x86_64")]
    if let Some(r) = runs.get(i + PREFETCH_RUNS_AHEAD) {
        // SAFETY: every run is bounds-checked by the caller before the walk
        // starts; `_mm_prefetch` itself is a hint with no memory-safety
        // contract.
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch(cur.as_ptr().add(r.base as usize).cast(), _MM_HINT_T0);
            _mm_prefetch(virgin.as_ptr().add(r.base as usize).cast(), _MM_HINT_T0);
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (cur, virgin, runs, i);
    }
}

/// Panics unless every run lies inside a region of `len` bytes.
fn validate_runs(len: usize, runs: &[SlotRun]) {
    assert!(
        runs.iter()
            .all(|r| (r.base as usize) + (r.len as usize) <= len),
        "slot run out of bounds"
    );
}

/// Journal-driven reset over runs: zeroes exactly the journaled slots.
///
/// Long runs become `fill(0)` sub-slice memsets; equivalent to clearing the
/// whole used prefix under the journal guarantee.
///
/// # Panics
///
/// Panics if any run is out of bounds.
pub fn reset_runs(counts: &mut [u8], runs: &[SlotRun]) {
    validate_runs(counts.len(), runs);
    for r in runs {
        counts[r.range()].fill(0);
    }
}

/// Journal-driven classify over runs (see [`crate::classify::classify_slots`]
/// for the slot-level contract: unique slots covering every nonzero byte).
///
/// # Panics
///
/// Panics if any run is out of bounds.
pub fn classify_runs(counts: &mut [u8], runs: &[SlotRun], table: &KernelTable) {
    validate_runs(counts.len(), runs);
    for r in runs {
        if r.len as usize >= VECTOR_RUN_MIN {
            table.classify_uncounted(&mut counts[r.range()]);
        } else {
            for s in r.range() {
                // SAFETY: every run was bounds-checked above.
                unsafe {
                    let b = counts.get_unchecked_mut(s);
                    let c = BUCKET_LUT[*b as usize];
                    if c != *b {
                        *b = c;
                    }
                }
            }
        }
    }
}

/// Journal-driven compare over runs (see [`crate::diff::compare_slots`] for
/// the slot-level contract, including the `hash_to_last_nonzero`
/// crash/hang-virgin semantics).
///
/// # Panics
///
/// Panics if the regions have different lengths or any run is out of
/// bounds.
pub fn compare_runs(
    cur: &[u8],
    virgin: &mut [u8],
    runs: &[SlotRun],
    table: &KernelTable,
) -> NewCoverage {
    assert_eq!(cur.len(), virgin.len(), "region length mismatch");
    validate_runs(cur.len(), runs);
    let mut verdict = NewCoverage::None;
    for (i, r) in runs.iter().enumerate() {
        prefetch_run(cur, virgin, runs, i);
        if r.len as usize >= VECTOR_RUN_MIN {
            verdict = verdict.max(table.compare_uncounted(&cur[r.range()], &mut virgin[r.range()]));
        } else {
            for s in r.range() {
                // SAFETY: every run was bounds-checked above.
                unsafe {
                    diff::diff_byte(
                        *cur.get_unchecked(s),
                        virgin.get_unchecked_mut(s),
                        &mut verdict,
                    );
                }
            }
        }
    }
    verdict
}

/// Journal-driven merged classify + compare over runs (see
/// [`crate::diff::classify_and_compare_slots`] for the slot-level
/// contract; the journal's epoch dedup supplies the uniqueness
/// classification needs).
///
/// # Panics
///
/// Panics if the regions have different lengths or any run is out of
/// bounds.
pub fn classify_and_compare_runs(
    cur: &mut [u8],
    virgin: &mut [u8],
    runs: &[SlotRun],
    table: &KernelTable,
) -> NewCoverage {
    assert_eq!(cur.len(), virgin.len(), "region length mismatch");
    validate_runs(cur.len(), runs);
    let mut verdict = NewCoverage::None;
    for (i, r) in runs.iter().enumerate() {
        prefetch_run(cur, virgin, runs, i);
        if r.len as usize >= VECTOR_RUN_MIN {
            verdict =
                verdict.max(table.fused_uncounted(&mut cur[r.range()], &mut virgin[r.range()]));
        } else {
            for s in r.range() {
                // SAFETY: every run was bounds-checked above.
                unsafe {
                    let p = cur.get_unchecked_mut(s);
                    let b = BUCKET_LUT[*p as usize];
                    // Store elision, as in the dense kernels: most steady-
                    // state bytes are already at their bucket fixed point.
                    if b != *p {
                        *p = b;
                    }
                    diff::diff_byte(b, virgin.get_unchecked_mut(s), &mut verdict);
                }
            }
        }
    }
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for mode in [SparseMode::On, SparseMode::Off, SparseMode::Auto] {
            assert_eq!(SparseMode::from_label(mode.label()), Some(mode));
        }
        assert_eq!(SparseMode::from_label("AUTO"), Some(SparseMode::Auto));
        assert_eq!(SparseMode::from_label("sparse"), None);
    }

    #[test]
    fn select_mode_falls_back_to_auto() {
        assert_eq!(select_mode(None), SparseMode::Auto);
        assert_eq!(select_mode(Some("on")), SparseMode::On);
        assert_eq!(select_mode(Some(" Off ")), SparseMode::Off);
        assert_eq!(select_mode(Some("bogus")), SparseMode::Auto);
    }

    #[test]
    fn overflow_always_forces_dense() {
        for mode in [SparseMode::On, SparseMode::Off, SparseMode::Auto] {
            assert_eq!(
                select_path(mode, false, 1, 1, 1 << 20),
                OpPath::Dense,
                "{mode:?}"
            );
        }
    }

    #[test]
    fn forced_modes_ignore_density() {
        let used = 1 << 20;
        assert_eq!(
            select_path(SparseMode::On, true, used - 1, used - 1, used),
            OpPath::Sparse
        );
        assert_eq!(
            select_path(SparseMode::Off, true, 1, 1, used),
            OpPath::Dense
        );
    }

    #[test]
    fn auto_picks_by_crossover_density() {
        let used = 1 << 20;
        // Scattered singletons (runs == touched): the run term decides.
        // (48 does not divide 1 MiB exactly, so the boundary is div_ceil.)
        let below = used / RUN_CROSSOVER_DIVISOR;
        let at = used.div_ceil(RUN_CROSSOVER_DIVISOR);
        assert_eq!(
            select_path(SparseMode::Auto, true, below, below, used),
            OpPath::Sparse
        );
        assert_eq!(
            select_path(SparseMode::Auto, true, at, at, used),
            OpPath::Dense
        );
        // Clustered coverage (few runs, many touched bytes): the run term
        // passes easily and the touched term takes over at half the prefix.
        let half = used / TOUCHED_CROSSOVER_DIVISOR;
        assert_eq!(
            select_path(SparseMode::Auto, true, half - 1, 64, used),
            OpPath::Sparse
        );
        assert_eq!(
            select_path(SparseMode::Auto, true, half, 64, used),
            OpPath::Dense
        );
        // Degenerate cases: empty journal is maximally sparse; an empty
        // used prefix has nothing to win either way and stays dense.
        assert_eq!(
            select_path(SparseMode::Auto, true, 0, 0, used),
            OpPath::Sparse
        );
        assert_eq!(select_path(SparseMode::Auto, true, 0, 0, 0), OpPath::Dense);
    }

    #[test]
    fn giant_regime_switches_crossover_divisor() {
        // The divisor is size-aware: base tuning below the breakpoint,
        // giant-regime re-measurement at and above it.
        assert_eq!(run_crossover_divisor(1 << 20), RUN_CROSSOVER_DIVISOR);
        assert_eq!(
            run_crossover_divisor(GIANT_REGIME_BYTES - 1),
            RUN_CROSSOVER_DIVISOR
        );
        assert_eq!(
            run_crossover_divisor(GIANT_REGIME_BYTES),
            GIANT_RUN_CROSSOVER_DIVISOR
        );
        assert_eq!(run_crossover_divisor(1 << 30), GIANT_RUN_CROSSOVER_DIVISOR);

        // And select_path actually applies it: a run count that is sparse
        // under the base divisor flips dense in the giant regime exactly at
        // the re-measured boundary — the smallest count where
        // `runs * divisor < used` no longer holds.
        let used: usize = 256 << 20;
        let at = used.div_ceil(GIANT_RUN_CROSSOVER_DIVISOR);
        let below = at - 1;
        assert_eq!(
            select_path(SparseMode::Auto, true, below, below, used),
            OpPath::Sparse
        );
        assert_eq!(
            select_path(SparseMode::Auto, true, at, at, used),
            OpPath::Dense
        );
    }

    #[test]
    fn reset_slots_clears_exactly_the_listed_slots() {
        let mut buf = [7u8; 16];
        reset_slots(&mut buf, &[0, 3, 15]);
        for (i, &b) in buf.iter().enumerate() {
            let expect = if [0, 3, 15].contains(&i) { 0 } else { 7 };
            assert_eq!(b, expect, "slot {i}");
        }
    }

    #[test]
    #[should_panic(expected = "slot index out of bounds")]
    fn reset_slots_rejects_out_of_bounds() {
        reset_slots(&mut [0u8; 4], &[4]);
    }

    #[test]
    fn reset_runs_clears_exactly_the_listed_runs() {
        let mut buf = [7u8; 64];
        let runs = [
            SlotRun { base: 0, len: 3 },
            SlotRun { base: 10, len: 1 },
            SlotRun { base: 60, len: 4 },
        ];
        reset_runs(&mut buf, &runs);
        for (i, &b) in buf.iter().enumerate() {
            let cleared = i < 3 || i == 10 || i >= 60;
            assert_eq!(b, if cleared { 0 } else { 7 }, "slot {i}");
        }
    }

    #[test]
    #[should_panic(expected = "slot run out of bounds")]
    fn run_ops_reject_out_of_bounds_runs() {
        reset_runs(&mut [0u8; 16], &[SlotRun { base: 14, len: 3 }]);
    }

    #[test]
    fn run_ops_match_dense_for_every_available_kernel() {
        use crate::diff::{classify_and_compare_region, compare_region};
        use crate::journal::runs_from_slots;
        use crate::kernels::{available, table_for};

        // A region exercising every dispatch case: one long run (vector
        // sub-slice path), one short run and scattered singletons (scalar
        // path), zero gaps in between.
        let len = 256;
        let mut raw = vec![0u8; len];
        let mut slots: Vec<u32> = Vec::new();
        for s in 16..80u32 {
            raw[s as usize] = (s % 5 + 1) as u8;
            slots.push(s);
        }
        for s in [100u32, 101, 102, 150, 255, 0] {
            raw[s as usize] = 200;
            slots.push(s);
        }
        let runs = runs_from_slots(&slots);
        assert!(runs.iter().any(|r| r.len as usize >= VECTOR_RUN_MIN));
        assert!(runs.iter().any(|r| (r.len as usize) < VECTOR_RUN_MIN));

        for kind in available() {
            let table = table_for(kind).unwrap();

            // Fused pass vs the dense scalar oracle.
            let mut dense_cur = raw.clone();
            let mut dense_virgin = vec![0xFFu8; len];
            let want = classify_and_compare_region(&mut dense_cur, &mut dense_virgin);
            let mut cur = raw.clone();
            let mut virgin = vec![0xFFu8; len];
            let got = classify_and_compare_runs(&mut cur, &mut virgin, &runs, table);
            assert_eq!(got, want, "{kind}: fused verdict");
            assert_eq!(cur, dense_cur, "{kind}: classified bytes");
            assert_eq!(virgin, dense_virgin, "{kind}: virgin bytes");

            // Split classify + compare on partially-trained virgin state.
            let mut split_cur = raw.clone();
            classify_runs(&mut split_cur, &runs, table);
            assert_eq!(split_cur, dense_cur, "{kind}: split classify");
            let verdict = compare_runs(&split_cur, &mut virgin, &runs, table);
            let mut model_virgin = dense_virgin.clone();
            let model = compare_region(&split_cur, &mut model_virgin);
            assert_eq!(verdict, model, "{kind}: replay verdict");
            assert_eq!(virgin, model_virgin, "{kind}: replay virgin");
        }
    }

    #[test]
    fn dispatch_counters_accumulate() {
        let dense0 = dispatches(OpPath::Dense);
        let sparse0 = dispatches(OpPath::Sparse);
        let over0 = journal_overflows();
        note_dispatch(OpPath::Dense);
        note_dispatch(OpPath::Sparse);
        note_dispatch(OpPath::Sparse);
        note_overflow();
        assert_eq!(dispatches(OpPath::Dense), dense0 + 1);
        assert_eq!(dispatches(OpPath::Sparse), sparse0 + 2);
        assert_eq!(journal_overflows(), over0 + 1);
    }
}
