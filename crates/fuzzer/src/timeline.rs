//! Coverage-over-time tracking and plateau detection.
//!
//! The paper's Figure 7 discussion hinges on *plateaus*: "the rate of
//! discovering new edges is initially high and then flattens out …
//! BigMap reached the plateau for all of the benchmarks within the 24
//! hour time budget" while AFL's throughput loss on big maps "prevented
//! it from reaching the plateau". [`CoverageTimeline`] records discovery
//! milestones during a campaign and answers exactly that question.

/// One recorded point: after `execs` executions, `coverage` units (slots,
/// edges — whatever the caller samples) had been discovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelinePoint {
    /// Executions completed when the sample was taken.
    pub execs: u64,
    /// Cumulative coverage at that moment.
    pub coverage: u64,
}

/// A sampled coverage-vs-execs curve.
///
/// # Examples
///
/// ```rust
/// use bigmap_fuzzer::CoverageTimeline;
///
/// let mut t = CoverageTimeline::new();
/// t.record(100, 50);
/// t.record(200, 90);
/// t.record(10_000, 100);
/// t.record(20_000, 101);
/// // Discovery flattened out over the last half of the run:
/// assert!(t.plateaued(0.5, 0.05));
/// ```
#[derive(Debug, Clone, Default)]
pub struct CoverageTimeline {
    points: Vec<TimelinePoint>,
}

impl CoverageTimeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        CoverageTimeline::default()
    }

    /// Records a sample. `execs` must be non-decreasing; coverage is
    /// clamped to be monotone (discovery never un-happens).
    pub fn record(&mut self, execs: u64, coverage: u64) {
        let coverage = match self.points.last() {
            Some(last) => coverage.max(last.coverage),
            None => coverage,
        };
        if let Some(last) = self.points.last_mut() {
            if last.execs == execs {
                last.coverage = coverage;
                return;
            }
            assert!(execs > last.execs, "samples must be taken in order");
        }
        self.points.push(TimelinePoint { execs, coverage });
    }

    /// Records an already-built point (telemetry snapshots convert to
    /// [`TimelinePoint`]s; this folds them into a per-instance curve).
    pub fn record_point(&mut self, point: TimelinePoint) {
        self.record(point.execs, point.coverage);
    }

    /// The recorded points.
    pub fn points(&self) -> &[TimelinePoint] {
        &self.points
    }

    /// The most recent point, if any.
    pub fn last(&self) -> Option<TimelinePoint> {
        self.points.last().copied()
    }

    /// Final coverage (0 if nothing recorded).
    pub fn final_coverage(&self) -> u64 {
        self.points.last().map(|p| p.coverage).unwrap_or(0)
    }

    /// Whether discovery plateaued: over the trailing `window` fraction of
    /// the executions (e.g. 0.5 = the last half), coverage grew by at most
    /// `tolerance` fraction of the final value (e.g. 0.05 = 5%).
    ///
    /// Returns `false` when fewer than two samples exist.
    pub fn plateaued(&self, window: f64, tolerance: f64) -> bool {
        let (Some(first), Some(last)) = (self.points.first(), self.points.last()) else {
            return false;
        };
        if self.points.len() < 2 || last.execs == first.execs {
            return false;
        }
        let cut = last.execs - ((last.execs - first.execs) as f64 * window) as u64;
        let at_cut = self
            .points
            .iter()
            .take_while(|p| p.execs <= cut)
            .last()
            .map(|p| p.coverage)
            .unwrap_or(first.coverage);
        let growth = last.coverage.saturating_sub(at_cut) as f64;
        growth <= tolerance * last.coverage.max(1) as f64
    }

    /// The exec count at which `fraction` of the final coverage had been
    /// reached (`None` if never, or if the timeline is empty).
    pub fn execs_to_fraction(&self, fraction: f64) -> Option<u64> {
        let target = (self.final_coverage() as f64 * fraction).ceil() as u64;
        self.points
            .iter()
            .find(|p| p.coverage >= target)
            .map(|p| p.execs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn saturating_curve() -> CoverageTimeline {
        let mut t = CoverageTimeline::new();
        // Fast growth, then flat: a classic discovery curve.
        for (e, c) in [
            (10u64, 100u64),
            (100, 400),
            (1_000, 480),
            (10_000, 500),
            (100_000, 502),
        ] {
            t.record(e, c);
        }
        t
    }

    #[test]
    fn records_monotone_coverage() {
        let mut t = CoverageTimeline::new();
        t.record(10, 50);
        t.record(20, 40); // clamped up
        assert_eq!(t.final_coverage(), 50);
        assert_eq!(t.points().len(), 2);
    }

    #[test]
    fn record_point_and_last_roundtrip() {
        let mut t = CoverageTimeline::new();
        assert_eq!(t.last(), None);
        t.record_point(TimelinePoint {
            execs: 128,
            coverage: 7,
        });
        assert_eq!(
            t.last(),
            Some(TimelinePoint {
                execs: 128,
                coverage: 7
            })
        );
    }

    #[test]
    fn same_exec_updates_in_place() {
        let mut t = CoverageTimeline::new();
        t.record(10, 5);
        t.record(10, 9);
        assert_eq!(t.points().len(), 1);
        assert_eq!(t.final_coverage(), 9);
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn out_of_order_samples_panic() {
        let mut t = CoverageTimeline::new();
        t.record(10, 5);
        t.record(5, 6);
    }

    #[test]
    fn plateau_detected_on_saturating_curve() {
        let t = saturating_curve();
        assert!(t.plateaued(0.5, 0.05));
        assert!(
            !t.plateaued(0.999, 0.05),
            "whole-run window sees the growth"
        );
    }

    #[test]
    fn no_plateau_on_linear_growth() {
        let mut t = CoverageTimeline::new();
        for i in 1..=10u64 {
            t.record(i * 100, i * 50);
        }
        assert!(!t.plateaued(0.5, 0.05));
    }

    #[test]
    fn empty_and_single_point_never_plateau() {
        assert!(!CoverageTimeline::new().plateaued(0.5, 0.05));
        let mut t = CoverageTimeline::new();
        t.record(10, 10);
        assert!(!t.plateaued(0.5, 0.05));
    }

    #[test]
    fn execs_to_fraction_finds_milestones() {
        let t = saturating_curve();
        // 20% of 502 ≈ 101 (ceil): the first point with ≥ 101 is (100, 400).
        assert_eq!(t.execs_to_fraction(0.2), Some(100));
        // 10% of 502 ≈ 51: already reached by the first point (10, 100).
        assert_eq!(t.execs_to_fraction(0.1), Some(10));
    }

    #[test]
    fn execs_to_full_coverage() {
        let t = saturating_curve();
        assert_eq!(t.execs_to_fraction(1.0), Some(100_000));
        assert!(CoverageTimeline::new().execs_to_fraction(0.5).is_none());
    }
}
