//! # bigmap-fuzzer
//!
//! An AFL-style coverage-guided fuzzer hosting the BigMap reproduction's
//! coverage maps. Implements the paper's Figure 1 workflow end-to-end:
//! seed scheduling with favored-entry culling, deterministic + havoc +
//! splice mutation, persistent-mode execution against the synthetic target
//! substrate, the classify/compare/hash fitness pipeline (timed per stage,
//! regenerating Figure 3), Crashwalk-style crash deduplication, bias-free
//! coverage replay, and master–secondary parallel campaigns with periodic
//! corpus synchronization (Figures 9 and 10). The [`telemetry`] module
//! adds a live, lock-free observability layer: per-instance counters and
//! per-stage wall-time attribution, snapshotted at sync boundaries into a
//! JSONL sink.
//!
//! Corpus exchange is abstracted behind the [`sync::CorpusSync`] trait:
//! the in-process [`SyncHub`], the lock-striped [`ShardedHub`], and — via
//! the [`fabric`] module — a process-boundary transport speaking the
//! `bigmap_core::wire` binary protocol, with supervised child-process
//! workers and fleet-hierarchical telemetry aggregation
//! ([`telemetry::FleetAggregator`]).
//!
//! The campaign is parametric over the three axes of the paper's
//! evaluation: map scheme (AFL flat vs BigMap two-level), map size, and
//! coverage metric.
//!
//! ## Example
//!
//! ```rust
//! use bigmap_core::{MapScheme, MapSize};
//! use bigmap_coverage::Instrumentation;
//! use bigmap_fuzzer::{Campaign, CampaignConfig};
//! use bigmap_target::{GeneratorConfig, Interpreter};
//!
//! let program = GeneratorConfig::default().generate();
//! let instrumentation =
//!     Instrumentation::assign(program.block_count(), program.call_sites, MapSize::M2, 1);
//! let interpreter = Interpreter::new(&program);
//!
//! let config = CampaignConfig::builder()
//!     .scheme(MapScheme::TwoLevel)
//!     .map_size(MapSize::M2)
//!     .budget_execs(2_000)
//!     .build();
//! let mut campaign = Campaign::new(config, &interpreter, &instrumentation);
//! campaign.add_seeds(vec![vec![0u8; 32]]);
//! let stats = campaign.run();
//! assert_eq!(stats.execs, 2_000);
//! ```

#![deny(missing_docs)]

pub mod calibrate;
pub mod campaign;
pub mod checkpoint;
pub mod cmin;
pub mod crashwalk;
pub mod executor;
pub mod fabric;
pub mod faults;
pub mod mutate;
pub mod output_dir;
pub mod parallel;
pub mod queue;
pub mod replay;
pub mod supervisor;
pub mod sync;
pub mod telemetry;
pub mod timeline;
pub mod trim;

pub use calibrate::HangBudget;
pub use campaign::{
    build_metric, Budget, Campaign, CampaignConfig, CampaignConfigBuilder, CampaignOutput,
    CampaignStats,
};
pub use checkpoint::{Checkpoint, CheckpointManager, RestoreReport};
pub use cmin::{minimize_corpus, MinimizedCorpus};
pub use crashwalk::CrashWalk;
pub use executor::{EnginePath, Execution, Executor, FastExecution};
pub use fabric::{run_fleet, run_worker, FleetConfig, FleetStats, WorkerOptions, WorkerRole};
pub use faults::{FaultPlan, FaultSite, InstanceFaults};
pub use mutate::Mutator;
pub use output_dir::OutputDir;
pub use parallel::{
    run_parallel, run_parallel_with_faults, run_parallel_with_telemetry, InstanceHealth,
    ParallelStats, SyncHub,
};
pub use queue::{Queue, QueueEntry};
pub use replay::{replay_edge_coverage, ReplayCoverage};
pub use supervisor::{run_supervised, SupervisorConfig};
pub use sync::{CorpusSync, CursorError, ShardedHub};
pub use telemetry::{
    parse_jsonl, FleetAggregator, JsonlSink, SharedBuffer, Stage, Telemetry, TelemetryEvent,
    TelemetryRegistry, TelemetrySnapshot,
};
pub use timeline::{CoverageTimeline, TimelinePoint};
pub use trim::{trim_input, TrimResult};
