//! Live fleet telemetry: lock-free per-instance counters, per-stage
//! wall-time attribution, and a JSONL event sink.
//!
//! The paper's evaluation is built from two kinds of observation: *where
//! the time goes* per test case (Figure 3 / Table III's runtime
//! composition) and *where fleet throughput collapses* as instances are
//! added (Figures 9/10). Both were measured post-hoc from campaign return
//! values; this module makes the same quantities observable **while the
//! fleet runs**, cheaply enough to leave on:
//!
//! * [`Telemetry`] — one per campaign instance; relaxed-atomic event
//!   counters ([`TelemetryEvent`]) plus wall-time accumulators for the
//!   four coarse stages ([`Stage`]): deterministic mutation, havoc
//!   mutation, map operations, target execution.
//! * [`TelemetrySnapshot`] — a point-in-time copy, taken at sync
//!   boundaries (never on the per-exec path), serializable to/from a
//!   single JSON line.
//! * [`JsonlSink`] — an append-only JSONL writer shared by a fleet.
//! * [`TelemetryRegistry`] — hands out per-instance [`Telemetry`] handles
//!   and fans snapshots into the sink.
//!
//! Counters use [`EventCounter`]/[`StageNanos`] from `bigmap-core`: one
//! relaxed `fetch_add` per event, `#[inline]` all the way down, so the
//! hot path costs a predictable handful of nanoseconds (measured ≤ 2% on
//! the Figure 6 throughput harness — see EXPERIMENTS.md).
//!
//! # Examples
//!
//! ```rust
//! use bigmap_fuzzer::telemetry::{Stage, Telemetry, TelemetryEvent};
//! use std::time::Duration;
//!
//! let t = Telemetry::new(0);
//! t.incr(TelemetryEvent::Exec);
//! t.add(TelemetryEvent::MapUpdate, 17);
//! t.add_stage(Stage::TargetExec, Duration::from_micros(50));
//!
//! let snap = t.snapshot();
//! assert_eq!(snap.get(TelemetryEvent::Exec), 1);
//! let line = snap.to_json();
//! let back = bigmap_fuzzer::telemetry::TelemetrySnapshot::from_json(&line).unwrap();
//! assert_eq!(back.get(TelemetryEvent::MapUpdate), 17);
//! ```

use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bigmap_core::{EventCounter, StageNanos};

use crate::timeline::TimelinePoint;

/// The countable events of the campaign pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TelemetryEvent {
    /// Coverage-map resets (one per test case).
    MapReset,
    /// Standalone classify passes (split pipeline only; the merged
    /// pipeline accounts its single pass as a virgin compare).
    ClassifyPass,
    /// Virgin-map scans: compare or merged classify+compare passes.
    VirginCompare,
    /// Seed-queue scheduling decisions (one per scheduled entry).
    QueueCycle,
    /// Inputs published to the fleet's sync hub.
    SyncPublish,
    /// Inputs fetched from the sync hub and re-executed locally.
    SyncImport,
    /// Fetched inputs rejected for showing no new local coverage.
    ImportRejection,
    /// Test cases executed.
    Exec,
    /// Coverage-map updates (`record` calls) performed by the target.
    MapUpdate,
    /// Executions whose verdict was a brand-new edge (the timeline's
    /// coverage unit).
    NewCoverage,
    /// Crashing executions (non-unique).
    Crash,
    /// Hanging executions.
    Hang,
    /// Hangs charged to a *calibrated* step budget (subset of `Hang`):
    /// the execution would have kept running under the configured
    /// `max_steps` but the tighter calibrated budget cut it off.
    HangBudgetExceeded,
    /// Campaign checkpoints written to the output directory.
    Checkpoint,
    /// Kernel-dispatch resolutions: counted once per campaign when the
    /// instance observes which map-op kernel table
    /// (`bigmap_core::kernels::active()`) the process selected.
    KernelSelect,
    /// Map operations (classify/compare/fused) dispatched to the scalar
    /// word-wise kernel.
    KernelScalarOp,
    /// Map operations dispatched to the SSE2 kernel.
    KernelSse2Op,
    /// Map operations dispatched to the AVX2 kernel.
    KernelAvx2Op,
    /// Executions whose post-exec map ops took the journal-driven sparse
    /// path (`BIGMAP_SPARSE`, see `bigmap_core::sparse`).
    SparseDispatch,
    /// Executions whose post-exec map ops took the dense kernel path.
    DenseDispatch,
    /// Executions whose touch journal overflowed its capacity, forcing
    /// the dense fallback regardless of the dispatch policy.
    JournalOverflow,
    /// Untraced fast-path executions whose novelty oracle proved them
    /// already-seen, so the traced re-execution was skipped entirely
    /// (`BIGMAP_TRACE_MODE=selective|auto`). Disjoint from `RetraceExec`;
    /// together they partition the fast-pass attempts.
    FastPathExec,
    /// Fast-path executions the oracle flagged as suspicious (or that
    /// crashed/hanged), forcing a full traced re-execution.
    RetraceExec,
    /// Checkpoint restores that skipped one or more corrupt generations
    /// and fell back to an older intact one (counted per generation
    /// skipped).
    CheckpointFallback,
    /// Corpus entries found unreadable or truncated on load and moved to
    /// the output directory's `quarantine/` instead of aborting.
    QuarantinedEntry,
    /// Liveness-deadline expirations observed by the fleet parent: a
    /// worker made no progress (no frames, or heartbeats with a frozen
    /// exec counter) for the full deadline and was killed for restart.
    HeartbeatMiss,
    /// Executions dispatched through the compiled bytecode engine
    /// (`BIGMAP_INTERP=compiled|auto`), whether cold, resumed or
    /// replayed. Zero in tree mode.
    CompiledExec,
    /// Executions served wholly or partially from the scheduled parent's
    /// snapshot recording (a full trace replay or a mid-run resume).
    SnapshotHit,
    /// Executions that had a parent snapshot armed but could not reuse it
    /// (mutation hit the first read, budget mismatch, or an overflowed
    /// recording) and re-executed from scratch.
    SnapshotMiss,
    /// Campaign instances whose coverage map was served by explicit
    /// hugetlb pages (`BIGMAP_HUGE=explicit`, reservation succeeded).
    AllocExplicitHuge,
    /// Campaign instances whose coverage map went down the THP-advised
    /// heap path (the default, or the explicit backend's fallback).
    AllocThp,
    /// Campaign instances whose coverage map sits on plain pages
    /// (`BIGMAP_HUGE=off`, or a sub-huge-page map).
    AllocPlain,
    /// Campaign instances whose explicit-huge-page request could not be
    /// served and fell back to THP (empty hugetlb pool, unsupported
    /// kernel, non-Linux host).
    AllocFallback,
    /// Campaign instances whose worker thread was pinned to its NUMA node
    /// (`BIGMAP_NUMA=auto|node:<n>` on a host where the pin succeeded).
    NumaPin,
    /// Campaign instances where NUMA placement was requested but the node
    /// pin was refused (denied syscall, bogus node) and the instance ran
    /// unpinned on kernel first-touch.
    NumaPinFail,
}

impl TelemetryEvent {
    /// Every event, in serialization order.
    pub const ALL: [TelemetryEvent; 35] = [
        TelemetryEvent::MapReset,
        TelemetryEvent::ClassifyPass,
        TelemetryEvent::VirginCompare,
        TelemetryEvent::QueueCycle,
        TelemetryEvent::SyncPublish,
        TelemetryEvent::SyncImport,
        TelemetryEvent::ImportRejection,
        TelemetryEvent::Exec,
        TelemetryEvent::MapUpdate,
        TelemetryEvent::NewCoverage,
        TelemetryEvent::Crash,
        TelemetryEvent::Hang,
        TelemetryEvent::HangBudgetExceeded,
        TelemetryEvent::Checkpoint,
        TelemetryEvent::KernelSelect,
        TelemetryEvent::KernelScalarOp,
        TelemetryEvent::KernelSse2Op,
        TelemetryEvent::KernelAvx2Op,
        TelemetryEvent::SparseDispatch,
        TelemetryEvent::DenseDispatch,
        TelemetryEvent::JournalOverflow,
        TelemetryEvent::FastPathExec,
        TelemetryEvent::RetraceExec,
        TelemetryEvent::CheckpointFallback,
        TelemetryEvent::QuarantinedEntry,
        TelemetryEvent::HeartbeatMiss,
        TelemetryEvent::CompiledExec,
        TelemetryEvent::SnapshotHit,
        TelemetryEvent::SnapshotMiss,
        TelemetryEvent::AllocExplicitHuge,
        TelemetryEvent::AllocThp,
        TelemetryEvent::AllocPlain,
        TelemetryEvent::AllocFallback,
        TelemetryEvent::NumaPin,
        TelemetryEvent::NumaPinFail,
    ];

    #[inline]
    fn slot(self) -> usize {
        match self {
            TelemetryEvent::MapReset => 0,
            TelemetryEvent::ClassifyPass => 1,
            TelemetryEvent::VirginCompare => 2,
            TelemetryEvent::QueueCycle => 3,
            TelemetryEvent::SyncPublish => 4,
            TelemetryEvent::SyncImport => 5,
            TelemetryEvent::ImportRejection => 6,
            TelemetryEvent::Exec => 7,
            TelemetryEvent::MapUpdate => 8,
            TelemetryEvent::NewCoverage => 9,
            TelemetryEvent::Crash => 10,
            TelemetryEvent::Hang => 11,
            TelemetryEvent::HangBudgetExceeded => 12,
            TelemetryEvent::Checkpoint => 13,
            TelemetryEvent::KernelSelect => 14,
            TelemetryEvent::KernelScalarOp => 15,
            TelemetryEvent::KernelSse2Op => 16,
            TelemetryEvent::KernelAvx2Op => 17,
            TelemetryEvent::SparseDispatch => 18,
            TelemetryEvent::DenseDispatch => 19,
            TelemetryEvent::JournalOverflow => 20,
            TelemetryEvent::FastPathExec => 21,
            TelemetryEvent::RetraceExec => 22,
            TelemetryEvent::CheckpointFallback => 23,
            TelemetryEvent::QuarantinedEntry => 24,
            TelemetryEvent::HeartbeatMiss => 25,
            TelemetryEvent::CompiledExec => 26,
            TelemetryEvent::SnapshotHit => 27,
            TelemetryEvent::SnapshotMiss => 28,
            TelemetryEvent::AllocExplicitHuge => 29,
            TelemetryEvent::AllocThp => 30,
            TelemetryEvent::AllocPlain => 31,
            TelemetryEvent::AllocFallback => 32,
            TelemetryEvent::NumaPin => 33,
            TelemetryEvent::NumaPinFail => 34,
        }
    }

    /// The JSON field name of this event's counter.
    pub fn key(self) -> &'static str {
        match self {
            TelemetryEvent::MapReset => "map_resets",
            TelemetryEvent::ClassifyPass => "classify_passes",
            TelemetryEvent::VirginCompare => "virgin_compares",
            TelemetryEvent::QueueCycle => "queue_cycles",
            TelemetryEvent::SyncPublish => "sync_publishes",
            TelemetryEvent::SyncImport => "sync_imports",
            TelemetryEvent::ImportRejection => "import_rejections",
            TelemetryEvent::Exec => "execs",
            TelemetryEvent::MapUpdate => "map_updates",
            TelemetryEvent::NewCoverage => "new_coverage",
            TelemetryEvent::Crash => "crashes",
            TelemetryEvent::Hang => "hangs",
            TelemetryEvent::HangBudgetExceeded => "hang_budget_exceeded",
            TelemetryEvent::Checkpoint => "checkpoints",
            TelemetryEvent::KernelSelect => "kernel_selections",
            TelemetryEvent::KernelScalarOp => "kernel_scalar_ops",
            TelemetryEvent::KernelSse2Op => "kernel_sse2_ops",
            TelemetryEvent::KernelAvx2Op => "kernel_avx2_ops",
            TelemetryEvent::SparseDispatch => "sparse_dispatches",
            TelemetryEvent::DenseDispatch => "dense_dispatches",
            TelemetryEvent::JournalOverflow => "journal_overflows",
            TelemetryEvent::FastPathExec => "fast_path_execs",
            TelemetryEvent::RetraceExec => "retrace_execs",
            TelemetryEvent::CheckpointFallback => "checkpoint_fallbacks",
            TelemetryEvent::QuarantinedEntry => "quarantined_entries",
            TelemetryEvent::HeartbeatMiss => "heartbeat_misses",
            TelemetryEvent::CompiledExec => "compiled_execs",
            TelemetryEvent::SnapshotHit => "snapshot_hits",
            TelemetryEvent::SnapshotMiss => "snapshot_misses",
            TelemetryEvent::AllocExplicitHuge => "alloc_explicit_huge",
            TelemetryEvent::AllocThp => "alloc_thp",
            TelemetryEvent::AllocPlain => "alloc_plain",
            TelemetryEvent::AllocFallback => "alloc_fallbacks",
            TelemetryEvent::NumaPin => "numa_pins",
            TelemetryEvent::NumaPinFail => "numa_pin_fails",
        }
    }

    /// The per-op counter for map operations dispatched through `kind`'s
    /// kernel table.
    pub fn for_kernel(kind: bigmap_core::KernelKind) -> TelemetryEvent {
        match kind {
            bigmap_core::KernelKind::Scalar => TelemetryEvent::KernelScalarOp,
            bigmap_core::KernelKind::Sse2 => TelemetryEvent::KernelSse2Op,
            bigmap_core::KernelKind::Avx2 => TelemetryEvent::KernelAvx2Op,
        }
    }
}

/// The coarse wall-time stages of the campaign loop — the live analogue
/// of the paper's runtime-composition breakdown. The four buckets are
/// disjoint: mutation/scheduling overhead is attributed to the mutation
/// stage that incurred it, while map operations and target execution are
/// carved out separately regardless of the surrounding stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Deterministic-stage mutation generation and scheduling overhead.
    Deterministic,
    /// Havoc/splice mutation generation and scheduling overhead.
    Havoc,
    /// Whole-map operations: reset, classify, compare, hash.
    MapOps,
    /// Instrumented target execution (includes map updates, as in the
    /// paper's accounting).
    TargetExec,
}

impl Stage {
    /// Every stage, in serialization order.
    pub const ALL: [Stage; 4] = [
        Stage::Deterministic,
        Stage::Havoc,
        Stage::MapOps,
        Stage::TargetExec,
    ];

    #[inline]
    fn slot(self) -> usize {
        match self {
            Stage::Deterministic => 0,
            Stage::Havoc => 1,
            Stage::MapOps => 2,
            Stage::TargetExec => 3,
        }
    }

    /// The JSON field name of this stage's nanosecond accumulator.
    pub fn key(self) -> &'static str {
        match self {
            Stage::Deterministic => "stage_deterministic_nanos",
            Stage::Havoc => "stage_havoc_nanos",
            Stage::MapOps => "stage_map_ops_nanos",
            Stage::TargetExec => "stage_target_exec_nanos",
        }
    }
}

/// Lock-free per-instance statistics registry.
///
/// One writer (the owning campaign thread), any number of concurrent
/// snapshot readers. All mutation is relaxed-atomic, so a `Telemetry`
/// can be shared as `Arc<Telemetry>` between a running campaign and an
/// observer without synchronization on the hot path.
#[derive(Debug)]
pub struct Telemetry {
    instance: usize,
    started: Instant,
    events: [EventCounter; 35],
    stages: [StageNanos; 4],
}

impl Telemetry {
    /// Creates an empty registry for one fleet instance.
    pub fn new(instance: usize) -> Self {
        Telemetry {
            instance,
            started: Instant::now(),
            events: std::array::from_fn(|_| EventCounter::new()),
            stages: std::array::from_fn(|_| StageNanos::new()),
        }
    }

    /// The fleet instance index this registry belongs to.
    pub fn instance(&self) -> usize {
        self.instance
    }

    /// Counts one occurrence of `event`.
    #[inline]
    pub fn incr(&self, event: TelemetryEvent) {
        self.events[event.slot()].incr();
    }

    /// Counts `n` occurrences of `event`.
    #[inline]
    pub fn add(&self, event: TelemetryEvent, n: u64) {
        self.events[event.slot()].add(n);
    }

    /// Attributes `elapsed` wall time to `stage`.
    #[inline]
    pub fn add_stage(&self, stage: Stage, elapsed: Duration) {
        self.stages[stage.slot()].add(elapsed);
    }

    /// Current count of `event`.
    pub fn get(&self, event: TelemetryEvent) -> u64 {
        self.events[event.slot()].get()
    }

    /// Wall time attributed to `stage` so far.
    pub fn stage_time(&self, stage: Stage) -> Duration {
        self.stages[stage.slot()].total()
    }

    /// Takes a point-in-time snapshot (called at sync boundaries, never
    /// per execution).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            instance: self.instance,
            node: 0,
            wall_nanos: u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            events: std::array::from_fn(|i| self.events[i].get()),
            stage_nanos: std::array::from_fn(|i| self.stages[i].nanos()),
        }
    }
}

/// A point-in-time copy of one instance's telemetry, serializable as one
/// JSON line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Fleet instance index.
    pub instance: usize,
    /// Node (worker process) index within a multi-process fleet. Zero for
    /// thread-level fleets and for snapshot lines written before the node
    /// dimension existed; the fabric parent stamps each worker's
    /// snapshots with the worker index as they arrive.
    pub node: usize,
    /// Wall-clock nanoseconds since the instance's telemetry was created.
    pub wall_nanos: u64,
    /// Event counters, indexed in [`TelemetryEvent::ALL`] order.
    pub events: [u64; 35],
    /// Stage accumulators (nanoseconds), indexed in [`Stage::ALL`] order.
    pub stage_nanos: [u64; 4],
}

// Manual impl: `[u64; 35]` outgrew the derive's 32-element array limit.
impl Default for TelemetrySnapshot {
    fn default() -> Self {
        TelemetrySnapshot {
            instance: 0,
            node: 0,
            wall_nanos: 0,
            events: [0; 35],
            stage_nanos: [0; 4],
        }
    }
}

impl TelemetrySnapshot {
    /// Count of `event` at snapshot time.
    pub fn get(&self, event: TelemetryEvent) -> u64 {
        self.events[event.slot()]
    }

    /// Wall time attributed to `stage` at snapshot time.
    pub fn stage_time(&self, stage: Stage) -> Duration {
        Duration::from_nanos(self.stage_nanos[stage.slot()])
    }

    /// The snapshot as a coverage-timeline point: executions completed
    /// vs. new-coverage discoveries — the unit [`crate::CoverageTimeline`]
    /// samples.
    pub fn timeline_point(&self) -> TimelinePoint {
        TimelinePoint {
            execs: self.get(TelemetryEvent::Exec),
            coverage: self.get(TelemetryEvent::NewCoverage),
        }
    }

    /// Folds another snapshot into this one, summing every counter and
    /// stage clock and keeping the max wall time (fleet-wide totals).
    /// `instance` and `node` keep this snapshot's values — a merged total
    /// is no longer attributable to one source.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        self.wall_nanos = self.wall_nanos.max(other.wall_nanos);
        for i in 0..self.events.len() {
            self.events[i] += other.events[i];
        }
        for i in 0..self.stage_nanos.len() {
            self.stage_nanos[i] += other.stage_nanos[i];
        }
    }

    /// Serializes to one JSON object on a single line (no trailing
    /// newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push('{');
        push_field(&mut out, "instance", self.instance as u64);
        push_field(&mut out, "node", self.node as u64);
        push_field(&mut out, "wall_nanos", self.wall_nanos);
        for event in TelemetryEvent::ALL {
            push_field(&mut out, event.key(), self.get(event));
        }
        for stage in Stage::ALL {
            push_field(&mut out, stage.key(), self.stage_nanos[stage.slot()]);
        }
        out.pop(); // trailing comma
        out.push('}');
        out
    }

    /// Parses a snapshot from a JSON line produced by [`to_json`]
    /// (unknown fields are ignored; missing counter fields default to 0).
    ///
    /// Returns `None` if `line` is not a JSON object or lacks the
    /// `instance` field.
    ///
    /// [`to_json`]: TelemetrySnapshot::to_json
    pub fn from_json(line: &str) -> Option<TelemetrySnapshot> {
        let line = line.trim();
        if !line.starts_with('{') || !line.ends_with('}') {
            return None;
        }
        let mut snap = TelemetrySnapshot {
            instance: usize::try_from(json_u64(line, "instance")?).ok()?,
            // Lines written before the node dimension existed read as
            // node 0 (a single-node fleet).
            node: usize::try_from(json_u64(line, "node").unwrap_or(0)).ok()?,
            wall_nanos: json_u64(line, "wall_nanos").unwrap_or(0),
            ..TelemetrySnapshot::default()
        };
        for event in TelemetryEvent::ALL {
            snap.events[event.slot()] = json_u64(line, event.key()).unwrap_or(0);
        }
        for stage in Stage::ALL {
            snap.stage_nanos[stage.slot()] = json_u64(line, stage.key()).unwrap_or(0);
        }
        Some(snap)
    }
}

fn push_field(out: &mut String, key: &str, value: u64) {
    use fmt::Write as _;
    let _ = write!(out, "\"{key}\":{value},");
}

/// Extracts the unsigned integer value of `"key":<digits>` from a flat
/// JSON object. Sufficient for the fixed snapshot schema; not a general
/// JSON parser.
fn json_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses a whole JSONL document back into snapshots.
///
/// # Errors
///
/// Returns the (1-based) line number and content of the first line that
/// fails to parse; blank lines are skipped.
pub fn parse_jsonl(text: &str) -> Result<Vec<TelemetrySnapshot>, String> {
    let mut snaps = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match TelemetrySnapshot::from_json(line) {
            Some(snap) => snaps.push(snap),
            None => return Err(format!("line {}: unparseable snapshot: {line}", i + 1)),
        }
    }
    Ok(snaps)
}

/// An append-only JSONL sink, shareable across a fleet's threads.
///
/// Each [`emit`](JsonlSink::emit) writes one snapshot line under a mutex
/// — contention is bounded by the sync cadence, not the exec rate.
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// Wraps any writer (a file, a pipe, a shared test buffer).
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            out: Mutex::new(out),
        }
    }

    /// Creates (truncates) a JSONL file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying file-creation error.
    pub fn to_file<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(JsonlSink::new(Box::new(BufWriter::new(File::create(
            path,
        )?))))
    }

    /// Appends one snapshot line and flushes it.
    ///
    /// # Errors
    ///
    /// Propagates write/flush errors from the underlying writer.
    pub fn emit(&self, snapshot: &TelemetrySnapshot) -> io::Result<()> {
        self.emit_raw(&snapshot.to_json())
    }

    /// Appends one pre-rendered JSON line and flushes it. Used for lines
    /// that carry extra fields beyond the snapshot schema (e.g. the fleet
    /// aggregator's `"fleet_total":1` summary tag).
    ///
    /// # Errors
    ///
    /// Propagates write/flush errors from the underlying writer.
    pub fn emit_raw(&self, line: &str) -> io::Result<()> {
        let mut out = self.out.lock().expect("sink mutex poisoned");
        writeln!(out, "{line}")?;
        out.flush()
    }
}

/// A shared in-memory buffer implementing [`Write`] — a [`JsonlSink`]
/// target for tests and in-process consumers.
#[derive(Debug, Clone, Default)]
pub struct SharedBuffer(Arc<Mutex<Vec<u8>>>);

impl SharedBuffer {
    /// Creates an empty shared buffer.
    pub fn new() -> Self {
        SharedBuffer::default()
    }

    /// The buffer contents as a string (lossy on invalid UTF-8).
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().expect("buffer mutex poisoned")).into_owned()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0
            .lock()
            .expect("buffer mutex poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Hands out per-instance [`Telemetry`] handles and fans snapshots into
/// an optional shared [`JsonlSink`].
#[derive(Debug, Default)]
pub struct TelemetryRegistry {
    instances: Mutex<Vec<Arc<Telemetry>>>,
    sink: Option<JsonlSink>,
}

impl TelemetryRegistry {
    /// Creates a registry with no sink (snapshots are only readable
    /// in-process).
    pub fn new() -> Self {
        TelemetryRegistry::default()
    }

    /// Creates a registry that emits every snapshot to `sink`.
    pub fn with_sink(sink: JsonlSink) -> Self {
        TelemetryRegistry {
            instances: Mutex::new(Vec::new()),
            sink: Some(sink),
        }
    }

    /// Registers (and returns) the telemetry handle for one fleet
    /// instance.
    pub fn register(&self, instance: usize) -> Arc<Telemetry> {
        let telemetry = Arc::new(Telemetry::new(instance));
        self.instances
            .lock()
            .expect("registry mutex poisoned")
            .push(Arc::clone(&telemetry));
        telemetry
    }

    /// Snapshots `telemetry` and appends it to the sink (no-op without a
    /// sink; sink I/O errors are reported to stderr once per call rather
    /// than unwinding a fuzzing thread).
    pub fn emit(&self, telemetry: &Telemetry) {
        if let Some(sink) = &self.sink {
            if let Err(e) = sink.emit(&telemetry.snapshot()) {
                eprintln!("telemetry sink write failed: {e}");
            }
        }
    }

    /// Live snapshots of every registered instance, in registration
    /// order.
    pub fn snapshots(&self) -> Vec<TelemetrySnapshot> {
        self.instances
            .lock()
            .expect("registry mutex poisoned")
            .iter()
            .map(|t| t.snapshot())
            .collect()
    }

    /// Fleet-wide totals: every instance's snapshot merged (counters
    /// summed, wall time maxed).
    pub fn fleet_totals(&self) -> TelemetrySnapshot {
        let mut total = TelemetrySnapshot::default();
        for snap in self.snapshots() {
            total.merge(&snap);
        }
        total
    }
}

/// Hierarchical telemetry aggregation: instance → node → fleet.
///
/// The multi-process fabric has one telemetry producer per (node,
/// instance) pair, each streaming snapshots to its parent. The
/// aggregator is the parent-side collector: it stamps each arriving
/// snapshot with its node index, forwards it to one shared JSONL sink
/// (so the whole fleet lands in a **single** merged stream), and keeps
/// the latest snapshot per producer so node- and fleet-level totals can
/// be rolled up at any time.
///
/// Totals use the latest snapshot per producer, not the sum of all
/// arrivals — snapshots are cumulative, so summing a producer's stream
/// would double-count.
///
/// # Examples
///
/// ```rust
/// use bigmap_fuzzer::telemetry::{FleetAggregator, TelemetryEvent, TelemetrySnapshot};
///
/// let agg = FleetAggregator::new();
/// let mut snap = TelemetrySnapshot::default();
/// snap.events[7] = 100; // execs
/// agg.record(0, snap.clone());
/// snap.events[7] = 250; // a later, cumulative snapshot from the same producer
/// agg.record(0, snap.clone());
/// agg.record(1, snap.clone());
/// assert_eq!(agg.fleet_totals().get(TelemetryEvent::Exec), 500);
/// assert_eq!(agg.node_totals(1).get(TelemetryEvent::Exec), 250);
/// ```
#[derive(Debug, Default)]
pub struct FleetAggregator {
    latest: Mutex<std::collections::BTreeMap<(usize, usize), TelemetrySnapshot>>,
    sink: Option<JsonlSink>,
}

impl FleetAggregator {
    /// Creates an aggregator with no sink (totals are only readable
    /// in-process).
    pub fn new() -> Self {
        FleetAggregator::default()
    }

    /// Creates an aggregator that forwards every recorded snapshot — and
    /// the final fleet-total line — to `sink`.
    pub fn with_sink(sink: JsonlSink) -> Self {
        FleetAggregator {
            latest: Mutex::new(std::collections::BTreeMap::new()),
            sink: Some(sink),
        }
    }

    /// Records a snapshot arriving from `node`, stamping its node index,
    /// forwarding it to the sink, and replacing that producer's previous
    /// snapshot in the rollup state.
    pub fn record(&self, node: usize, mut snapshot: TelemetrySnapshot) {
        snapshot.node = node;
        if let Some(sink) = &self.sink {
            if let Err(e) = sink.emit(&snapshot) {
                eprintln!("fleet telemetry sink write failed: {e}");
            }
        }
        self.latest
            .lock()
            .expect("aggregator mutex poisoned")
            .insert((node, snapshot.instance), snapshot);
    }

    /// Node indices that have reported at least one snapshot, ascending.
    pub fn nodes(&self) -> Vec<usize> {
        let mut nodes: Vec<usize> = self
            .latest
            .lock()
            .expect("aggregator mutex poisoned")
            .keys()
            .map(|(node, _)| *node)
            .collect();
        nodes.dedup();
        nodes
    }

    /// Totals for one node: the latest snapshot of each of its instances,
    /// merged. The result carries the node's index.
    pub fn node_totals(&self, node: usize) -> TelemetrySnapshot {
        let mut total = TelemetrySnapshot {
            node,
            ..TelemetrySnapshot::default()
        };
        for snap in self
            .latest
            .lock()
            .expect("aggregator mutex poisoned")
            .values()
        {
            if snap.node == node {
                total.merge(snap);
            }
        }
        total
    }

    /// Fleet-wide totals: the latest snapshot of every (node, instance)
    /// producer, merged.
    pub fn fleet_totals(&self) -> TelemetrySnapshot {
        let mut total = TelemetrySnapshot::default();
        for snap in self
            .latest
            .lock()
            .expect("aggregator mutex poisoned")
            .values()
        {
            total.merge(snap);
        }
        total
    }

    /// Computes the fleet totals and appends them to the sink as a final
    /// summary line tagged `"fleet_total":1` (parsers that don't know the
    /// tag ignore it; consumers that do can split per-producer lines from
    /// the rollup). Returns the totals either way.
    pub fn finish(&self) -> TelemetrySnapshot {
        let totals = self.fleet_totals();
        if let Some(sink) = &self.sink {
            let mut line = totals.to_json();
            line.truncate(line.len() - 1); // drop the closing brace
            line.push_str(",\"fleet_total\":1}");
            if let Err(e) = sink.emit_raw(&line) {
                eprintln!("fleet telemetry summary write failed: {e}");
            }
        }
        totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_event() {
        let t = Telemetry::new(3);
        t.incr(TelemetryEvent::Exec);
        t.incr(TelemetryEvent::Exec);
        t.add(TelemetryEvent::MapUpdate, 40);
        assert_eq!(t.get(TelemetryEvent::Exec), 2);
        assert_eq!(t.get(TelemetryEvent::MapUpdate), 40);
        assert_eq!(t.get(TelemetryEvent::Crash), 0);
        assert_eq!(t.instance(), 3);
    }

    #[test]
    fn stage_time_accumulates() {
        let t = Telemetry::new(0);
        t.add_stage(Stage::MapOps, Duration::from_micros(5));
        t.add_stage(Stage::MapOps, Duration::from_micros(5));
        t.add_stage(Stage::Havoc, Duration::from_micros(1));
        assert_eq!(t.stage_time(Stage::MapOps), Duration::from_micros(10));
        assert_eq!(t.stage_time(Stage::Havoc), Duration::from_micros(1));
        assert_eq!(t.stage_time(Stage::Deterministic), Duration::ZERO);
    }

    #[test]
    fn snapshot_json_roundtrip() {
        let t = Telemetry::new(7);
        for event in TelemetryEvent::ALL {
            t.add(event, event.slot() as u64 + 1);
        }
        for stage in Stage::ALL {
            t.add_stage(stage, Duration::from_nanos(stage.slot() as u64 + 100));
        }
        let snap = t.snapshot();
        let line = snap.to_json();
        let back = TelemetrySnapshot::from_json(&line).expect("roundtrip");
        assert_eq!(back, snap);
    }

    #[test]
    fn kernel_events_map_one_to_one() {
        use bigmap_core::KernelKind;
        assert_eq!(
            TelemetryEvent::for_kernel(KernelKind::Scalar),
            TelemetryEvent::KernelScalarOp
        );
        assert_eq!(
            TelemetryEvent::for_kernel(KernelKind::Sse2),
            TelemetryEvent::KernelSse2Op
        );
        assert_eq!(
            TelemetryEvent::for_kernel(KernelKind::Avx2),
            TelemetryEvent::KernelAvx2Op
        );
        // Every kernel counter has a distinct slot and JSON key.
        let keys: std::collections::HashSet<_> =
            TelemetryEvent::ALL.iter().map(|e| e.key()).collect();
        assert_eq!(keys.len(), TelemetryEvent::ALL.len());
    }

    #[test]
    fn pre_kernel_snapshot_lines_still_parse() {
        // Snapshots written before the kernel counters existed lack the
        // four kernel_* fields; they must parse with those counters at 0.
        let legacy = "{\"instance\":2,\"wall_nanos\":99,\"execs\":12}";
        let snap = TelemetrySnapshot::from_json(legacy).expect("legacy line parses");
        assert_eq!(snap.get(TelemetryEvent::Exec), 12);
        assert_eq!(snap.get(TelemetryEvent::KernelSelect), 0);
        assert_eq!(snap.get(TelemetryEvent::KernelAvx2Op), 0);
    }

    #[test]
    fn pre_sparse_snapshot_lines_still_parse() {
        // Snapshots written in the 18-slot era (kernel counters present,
        // sparse-dispatch counters absent) must parse with the three
        // sparse_* fields at 0.
        let legacy = "{\"instance\":1,\"wall_nanos\":42,\"execs\":700,\
                      \"kernel_selections\":1,\"kernel_avx2_ops\":700}";
        let snap = TelemetrySnapshot::from_json(legacy).expect("legacy line parses");
        assert_eq!(snap.get(TelemetryEvent::Exec), 700);
        assert_eq!(snap.get(TelemetryEvent::KernelAvx2Op), 700);
        assert_eq!(snap.get(TelemetryEvent::SparseDispatch), 0);
        assert_eq!(snap.get(TelemetryEvent::DenseDispatch), 0);
        assert_eq!(snap.get(TelemetryEvent::JournalOverflow), 0);
    }

    #[test]
    fn pre_trace_mode_snapshot_lines_still_parse() {
        // Snapshots written in the 21-slot era (sparse counters present,
        // two-speed counters absent) must parse with the fast-path and
        // re-trace counters at 0.
        let legacy = "{\"instance\":4,\"wall_nanos\":8,\"execs\":300,\
                      \"sparse_dispatches\":250,\"dense_dispatches\":50}";
        let snap = TelemetrySnapshot::from_json(legacy).expect("legacy line parses");
        assert_eq!(snap.get(TelemetryEvent::Exec), 300);
        assert_eq!(snap.get(TelemetryEvent::SparseDispatch), 250);
        assert_eq!(snap.get(TelemetryEvent::FastPathExec), 0);
        assert_eq!(snap.get(TelemetryEvent::RetraceExec), 0);
    }

    #[test]
    fn pre_durability_snapshot_lines_still_parse() {
        // Snapshots written in the 23-slot era (two-speed counters
        // present, durability counters absent) must parse with the
        // fallback/quarantine/heartbeat counters at 0.
        let legacy = "{\"instance\":0,\"wall_nanos\":77,\"execs\":900,\
                      \"fast_path_execs\":600,\"retrace_execs\":30}";
        let snap = TelemetrySnapshot::from_json(legacy).expect("legacy line parses");
        assert_eq!(snap.get(TelemetryEvent::Exec), 900);
        assert_eq!(snap.get(TelemetryEvent::FastPathExec), 600);
        assert_eq!(snap.get(TelemetryEvent::CheckpointFallback), 0);
        assert_eq!(snap.get(TelemetryEvent::QuarantinedEntry), 0);
        assert_eq!(snap.get(TelemetryEvent::HeartbeatMiss), 0);
    }

    #[test]
    fn pre_interp_snapshot_lines_still_parse() {
        // Snapshots written in the 26-slot era (durability counters
        // present, compiled-engine counters absent) must parse with the
        // compiled-exec and snapshot counters at 0.
        let legacy = "{\"instance\":6,\"wall_nanos\":13,\"execs\":400,\
                      \"quarantined_entries\":2,\"heartbeat_misses\":1}";
        let snap = TelemetrySnapshot::from_json(legacy).expect("legacy line parses");
        assert_eq!(snap.get(TelemetryEvent::Exec), 400);
        assert_eq!(snap.get(TelemetryEvent::QuarantinedEntry), 2);
        assert_eq!(snap.get(TelemetryEvent::CompiledExec), 0);
        assert_eq!(snap.get(TelemetryEvent::SnapshotHit), 0);
        assert_eq!(snap.get(TelemetryEvent::SnapshotMiss), 0);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(TelemetrySnapshot::from_json("").is_none());
        assert!(TelemetrySnapshot::from_json("not json").is_none());
        assert!(TelemetrySnapshot::from_json("{\"execs\":5}").is_none()); // no instance
    }

    #[test]
    fn timeline_point_reflects_exec_and_coverage() {
        let t = Telemetry::new(0);
        t.add(TelemetryEvent::Exec, 512);
        t.add(TelemetryEvent::NewCoverage, 9);
        let point = t.snapshot().timeline_point();
        assert_eq!(point.execs, 512);
        assert_eq!(point.coverage, 9);
    }

    #[test]
    fn merge_sums_counters_and_maxes_wall() {
        let mut a = TelemetrySnapshot {
            instance: 0,
            wall_nanos: 10,
            ..Default::default()
        };
        a.events[TelemetryEvent::Exec.slot()] = 5;
        let mut b = TelemetrySnapshot {
            instance: 1,
            wall_nanos: 30,
            ..Default::default()
        };
        b.events[TelemetryEvent::Exec.slot()] = 7;
        b.stage_nanos[Stage::MapOps.slot()] = 11;
        a.merge(&b);
        assert_eq!(a.get(TelemetryEvent::Exec), 12);
        assert_eq!(a.wall_nanos, 30);
        assert_eq!(a.stage_nanos[Stage::MapOps.slot()], 11);
    }

    #[test]
    fn sink_emits_parseable_jsonl() {
        let buffer = SharedBuffer::new();
        let sink = JsonlSink::new(Box::new(buffer.clone()));
        let t = Telemetry::new(1);
        t.incr(TelemetryEvent::SyncPublish);
        sink.emit(&t.snapshot()).unwrap();
        t.incr(TelemetryEvent::SyncImport);
        sink.emit(&t.snapshot()).unwrap();

        let parsed = parse_jsonl(&buffer.contents()).expect("valid jsonl");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].get(TelemetryEvent::SyncImport), 0);
        assert_eq!(parsed[1].get(TelemetryEvent::SyncImport), 1);
    }

    #[test]
    fn parse_jsonl_reports_bad_line() {
        let err = parse_jsonl("{\"instance\":0}\nbroken\n").unwrap_err();
        assert!(err.contains("line 2"), "got: {err}");
        // Blank lines are fine.
        assert_eq!(parse_jsonl("\n\n").unwrap().len(), 0);
    }

    #[test]
    fn registry_tracks_instances_and_totals() {
        let registry = TelemetryRegistry::new();
        let a = registry.register(0);
        let b = registry.register(1);
        a.add(TelemetryEvent::Exec, 100);
        b.add(TelemetryEvent::Exec, 50);
        b.incr(TelemetryEvent::Crash);

        let snaps = registry.snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].instance, 0);
        assert_eq!(snaps[1].get(TelemetryEvent::Exec), 50);

        let totals = registry.fleet_totals();
        assert_eq!(totals.get(TelemetryEvent::Exec), 150);
        assert_eq!(totals.get(TelemetryEvent::Crash), 1);
    }

    #[test]
    fn registry_emit_without_sink_is_noop() {
        let registry = TelemetryRegistry::new();
        let t = registry.register(0);
        registry.emit(&t); // must not panic
    }

    #[test]
    fn node_field_round_trips_and_defaults_to_zero() {
        let mut snap = TelemetrySnapshot {
            instance: 3,
            node: 2,
            wall_nanos: 5,
            ..Default::default()
        };
        snap.events[TelemetryEvent::Exec.slot()] = 9;
        let back = TelemetrySnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.node, 2);

        // Lines from before the node dimension read as node 0.
        let legacy = "{\"instance\":1,\"wall_nanos\":42,\"execs\":7}";
        let old = TelemetrySnapshot::from_json(legacy).unwrap();
        assert_eq!(old.node, 0);
        assert_eq!(old.get(TelemetryEvent::Exec), 7);
    }

    #[test]
    fn aggregator_rolls_up_latest_per_producer() {
        let agg = FleetAggregator::new();
        let snap = |instance: usize, execs: u64| {
            let mut s = TelemetrySnapshot {
                instance,
                ..Default::default()
            };
            s.events[TelemetryEvent::Exec.slot()] = execs;
            s
        };
        // Cumulative snapshots from the same producer replace, not add.
        agg.record(0, snap(0, 100));
        agg.record(0, snap(0, 300));
        agg.record(0, snap(1, 50));
        agg.record(1, snap(0, 40));
        assert_eq!(agg.nodes(), vec![0, 1]);
        assert_eq!(agg.node_totals(0).get(TelemetryEvent::Exec), 350);
        assert_eq!(agg.node_totals(1).get(TelemetryEvent::Exec), 40);
        assert_eq!(agg.fleet_totals().get(TelemetryEvent::Exec), 390);
        assert_eq!(agg.node_totals(1).node, 1);
    }

    #[test]
    fn aggregator_writes_one_merged_stream_with_summary_line() {
        let buffer = SharedBuffer::new();
        let agg = FleetAggregator::with_sink(JsonlSink::new(Box::new(buffer.clone())));
        let mut snap = TelemetrySnapshot::default();
        snap.events[TelemetryEvent::Exec.slot()] = 10;
        agg.record(0, snap.clone());
        agg.record(1, snap.clone());
        let totals = agg.finish();
        assert_eq!(totals.get(TelemetryEvent::Exec), 20);

        let text = buffer.contents();
        // Every line in the single stream parses — including the tagged
        // summary line, whose extra field is ignored by the parser.
        let parsed = parse_jsonl(&text).expect("merged stream parses");
        assert_eq!(parsed.len(), 3);
        let nodes: Vec<usize> = parsed.iter().map(|s| s.node).collect();
        assert_eq!(&nodes[..2], &[0, 1]);
        let summary_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.contains("\"fleet_total\":1"))
            .collect();
        assert_eq!(summary_lines.len(), 1);
        assert_eq!(
            TelemetrySnapshot::from_json(summary_lines[0])
                .unwrap()
                .get(TelemetryEvent::Exec),
            20
        );
    }

    #[test]
    fn registry_emit_writes_to_sink() {
        let buffer = SharedBuffer::new();
        let registry = TelemetryRegistry::with_sink(JsonlSink::new(Box::new(buffer.clone())));
        let t = registry.register(4);
        t.add(TelemetryEvent::QueueCycle, 3);
        registry.emit(&t);
        let parsed = parse_jsonl(&buffer.contents()).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].instance, 4);
        assert_eq!(parsed[0].get(TelemetryEvent::QueueCycle), 3);
    }
}
