//! The fuzzing campaign: AFL's evolutionary loop (Figure 1 of the paper).
//!
//! Select a seed → mutate it many times → execute each child → classify and
//! compare coverage → admit interesting children to the pool, report
//! crashes and hangs. Every stage is timed into an
//! [`OpStats`](bigmap_core::OpStats), which is what the Figure 3 harness
//! prints, and the whole loop is parametric over the map scheme
//! ([`MapScheme`]), the map size and the coverage metric — the three axes
//! of the paper's evaluation.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use bigmap_core::{
    build_map, CoverageMap, InterpMode, MapScheme, MapSize, NewCoverage, OpKind, OpPath, OpStats,
    SparseMode, TraceMode, VirginState,
};
use bigmap_coverage::{
    BlockCoverage, ContextSensitive, CoverageMetric, EdgeHitCount, Instrumentation, MetricKind,
    NGram,
};
use bigmap_target::{ExecConfig, ExecOutcome, Interpreter, NoveltyOracle};

use crate::calibrate::HangBudget;
use crate::checkpoint::{Checkpoint, CheckpointQueueEntry};
use crate::crashwalk::CrashWalk;
use crate::executor::{EnginePath, Executor};
use crate::faults::{FaultSite, InstanceFaults};
use crate::mutate::Mutator;
use crate::queue::Queue;
use crate::telemetry::{Stage, Telemetry, TelemetryEvent, TelemetrySnapshot};
use crate::timeline::CoverageTimeline;
use crate::trim::trim_input;

/// Builds a boxed metric from its kind (campaign configuration is
/// data-driven so the harness binaries can sweep metrics).
///
/// # Panics
///
/// Panics if an `NGram` kind carries an unsupported N (outside 2..=16).
pub fn build_metric(kind: MetricKind) -> Box<dyn CoverageMetric> {
    match kind {
        MetricKind::Edge => Box::new(EdgeHitCount::new()),
        MetricKind::NGram(n) => Box::new(NGram::new(n).expect("valid ngram size")),
        MetricKind::ContextSensitive => Box::new(ContextSensitive::new()),
        MetricKind::Block => Box::new(BlockCoverage::new()),
        MetricKind::Stack => {
            Box::new(bigmap_coverage::MetricStack::new().with(Box::new(EdgeHitCount::new())))
        }
    }
}

/// Synthetic crash-site index for fault-injected crashes. Real programs
/// use dense indices from 0, so this sentinel can never collide with a
/// genuine site; every injected crash lands in one Crashwalk bucket.
pub const INJECTED_CRASH_SITE: usize = usize::MAX;

/// Folds one engine dispatch into the telemetry counters: which engine
/// served an execution (`CompiledExec`) and whether an armed parent
/// snapshot was reused (`SnapshotHit`) or conservatively discarded
/// (`SnapshotMiss`). Observational only — engine paths never change the
/// campaign trajectory.
fn note_engine(tel: &Telemetry, engine: EnginePath) {
    if engine.is_compiled() {
        tel.incr(TelemetryEvent::CompiledExec);
    }
    if engine.is_snapshot_hit() {
        tel.incr(TelemetryEvent::SnapshotHit);
    } else if engine == EnginePath::SnapshotMiss {
        tel.incr(TelemetryEvent::SnapshotMiss);
    }
}

/// When a campaign stops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// Stop after generating this many test cases.
    Execs(u64),
    /// Stop after this much wall-clock time.
    Time(Duration),
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Map data structure (AFL flat vs BigMap two-level).
    pub scheme: MapScheme,
    /// Coverage map size.
    pub map_size: MapSize,
    /// Coverage metric.
    pub metric: MetricKind,
    /// Stop condition.
    pub budget: Budget,
    /// Mutations tried per scheduled seed before moving on (AFL fuzzes a
    /// seed "tens of thousands of times"; scaled down for simulation).
    pub mutations_per_seed: usize,
    /// Run AFL's deterministic stages on each new seed first, like classic
    /// `afl-fuzz` does (its `-d` flag skips them). Walking bit flips are
    /// what grinds through laf-intel-style compare cascades reliably:
    /// havoc's stacked mutations almost always disturb an already-solved
    /// byte window, while the deterministic sweep tries every single-bit
    /// change alone. Throughput-oriented runs (the paper's FuzzBench
    /// persistent-mode setup) turn this off; see `crates/bench`.
    pub deterministic: bool,
    /// Merge the classify and compare passes (§IV-E). `true` matches the
    /// paper's evaluated configuration; `false` runs them as separate
    /// whole-region passes, which is what the paper's Figure 3 bars show
    /// (and what the merged-vs-split ablation bench quantifies).
    pub merged_classify_compare: bool,
    /// Token dictionary for the havoc stage (AFL's `-x`). Empty = none.
    /// [`bigmap_target::Program::extract_dictionary`] builds one from the
    /// target's magic comparisons.
    pub dictionary: Vec<Vec<u8>>,
    /// Trim each newly admitted queue entry (AFL's trim stage). Costs
    /// extra executions per admission (counted against the budget), buys
    /// shorter seeds — and therefore better mutation locality. Off by
    /// default, matching the minimal persistent-mode setup the paper
    /// evaluates.
    pub trim_new_entries: bool,
    /// Campaign RNG seed.
    pub seed: u64,
    /// Interpreter limits / work scaling.
    pub exec: ExecConfig,
    /// AFL-style hang-budget calibration policy. When set, the campaign
    /// derives a step budget from the observed seed step counts at the
    /// start of the fuzzing loop and runs every mutant under it; `None`
    /// keeps the configured `exec.max_steps` (the paper's fixed-budget
    /// setup).
    pub hang_budget: Option<HangBudget>,
    /// Per-campaign override of the sparse/dense map-op dispatch policy
    /// (`bigmap_core::sparse`). `None` follows the process-wide
    /// `BIGMAP_SPARSE` setting (default: adaptive). Only meaningful for
    /// the two-level scheme; the flat map is always dense.
    pub sparse: Option<SparseMode>,
    /// Per-campaign override of the two-speed execution mode
    /// (`bigmap_core::trace`). `None` follows the process-wide
    /// `BIGMAP_TRACE_MODE` setting (default: always trace). Selective
    /// tracing is coverage-preserving: every mode produces a
    /// bit-identical campaign trajectory.
    pub trace: Option<TraceMode>,
    /// Per-campaign override of the target execution engine
    /// (`bigmap_core::interp`). `None` follows the process-wide
    /// `BIGMAP_INTERP` setting (default: auto — compiled bytecode plus
    /// snapshot resets that resume mutated children from the scheduled
    /// parent's memoized trace prefix). Pure dispatch: every mode
    /// produces a bit-identical campaign trajectory.
    pub interp: Option<InterpMode>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            scheme: MapScheme::TwoLevel,
            map_size: MapSize::K64,
            metric: MetricKind::Edge,
            budget: Budget::Execs(10_000),
            mutations_per_seed: 128,
            deterministic: true,
            merged_classify_compare: true,
            dictionary: Vec::new(),
            trim_new_entries: false,
            seed: 0,
            exec: ExecConfig::default(),
            hang_budget: None,
            sparse: None,
            trace: None,
            interp: None,
        }
    }
}

impl CampaignConfig {
    /// Starts a [`CampaignConfigBuilder`] from the default configuration.
    ///
    /// The struct stays publicly constructible (existing struct-literal
    /// call sites keep compiling), but the builder is the preferred
    /// surface: setters are typed, chainable and `#[must_use]`, so a
    /// dropped half-built config is a compile warning instead of a silent
    /// no-op.
    ///
    /// ```rust
    /// use bigmap_core::{MapScheme, MapSize};
    /// use bigmap_fuzzer::CampaignConfig;
    ///
    /// let config = CampaignConfig::builder()
    ///     .scheme(MapScheme::TwoLevel)
    ///     .map_size(MapSize::M2)
    ///     .budget_execs(5_000)
    ///     .seed(42)
    ///     .build();
    /// assert_eq!(config.map_size, MapSize::M2);
    /// ```
    pub fn builder() -> CampaignConfigBuilder {
        CampaignConfigBuilder::default()
    }
}

/// Chainable builder for [`CampaignConfig`]; see
/// [`CampaignConfig::builder`]. Every setter consumes and returns the
/// builder, and unset fields keep their [`CampaignConfig::default`]
/// values.
#[derive(Debug, Clone, Default)]
pub struct CampaignConfigBuilder {
    config: CampaignConfig,
}

impl CampaignConfigBuilder {
    /// Map data structure (AFL flat vs BigMap two-level).
    #[must_use]
    pub fn scheme(mut self, scheme: MapScheme) -> Self {
        self.config.scheme = scheme;
        self
    }

    /// Coverage map size.
    #[must_use]
    pub fn map_size(mut self, map_size: MapSize) -> Self {
        self.config.map_size = map_size;
        self
    }

    /// Coverage metric.
    #[must_use]
    pub fn metric(mut self, metric: MetricKind) -> Self {
        self.config.metric = metric;
        self
    }

    /// Stop condition.
    #[must_use]
    pub fn budget(mut self, budget: Budget) -> Self {
        self.config.budget = budget;
        self
    }

    /// Stop after this many executions ([`Budget::Execs`] shorthand).
    #[must_use]
    pub fn budget_execs(self, execs: u64) -> Self {
        self.budget(Budget::Execs(execs))
    }

    /// Stop after this much wall-clock time ([`Budget::Time`] shorthand).
    #[must_use]
    pub fn budget_time(self, time: Duration) -> Self {
        self.budget(Budget::Time(time))
    }

    /// Mutations tried per scheduled seed before moving on.
    #[must_use]
    pub fn mutations_per_seed(mut self, mutations: usize) -> Self {
        self.config.mutations_per_seed = mutations;
        self
    }

    /// Run AFL's deterministic stages on each new seed first.
    #[must_use]
    pub fn deterministic(mut self, deterministic: bool) -> Self {
        self.config.deterministic = deterministic;
        self
    }

    /// Merge the classify and compare passes (§IV-E).
    #[must_use]
    pub fn merged_classify_compare(mut self, merged: bool) -> Self {
        self.config.merged_classify_compare = merged;
        self
    }

    /// Token dictionary for the havoc stage (AFL's `-x`).
    #[must_use]
    pub fn dictionary(mut self, dictionary: Vec<Vec<u8>>) -> Self {
        self.config.dictionary = dictionary;
        self
    }

    /// Trim each newly admitted queue entry (AFL's trim stage).
    #[must_use]
    pub fn trim_new_entries(mut self, trim: bool) -> Self {
        self.config.trim_new_entries = trim;
        self
    }

    /// Campaign RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Interpreter limits / work scaling.
    #[must_use]
    pub fn exec(mut self, exec: ExecConfig) -> Self {
        self.config.exec = exec;
        self
    }

    /// AFL-style hang-budget calibration policy.
    #[must_use]
    pub fn hang_budget(mut self, policy: HangBudget) -> Self {
        self.config.hang_budget = Some(policy);
        self
    }

    /// Per-campaign override of the sparse/dense map-op dispatch policy.
    #[must_use]
    pub fn sparse(mut self, mode: SparseMode) -> Self {
        self.config.sparse = Some(mode);
        self
    }

    /// Per-campaign override of the two-speed execution mode.
    #[must_use]
    pub fn trace_mode(mut self, mode: TraceMode) -> Self {
        self.config.trace = Some(mode);
        self
    }

    /// Per-campaign override of the target execution engine.
    #[must_use]
    pub fn interp_mode(mut self, mode: InterpMode) -> Self {
        self.config.interp = Some(mode);
        self
    }

    /// Finishes the build.
    pub fn build(self) -> CampaignConfig {
        self.config
    }
}

/// Results of a campaign.
///
/// `Default` is the all-zero record — what [`crate::ParallelStats`]
/// reports for an instance that died without producing results.
#[derive(Debug, Clone, Default)]
pub struct CampaignStats {
    /// Test cases generated and executed.
    pub execs: u64,
    /// Wall-clock duration of the campaign loop.
    pub wall_time: Duration,
    /// Unique crashes by Crashwalk dedup (the paper's fair metric).
    pub unique_crashes: usize,
    /// Unique crashes by AFL's coverage-bitmap dedup (the biased metric,
    /// reported for comparison).
    pub coverage_unique_crashes: usize,
    /// Total (non-unique) crashing executions.
    pub total_crashes: u64,
    /// Hanging executions.
    pub hangs: u64,
    /// Coverage slots discovered in the virgin map (map-local; subject to
    /// collisions — use [`crate::replay`] for bias-free edge coverage).
    pub discovered_slots: usize,
    /// `used_key` at the end (BigMap) or map size (flat).
    pub used_len: usize,
    /// Final queue size.
    pub queue_len: usize,
    /// Per-stage runtime accounting (Figure 3).
    pub ops: OpStats,
    /// Crashwalk bucket hashes of the unique crashes (used for fleet-wide
    /// dedup across parallel instances).
    pub crash_buckets: Vec<u32>,
    /// Coverage discovery over time (sampled every ~256 executions),
    /// for plateau analysis (Figure 7).
    pub timeline: CoverageTimeline,
    /// Final telemetry snapshot, when the campaign ran with a
    /// [`Telemetry`] handle attached (see [`Campaign::set_telemetry`]).
    pub telemetry: Option<TelemetrySnapshot>,
    /// The calibrated step budget in force at campaign end, when
    /// [`CampaignConfig::hang_budget`] calibration ran (or a resumed
    /// checkpoint carried one). `None` means the configured
    /// `exec.max_steps` applied throughout.
    pub calibrated_hang_budget: Option<u64>,
}

impl CampaignStats {
    /// Test cases per second.
    pub fn throughput(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.execs as f64 / secs
        }
    }
}

/// A single-instance fuzzing campaign over one target.
pub struct Campaign<'p> {
    config: CampaignConfig,
    executor: Executor<'p>,
    map: Box<dyn CoverageMap>,
    virgin: VirginState,
    virgin_crash: VirginState,
    virgin_hang: VirginState,
    queue: Queue,
    mutator: Mutator,
    crashwalk: CrashWalk,
    rng: SmallRng,
    stats_execs: u64,
    total_crashes: u64,
    hangs: u64,
    coverage_unique_crashes: usize,
    ops: OpStats,
    /// Inputs admitted to the queue since the last drain (parallel sync).
    fresh_finds: Vec<Vec<u8>>,
    /// Derivation depth assigned to inputs admitted right now: 0 while dry
    /// running seeds, scheduled parent's depth + 1 during fuzzing.
    admit_depth: usize,
    crash_inputs: Vec<Vec<u8>>,
    timeline: CoverageTimeline,
    discovered_running: u64,
    /// Optional live stats registry (parallel fleets and the bench
    /// harnesses attach one; `None` costs a single predicted branch per
    /// pipeline stage).
    telemetry: Option<Arc<Telemetry>>,
    /// Which mutation stage the loop is currently generating children
    /// for — scheduling/mutation overhead is attributed to it.
    mutation_stage: Stage,
    /// Optional deterministic fault-injection handle (degradation tests
    /// attach one; `None` costs a single predicted branch per injection
    /// point, same discipline as `telemetry`).
    faults: Option<Arc<InstanceFaults>>,
    /// Hang-triggering inputs collected so far (one per novel hang, by
    /// hang-virgin-map coverage — AFL's hangs/ dedup policy).
    hang_inputs: Vec<Vec<u8>>,
    /// Step counts observed while dry-running the initial seeds — the
    /// sample hang-budget calibration takes its p99 over.
    seed_steps: Vec<u64>,
    /// Wall time a resumed checkpoint had already accumulated; added to
    /// the live clock for time budgets and final stats.
    prior_wall: Duration,
    /// Set while the fuzzing loop runs, so mid-run checkpoints can
    /// compute cumulative wall time.
    loop_started: Option<Instant>,
    /// True while [`Campaign::restore`] replays checkpointed inputs:
    /// suppresses trimming, re-admission side effects, telemetry counts
    /// and seed-step sampling (the replay is reconstruction, not work).
    restoring: bool,
    /// The resolved two-speed execution mode (config override or the
    /// process-wide `BIGMAP_TRACE_MODE`).
    trace_mode: TraceMode,
    /// The novelty oracle behind selective tracing; `Some` whenever
    /// `trace_mode` is not [`TraceMode::Always`].
    oracle: Option<NoveltyOracle>,
    /// Auto-mode window state: fast-pass decisions and re-traces observed
    /// in the current window. Deliberately *not* checkpointed — skip
    /// decisions are trajectory-neutral, so resetting the window on
    /// resume changes throughput, never results.
    auto_tries: u32,
    auto_retraces: u32,
    /// Auto-mode fallback: remaining test cases to run traced-direct
    /// (no fast pass) after a re-trace-heavy window.
    auto_direct_left: u32,
}

/// Auto-mode window length (fast-pass decisions per assessment).
const AUTO_WINDOW: u32 = 128;
/// Auto-mode fallback trigger: re-traces ≥ 3/4 of a window means the fast
/// pass is mostly overhead right now.
const AUTO_RETRACE_NUM: u32 = 3;
const AUTO_RETRACE_DEN: u32 = 4;
/// Auto-mode fallback length: traced-direct test cases before the fast
/// pass is retried.
const AUTO_DIRECT_RUN: u32 = 512;

impl std::fmt::Debug for Campaign<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Campaign")
            .field("config", &self.config)
            .field("execs", &self.stats_execs)
            .field("queue", &self.queue.len())
            .finish()
    }
}

impl<'p> Campaign<'p> {
    /// Creates a campaign over an already-instrumented target.
    ///
    /// `instrumentation` must have been assigned with the same
    /// [`MapSize`] as `config.map_size` (the "compile for this map size"
    /// step).
    ///
    /// # Panics
    ///
    /// Panics if the instrumentation's map size disagrees with the config.
    pub fn new(
        config: CampaignConfig,
        interpreter: &'p Interpreter<'p>,
        instrumentation: &'p Instrumentation,
    ) -> Self {
        assert_eq!(
            instrumentation.map_size(),
            config.map_size,
            "instrumentation was compiled for a different map size"
        );
        let mut map = build_map(config.scheme, config.map_size);
        map.set_sparse_override(config.sparse);
        let metric = build_metric(config.metric);
        let trace_mode = config.trace.unwrap_or_else(bigmap_core::env::trace_request);
        let oracle = (trace_mode != TraceMode::Always)
            .then(|| NoveltyOracle::new(interpreter.program().block_count()));
        let mut executor = Executor::new(interpreter, instrumentation, metric);
        executor.set_interp_mode(
            config
                .interp
                .unwrap_or_else(bigmap_core::env::interp_request),
        );
        Campaign {
            executor,
            map,
            virgin: VirginState::new(config.map_size),
            virgin_crash: VirginState::new(config.map_size),
            virgin_hang: VirginState::new(config.map_size),
            queue: Queue::new(),
            mutator: Mutator::with_dictionary(config.seed ^ 0x5EED, config.dictionary.clone()),
            crashwalk: CrashWalk::new(),
            rng: SmallRng::seed_from_u64(config.seed ^ 0xD1CE),
            stats_execs: 0,
            total_crashes: 0,
            hangs: 0,
            coverage_unique_crashes: 0,
            ops: OpStats::new(),
            fresh_finds: Vec::new(),
            admit_depth: 0,
            crash_inputs: Vec::new(),
            timeline: CoverageTimeline::new(),
            discovered_running: 0,
            telemetry: None,
            mutation_stage: Stage::Havoc,
            faults: None,
            hang_inputs: Vec::new(),
            seed_steps: Vec::new(),
            prior_wall: Duration::ZERO,
            loop_started: None,
            restoring: false,
            trace_mode,
            oracle,
            auto_tries: 0,
            auto_retraces: 0,
            auto_direct_left: 0,
            config,
        }
    }

    /// The resolved two-speed execution mode this campaign runs under.
    pub fn trace_mode(&self) -> TraceMode {
        self.trace_mode
    }

    /// The resolved target execution engine this campaign runs under.
    pub fn interp_mode(&self) -> InterpMode {
        self.executor.interp_mode()
    }

    /// Attaches a live telemetry registry: every pipeline stage from here
    /// on counts its events and attributes its wall time into `telemetry`,
    /// and [`CampaignStats::telemetry`] carries the final snapshot.
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        // Record which map-op kernel table this campaign will dispatch
        // through — one selection event plus the per-kernel op counters
        // keyed off the same `KernelKind` on the exec path below.
        telemetry.incr(TelemetryEvent::KernelSelect);
        // Record which page backend served this instance's coverage map
        // (and whether an explicit-huge-page request fell back), plus the
        // outcome of this worker thread's NUMA placement — the
        // telemetry-visible half of the giant-map fallback contract.
        if let Some((backend, fell_back)) = self.map.alloc_info() {
            telemetry.incr(match backend {
                bigmap_core::AllocBackend::ExplicitGigantic
                | bigmap_core::AllocBackend::ExplicitHuge => TelemetryEvent::AllocExplicitHuge,
                bigmap_core::AllocBackend::Thp => TelemetryEvent::AllocThp,
                bigmap_core::AllocBackend::Plain => TelemetryEvent::AllocPlain,
            });
            if fell_back {
                telemetry.incr(TelemetryEvent::AllocFallback);
            }
        }
        match bigmap_core::alloc::thread_numa_outcome() {
            Some(true) => telemetry.incr(TelemetryEvent::NumaPin),
            Some(false) => telemetry.incr(TelemetryEvent::NumaPinFail),
            None => {}
        }
        self.telemetry = Some(telemetry);
    }

    /// The attached telemetry registry, if any.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// Attaches a deterministic fault-injection handle: target
    /// crash/hang storms fire on the executor path and worker panics at
    /// sync boundaries, per the handle's seeded schedule.
    pub fn set_faults(&mut self, faults: Arc<InstanceFaults>) {
        self.faults = Some(faults);
    }

    /// The attached fault-injection handle, if any.
    pub fn faults(&self) -> Option<&Arc<InstanceFaults>> {
        self.faults.as_ref()
    }

    /// The campaign configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Test cases executed so far (live; checkpoint cadence keys on it).
    pub fn execs(&self) -> u64 {
        self.stats_execs
    }

    /// Cumulative campaign wall time: any time carried over from a
    /// resumed checkpoint plus the live fuzzing-loop clock.
    pub fn wall_so_far(&self) -> Duration {
        self.prior_wall
            + self
                .loop_started
                .map(|t| t.elapsed())
                .unwrap_or(Duration::ZERO)
    }

    /// Seeds the pool by executing the initial corpus (AFL's dry run).
    /// Every seed is admitted regardless of novelty, like AFL does.
    pub fn add_seeds<I: IntoIterator<Item = Vec<u8>>>(&mut self, seeds: I) {
        self.admit_depth = 0;
        for input in seeds {
            self.execute_and_judge(&input, true);
        }
    }

    /// Imports an externally discovered input (parallel corpus sync): it is
    /// admitted only if it still shows new coverage locally.
    pub fn import(&mut self, input: &[u8]) {
        self.admit_depth = 0;
        let verdict = self.execute_and_judge(input, false);
        if let Some(tel) = &self.telemetry {
            tel.incr(TelemetryEvent::SyncImport);
            if !verdict.is_interesting() {
                tel.incr(TelemetryEvent::ImportRejection);
            }
        }
    }

    /// Drains the inputs admitted since the last call (parallel sync
    /// export).
    pub fn take_fresh_finds(&mut self) -> Vec<Vec<u8>> {
        std::mem::take(&mut self.fresh_finds)
    }

    /// Crashing inputs collected so far (one per unique crash).
    pub fn crash_inputs(&self) -> &[Vec<u8>] {
        &self.crash_inputs
    }

    /// Hang-triggering inputs collected so far (one per novel hang).
    pub fn hang_inputs(&self) -> &[Vec<u8>] {
        &self.hang_inputs
    }

    /// The whole corpus (queue inputs), for replay-based coverage measures.
    pub fn corpus(&self) -> Vec<Vec<u8>> {
        self.queue
            .entries()
            .iter()
            .map(|e| e.input.clone())
            .collect()
    }

    /// Read access to the seed queue (scheduling state, favored flags,
    /// per-entry metadata) for diagnostics and corpus tooling.
    pub fn queue(&self) -> &Queue {
        &self.queue
    }

    /// Whether the next test case gets an untraced fast pass. In auto
    /// mode this also advances the traced-direct fallback window, so it
    /// must be called exactly once per test case.
    fn fast_pass_active(&mut self) -> bool {
        if self.oracle.is_none() {
            return false;
        }
        if self.trace_mode == TraceMode::Auto && self.auto_direct_left > 0 {
            self.auto_direct_left -= 1;
            return false;
        }
        true
    }

    /// Feeds one fast-pass decision into the auto-mode window; when a
    /// window closes with ≥ 3/4 re-traces, the next `AUTO_DIRECT_RUN`
    /// test cases skip the fast pass entirely. Deterministic: the window
    /// advances on exec counts, never on wall time.
    fn note_auto_decision(&mut self, retraced: bool) {
        if self.trace_mode != TraceMode::Auto {
            return;
        }
        self.auto_tries += 1;
        if retraced {
            self.auto_retraces += 1;
        }
        if self.auto_tries >= AUTO_WINDOW {
            if self.auto_retraces * AUTO_RETRACE_DEN >= self.auto_tries * AUTO_RETRACE_NUM {
                self.auto_direct_left = AUTO_DIRECT_RUN;
            }
            self.auto_tries = 0;
            self.auto_retraces = 0;
        }
    }

    /// Executes one input and runs the full fitness pipeline. Returns the
    /// novelty verdict. `force_admit` bypasses the interestingness check
    /// (used for the initial seeds).
    ///
    /// Under selective tracing the input first runs untraced with only
    /// the novelty oracle watching; a provably-seen clean execution is
    /// counted and dismissed as `NoNew` without ever touching the
    /// coverage map. This is trajectory-equivalent to the always-traced
    /// pipeline: a provably-seen path was fully traced before and its
    /// novelty already consumed into the Ok virgin map (which only ever
    /// shrinks), so re-tracing it would verdict `NoNew` with zero state
    /// change.
    fn execute_and_judge(&mut self, input: &[u8], force_admit: bool) -> NewCoverage {
        // Fault-injection ordinals are consumed exactly once per test
        // case, *before* any execution: a selective-mode re-trace must
        // see the same fault schedule as an always-mode single pass.
        let (inject_crash, inject_hang) = match &self.faults {
            Some(faults) => (
                faults.fire(FaultSite::TargetCrash),
                faults.fire(FaultSite::TargetHang),
            ),
            None => (false, false),
        };

        // Two-speed fast pass: untraced exec, oracle verdict, maybe skip.
        let mut fast_time = Duration::ZERO;
        let mut retraced = false;
        let mut fast_engine = None;
        if self.fast_pass_active() {
            let oracle = self.oracle.as_mut().expect("fast pass requires an oracle");
            let fast = self.executor.run_fast(input, oracle);
            fast_time = fast.exec_time;
            fast_engine = Some(fast.engine);
            // The *effective* outcome decides skippability: an injected
            // crash/hang must flow through the crash/hang pipeline even
            // though the underlying trace is a known-clean path.
            let effective_ok = fast.outcome.is_ok() && !inject_crash && !inject_hang;
            let skip = effective_ok && fast.provably_seen && !force_admit && !self.restoring;
            self.note_auto_decision(!skip);
            if skip {
                self.ops.add(OpKind::Execution, fast.exec_time);
                self.stats_execs += 1;
                if self.stats_execs.is_multiple_of(256) {
                    self.timeline
                        .record(self.stats_execs, self.discovered_running);
                }
                if let Some(tel) = &self.telemetry {
                    tel.incr(TelemetryEvent::Exec);
                    tel.incr(TelemetryEvent::FastPathExec);
                    note_engine(tel, fast.engine);
                    tel.add_stage(Stage::TargetExec, fast.exec_time);
                }
                return NewCoverage::None;
            }
            retraced = true;
        }

        // Map reset (timed separately — the paper's "Map Reset" bar).
        let t = Instant::now();
        self.map.reset();
        let reset_time = t.elapsed();
        self.ops.add(OpKind::Reset, reset_time);
        let mut map_ops_time = reset_time;

        // Target execution, including bitmap updates (plus the untraced
        // fast pass that flagged this input, if one ran).
        let mut execution = self.executor.run(input, self.map.as_mut());
        self.ops
            .add(OpKind::Execution, fast_time + execution.exec_time);
        self.stats_execs += 1;
        if force_admit && !self.restoring {
            // Seed dry run: sample the step count for hang-budget
            // calibration.
            self.seed_steps.push(execution.steps);
        }

        // Apply the pre-drawn fault injections (one predicted branch when
        // no handle is attached).
        if inject_crash {
            execution.outcome = ExecOutcome::Crash {
                site: INJECTED_CRASH_SITE,
                stack: Vec::new(),
            };
        }
        if inject_hang && execution.outcome.is_ok() {
            execution.outcome = ExecOutcome::Hang;
        }

        // Classify + compare. Crashes and hangs diff against their own
        // virgin maps, like AFL. With the §IV-E merge (the default) both
        // steps run in one pass, accounted to Compare; the split pipeline
        // times them separately, which is how the paper's Figure 3 shows
        // its bars.
        let virgin = match &execution.outcome {
            ExecOutcome::Ok => &mut self.virgin,
            ExecOutcome::Crash { .. } => &mut self.virgin_crash,
            ExecOutcome::Hang => &mut self.virgin_hang,
        };
        let split_pipeline = !self.config.merged_classify_compare;
        let verdict = if self.config.merged_classify_compare {
            let t = Instant::now();
            let verdict = self.map.classify_and_compare(virgin);
            let compare_time = t.elapsed();
            self.ops.add(OpKind::Compare, compare_time);
            map_ops_time += compare_time;
            verdict
        } else {
            let t = Instant::now();
            self.map.classify();
            let classify_time = t.elapsed();
            self.ops.add(OpKind::Classify, classify_time);
            let t = Instant::now();
            let verdict = self.map.compare(virgin);
            let compare_time = t.elapsed();
            self.ops.add(OpKind::Compare, compare_time);
            map_ops_time += classify_time + compare_time;
            verdict
        };

        match &execution.outcome {
            ExecOutcome::Ok => {
                // Teach the oracle this path — only now that the traced
                // execution ran and its novelty (if any) was consumed
                // into the Ok virgin map. Committing a fault-injected
                // crash/hang would be unsound: its coverage was compared
                // against the crash/hang virgin map instead, leaving
                // Ok-virgin novelty unabsorbed.
                if retraced {
                    self.oracle
                        .as_mut()
                        .expect("retraced exec has an oracle")
                        .commit();
                }
                // During restore, only forced (checkpointed-queue) replays
                // are admitted: crash/hang warm-up replays rebuild virgin
                // state without minting queue entries the checkpoint never
                // had.
                if (verdict.is_interesting() && !self.restoring) || force_admit {
                    // Optional trim stage (AFL trims each new entry). The
                    // map afterwards holds the trimmed input's classified
                    // coverage, which is what gets hashed and scored.
                    // Trimming is skipped during restore: checkpointed
                    // entries were already final, and re-trimming would
                    // change their bytes.
                    let stored = if self.config.trim_new_entries && !self.restoring {
                        let t = Instant::now();
                        let result = trim_input(&mut self.executor, self.map.as_mut(), input);
                        self.stats_execs += result.execs;
                        self.ops.add(OpKind::Other, t.elapsed());
                        result.input
                    } else {
                        input.to_vec()
                    };

                    // Bitmap hash — interesting test cases only (§II-A2).
                    let t = Instant::now();
                    let hash = self.map.hash();
                    let hash_time = t.elapsed();
                    self.ops.add(OpKind::Hash, hash_time);
                    map_ops_time += hash_time;

                    let mut slots = Vec::new();
                    self.map.for_each_nonzero(&mut |slot, _| slots.push(slot));
                    self.queue.add_with_depth(
                        stored.clone(),
                        execution.exec_time,
                        execution.steps,
                        hash,
                        &slots,
                        self.admit_depth,
                    );
                    self.fresh_finds.push(stored);
                }
            }
            ExecOutcome::Crash { .. } => {
                self.total_crashes += 1;
                if verdict.is_interesting() {
                    self.coverage_unique_crashes += 1;
                }
                if self.crashwalk.observe(&execution.outcome) {
                    self.crash_inputs.push(input.to_vec());
                }
            }
            ExecOutcome::Hang => {
                self.hangs += 1;
                if verdict.is_interesting() && !self.restoring {
                    // Novel hang coverage: keep the input (AFL's hangs/
                    // policy — deduplicated by the hang virgin map).
                    self.hang_inputs.push(input.to_vec());
                }
            }
        }

        // Timeline sampling: count NewEdge verdicts as discovery units and
        // sample the curve every 256 executions (cheap; no map scans).
        if verdict == NewCoverage::NewEdge {
            self.discovered_running += 1;
        }
        if self.stats_execs.is_multiple_of(256) {
            self.timeline
                .record(self.stats_execs, self.discovered_running);
        }

        // Live telemetry: a handful of relaxed atomic adds per test case,
        // all behind one branch. Restore replays are reconstruction, not
        // campaign work, so they stay out of the counters.
        if !self.restoring {
            if let Some(tel) = &self.telemetry {
                tel.incr(TelemetryEvent::Exec);
                tel.incr(TelemetryEvent::MapReset);
                tel.incr(TelemetryEvent::VirginCompare);
                // Attribute the map ops by dispatch path. Dense ops go
                // through whichever kernel the process dispatcher selected
                // (the merged pipeline is one fused kernel call, the split
                // pipeline is two); sparse ops are journal walks that never
                // enter the kernel table, so they count as sparse
                // dispatches instead.
                if split_pipeline {
                    tel.incr(TelemetryEvent::ClassifyPass);
                }
                match self.map.last_op_path() {
                    OpPath::Dense => {
                        tel.incr(TelemetryEvent::DenseDispatch);
                        let kernel_op =
                            TelemetryEvent::for_kernel(bigmap_core::kernels::active().kind);
                        tel.add(kernel_op, if split_pipeline { 2 } else { 1 });
                    }
                    OpPath::Sparse => tel.incr(TelemetryEvent::SparseDispatch),
                }
                if self.map.journal_overflowed() {
                    tel.incr(TelemetryEvent::JournalOverflow);
                }
                if retraced {
                    tel.incr(TelemetryEvent::RetraceExec);
                }
                // One engine-path record per executor dispatch: the fast
                // pass (when one ran) and the traced execution each went
                // through the engine once.
                if let Some(engine) = fast_engine {
                    note_engine(tel, engine);
                }
                note_engine(tel, execution.engine);
                tel.add(TelemetryEvent::MapUpdate, execution.map_updates);
                tel.add_stage(Stage::TargetExec, fast_time + execution.exec_time);
                tel.add_stage(Stage::MapOps, map_ops_time);
                if verdict == NewCoverage::NewEdge {
                    tel.incr(TelemetryEvent::NewCoverage);
                }
                match &execution.outcome {
                    ExecOutcome::Ok => {}
                    ExecOutcome::Crash { .. } => tel.incr(TelemetryEvent::Crash),
                    ExecOutcome::Hang => {
                        tel.incr(TelemetryEvent::Hang);
                        if !execution.planted_hang && self.executor.step_budget().is_some() {
                            tel.incr(TelemetryEvent::HangBudgetExceeded);
                        }
                    }
                }
            }
        }
        verdict
    }

    fn budget_left(&self, started: Instant) -> bool {
        match self.config.budget {
            Budget::Execs(n) => self.stats_execs < n,
            // Time budgets count from the original campaign start: a
            // resumed run only gets the remainder, not a fresh clock.
            Budget::Time(d) => self.prior_wall + started.elapsed() < d,
        }
    }

    /// Runs the campaign to completion and reports statistics.
    ///
    /// # Panics
    ///
    /// Panics if no seeds were added (AFL refuses to start without a
    /// corpus too).
    pub fn run(mut self) -> CampaignStats {
        let started = Instant::now();
        self.run_loop(started, None::<HookState<fn(&mut Campaign<'p>)>>);
        self.finish(started)
    }

    /// Runs the campaign and also returns the final output corpus (queue
    /// inputs) — what the paper's edge-coverage experiments replay against
    /// an independent coverage build (§V-A3).
    ///
    /// # Panics
    ///
    /// Panics if no seeds were added.
    pub fn run_with_corpus(mut self) -> (CampaignStats, Vec<Vec<u8>>) {
        let started = Instant::now();
        self.run_loop(started, None::<HookState<fn(&mut Campaign<'p>)>>);
        let corpus = self.corpus();
        (self.finish(started), corpus)
    }

    /// Runs the campaign and returns everything: statistics, the output
    /// corpus, and one crashing input per unique crash (for triage /
    /// replay validation).
    ///
    /// # Panics
    ///
    /// Panics if no seeds were added.
    pub fn run_detailed(mut self) -> CampaignOutput {
        let started = Instant::now();
        self.run_loop(started, None::<HookState<fn(&mut Campaign<'p>)>>);
        let corpus = self.corpus();
        let crash_inputs = self.crash_inputs.clone();
        let hang_inputs = self.hang_inputs.clone();
        CampaignOutput {
            stats: self.finish(started),
            corpus,
            crash_inputs,
            hang_inputs,
        }
    }

    /// Runs the campaign, invoking `on_sync` at the first mutation-batch
    /// boundary at or past each `sync_every` cadence mark (parallel
    /// corpus exchange hook). Boundaries are batch-aligned so a
    /// checkpoint taken inside the hook captures complete, resumable
    /// state; the hook therefore fires every `sync_every` executions
    /// only approximately, rounded up to the end of the current batch.
    pub fn run_with_hook<F: FnMut(&mut Campaign<'p>)>(
        mut self,
        sync_every: u64,
        on_sync: F,
    ) -> CampaignStats {
        let started = Instant::now();
        self.run_loop(
            started,
            Some(HookState {
                every: sync_every,
                f: on_sync,
            }),
        );
        self.finish(started)
    }

    /// [`Campaign::run_with_hook`] that also returns the full
    /// [`CampaignOutput`] (corpus, crash and hang inputs) — for harness
    /// arms that both checkpoint periodically and replay their corpus
    /// afterwards.
    pub fn run_with_hook_detailed<F: FnMut(&mut Campaign<'p>)>(
        mut self,
        sync_every: u64,
        on_sync: F,
    ) -> CampaignOutput {
        let started = Instant::now();
        self.run_loop(
            started,
            Some(HookState {
                every: sync_every,
                f: on_sync,
            }),
        );
        let corpus = self.corpus();
        let crash_inputs = self.crash_inputs.clone();
        let hang_inputs = self.hang_inputs.clone();
        CampaignOutput {
            stats: self.finish(started),
            corpus,
            crash_inputs,
            hang_inputs,
        }
    }

    /// Fires the worker-panic fault if one is scheduled at the current
    /// sync-boundary ordinal.
    fn sync_boundary_faults(&self) {
        if let Some(faults) = &self.faults {
            if faults.fire(FaultSite::WorkerPanic) {
                panic!("injected worker panic (instance {})", faults.instance());
            }
        }
    }

    fn run_loop<F: FnMut(&mut Campaign<'p>)>(
        &mut self,
        started: Instant,
        mut hook: Option<HookState<F>>,
    ) {
        assert!(!self.queue.is_empty(), "campaign needs at least one seed");
        self.loop_started = Some(started);
        let mut next_sync = hook.as_ref().map(|h| h.every).unwrap_or(u64::MAX);

        // Hang-budget calibration (AFL's timeout calibration, in steps):
        // derived once from the seed dry runs, unless a resumed checkpoint
        // already carries a budget.
        if let Some(policy) = self.config.hang_budget {
            if self.executor.step_budget().is_none() {
                self.executor
                    .set_step_budget(policy.derive(&self.seed_steps));
            }
        }

        let mut deterministic_done = 0usize;
        while self.budget_left(started) {
            // Seed scheduling ("Others" time; attributed to the havoc
            // bucket in the live telemetry, as general loop overhead).
            let t = Instant::now();
            let rng = &mut self.rng;
            let entry_id = self
                .queue
                .schedule(|| rng.gen::<f64>())
                .expect("non-empty queue");
            let parent = self.queue.entry(entry_id).input.clone();
            let parent_depth = self.queue.entry(entry_id).depth;
            self.admit_depth = parent_depth + 1;
            // Arm the snapshot engine on the freshly scheduled parent:
            // every deterministic and havoc child below is a mutation of
            // these bytes, so it can resume from the parent's memoized
            // trace prefix instead of re-executing from the start. The
            // priming run streams into a null sink — no map, oracle or
            // counter ever observes it — so it is trajectory-invisible.
            self.executor.prime_snapshot(&parent);
            let sched_time = t.elapsed();
            self.ops.add(OpKind::Other, sched_time);
            if let Some(tel) = &self.telemetry {
                tel.incr(TelemetryEvent::QueueCycle);
                tel.add_stage(Stage::Havoc, sched_time);
            }

            // Deterministic stages for newly scheduled seeds (master
            // instances only; capped so one long seed cannot eat the run).
            // The fuzzed-rounds gate keeps a resumed campaign from
            // re-grinding entries whose deterministic pass already ran
            // before the checkpoint.
            if self.config.deterministic
                && deterministic_done <= entry_id
                && self.queue.entry(entry_id).fuzzed_rounds <= 1
            {
                deterministic_done = entry_id + 1;
                self.mutation_stage = Stage::Deterministic;
                let t = Instant::now();
                let children = Mutator::deterministic(&parent, 512);
                if let Some(tel) = &self.telemetry {
                    tel.add_stage(Stage::Deterministic, t.elapsed());
                }
                for child in children {
                    if !self.budget_left(started) {
                        break;
                    }
                    self.execute_and_judge(&child, false);
                }
                self.mutation_stage = Stage::Havoc;
            }

            // AFL's `calculate_score` depth bonus: seeds far down a
            // derivation chain took real work to reach, so they get extra
            // havoc energy. This is what lets a campaign ride a laf-intel
            // compare ladder: the frontier entry is always the deepest and
            // gets up to 5x the children of the initial seeds.
            let energy_factor = match parent_depth {
                0..=3 => 1,
                4..=7 => 2,
                8..=13 => 3,
                14..=25 => 4,
                _ => 5,
            };
            for _ in 0..self.config.mutations_per_seed * energy_factor {
                if !self.budget_left(started) {
                    break;
                }
                // Mutation ("Others" time).
                let t = Instant::now();
                let splice_with = if self.queue.len() > 1 && self.rng.gen_bool(0.2) {
                    let other = self.rng.gen_range(0..self.queue.len());
                    Some(self.queue.entry(other).input.clone())
                } else {
                    None
                };
                let child = self.mutator.havoc(&parent, splice_with.as_deref());
                let mutate_time = t.elapsed();
                self.ops.add(OpKind::Other, mutate_time);
                if let Some(tel) = &self.telemetry {
                    tel.add_stage(self.mutation_stage, mutate_time);
                }

                self.execute_and_judge(&child, false);
            }

            // Sync boundaries fire only here, between mutation batches,
            // where the checkpointable state — queue, both RNG streams,
            // counters — is complete. A mid-batch boundary would let a
            // checkpoint capture a campaign that is half-way through a
            // scheduled parent's children; resuming from it re-schedules
            // a fresh parent and the trajectory diverges from the
            // uninterrupted run. Batch alignment is what makes
            // kill/restore cycles bit-identical.
            if self.stats_execs >= next_sync {
                self.sync_boundary_faults();
                if let Some(h) = hook.as_mut() {
                    (h.f)(self);
                    next_sync = self.stats_execs + h.every;
                }
            }
        }
    }

    /// Captures the campaign's resumable state: queue entries with their
    /// scheduling metadata, crash/hang corpora, counters and both RNG
    /// stream positions. See [`crate::checkpoint`] for persistence.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            execs: self.stats_execs,
            wall_nanos: u64::try_from(self.wall_so_far().as_nanos()).unwrap_or(u64::MAX),
            total_crashes: self.total_crashes,
            hangs: self.hangs,
            coverage_unique_crashes: self.coverage_unique_crashes as u64,
            discovered_running: self.discovered_running,
            rng: self.rng.state(),
            mutator_rng: self.mutator.rng_state(),
            hang_budget: self.executor.step_budget(),
            queue_cursor: self.queue.cursor() as u64,
            queue: self
                .queue
                .entries()
                .iter()
                .map(|e| CheckpointQueueEntry {
                    depth: e.depth,
                    fuzzed_rounds: e.fuzzed_rounds,
                    input: e.input.clone(),
                })
                .collect(),
            crashes: self
                .crashwalk
                .buckets()
                .into_iter()
                .zip(self.crash_inputs.iter().cloned())
                .collect(),
            hang_inputs: self.hang_inputs.clone(),
            oracle: self
                .oracle
                .as_ref()
                .and_then(|o| (!o.is_empty()).then(|| o.snapshot())),
        }
    }

    /// Rebuilds campaign state from a [`Checkpoint`]: replays the
    /// checkpointed queue (re-deriving coverage, favored culling and the
    /// virgin map), warms the crash/hang virgin maps, then restores the
    /// counters, Crashwalk buckets and RNG stream positions exactly. Call
    /// on a freshly constructed campaign *instead of*
    /// [`Campaign::add_seeds`]; the queue must be empty.
    ///
    /// The replay costs one execution per checkpointed input but none of
    /// them count against the budget, telemetry, or exec statistics —
    /// the restored campaign continues from the checkpoint's counters.
    ///
    /// # Panics
    ///
    /// Panics if seeds were already added.
    pub fn restore(&mut self, checkpoint: &Checkpoint) {
        assert!(
            self.queue.is_empty(),
            "restore requires a freshly constructed campaign"
        );
        self.restoring = true;
        for (id, entry) in checkpoint.queue.iter().enumerate() {
            self.admit_depth = entry.depth;
            self.execute_and_judge(&entry.input, true);
            self.queue.set_fuzzed_rounds(id, entry.fuzzed_rounds);
        }
        self.queue.set_cursor(checkpoint.queue_cursor as usize);
        // Warm the crash/hang virgin maps so post-resume novelty verdicts
        // match the checkpointed campaign's. Admission is suppressed (see
        // execute_and_judge), so fault-injected crash inputs that run
        // clean cannot mint queue entries here.
        self.admit_depth = 0;
        for input in checkpoint
            .crashes
            .iter()
            .map(|(_, input)| input)
            .chain(checkpoint.hang_inputs.iter())
        {
            self.execute_and_judge(input, false);
        }

        // Re-arm the novelty oracle with the checkpointed committed state.
        // The replay above already committed the queue entries' own paths;
        // the snapshot is a superset (it also remembers traced-but-NoNew
        // mutants), so installing it restores the full fast-path hit rate.
        // An absent or size-mismatched snapshot leaves whatever the replay
        // committed — sound either way, the oracle only ever under-skips.
        if let (Some(oracle), Some(snap)) = (self.oracle.as_mut(), checkpoint.oracle.as_ref()) {
            oracle.install(snap);
        }

        self.stats_execs = checkpoint.execs;
        self.total_crashes = checkpoint.total_crashes;
        self.hangs = checkpoint.hangs;
        self.coverage_unique_crashes = checkpoint.coverage_unique_crashes as usize;
        self.discovered_running = checkpoint.discovered_running;
        self.rng = SmallRng::from_state(checkpoint.rng);
        self.mutator.set_rng_state(checkpoint.mutator_rng);
        self.executor.set_step_budget(checkpoint.hang_budget);
        self.crashwalk = CrashWalk::restore(
            &checkpoint
                .crashes
                .iter()
                .map(|(b, _)| *b)
                .collect::<Vec<_>>(),
        );
        self.crash_inputs = checkpoint
            .crashes
            .iter()
            .map(|(_, input)| input.clone())
            .collect();
        self.hang_inputs = checkpoint.hang_inputs.clone();
        self.fresh_finds.clear();
        self.seed_steps.clear();
        self.prior_wall = Duration::from_nanos(checkpoint.wall_nanos);
        let mut timeline = CoverageTimeline::new();
        if checkpoint.execs > 0 {
            timeline.record(checkpoint.execs, checkpoint.discovered_running);
        }
        self.timeline = timeline;
        self.restoring = false;
    }

    /// Resumes from the newest intact checkpoint generation persisted in
    /// `dir` (an output directory a
    /// [`crate::checkpoint::CheckpointManager`] wrote into). Returns
    /// whether a checkpoint was found; `false` means the campaign is
    /// untouched and the caller should seed it normally. Each corrupt
    /// newer generation skipped on the way to an intact one is counted
    /// as a `CheckpointFallback` telemetry event.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; if generations exist but none is intact,
    /// the error is [`std::io::ErrorKind::InvalidData`].
    ///
    /// # Panics
    ///
    /// Panics if seeds were already added (see [`Campaign::restore`]).
    pub fn resume_from(&mut self, dir: &crate::output_dir::OutputDir) -> std::io::Result<bool> {
        let faults = self.faults.clone();
        match crate::checkpoint::CheckpointManager::load_with_report(dir.root(), faults.as_deref())?
        {
            Some((checkpoint, report)) => {
                if !report.skipped.is_empty() {
                    if let Some(tel) = &self.telemetry {
                        tel.add(
                            TelemetryEvent::CheckpointFallback,
                            report.skipped.len() as u64,
                        );
                    }
                }
                self.restore(&checkpoint);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn finish(self, started: Instant) -> CampaignStats {
        let wall_time = self.prior_wall + started.elapsed();
        CampaignStats {
            execs: self.stats_execs,
            wall_time,
            unique_crashes: self.crashwalk.unique_count(),
            coverage_unique_crashes: self.coverage_unique_crashes,
            total_crashes: self.total_crashes,
            hangs: self.hangs,
            discovered_slots: self.virgin.discovered_in(self.map.used_len()),
            used_len: self.map.used_len(),
            queue_len: self.queue.len(),
            ops: self.ops,
            crash_buckets: self.crashwalk.buckets(),
            timeline: {
                let mut timeline = self.timeline;
                if self.stats_execs > 0 {
                    timeline.record(self.stats_execs, self.discovered_running);
                }
                timeline
            },
            telemetry: self.telemetry.as_ref().map(|t| t.snapshot()),
            calibrated_hang_budget: self.executor.step_budget(),
        }
    }
}

struct HookState<F> {
    every: u64,
    f: F,
}

/// Everything a finished campaign produced (see
/// [`Campaign::run_detailed`]).
#[derive(Debug, Clone)]
pub struct CampaignOutput {
    /// Campaign statistics.
    pub stats: CampaignStats,
    /// The output corpus (queue inputs).
    pub corpus: Vec<Vec<u8>>,
    /// One crashing input per unique crash.
    pub crash_inputs: Vec<Vec<u8>>,
    /// One hang-triggering input per novel hang.
    pub hang_inputs: Vec<Vec<u8>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigmap_target::{BenchmarkSpec, GeneratorConfig, ProgramBuilder};

    fn instrument(program: &bigmap_target::Program, size: MapSize) -> Instrumentation {
        Instrumentation::assign(program.block_count(), program.call_sites, size, 77)
    }

    fn quick_config(scheme: MapScheme, execs: u64) -> CampaignConfig {
        CampaignConfig {
            scheme,
            budget: Budget::Execs(execs),
            mutations_per_seed: 32,
            ..Default::default()
        }
    }

    #[test]
    fn campaign_discovers_coverage() {
        let program = GeneratorConfig {
            seed: 11,
            ..Default::default()
        }
        .generate();
        let inst = instrument(&program, MapSize::K64);
        let interp = Interpreter::new(&program);
        let mut campaign = Campaign::new(quick_config(MapScheme::TwoLevel, 2_000), &interp, &inst);
        campaign.add_seeds(vec![vec![0u8; 32]]);
        let stats = campaign.run();
        assert_eq!(stats.execs, 2_000);
        assert!(stats.queue_len > 1, "mutation should find new coverage");
        assert!(stats.discovered_slots > 0);
        assert!(stats.used_len > 0);
        assert!(stats.throughput() > 0.0);
    }

    #[test]
    fn both_schemes_make_comparable_progress() {
        let program = GeneratorConfig {
            seed: 21,
            ..Default::default()
        }
        .generate();
        let inst = instrument(&program, MapSize::K64);
        let interp = Interpreter::new(&program);

        let run = |scheme| {
            // Deterministic stages off: their trigger depends on the exact
            // schedule, which drifts on timing noise (see below) and would
            // compound the divergence this test bounds.
            let config = CampaignConfig {
                deterministic: false,
                ..quick_config(scheme, 3_000)
            };
            let mut c = Campaign::new(config, &interp, &inst);
            c.add_seeds(vec![vec![7u8; 40]]);
            c.run()
        };
        let flat = run(MapScheme::Flat);
        let big = run(MapScheme::TwoLevel);
        // Identical configuration and RNG seeds. Novelty verdicts are
        // deterministic and equivalent across schemes (see the
        // tests/equivalence.rs property suite) and queue scores are
        // deterministic step counts, but favored culling keys on
        // *scheme-local* slot indices, so the favored sets — and hence the
        // exact schedule — can legitimately differ between schemes and the
        // difference compounds over the run. The bound is generous: it
        // exists to catch a scheme-level coverage collapse, not schedule
        // divergence. Exact scheme equivalence is covered by the
        // deterministic tests/equivalence.rs property suite.
        assert_eq!(flat.execs, big.execs);
        let close = |a: usize, b: usize, what: &str| {
            let (lo, hi) = (a.min(b) as f64, a.max(b) as f64);
            assert!(hi <= lo * 1.6 + 8.0, "{what} diverged: {a} vs {b}");
        };
        close(flat.queue_len, big.queue_len, "queue_len");
        close(
            flat.discovered_slots,
            big.discovered_slots,
            "discovered_slots",
        );
    }

    #[test]
    fn crashes_found_and_deduplicated() {
        // A shallow single-byte gate guards the crash: havoc will hit it.
        let program = ProgramBuilder::new("crashy")
            .gate(0, b'X', true)
            .gate(1, b'Y', false)
            .build()
            .unwrap();
        let inst = instrument(&program, MapSize::K64);
        let interp = Interpreter::new(&program);
        let mut campaign = Campaign::new(
            CampaignConfig {
                budget: Budget::Execs(5_000),
                mutations_per_seed: 64,
                ..Default::default()
            },
            &interp,
            &inst,
        );
        campaign.add_seeds(vec![b"abcd".to_vec()]);
        let stats = campaign.run();
        assert!(stats.total_crashes > 0, "the X gate must be hit");
        assert_eq!(stats.unique_crashes, 1, "one crash site, one unique crash");
        assert!(stats.total_crashes >= stats.unique_crashes as u64);
    }

    #[test]
    fn hangs_counted_without_stalling() {
        let program = GeneratorConfig {
            seed: 33,
            hang_sites: 3,
            crash_guard_width: 2,
            ..Default::default()
        }
        .generate();
        let inst = instrument(&program, MapSize::K64);
        let interp = Interpreter::new(&program);
        let mut campaign = Campaign::new(quick_config(MapScheme::TwoLevel, 3_000), &interp, &inst);
        campaign.add_seeds(vec![vec![0u8; 48]]);
        let stats = campaign.run();
        assert_eq!(stats.execs, 3_000); // hangs must not wedge the loop
    }

    #[test]
    fn time_budget_respected() {
        let program = GeneratorConfig::default().generate();
        let inst = instrument(&program, MapSize::K64);
        let interp = Interpreter::new(&program);
        let mut campaign = Campaign::new(
            CampaignConfig {
                budget: Budget::Time(Duration::from_millis(200)),
                ..Default::default()
            },
            &interp,
            &inst,
        );
        campaign.add_seeds(vec![vec![1u8; 16]]);
        let started = Instant::now();
        let stats = campaign.run();
        assert!(started.elapsed() < Duration::from_secs(5));
        assert!(stats.execs > 0);
        assert!(stats.wall_time >= Duration::from_millis(200));
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_corpus_panics() {
        let program = GeneratorConfig::default().generate();
        let inst = instrument(&program, MapSize::K64);
        let interp = Interpreter::new(&program);
        let campaign = Campaign::new(quick_config(MapScheme::TwoLevel, 100), &interp, &inst);
        campaign.run();
    }

    #[test]
    #[should_panic(expected = "different map size")]
    fn mismatched_instrumentation_panics() {
        let program = GeneratorConfig::default().generate();
        let inst = instrument(&program, MapSize::M2); // compiled for 2M
        let interp = Interpreter::new(&program);
        let _ = Campaign::new(
            quick_config(MapScheme::TwoLevel, 100), // map is 64k
            &interp,
            &inst,
        );
    }

    #[test]
    fn op_stats_populated() {
        let program = GeneratorConfig::default().generate();
        let inst = instrument(&program, MapSize::K64);
        let interp = Interpreter::new(&program);
        let mut campaign = Campaign::new(quick_config(MapScheme::Flat, 1_000), &interp, &inst);
        campaign.add_seeds(vec![vec![3u8; 24]]);
        let stats = campaign.run();
        assert!(stats.ops.get(OpKind::Execution) > Duration::ZERO);
        assert!(stats.ops.get(OpKind::Reset) > Duration::ZERO);
        assert!(stats.ops.get(OpKind::Compare) > Duration::ZERO);
        assert!(stats.ops.total() > Duration::ZERO);
    }

    #[test]
    fn deterministic_stage_runs_on_master() {
        let program = ProgramBuilder::new("det")
            .gate(3, 0x42, false)
            .build()
            .unwrap();
        let inst = instrument(&program, MapSize::K64);
        let interp = Interpreter::new(&program);
        let mut campaign = Campaign::new(
            CampaignConfig {
                deterministic: true,
                budget: Budget::Execs(2_000),
                ..Default::default()
            },
            &interp,
            &inst,
        );
        // Seed differs from 0x42 at offset 3 by one bit-flippable bit:
        // the deterministic bitflip stage must find the gate.
        campaign.add_seeds(vec![vec![0x40u8; 8]]);
        let stats = campaign.run();
        assert!(
            stats.queue_len >= 2,
            "deterministic stage should solve the gate"
        );
    }

    #[test]
    fn sync_hook_fires() {
        let program = GeneratorConfig::default().generate();
        let inst = instrument(&program, MapSize::K64);
        let interp = Interpreter::new(&program);
        // Havoc-only batches: boundaries fire between mutation batches,
        // so a 512-child deterministic sweep would collapse a 1000-exec
        // budget into two boundaries no matter the cadence.
        let config = CampaignConfig {
            deterministic: false,
            ..quick_config(MapScheme::TwoLevel, 1_000)
        };
        let mut campaign = Campaign::new(config, &interp, &inst);
        campaign.add_seeds(vec![vec![9u8; 16]]);
        let mut fired = 0;
        let stats = campaign.run_with_hook(100, |c| {
            fired += 1;
            let _ = c.take_fresh_finds();
        });
        assert!(fired >= 5, "hook fired only {fired} times");
        assert_eq!(stats.execs, 1_000);
    }

    #[test]
    fn telemetry_counters_match_stats() {
        use crate::telemetry::{Stage, Telemetry, TelemetryEvent};

        let program = GeneratorConfig::default().generate();
        let inst = instrument(&program, MapSize::K64);
        let interp = Interpreter::new(&program);
        let mut campaign = Campaign::new(quick_config(MapScheme::TwoLevel, 1_000), &interp, &inst);
        let tel = Arc::new(Telemetry::new(0));
        campaign.set_telemetry(Arc::clone(&tel));
        assert!(campaign.telemetry().is_some());
        campaign.add_seeds(vec![vec![5u8; 24]]);
        let stats = campaign.run();

        let snap = stats.telemetry.as_ref().expect("telemetry attached");
        assert_eq!(snap.get(TelemetryEvent::Exec), stats.execs);
        assert_eq!(snap.get(TelemetryEvent::MapReset), stats.execs);
        assert_eq!(snap.get(TelemetryEvent::VirginCompare), stats.execs);
        assert_eq!(snap.get(TelemetryEvent::ClassifyPass), 0); // merged pipeline
        assert_eq!(
            snap.get(TelemetryEvent::NewCoverage),
            stats.timeline.final_coverage()
        );
        assert!(snap.get(TelemetryEvent::QueueCycle) > 0);
        assert!(snap.get(TelemetryEvent::MapUpdate) > 0);
        assert!(snap.stage_time(Stage::TargetExec) > Duration::ZERO);
        assert!(snap.stage_time(Stage::MapOps) > Duration::ZERO);
        // Deterministic stages ran (default config), so mutation time was
        // attributed to both mutation buckets.
        assert!(snap.stage_time(Stage::Deterministic) > Duration::ZERO);
        assert!(snap.stage_time(Stage::Havoc) > Duration::ZERO);
        // No sync traffic in a plain single-instance run.
        assert_eq!(snap.get(TelemetryEvent::SyncImport), 0);
        assert_eq!(snap.get(TelemetryEvent::ImportRejection), 0);
        // Kernel dispatch: selection recorded once. Every exec dispatches
        // its post-exec ops exactly once — to the dense kernel path or to
        // the sparse journal walk — so the two dispatch counters partition
        // the execs, and with the merged pipeline each dense exec is one
        // fused kernel op attributed to the kernel the process dispatcher
        // actually picked.
        assert_eq!(snap.get(TelemetryEvent::KernelSelect), 1);
        let sparse = snap.get(TelemetryEvent::SparseDispatch);
        let dense = snap.get(TelemetryEvent::DenseDispatch);
        assert_eq!(
            sparse + dense,
            stats.execs,
            "dispatch counters partition execs"
        );
        let active = TelemetryEvent::for_kernel(bigmap_core::kernels::active().kind);
        assert_eq!(snap.get(active), dense);
        let kernel_total: u64 = [
            TelemetryEvent::KernelScalarOp,
            TelemetryEvent::KernelSse2Op,
            TelemetryEvent::KernelAvx2Op,
        ]
        .iter()
        .map(|&e| snap.get(e))
        .sum();
        assert_eq!(kernel_total, dense, "only the active kernel counts");
        // The default journal capacity is far above anything these
        // simulated targets touch per exec.
        assert_eq!(snap.get(TelemetryEvent::JournalOverflow), 0);
    }

    #[test]
    fn telemetry_counts_split_classify_passes() {
        use crate::telemetry::{Telemetry, TelemetryEvent};

        let program = GeneratorConfig::default().generate();
        let inst = instrument(&program, MapSize::K64);
        let interp = Interpreter::new(&program);
        let mut campaign = Campaign::new(
            CampaignConfig {
                merged_classify_compare: false,
                ..quick_config(MapScheme::TwoLevel, 500)
            },
            &interp,
            &inst,
        );
        campaign.set_telemetry(Arc::new(Telemetry::new(0)));
        campaign.add_seeds(vec![vec![5u8; 24]]);
        let stats = campaign.run();
        let snap = stats.telemetry.as_ref().unwrap();
        assert_eq!(snap.get(TelemetryEvent::ClassifyPass), stats.execs);
        assert_eq!(snap.get(TelemetryEvent::VirginCompare), stats.execs);
        // Split pipeline: a dense-dispatched exec runs classify and
        // compare through the kernel table, so the per-kernel op counter
        // sees two per dense exec (sparse execs are journal walks).
        let dense = snap.get(TelemetryEvent::DenseDispatch);
        assert_eq!(
            dense + snap.get(TelemetryEvent::SparseDispatch),
            stats.execs
        );
        let active = TelemetryEvent::for_kernel(bigmap_core::kernels::active().kind);
        assert_eq!(snap.get(active), 2 * dense);
    }

    #[test]
    fn sparse_override_forces_journal_dispatch_and_matches_dense() {
        use crate::telemetry::{Telemetry, TelemetryEvent};

        let program = GeneratorConfig::default().generate();
        let inst = instrument(&program, MapSize::K64);
        let interp = Interpreter::new(&program);
        let run = |mode: Option<SparseMode>| {
            let mut campaign = Campaign::new(
                CampaignConfig {
                    sparse: mode,
                    ..quick_config(MapScheme::TwoLevel, 600)
                },
                &interp,
                &inst,
            );
            let tel = Arc::new(Telemetry::new(0));
            campaign.set_telemetry(Arc::clone(&tel));
            campaign.add_seeds(vec![vec![5u8; 24]]);
            (campaign.run(), tel)
        };
        let (on, on_tel) = run(Some(SparseMode::On));
        let (off, off_tel) = run(Some(SparseMode::Off));
        // Forced modes dispatch every exec to their path (the default
        // journal capacity never overflows on these targets)...
        assert_eq!(on_tel.get(TelemetryEvent::SparseDispatch), on.execs);
        assert_eq!(on_tel.get(TelemetryEvent::DenseDispatch), 0);
        assert_eq!(off_tel.get(TelemetryEvent::DenseDispatch), off.execs);
        assert_eq!(off_tel.get(TelemetryEvent::SparseDispatch), 0);
        // ...and the campaign trajectory must be bit-identical either way.
        assert_eq!(on.execs, off.execs);
        assert_eq!(on.queue_len, off.queue_len);
        assert_eq!(on.used_len, off.used_len);
        assert_eq!(
            on.timeline.points(),
            off.timeline.points(),
            "sparse pipeline changed the coverage trajectory"
        );
    }

    #[test]
    fn trace_modes_share_one_bit_identical_trajectory() {
        use crate::telemetry::{Telemetry, TelemetryEvent};

        let program = GeneratorConfig::default().generate();
        let inst = instrument(&program, MapSize::K64);
        let interp = Interpreter::new(&program);
        let run = |mode: TraceMode| {
            let mut campaign = Campaign::new(
                CampaignConfig {
                    trace: Some(mode),
                    ..quick_config(MapScheme::TwoLevel, 3_000)
                },
                &interp,
                &inst,
            );
            let tel = Arc::new(Telemetry::new(0));
            campaign.set_telemetry(Arc::clone(&tel));
            campaign.add_seeds(vec![vec![5u8; 24]]);
            (campaign.run(), tel)
        };
        let (always, always_tel) = run(TraceMode::Always);
        for mode in [TraceMode::Selective, TraceMode::Auto] {
            let (stats, tel) = run(mode);
            // The whole campaign trajectory must be bit-identical to the
            // always-traced run: selective tracing may only change *how*
            // coverage is observed, never what the campaign does with it.
            assert_eq!(stats.execs, always.execs, "{mode:?}");
            assert_eq!(stats.queue_len, always.queue_len, "{mode:?}");
            assert_eq!(stats.used_len, always.used_len, "{mode:?}");
            assert_eq!(stats.discovered_slots, always.discovered_slots, "{mode:?}");
            assert_eq!(stats.total_crashes, always.total_crashes, "{mode:?}");
            assert_eq!(stats.unique_crashes, always.unique_crashes, "{mode:?}");
            assert_eq!(stats.hangs, always.hangs, "{mode:?}");
            assert_eq!(
                stats.timeline.points(),
                always.timeline.points(),
                "{mode:?} changed the coverage trajectory"
            );
            // The fast path must actually fire (most mutants replay known
            // paths), and every exec is either skipped or re-traced or —
            // in auto mode — run traced-direct.
            let fast = tel.get(TelemetryEvent::FastPathExec);
            let retraced = tel.get(TelemetryEvent::RetraceExec);
            assert!(fast > 0, "{mode:?}: fast path never skipped anything");
            if mode == TraceMode::Selective {
                assert_eq!(fast + retraced, tel.get(TelemetryEvent::Exec));
            } else {
                assert!(fast + retraced <= tel.get(TelemetryEvent::Exec));
            }
        }
        assert_eq!(always_tel.get(TelemetryEvent::FastPathExec), 0);
        assert_eq!(always_tel.get(TelemetryEvent::RetraceExec), 0);
    }

    #[test]
    fn interp_modes_share_one_bit_identical_trajectory() {
        use crate::telemetry::{Telemetry, TelemetryEvent};

        let program = GeneratorConfig::default().generate();
        let inst = instrument(&program, MapSize::K64);
        let interp = Interpreter::new(&program);
        let run = |mode: InterpMode| {
            let mut campaign = Campaign::new(
                CampaignConfig {
                    interp: Some(mode),
                    ..quick_config(MapScheme::TwoLevel, 3_000)
                },
                &interp,
                &inst,
            );
            assert_eq!(campaign.interp_mode(), mode);
            let tel = Arc::new(Telemetry::new(0));
            campaign.set_telemetry(Arc::clone(&tel));
            campaign.add_seeds(vec![vec![5u8; 24]]);
            (campaign.run(), tel)
        };
        let (tree, tree_tel) = run(InterpMode::Tree);
        for mode in [InterpMode::Compiled, InterpMode::Auto] {
            let (stats, tel) = run(mode);
            // The engine is pure dispatch: the whole campaign trajectory
            // must be bit-identical to the tree walker's.
            assert_eq!(stats.execs, tree.execs, "{mode:?}");
            assert_eq!(stats.queue_len, tree.queue_len, "{mode:?}");
            assert_eq!(stats.used_len, tree.used_len, "{mode:?}");
            assert_eq!(stats.discovered_slots, tree.discovered_slots, "{mode:?}");
            assert_eq!(stats.total_crashes, tree.total_crashes, "{mode:?}");
            assert_eq!(stats.unique_crashes, tree.unique_crashes, "{mode:?}");
            assert_eq!(stats.hangs, tree.hangs, "{mode:?}");
            assert_eq!(
                stats.timeline.points(),
                tree.timeline.points(),
                "{mode:?} changed the coverage trajectory"
            );
            // Non-vacuousness: the compiled engine actually served execs.
            assert_eq!(
                tel.get(TelemetryEvent::CompiledExec),
                tel.get(TelemetryEvent::Exec),
                "{mode:?}: every exec should be compiled"
            );
            if mode == InterpMode::Auto {
                assert!(
                    tel.get(TelemetryEvent::SnapshotHit) > 0,
                    "auto mode never reused a parent snapshot"
                );
            } else {
                assert_eq!(tel.get(TelemetryEvent::SnapshotHit), 0, "{mode:?}");
                assert_eq!(tel.get(TelemetryEvent::SnapshotMiss), 0, "{mode:?}");
            }
        }
        assert_eq!(tree_tel.get(TelemetryEvent::CompiledExec), 0);
        assert_eq!(tree_tel.get(TelemetryEvent::SnapshotHit), 0);
    }

    #[test]
    fn selective_resume_restores_oracle_state() {
        use crate::telemetry::{Telemetry, TelemetryEvent};

        let program = GeneratorConfig::default().generate();
        let inst = instrument(&program, MapSize::K64);
        let interp = Interpreter::new(&program);
        let config = CampaignConfig {
            trace: Some(TraceMode::Selective),
            ..quick_config(MapScheme::TwoLevel, 2_000)
        };

        // An always-trace campaign has no oracle to checkpoint.
        let mut plain = Campaign::new(
            CampaignConfig {
                trace: Some(TraceMode::Always),
                ..config.clone()
            },
            &interp,
            &inst,
        );
        plain.add_seeds(vec![vec![5u8; 24]]);
        assert_eq!(plain.checkpoint().oracle, None);

        // Interrupted run: snapshot at ~1 000 execs, resume in a fresh
        // campaign, finish the budget there.
        let mut first = Campaign::new(config.clone(), &interp, &inst);
        first.add_seeds(vec![vec![5u8; 24]]);
        let mut ckpt = None;
        first.run_with_hook(250, |c| {
            if c.execs() >= 1_000 && ckpt.is_none() {
                ckpt = Some(c.checkpoint());
            }
        });
        let ckpt = ckpt.expect("hook must fire before the budget runs out");
        assert!(
            ckpt.oracle.as_ref().is_some_and(|o| !o.paths.is_empty()),
            "a selective campaign's checkpoint must carry oracle state"
        );
        // The text codec round-trips it (what CheckpointManager persists).
        let ckpt = Checkpoint::from_text(&ckpt.to_text()).unwrap();

        let mut resumed = Campaign::new(config, &interp, &inst);
        let tel = Arc::new(Telemetry::new(0));
        resumed.set_telemetry(Arc::clone(&tel));
        resumed.restore(&ckpt);

        // Every checkpointed path hash survived the install (the restored
        // oracle may hold more — the replay commits too, never less).
        let reinstalled = resumed
            .checkpoint()
            .oracle
            .expect("oracle state must survive restore");
        let persisted = ckpt.oracle.as_ref().unwrap();
        assert!(
            persisted
                .paths
                .iter()
                .all(|p| reinstalled.paths.binary_search(p).is_ok()),
            "restore dropped committed path hashes"
        );
        assert_eq!(reinstalled.buckets.len(), persisted.buckets.len());

        // The resumed campaign finishes its budget with the fast path hot
        // (replay itself stays out of telemetry, so every skip counted
        // here happened after the resume).
        let stats = resumed.run();
        assert_eq!(stats.execs, 2_000);
        assert!(stats.queue_len >= ckpt.queue.len());
        assert!(
            tel.get(TelemetryEvent::FastPathExec) > 0,
            "resumed campaign never skipped: oracle state was lost"
        );
    }

    #[test]
    fn import_counts_rejections() {
        use crate::telemetry::{Telemetry, TelemetryEvent};

        let program = BenchmarkSpec::by_name("zlib").unwrap().build(0.05);
        let inst = instrument(&program, MapSize::K64);
        let interp = Interpreter::new(&program);
        let mut campaign = Campaign::new(quick_config(MapScheme::TwoLevel, 10), &interp, &inst);
        let tel = Arc::new(Telemetry::new(0));
        campaign.set_telemetry(Arc::clone(&tel));
        campaign.add_seeds(vec![vec![1u8; 16]]);
        campaign.import(&[1u8; 16]); // identical coverage: rejected
        assert_eq!(tel.get(TelemetryEvent::SyncImport), 1);
        assert_eq!(tel.get(TelemetryEvent::ImportRejection), 1);
        campaign.import(&[0xFFu8; 64]); // different path: admitted
        assert_eq!(tel.get(TelemetryEvent::SyncImport), 2);
        assert_eq!(tel.get(TelemetryEvent::ImportRejection), 1);
    }

    #[test]
    fn import_admits_only_novel_inputs() {
        let program = BenchmarkSpec::by_name("zlib").unwrap().build(0.05);
        let inst = instrument(&program, MapSize::K64);
        let interp = Interpreter::new(&program);
        let mut campaign = Campaign::new(quick_config(MapScheme::TwoLevel, 10), &interp, &inst);
        campaign.add_seeds(vec![vec![1u8; 16]]);
        let before = campaign.queue.len();
        campaign.import(&[1u8; 16]); // identical coverage: rejected
        assert_eq!(campaign.queue.len(), before);
        campaign.import(&[0xFFu8; 64]); // different path: likely admitted
                                        // (If the path happens to be identical this would be flaky; the
                                        // 0xFF pattern differs from 0x01 across every gate, so it is not.)
        assert!(campaign.queue.len() > before);
    }
}
