//! Fleet supervision: restart crashed instances from their checkpoints.
//!
//! [`run_parallel_with_faults`](crate::parallel::run_parallel_with_faults)
//! *contains* a worker panic — the fleet survives, the instance's work is
//! lost. This module goes one step further and *recovers*: every instance
//! runs under a supervisor loop that catches its panic, waits out a
//! linear backoff, and relaunches it — restored from its last on-disk
//! checkpoint when a checkpoint directory is configured, from the seed
//! corpus otherwise. Restart attempts are bounded; an instance that keeps
//! dying is declared [`InstanceHealth::Dead`] and the rest of the fleet
//! carries on.
//!
//! ## Sync consistency across restarts
//!
//! A relaunched instance re-reads the **entire** hub (its sync cursor
//! restarts at zero) instead of trying to remember how far its dead
//! predecessor had read: the campaign's novelty filter discards
//! everything already covered, so re-importing is merely redundant work,
//! while resuming a stale cursor could silently skip other instances'
//! finds forever. In the other direction the hub's content-idempotent
//! `publish` guarantees that finds the predecessor had already shared are
//! not duplicated when the successor rediscovers them. Fault ordinals
//! live in the shared [`InstanceFaults`] handle, *outside* the restarted
//! campaign, so a fault scheduled at the Nth occurrence fires exactly
//! once per campaign lifetime — not once per restart.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use bigmap_coverage::Instrumentation;
use bigmap_target::{Interpreter, Program};

use crate::campaign::{Campaign, CampaignConfig, CampaignStats};
use crate::checkpoint::CheckpointManager;
use crate::faults::{FaultPlan, InstanceFaults};
use crate::parallel::{panic_message, InstanceHealth, ParallelStats, SyncHub};
use crate::telemetry::{Telemetry, TelemetryEvent, TelemetryRegistry};

/// Supervision policy for a fleet.
#[derive(Debug, Clone, Default)]
pub struct SupervisorConfig {
    /// Restarts allowed per instance before it is declared dead.
    pub max_restarts: u32,
    /// Base delay before a relaunch; attempt N waits `backoff * N`
    /// (linear backoff keeps a crash-looping instance from burning CPU).
    pub backoff: Duration,
    /// Checkpoint cadence in executions (checked at sync boundaries).
    /// Ignored without a `checkpoint_root`.
    pub checkpoint_every: u64,
    /// Root directory for checkpoints; each instance writes into
    /// `instance-NN/` below it. `None` disables checkpointing — restarts
    /// then begin again from the seed corpus.
    pub checkpoint_root: Option<PathBuf>,
    /// Wall-clock floor between snapshots (see
    /// [`CheckpointManager::with_min_interval`]): bounds the write rate
    /// on fast instances where the exec cadence alone would checkpoint
    /// hundreds of times per second. Zero = pure exec cadence.
    pub checkpoint_min_interval: Duration,
    /// Deterministic fault schedule applied to every instance.
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl SupervisorConfig {
    /// A forgiving default policy: 3 restarts, 25 ms base backoff,
    /// checkpoint every 1000 executions but at most every 250 ms (once a
    /// root is set).
    pub fn resilient() -> Self {
        SupervisorConfig {
            max_restarts: 3,
            backoff: Duration::from_millis(25),
            checkpoint_every: 1_000,
            checkpoint_root: None,
            checkpoint_min_interval: Duration::from_millis(250),
            fault_plan: None,
        }
    }
}

/// One attempt at running an instance's campaign start-to-finish.
/// Everything constructed here dies with the attempt; state that must
/// survive a restart (fault ordinals, telemetry counters, the hub) is
/// passed in via `Arc`.
#[allow(clippy::too_many_arguments)]
fn run_instance_attempt(
    program: &Program,
    instrumentation: &Instrumentation,
    config: &CampaignConfig,
    seeds: &[Vec<u8>],
    instance: usize,
    sync_every: u64,
    checkpoint_every: u64,
    checkpoint_min_interval: Duration,
    hub: &Arc<SyncHub>,
    telemetry: Option<&Arc<Telemetry>>,
    faults: Option<&Arc<InstanceFaults>>,
    checkpoint_dir: Option<&PathBuf>,
    registry: Option<&TelemetryRegistry>,
) -> CampaignStats {
    let interpreter = Interpreter::with_config(program, config.exec);
    let mut campaign = Campaign::new(config.clone(), &interpreter, instrumentation);
    if let Some(tel) = telemetry {
        campaign.set_telemetry(Arc::clone(tel));
    }
    if let Some(faults) = faults {
        campaign.set_faults(Arc::clone(faults));
    }

    let mut manager = checkpoint_dir.map(|dir| {
        CheckpointManager::new(dir, checkpoint_every).with_min_interval(checkpoint_min_interval)
    });
    let restored = match checkpoint_dir {
        Some(dir) => match CheckpointManager::load_with_report(dir, faults.map(Arc::as_ref)) {
            Ok(Some((checkpoint, report))) => {
                if !report.skipped.is_empty() {
                    if let Some(tel) = telemetry {
                        tel.add(
                            crate::telemetry::TelemetryEvent::CheckpointFallback,
                            report.skipped.len() as u64,
                        );
                    }
                }
                campaign.restore(&checkpoint);
                true
            }
            Ok(None) => false,
            // No generation intact at all: a cold start, not a death loop.
            Err(_) => false,
        },
        None => false,
    };
    if !restored {
        campaign.add_seeds(seeds.to_vec());
        // The shared seed corpus is common knowledge; publishing it would
        // only make the others re-execute inputs they already have.
        let _ = campaign.take_fresh_finds();
    }

    // Cursor restarts at zero on every attempt — see the module docs.
    let mut cursor = 0u64;
    let hub_for_hook = Arc::clone(hub);
    let tel_for_hook = telemetry.cloned();

    campaign.run_with_hook(sync_every, move |c| {
        let fetched = hub_for_hook
            .fetch_since(&mut cursor, instance)
            .expect("local sync cursor cannot overrun");
        for input in fetched {
            c.import(&input);
        }
        let finds = c.take_fresh_finds();
        if let Some(tel) = &tel_for_hook {
            tel.add(TelemetryEvent::SyncPublish, finds.len() as u64);
            if let Some(registry) = registry {
                registry.emit(tel);
            }
        }
        hub_for_hook.publish(instance, finds);
        if let Some(manager) = &mut manager {
            // A failed write (injected or real) degrades one checkpoint,
            // never the campaign: the previous file is still intact.
            let _ = manager.maybe_checkpoint(c);
        }
    })
}

/// Runs a supervised master–secondary fleet: like
/// [`run_parallel_with_telemetry`](crate::parallel::run_parallel_with_telemetry),
/// but each instance is relaunched after a panic according to
/// `supervisor` — restored from its checkpoint when checkpointing is
/// configured. Per-instance health lands in [`ParallelStats::health`]:
/// `Running` (no intervention), `Restarted(n)`, or `Dead(panic message)`.
///
/// A restarted instance keeps its telemetry handle and fault ordinals
/// (they live outside the campaign), so counters accumulate across the
/// whole supervised lifetime and fault schedules do not replay.
///
/// # Panics
///
/// Panics if `instances == 0` or `seeds` is empty.
#[allow(clippy::too_many_arguments)]
pub fn run_supervised(
    program: &Program,
    instrumentation: &Instrumentation,
    base_config: &CampaignConfig,
    seeds: &[Vec<u8>],
    instances: usize,
    sync_every: u64,
    supervisor: &SupervisorConfig,
    registry: Option<&TelemetryRegistry>,
) -> ParallelStats {
    assert!(instances > 0, "need at least one instance");
    assert!(!seeds.is_empty(), "need a seed corpus");

    let hub = Arc::new(SyncHub::new());

    let results: Vec<(CampaignStats, InstanceHealth)> = thread::scope(|scope| {
        let mut handles = Vec::with_capacity(instances);
        for instance in 0..instances {
            let hub = Arc::clone(&hub);
            let seeds = seeds.to_vec();
            let telemetry = registry.map(|r| r.register(instance));
            let faults = supervisor
                .fault_plan
                .as_ref()
                .map(|plan| Arc::new(InstanceFaults::new(Arc::clone(plan), instance)));
            let checkpoint_dir = supervisor
                .checkpoint_root
                .as_ref()
                .map(|root| root.join(format!("instance-{instance:02}")));
            let mut config = base_config.clone();
            config.seed =
                base_config.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(instance as u64 + 1));
            config.deterministic = instance == 0 && base_config.deterministic;

            handles.push(scope.spawn(move || {
                let mut restarts = 0u32;
                loop {
                    let attempt = catch_unwind(AssertUnwindSafe(|| {
                        run_instance_attempt(
                            program,
                            instrumentation,
                            &config,
                            &seeds,
                            instance,
                            sync_every,
                            supervisor.checkpoint_every,
                            supervisor.checkpoint_min_interval,
                            &hub,
                            telemetry.as_ref(),
                            faults.as_ref(),
                            checkpoint_dir.as_ref(),
                            registry,
                        )
                    }));
                    match attempt {
                        Ok(stats) => {
                            let health = if restarts == 0 {
                                InstanceHealth::Running
                            } else {
                                InstanceHealth::Restarted(restarts)
                            };
                            return (stats, health);
                        }
                        Err(payload) => {
                            let msg = panic_message(payload);
                            restarts += 1;
                            if restarts > supervisor.max_restarts {
                                return (CampaignStats::default(), InstanceHealth::Dead(msg));
                            }
                            thread::sleep(supervisor.backoff * restarts);
                        }
                    }
                }
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("supervisor thread must not panic"))
            .collect()
    });

    let unique_crashes = results
        .iter()
        .flat_map(|(s, _)| s.crash_buckets.iter().copied())
        .collect::<std::collections::HashSet<u32>>()
        .len();
    let (instances, health) = results.into_iter().unzip();

    ParallelStats {
        instances,
        health,
        unique_crashes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Budget;
    use crate::faults::FaultSite;
    use bigmap_core::{MapScheme, MapSize};
    use bigmap_target::GeneratorConfig;

    fn setup() -> (Program, Instrumentation) {
        let program = GeneratorConfig {
            seed: 19,
            functions: 6,
            gates_per_function: 10,
            crash_sites: 2,
            crash_guard_width: 2,
            ..Default::default()
        }
        .generate();
        let inst =
            Instrumentation::assign(program.block_count(), program.call_sites, MapSize::K64, 3);
        (program, inst)
    }

    fn config(execs: u64) -> CampaignConfig {
        CampaignConfig {
            scheme: MapScheme::TwoLevel,
            map_size: MapSize::K64,
            budget: Budget::Execs(execs),
            mutations_per_seed: 32,
            ..Default::default()
        }
    }

    fn tmp_root(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bigmap-sup-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn fault_free_fleet_matches_parallel_shape() {
        let (program, inst) = setup();
        let stats = run_supervised(
            &program,
            &inst,
            &config(800),
            &[vec![0u8; 24]],
            2,
            400,
            &SupervisorConfig::resilient(),
            None,
        );
        assert_eq!(stats.health, vec![InstanceHealth::Running; 2]);
        // Sync imports count as executions, so a hook landing exactly on
        // the budget boundary can push an instance slightly past it —
        // same accounting as run_parallel.
        assert!(stats.total_execs() >= 2 * 800);
        for s in &stats.instances {
            assert!(s.execs >= 800);
        }
    }

    #[test]
    fn injected_panic_is_restarted_and_completes() {
        let (program, inst) = setup();
        let root = tmp_root("restart");
        let plan = Arc::new(FaultPlan::new().inject(FaultSite::WorkerPanic, 1, 1));
        let supervisor = SupervisorConfig {
            max_restarts: 3,
            backoff: Duration::from_millis(1),
            checkpoint_every: 200,
            checkpoint_root: Some(root.clone()),
            checkpoint_min_interval: Duration::ZERO,
            fault_plan: Some(plan),
        };
        let stats = run_supervised(
            &program,
            &inst,
            &config(2_000),
            &[vec![0u8; 24]],
            2,
            200,
            &supervisor,
            None,
        );
        assert_eq!(stats.health[0], InstanceHealth::Running);
        assert_eq!(stats.health[1], InstanceHealth::Restarted(1));
        assert!(stats.all_completed());
        // The restarted instance resumed from its checkpoint and still
        // delivered its full budget.
        assert!(stats.instances[1].execs >= 2_000);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn restart_without_checkpoints_starts_from_seeds() {
        let (program, inst) = setup();
        let plan = Arc::new(FaultPlan::new().inject(FaultSite::WorkerPanic, 0, 0));
        let supervisor = SupervisorConfig {
            max_restarts: 2,
            backoff: Duration::from_millis(1),
            checkpoint_every: 0,
            checkpoint_root: None,
            checkpoint_min_interval: Duration::ZERO,
            fault_plan: Some(plan),
        };
        let stats = run_supervised(
            &program,
            &inst,
            &config(600),
            &[vec![0u8; 24]],
            1,
            200,
            &supervisor,
            None,
        );
        assert_eq!(stats.health[0], InstanceHealth::Restarted(1));
        assert!(stats.instances[0].execs >= 600);
    }

    #[test]
    fn exhausted_restart_budget_reports_dead() {
        let (program, inst) = setup();
        // Panic at every sync boundary the instance will ever reach.
        let plan = Arc::new(FaultPlan::new().inject_seeded(7, FaultSite::WorkerPanic, 0, 64, 64));
        let supervisor = SupervisorConfig {
            max_restarts: 1,
            backoff: Duration::from_millis(1),
            checkpoint_every: 0,
            checkpoint_root: None,
            checkpoint_min_interval: Duration::ZERO,
            fault_plan: Some(plan),
        };
        let stats = run_supervised(
            &program,
            &inst,
            &config(1_000),
            &[vec![0u8; 24]],
            1,
            100,
            &supervisor,
            None,
        );
        match &stats.health[0] {
            InstanceHealth::Dead(msg) => assert!(msg.contains("injected worker panic")),
            other => panic!("expected dead instance, got {other:?}"),
        }
        assert_eq!(stats.instances[0].execs, 0);
    }
}
