//! Input trimming (AFL's `trim_case` stage).
//!
//! Before a new queue entry is fuzzed, AFL tries to shrink it: remove
//! chunks of decreasing size and keep the removal whenever the coverage
//! checksum is unchanged. Short inputs matter doubly here — the paper's
//! §II-A1 notes AFL prefers short files because mutations are more likely
//! to hit control structures, and the queue's favored-entry score divides
//! by input length.
//!
//! The coverage checksum is the map hash, so trimming is one more consumer
//! of the *bitmap hash* operation whose cost Figure 3 tracks — under
//! BigMap's watermark rule the hash stays cheap no matter the map size.

use bigmap_core::CoverageMap;

use crate::executor::Executor;

/// Result of trimming one input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrimResult {
    /// The trimmed input (equal to the original if nothing could go).
    pub input: Vec<u8>,
    /// Executions spent trimming.
    pub execs: u64,
    /// Bytes removed.
    pub removed: usize,
}

/// AFL's trim schedule: chunk size starts at len/16 and halves down to
/// len/1024 (bounded below by 4 bytes).
fn chunk_sizes(len: usize) -> Vec<usize> {
    let mut sizes = Vec::new();
    let mut size = (len / 16).max(4);
    let min = (len / 1024).max(4);
    while size >= min {
        sizes.push(size);
        if size == min {
            break;
        }
        size = (size / 2).max(min);
    }
    sizes
}

/// Trims `input` against the target: removes chunks whenever the coverage
/// hash of the classified map is unchanged.
///
/// `map` is used as scratch space; its contents on return are those of the
/// final verification run. The virgin state is untouched — trimming only
/// compares hashes, never updates global coverage (same as AFL).
///
/// # Examples
///
/// ```rust
/// use bigmap_core::{BigMap, MapSize};
/// use bigmap_coverage::{EdgeHitCount, Instrumentation};
/// use bigmap_fuzzer::{trim_input, Executor};
/// use bigmap_target::{Interpreter, ProgramBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Only input[0] matters to this target; the tail is dead weight.
/// let program = ProgramBuilder::new("t").gate(0, b'A', false).build()?;
/// let inst = Instrumentation::assign(program.block_count(), program.call_sites,
///                                    MapSize::K64, 1);
/// let interp = Interpreter::new(&program);
/// let mut executor = Executor::new(&interp, &inst, Box::new(EdgeHitCount::new()));
/// let mut map = BigMap::new(MapSize::K64)?;
///
/// let fat = [b"A".as_slice(), &[0u8; 512]].concat();
/// let trimmed = trim_input(&mut executor, &mut map, &fat);
/// assert!(trimmed.input.len() < fat.len());
/// assert_eq!(trimmed.input[0], b'A');
/// # Ok(())
/// # }
/// ```
pub fn trim_input(
    executor: &mut Executor<'_>,
    map: &mut dyn CoverageMap,
    input: &[u8],
) -> TrimResult {
    let mut execs = 0u64;

    // Reference hash of the original input.
    let run_hash = |executor: &mut Executor<'_>, map: &mut dyn CoverageMap, data: &[u8]| {
        map.reset();
        let _ = executor.run(data, map);
        map.classify();
        map.hash()
    };
    let reference = run_hash(executor, map, input);
    execs += 1;

    let mut current = input.to_vec();
    for chunk in chunk_sizes(input.len()) {
        if current.len() <= chunk {
            continue;
        }
        let mut offset = 0;
        while offset < current.len() && current.len() > chunk {
            let end = (offset + chunk).min(current.len());
            let mut candidate = current.clone();
            candidate.drain(offset..end);
            if candidate.is_empty() {
                break;
            }
            let hash = run_hash(executor, map, &candidate);
            execs += 1;
            if hash == reference {
                current = candidate; // removal kept coverage: keep it
                                     // same offset now points at the next chunk
            } else {
                offset = end;
            }
        }
    }

    // Leave the map reflecting the final input (callers may inspect it).
    let final_hash = run_hash(executor, map, &current);
    execs += 1;
    debug_assert_eq!(final_hash, reference, "trim must preserve coverage");

    TrimResult {
        removed: input.len() - current.len(),
        input: current,
        execs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigmap_core::{BigMap, MapSize};
    use bigmap_coverage::{EdgeHitCount, Instrumentation};
    use bigmap_target::{GeneratorConfig, Interpreter, ProgramBuilder};

    fn setup(program: &bigmap_target::Program) -> Instrumentation {
        Instrumentation::assign(program.block_count(), program.call_sites, MapSize::K64, 3)
    }

    #[test]
    fn chunk_schedule_halves() {
        assert_eq!(chunk_sizes(1024), vec![64, 32, 16, 8, 4]);
        assert_eq!(chunk_sizes(64), vec![4]);
        assert_eq!(chunk_sizes(0), vec![4]); // degenerate, loop guards handle it
    }

    #[test]
    fn dead_tail_is_removed() {
        let program = ProgramBuilder::new("t")
            .gate(0, b'X', false)
            .build()
            .unwrap();
        let inst = setup(&program);
        let interp = Interpreter::new(&program);
        let mut executor = Executor::new(&interp, &inst, Box::new(EdgeHitCount::new()));
        let mut map = BigMap::new(MapSize::K64).unwrap();

        let fat = [b"X".as_slice(), &[0xAA; 1000]].concat();
        let result = trim_input(&mut executor, &mut map, &fat);
        assert!(
            result.removed > 900,
            "removed only {} bytes",
            result.removed
        );
        assert!(result.execs > 1);
        // Behaviour preserved: gate still passes.
        assert_eq!(result.input[0], b'X');
    }

    #[test]
    fn fully_live_input_is_untouched() {
        // Every byte of a 3-gate input matters (offsets 0..3 with wrap on
        // a 3-byte input): trimming must keep all gates satisfied.
        let program = ProgramBuilder::new("t")
            .gate(0, b'A', false)
            .gate(1, b'B', false)
            .gate(2, b'C', false)
            .build()
            .unwrap();
        let inst = setup(&program);
        let interp = Interpreter::new(&program);
        let mut executor = Executor::new(&interp, &inst, Box::new(EdgeHitCount::new()));
        let mut map = BigMap::new(MapSize::K64).unwrap();

        let input = b"ABC".to_vec();
        let result = trim_input(&mut executor, &mut map, &input);
        // Any removal changes which gates pass (offsets wrap), so the
        // hash changes and nothing is removed.
        assert_eq!(result.input, input);
        assert_eq!(result.removed, 0);
    }

    #[test]
    fn trim_preserves_coverage_on_generated_targets() {
        let program = GeneratorConfig {
            seed: 6,
            ..Default::default()
        }
        .generate();
        let inst = setup(&program);
        let interp = Interpreter::new(&program);
        let mut executor = Executor::new(&interp, &inst, Box::new(EdgeHitCount::new()));
        let mut map = BigMap::new(MapSize::K64).unwrap();

        for seed in 0..5u8 {
            let input: Vec<u8> = (0..200).map(|i| (i as u8).wrapping_mul(seed + 1)).collect();
            let before = {
                map.reset();
                let _ = executor.run(&input, &mut map);
                map.classify();
                map.hash()
            };
            let result = trim_input(&mut executor, &mut map, &input);
            let after = {
                map.reset();
                let _ = executor.run(&result.input, &mut map);
                map.classify();
                map.hash()
            };
            assert_eq!(before, after, "seed {seed}: trim changed coverage");
            assert!(result.input.len() <= input.len());
        }
    }
}
