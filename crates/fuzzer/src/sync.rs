//! The corpus sync abstraction: [`CorpusSync`] and its two stores.
//!
//! PR 2's parallel fleet synchronized corpora through one concrete type,
//! [`SyncHub`] — an in-memory, single-mutex exchange that only works when
//! every instance shares the hub's address space. The process-level fleet
//! ([`crate::fabric`]) needs the same publish/fetch-since/cursor contract
//! over a pipe, so the contract now lives in a trait with two
//! implementations:
//!
//! * [`SyncHub`] — the original single-lock store, still what the
//!   thread-level fleets ([`crate::parallel`], [`crate::supervisor`]) use.
//! * [`ShardedHub`] — lock-striped by content hash with a global sequence
//!   counter, sized for one authoritative store serving many worker
//!   service threads concurrently (the fabric parent).
//!
//! ## The contract
//!
//! * **Content-idempotent publish**: byte-identical inputs are stored
//!   once, whoever publishes them, whenever. Supervised restarts depend
//!   on this — a resumed worker may republish finds its dead predecessor
//!   already shared.
//! * **Publisher-filtered fetch**: `fetch_since(cursor, reader)` returns
//!   entries the reader did not publish itself, in publish order, and
//!   advances the cursor past everything (own entries are skipped, not
//!   deferred).
//! * **Typed cursor errors**: a cursor beyond the published count returns
//!   [`CursorError`] instead of clamping. PR 2 split this case into a
//!   `debug_assert!` and release-mode saturation, which was tolerable
//!   when every cursor lived in the same process as the hub; a remote
//!   transport echoing back a corrupt cursor must get a hard error it
//!   can surface, not a silent clamp that re-delivers or skips entries.
//!   Cursors are `u64` so the contract is identical across process
//!   boundaries and pointer widths.

use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A sync cursor pointed beyond the published corpus — broken cursor
/// accounting in the caller or a corrupt cursor echoed over a transport.
///
/// The store did not fetch anything and did not move the cursor; the
/// caller decides whether to reset, resync from zero, or kill the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CursorError {
    /// The cursor the caller presented.
    pub cursor: u64,
    /// How many entries the store has actually published.
    pub published: u64,
}

impl std::fmt::Display for CursorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sync cursor {} beyond published corpus ({} entries)",
            self.cursor, self.published
        )
    }
}

impl std::error::Error for CursorError {}

/// The corpus exchange contract shared by every fleet transport.
///
/// See the [module docs](self) for the semantics each implementation must
/// uphold. Object-safe: the fabric holds its store as `Arc<dyn
/// CorpusSync>` so tests can swap transports.
pub trait CorpusSync: Send + Sync {
    /// Publishes newly found inputs on behalf of instance `publisher`.
    /// Inputs the store has already seen (from any publisher) are dropped.
    fn publish(&self, publisher: usize, inputs: Vec<Vec<u8>>);

    /// Fetches inputs published since `cursor` by instances other than
    /// `reader`, advancing the cursor past everything seen.
    ///
    /// # Errors
    ///
    /// [`CursorError`] if `cursor` is beyond the published count; the
    /// cursor is left untouched.
    fn fetch_since(&self, cursor: &mut u64, reader: usize) -> Result<Vec<Arc<[u8]>>, CursorError>;

    /// Total distinct inputs ever published.
    fn published_count(&self) -> u64;
}

/// One published corpus entry: the payload plus who found it.
#[derive(Debug, Clone)]
struct SyncEntry {
    publisher: usize,
    input: Arc<[u8]>,
}

/// The hub's shared state, guarded by one mutex: the append-only entry
/// list plus the content set that makes `publish` idempotent.
#[derive(Debug, Default)]
struct HubState {
    entries: Vec<SyncEntry>,
    seen: HashSet<Arc<[u8]>>,
}

/// The shared in-memory corpus exchange.
///
/// Append-only list of discovered inputs; instances fetch from their own
/// cursor so every instance eventually sees every *other* instance's
/// published find exactly once.
///
/// Publishing is **content-idempotent**: an input that is byte-identical
/// to one already in the hub is silently dropped, whoever publishes it.
/// That makes a supervised restart safe — an instance resumed from a
/// checkpoint may rediscover and republish finds its dead predecessor
/// already shared, and the fleet must not re-import them as new entries.
/// (The dedup set stores `Arc` clones of the published payloads, so it
/// costs pointers, not copies.)
#[derive(Debug, Default)]
pub struct SyncHub {
    corpus: Mutex<HubState>,
}

impl SyncHub {
    /// Creates an empty hub.
    pub fn new() -> Self {
        SyncHub::default()
    }

    /// Publishes newly found inputs on behalf of instance `publisher`.
    /// Inputs the hub has already seen (from any publisher) are dropped.
    pub fn publish(&self, publisher: usize, inputs: Vec<Vec<u8>>) {
        if inputs.is_empty() {
            return;
        }
        let mut state = self.corpus.lock().expect("corpus mutex poisoned");
        for input in inputs {
            let input: Arc<[u8]> = Arc::from(input);
            if state.seen.insert(Arc::clone(&input)) {
                state.entries.push(SyncEntry { publisher, input });
            }
        }
    }

    /// Fetches inputs published since `cursor` by instances other than
    /// `reader`, advancing the cursor past everything seen (own entries
    /// included — they are skipped, not deferred).
    ///
    /// # Errors
    ///
    /// [`CursorError`] if `cursor` is beyond the published count (broken
    /// cursor accounting in the caller); the cursor is left untouched.
    pub fn fetch_since(
        &self,
        cursor: &mut u64,
        reader: usize,
    ) -> Result<Vec<Arc<[u8]>>, CursorError> {
        let state = self.corpus.lock().expect("corpus mutex poisoned");
        let published = state.entries.len() as u64;
        if *cursor > published {
            return Err(CursorError {
                cursor: *cursor,
                published,
            });
        }
        let fresh = state.entries[*cursor as usize..]
            .iter()
            .filter(|e| e.publisher != reader)
            .map(|e| Arc::clone(&e.input))
            .collect();
        *cursor = published;
        Ok(fresh)
    }

    /// Total distinct inputs ever published.
    pub fn published_count(&self) -> u64 {
        self.corpus
            .lock()
            .expect("corpus mutex poisoned")
            .entries
            .len() as u64
    }
}

impl CorpusSync for SyncHub {
    fn publish(&self, publisher: usize, inputs: Vec<Vec<u8>>) {
        SyncHub::publish(self, publisher, inputs)
    }
    fn fetch_since(&self, cursor: &mut u64, reader: usize) -> Result<Vec<Arc<[u8]>>, CursorError> {
        SyncHub::fetch_since(self, cursor, reader)
    }
    fn published_count(&self) -> u64 {
        SyncHub::published_count(self)
    }
}

/// One stripe of a [`ShardedHub`]: globally sequenced entries whose
/// content hashes to this stripe, plus the stripe's slice of the dedup
/// set.
#[derive(Debug, Default)]
struct Shard {
    entries: Vec<(u64, SyncEntry)>,
    seen: HashSet<Arc<[u8]>>,
}

/// A lock-striped [`CorpusSync`] store for many concurrent publishers.
///
/// [`SyncHub`] serializes every operation behind one mutex — fine for a
/// handful of threads syncing every few thousand execs, hostile as the
/// single authoritative store of a process fleet where one service thread
/// per worker hammers it concurrently. `ShardedHub` stripes the corpus by
/// **content hash** (so the idempotence check for a given input always
/// lands on the same stripe) and orders entries with a global atomic
/// sequence counter.
///
/// Sequence numbers are assigned *while holding the stripe lock*, which
/// gives fetchers a simple visibility rule: after loading the counter,
/// every entry numbered below the loaded value is either already in its
/// stripe or its publisher still holds that stripe's lock — so locking
/// each stripe in turn observes all of them. A fetch collects from all
/// stripes, merges by sequence number, and advances the cursor to the
/// loaded count.
#[derive(Debug)]
pub struct ShardedHub {
    shards: Box<[Mutex<Shard>]>,
    seq: AtomicU64,
}

impl ShardedHub {
    /// Default stripe count: enough to keep a dozen service threads from
    /// colliding, small enough that fetches stay cheap.
    pub const DEFAULT_SHARDS: usize = 8;

    /// Creates an empty hub with [`Self::DEFAULT_SHARDS`] stripes.
    pub fn new() -> Self {
        ShardedHub::with_shards(Self::DEFAULT_SHARDS)
    }

    /// Creates an empty hub with `shards` stripes.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_shards(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardedHub {
            shards: (0..shards).map(|_| Mutex::default()).collect(),
            seq: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, input: &[u8]) -> &Mutex<Shard> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        input.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    /// Publishes newly found inputs on behalf of instance `publisher`.
    /// Inputs the hub has already seen (from any publisher) are dropped.
    pub fn publish(&self, publisher: usize, inputs: Vec<Vec<u8>>) {
        for input in inputs {
            let input: Arc<[u8]> = Arc::from(input);
            let mut shard = self.shard_for(&input).lock().expect("shard poisoned");
            if shard.seen.insert(Arc::clone(&input)) {
                // Sequenced inside the stripe lock — see the type docs for
                // why fetch visibility depends on this.
                let seq = self.seq.fetch_add(1, Ordering::AcqRel);
                shard.entries.push((seq, SyncEntry { publisher, input }));
            }
        }
    }

    /// Fetches inputs published since `cursor` by instances other than
    /// `reader`, merged into publish order, advancing the cursor past
    /// everything seen.
    ///
    /// # Errors
    ///
    /// [`CursorError`] if `cursor` is beyond the published count; the
    /// cursor is left untouched.
    pub fn fetch_since(
        &self,
        cursor: &mut u64,
        reader: usize,
    ) -> Result<Vec<Arc<[u8]>>, CursorError> {
        let upto = self.seq.load(Ordering::Acquire);
        if *cursor > upto {
            return Err(CursorError {
                cursor: *cursor,
                published: upto,
            });
        }
        let mut fresh: Vec<(u64, Arc<[u8]>)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("shard poisoned");
            // Entries are appended in ascending seq within a stripe, so
            // scan back-to-front and stop at the cursor.
            for (seq, entry) in shard.entries.iter().rev() {
                if *seq < *cursor {
                    break;
                }
                if *seq < upto && entry.publisher != reader {
                    fresh.push((*seq, Arc::clone(&entry.input)));
                }
            }
        }
        fresh.sort_unstable_by_key(|(seq, _)| *seq);
        *cursor = upto;
        Ok(fresh.into_iter().map(|(_, input)| input).collect())
    }

    /// Total distinct inputs ever published.
    pub fn published_count(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }
}

impl Default for ShardedHub {
    fn default() -> Self {
        ShardedHub::new()
    }
}

impl CorpusSync for ShardedHub {
    fn publish(&self, publisher: usize, inputs: Vec<Vec<u8>>) {
        ShardedHub::publish(self, publisher, inputs)
    }
    fn fetch_since(&self, cursor: &mut u64, reader: usize) -> Result<Vec<Arc<[u8]>>, CursorError> {
        ShardedHub::fetch_since(self, cursor, reader)
    }
    fn published_count(&self) -> u64 {
        ShardedHub::published_count(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both implementations, behind the trait, for contract tests.
    fn stores() -> Vec<(&'static str, Arc<dyn CorpusSync>)> {
        vec![
            ("SyncHub", Arc::new(SyncHub::new())),
            ("ShardedHub", Arc::new(ShardedHub::new())),
            ("ShardedHub(1)", Arc::new(ShardedHub::with_shards(1))),
        ]
    }

    #[test]
    fn publish_fetch_roundtrip_under_the_trait() {
        for (name, hub) in stores() {
            let mut cursor = 0u64;
            assert!(hub.fetch_since(&mut cursor, 1).unwrap().is_empty());
            hub.publish(0, vec![vec![1], vec![2]]);
            let fetched = hub.fetch_since(&mut cursor, 1).unwrap();
            assert_eq!(fetched.len(), 2, "{name}");
            assert_eq!(&*fetched[0], &[1][..], "{name} order");
            assert_eq!(&*fetched[1], &[2][..], "{name} order");
            assert!(hub.fetch_since(&mut cursor, 1).unwrap().is_empty());
            hub.publish(0, vec![vec![3]]);
            let fetched = hub.fetch_since(&mut cursor, 1).unwrap();
            assert_eq!(fetched.len(), 1, "{name}");
            assert_eq!(hub.published_count(), 3, "{name}");
            assert_eq!(cursor, 3, "{name}");
        }
    }

    #[test]
    fn own_publications_are_skipped_not_deferred() {
        for (name, hub) in stores() {
            hub.publish(0, vec![vec![10]]);
            hub.publish(1, vec![vec![11]]);
            hub.publish(0, vec![vec![12]]);
            let mut cursor = 0u64;
            let fetched = hub.fetch_since(&mut cursor, 0).unwrap();
            assert_eq!(fetched.len(), 1, "{name}");
            assert_eq!(&*fetched[0], &[11][..], "{name}");
            assert!(
                hub.fetch_since(&mut cursor, 0).unwrap().is_empty(),
                "{name}"
            );
            let mut other = 0u64;
            assert_eq!(hub.fetch_since(&mut other, 2).unwrap().len(), 3, "{name}");
        }
    }

    #[test]
    fn publish_is_content_idempotent() {
        for (name, hub) in stores() {
            hub.publish(0, vec![vec![1], vec![2]]);
            hub.publish(0, vec![vec![1]]);
            hub.publish(1, vec![vec![2], vec![3]]);
            assert_eq!(hub.published_count(), 3, "{name}");
            let mut cursor = 0u64;
            assert_eq!(hub.fetch_since(&mut cursor, 9).unwrap().len(), 3, "{name}");
        }
    }

    #[test]
    fn cursor_overrun_is_a_typed_error_and_moves_nothing() {
        for (name, hub) in stores() {
            hub.publish(0, vec![vec![1]]);
            let mut cursor = 5u64;
            let err = hub.fetch_since(&mut cursor, 1).unwrap_err();
            assert_eq!(
                err,
                CursorError {
                    cursor: 5,
                    published: 1
                },
                "{name}"
            );
            assert!(err.to_string().contains("beyond published corpus"));
            // The cursor is untouched — the caller owns the recovery.
            assert_eq!(cursor, 5, "{name}");
            // A reset cursor recovers the full stream.
            cursor = 0;
            assert_eq!(hub.fetch_since(&mut cursor, 1).unwrap().len(), 1, "{name}");
        }
    }

    #[test]
    fn cursor_at_boundary_is_fine() {
        for (name, hub) in stores() {
            hub.publish(0, vec![vec![1], vec![2]]);
            let mut cursor = hub.published_count();
            assert!(
                hub.fetch_since(&mut cursor, 1).unwrap().is_empty(),
                "{name}"
            );
            assert_eq!(cursor, 2, "{name}");
        }
    }

    /// The degenerate cursor-fault shape the fabric can hit after state
    /// corruption: a nonzero cursor presented to a hub that has *zero*
    /// entries. The typed error must report `published: 0`, leave the
    /// cursor alone, and a reset-to-zero must fully recover — including
    /// picking up entries published after the fault.
    #[test]
    fn cursor_fault_on_zero_entry_hub_recovers_by_reset() {
        for (name, hub) in stores() {
            let mut cursor = 1u64;
            let err = hub.fetch_since(&mut cursor, 0).unwrap_err();
            assert_eq!(
                err,
                CursorError {
                    cursor: 1,
                    published: 0
                },
                "{name}"
            );
            assert_eq!(cursor, 1, "{name}: cursor must not move on error");
            // The CURSOR_FAULT recovery protocol: reset and refetch.
            cursor = 0;
            assert!(
                hub.fetch_since(&mut cursor, 0).unwrap().is_empty(),
                "{name}"
            );
            hub.publish(1, vec![vec![42]]);
            assert_eq!(hub.fetch_since(&mut cursor, 0).unwrap().len(), 1, "{name}");
            assert_eq!(cursor, 1, "{name}");
        }
    }

    /// A restarted worker republishes everything it knows (it cannot
    /// tell what arrived before it died). The replay must be invisible:
    /// no new sequence numbers, no duplicate deliveries to readers who
    /// already caught up, and a from-zero reader still sees each
    /// distinct input exactly once.
    #[test]
    fn restart_replay_of_duplicate_publishes_is_harmless() {
        for (name, hub) in stores() {
            hub.publish(0, vec![vec![1], vec![2], vec![3]]);
            let mut reader = 0u64;
            assert_eq!(hub.fetch_since(&mut reader, 1).unwrap().len(), 3, "{name}");

            // Worker 0 dies and its replacement replays the same finds,
            // plus one genuinely new discovery.
            hub.publish(0, vec![vec![1], vec![2], vec![3], vec![4]]);
            assert_eq!(hub.published_count(), 4, "{name}: replay minted seqs");
            let fresh = hub.fetch_since(&mut reader, 1).unwrap();
            assert_eq!(fresh.len(), 1, "{name}: caught-up reader re-delivered");
            assert_eq!(&*fresh[0], &[4][..], "{name}");

            // A cold reader (e.g. the replacement itself, cursor zero)
            // sees each distinct input exactly once.
            let mut cold = 0u64;
            let all = hub.fetch_since(&mut cold, 9).unwrap();
            assert_eq!(all.len(), 4, "{name}");
            let distinct: HashSet<&[u8]> = all.iter().map(|input| &**input).collect();
            assert_eq!(distinct.len(), 4, "{name}: duplicates crossed the hub");
        }
    }

    #[test]
    fn fetches_share_payload_allocations() {
        for (name, hub) in stores() {
            hub.publish(0, vec![vec![7u8; 1024]]);
            let (mut a, mut b) = (0u64, 0u64);
            let from_a = hub.fetch_since(&mut a, 1).unwrap();
            let from_b = hub.fetch_since(&mut b, 2).unwrap();
            assert!(Arc::ptr_eq(&from_a[0], &from_b[0]), "{name} deep-copied");
        }
    }

    #[test]
    fn sharded_merges_across_stripes_in_publish_order() {
        let hub = ShardedHub::with_shards(4);
        // Enough inputs to land on several stripes.
        let inputs: Vec<Vec<u8>> = (0u8..32).map(|i| vec![i, i.wrapping_mul(37)]).collect();
        hub.publish(0, inputs.clone());
        let mut cursor = 0u64;
        let fetched = hub.fetch_since(&mut cursor, 1).unwrap();
        let got: Vec<Vec<u8>> = fetched.iter().map(|a| a.to_vec()).collect();
        assert_eq!(got, inputs, "publish order lost across stripes");
        assert_eq!(cursor, 32);
    }

    #[test]
    fn sharded_stress_readers_see_others_exactly_once_and_self_never() {
        const WRITERS: usize = 4;
        const PER_WRITER: usize = 128;
        let hub = Arc::new(ShardedHub::new());
        let all_published = Arc::new(std::sync::Barrier::new(WRITERS));
        std::thread::scope(|scope| {
            let mut readers = Vec::new();
            for me in 0..WRITERS {
                let hub = Arc::clone(&hub);
                let all_published = Arc::clone(&all_published);
                readers.push(scope.spawn(move || {
                    let mut cursor = 0u64;
                    let mut seen: Vec<Vec<u8>> = Vec::new();
                    for i in 0..PER_WRITER {
                        hub.publish(me, vec![vec![me as u8, i as u8]]);
                        for input in hub.fetch_since(&mut cursor, me).unwrap() {
                            seen.push(input.to_vec());
                        }
                    }
                    all_published.wait();
                    for input in hub.fetch_since(&mut cursor, me).unwrap() {
                        seen.push(input.to_vec());
                    }
                    (me, seen)
                }));
            }
            for reader in readers {
                let (me, seen) = reader.join().unwrap();
                assert!(seen.iter().all(|input| input[0] != me as u8));
                let unique: HashSet<&Vec<u8>> = seen.iter().collect();
                assert_eq!(unique.len(), seen.len(), "reader {me} saw a duplicate");
                assert_eq!(seen.len(), (WRITERS - 1) * PER_WRITER);
            }
        });
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardedHub::with_shards(0);
    }
}
