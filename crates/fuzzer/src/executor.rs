//! The executor: one test case through the instrumented target into the
//! coverage map.
//!
//! Binds together the four moving parts — interpreter, instrumentation ID
//! tables, coverage metric, coverage map — exactly the way AFL's forkserver
//! plus shared-memory bitmap does: the *bitmap update* happens inside
//! target execution (so its cost is accounted to `Execution`, as in the
//! paper's Figure 3), and the post-execution pipeline (classify, compare,
//! hash) is driven by the campaign, which times each stage separately.

use std::time::{Duration, Instant};

use bigmap_core::{CoverageMap, InterpMode};
use bigmap_coverage::{CoverageMetric, Instrumentation, TraceEvent};
use bigmap_target::{
    BoundedRun, ExecOutcome, ExecRecording, Interpreter, NoveltyOracle, NullSink, SnapshotOutcome,
    TraceSink,
};

/// Adapter: structural interpreter events → instrumented IDs → metric keys
/// → map updates.
struct MappingSink<'a> {
    instrumentation: &'a Instrumentation,
    metric: &'a mut dyn CoverageMetric,
    map: &'a mut dyn CoverageMap,
    /// Map `record` calls this execution (telemetry; local non-atomic
    /// counting keeps the per-event cost at one increment).
    updates: u64,
}

impl TraceSink for MappingSink<'_> {
    #[inline]
    fn on_block(&mut self, global_block: usize) {
        let MappingSink {
            instrumentation,
            metric,
            map,
            updates,
        } = self;
        let id = instrumentation.block_id(global_block);
        metric.on_event(TraceEvent::Block(id), &mut |key| {
            *updates += 1;
            map.record(key)
        });
    }

    #[inline]
    fn on_call(&mut self, call_site: usize) {
        let MappingSink {
            instrumentation,
            metric,
            map,
            updates,
        } = self;
        let id = instrumentation.call_site_id(call_site);
        metric.on_event(TraceEvent::Call(id), &mut |key| {
            *updates += 1;
            map.record(key)
        });
    }

    #[inline]
    fn on_return(&mut self) {
        let MappingSink {
            metric,
            map,
            updates,
            ..
        } = self;
        metric.on_event(TraceEvent::Return, &mut |key| {
            *updates += 1;
            map.record(key)
        });
    }
}

/// Which engine path satisfied one execution — the executor-level view
/// the campaign folds into `CompiledExec`/`SnapshotHit`/`SnapshotMiss`
/// telemetry. Purely observational: every path produces bit-identical
/// outcomes, traces and step counts for the same input and budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnginePath {
    /// The tree-walking interpreter (`BIGMAP_INTERP=tree`, or a program
    /// whose compiled lowering is unusable).
    Tree,
    /// The compiled bytecode engine, executed front to back with no
    /// snapshot armed.
    Compiled,
    /// A parent snapshot was armed and the whole run was served from its
    /// memoized trace (no live execution).
    SnapshotReplay,
    /// A parent snapshot was armed and execution resumed mid-run after
    /// replaying the memoized prefix.
    SnapshotResume,
    /// A parent snapshot was armed but could not be reused; the run
    /// re-executed from scratch on the compiled engine.
    SnapshotMiss,
}

impl EnginePath {
    /// True for any path through the compiled bytecode engine.
    pub fn is_compiled(self) -> bool {
        !matches!(self, EnginePath::Tree)
    }

    /// True when any part of a parent snapshot was reused.
    pub fn is_snapshot_hit(self) -> bool {
        matches!(
            self,
            EnginePath::SnapshotReplay | EnginePath::SnapshotResume
        )
    }
}

/// Result of executing one test case (before the fitness pipeline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Execution {
    /// The target's outcome.
    pub outcome: ExecOutcome,
    /// Wall-clock time of the execution (including map updates, per the
    /// paper's accounting).
    pub exec_time: Duration,
    /// Coverage-map updates (`record` calls) the execution performed —
    /// the telemetry layer's measure of instrumentation traffic.
    pub map_updates: u64,
    /// Interpreter steps (executed blocks) the run consumed — the raw
    /// observation hang-budget calibration averages over seed runs.
    pub steps: u64,
    /// For [`ExecOutcome::Hang`] outcomes: `true` when a planted hang
    /// site fired, `false` when ordinary execution exhausted the step
    /// budget (the case a calibrated budget is responsible for).
    pub planted_hang: bool,
    /// Distinct condensed map slots this execution touched, when the map
    /// keeps a complete touch journal (`None` for the flat scheme or when
    /// the journal overflowed). The numerator of the per-exec density the
    /// sparse/dense dispatcher decides on.
    pub touched_slots: Option<usize>,
    /// Which engine path satisfied this execution.
    pub engine: EnginePath,
}

/// Executes test cases against one instrumented target.
///
/// # Examples
///
/// ```rust
/// use bigmap_core::{BigMap, CoverageMap, MapSize};
/// use bigmap_coverage::{EdgeHitCount, Instrumentation};
/// use bigmap_fuzzer::Executor;
/// use bigmap_target::{Interpreter, ProgramBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = ProgramBuilder::new("demo").gate(0, b'!', false).build()?;
/// let instrumentation =
///     Instrumentation::assign(program.block_count(), program.call_sites, MapSize::K64, 7);
/// let interp = Interpreter::new(&program);
/// let mut executor = Executor::new(&interp, &instrumentation, Box::new(EdgeHitCount::new()));
///
/// let mut map = BigMap::new(MapSize::K64)?;
/// let result = executor.run(b"!", &mut map);
/// assert!(!result.outcome.is_crash());
/// assert!(map.used_len() > 0, "execution must record coverage");
/// # Ok(())
/// # }
/// ```
pub struct Executor<'p> {
    interpreter: &'p Interpreter<'p>,
    instrumentation: &'p Instrumentation,
    metric: Box<dyn CoverageMetric>,
    /// Calibrated step budget overriding `ExecConfig::max_steps` when set.
    /// Lives here (not on the interpreter) because the campaign shares one
    /// immutable interpreter across executors but calibrates per campaign.
    step_budget: Option<u64>,
    /// Effective engine mode. Initialized from the interpreter's own mode;
    /// the campaign overrides it from its config / `BIGMAP_INTERP`.
    interp_mode: InterpMode,
    /// The scheduled parent's memoized run, when snapshots are armed
    /// ([`Executor::prime_snapshot`]). Mutated children resume from it.
    recording: Option<ExecRecording>,
}

impl std::fmt::Debug for Executor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("metric", &self.metric.kind())
            .field("map_size", &self.instrumentation.map_size())
            .finish()
    }
}

impl<'p> Executor<'p> {
    /// Creates an executor for one (target, instrumentation, metric)
    /// combination.
    pub fn new(
        interpreter: &'p Interpreter<'p>,
        instrumentation: &'p Instrumentation,
        metric: Box<dyn CoverageMetric>,
    ) -> Self {
        let interp_mode = interpreter.mode();
        Executor {
            interpreter,
            instrumentation,
            metric,
            step_budget: None,
            interp_mode,
            recording: None,
        }
    }

    /// Sets (or clears) a calibrated step budget. When set, it replaces
    /// `ExecConfig::max_steps` for every subsequent [`Executor::run`]; an
    /// execution exhausting it reports [`ExecOutcome::Hang`] exactly as if
    /// the configured budget had run out. Any armed snapshot is dropped —
    /// a recording is only reusable under the exact budget it ran with.
    pub fn set_step_budget(&mut self, budget: Option<u64>) {
        if self.step_budget != budget {
            self.recording = None;
        }
        self.step_budget = budget;
    }

    /// Overrides the engine mode for this executor (the campaign's
    /// `CampaignConfig` / `BIGMAP_INTERP` resolution). Leaving snapshot
    /// mode drops any armed recording.
    pub fn set_interp_mode(&mut self, mode: InterpMode) {
        self.interp_mode = mode;
        if !mode.uses_snapshots() {
            self.recording = None;
        }
    }

    /// The effective engine mode.
    pub fn interp_mode(&self) -> InterpMode {
        self.interp_mode
    }

    /// Memoizes a run of `parent` so subsequent [`Executor::run`] /
    /// [`Executor::run_fast`] calls on mutated children can resume from
    /// its snapshot. No-op unless the mode arms snapshots and the program
    /// has a runnable compiled lowering. Returns whether a snapshot is
    /// now armed.
    ///
    /// The priming run streams into a null sink and touches no coverage
    /// state, no oracle and no counters — it is invisible to the campaign
    /// trajectory.
    pub fn prime_snapshot(&mut self, parent: &[u8]) -> bool {
        if !self.interp_mode.uses_snapshots() {
            return false;
        }
        // Skip re-priming for the parent already armed (the deterministic
        // and havoc stages share one scheduled parent).
        if let Some(recording) = &self.recording {
            if recording.input() == parent && recording.budget() == self.effective_budget() {
                return true;
            }
        }
        let Some(compiled) = self.interpreter.compiled() else {
            self.recording = None;
            return false;
        };
        let budget = self.effective_budget();
        let work = self.interpreter.config().work_per_block;
        let (_, recording) = compiled.record(parent, &mut NullSink, budget, work);
        self.recording = Some(recording);
        true
    }

    /// Drops any armed snapshot recording.
    pub fn clear_snapshot(&mut self) {
        self.recording = None;
    }

    fn effective_budget(&self) -> u64 {
        self.step_budget
            .unwrap_or(self.interpreter.config().max_steps)
    }

    /// The calibrated step budget, if one is active.
    pub fn step_budget(&self) -> Option<u64> {
        self.step_budget
    }

    /// Runs `input`, recording coverage into `map` (which the caller must
    /// have `reset()` beforehand — the campaign owns that step so it can
    /// time it separately).
    pub fn run(&mut self, input: &[u8], map: &mut dyn CoverageMap) -> Execution {
        self.metric.begin_execution();
        let budget = self.effective_budget();
        let start = Instant::now();
        let mut sink = MappingSink {
            instrumentation: self.instrumentation,
            metric: self.metric.as_mut(),
            map,
            updates: 0,
        };
        let (run, engine) = dispatch_engine(
            self.interpreter,
            self.interp_mode,
            self.recording.as_ref(),
            input,
            &mut sink,
            budget,
        );
        let map_updates = sink.updates;
        let touched_slots = sink.map.touched_len();
        Execution {
            outcome: run.outcome,
            exec_time: start.elapsed(),
            map_updates,
            steps: run.steps,
            planted_hang: run.planted_hang,
            touched_slots,
            engine,
        }
    }

    /// Runs `input` on the untraced fast path: no coverage metric, no map
    /// updates — only the novelty `oracle` observes the trace. Step
    /// budgeting mirrors [`Executor::run`] exactly (same calibrated
    /// budget, same hang classification), so a fast exec and its traced
    /// re-execution always agree on outcome and step count.
    pub fn run_fast(&mut self, input: &[u8], oracle: &mut NoveltyOracle) -> FastExecution {
        let start = Instant::now();
        let budget = self.effective_budget();
        oracle.begin_exec();
        let (run, engine) = dispatch_engine(
            self.interpreter,
            self.interp_mode,
            self.recording.as_ref(),
            input,
            oracle,
            budget,
        );
        FastExecution {
            outcome: run.outcome,
            exec_time: start.elapsed(),
            steps: run.steps,
            planted_hang: run.planted_hang,
            provably_seen: oracle.provably_seen(),
            engine,
        }
    }

    /// The instrumentation tables in use.
    pub fn instrumentation(&self) -> &Instrumentation {
        self.instrumentation
    }
}

/// Shared engine dispatch for the traced and fast paths. A free function
/// (not a method) so the caller can keep disjoint borrows of the
/// executor's metric and recording alive across the call.
///
/// Dispatch is purely mechanical — every path yields the bit-identical
/// [`BoundedRun`] and event stream, so the returned [`EnginePath`] is
/// observational telemetry, never a semantic fork.
fn dispatch_engine<S: TraceSink + ?Sized>(
    interpreter: &Interpreter<'_>,
    mode: InterpMode,
    recording: Option<&ExecRecording>,
    input: &[u8],
    sink: &mut S,
    budget: u64,
) -> (BoundedRun, EnginePath) {
    if mode.uses_snapshots() {
        if let (Some(recording), Some(compiled)) = (recording, interpreter.compiled()) {
            let work = interpreter.config().work_per_block;
            let (run, snapshot) = compiled.run_resumed(recording, input, sink, budget, work);
            let path = match snapshot {
                SnapshotOutcome::Miss => EnginePath::SnapshotMiss,
                SnapshotOutcome::FullReplay { .. } => EnginePath::SnapshotReplay,
                SnapshotOutcome::Resumed { .. } => EnginePath::SnapshotResume,
            };
            return (run, path);
        }
    }
    let run = interpreter.run_bounded_mode(input, sink, budget, mode);
    let path = if mode.uses_compiled() && interpreter.compiled().is_some() {
        EnginePath::Compiled
    } else {
        EnginePath::Tree
    };
    (run, path)
}

/// Result of one untraced fast-path execution ([`Executor::run_fast`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastExecution {
    /// The target's outcome.
    pub outcome: ExecOutcome,
    /// Wall-clock time of the untraced execution.
    pub exec_time: Duration,
    /// Interpreter steps consumed — identical to what the traced path
    /// would charge for the same input and budget.
    pub steps: u64,
    /// See [`Execution::planted_hang`].
    pub planted_hang: bool,
    /// The oracle's verdict: `true` means this execution is provably
    /// identical in coverage effect to an already-committed traced run,
    /// so (if it also completed `Ok`) the traced re-execution can be
    /// skipped without changing the campaign trajectory.
    pub provably_seen: bool,
    /// Which engine path satisfied this execution.
    pub engine: EnginePath,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigmap_core::{BigMap, FlatBitmap, MapSize};
    use bigmap_coverage::{ContextSensitive, EdgeHitCount, NGram};
    use bigmap_target::{GeneratorConfig, ProgramBuilder};

    fn setup() -> (bigmap_target::Program, Instrumentation) {
        let program = GeneratorConfig {
            seed: 5,
            functions: 4,
            gates_per_function: 6,
            ..Default::default()
        }
        .generate();
        let instrumentation =
            Instrumentation::assign(program.block_count(), program.call_sites, MapSize::K64, 42);
        (program, instrumentation)
    }

    #[test]
    fn identical_inputs_identical_coverage() {
        let (program, inst) = setup();
        let interp = Interpreter::new(&program);
        let mut executor = Executor::new(&interp, &inst, Box::new(EdgeHitCount::new()));
        let mut a = BigMap::new(MapSize::K64).unwrap();
        let mut b = BigMap::new(MapSize::K64).unwrap();
        executor.run(b"input-x", &mut a);
        // Fresh map for the second run to compare raw counts.
        executor.run(b"input-x", &mut b);
        assert_eq!(a.active_region(), b.active_region());
    }

    #[test]
    fn different_inputs_usually_differ() {
        let (program, inst) = setup();
        let interp = Interpreter::new(&program);
        let mut executor = Executor::new(&interp, &inst, Box::new(EdgeHitCount::new()));
        let mut a = BigMap::new(MapSize::K64).unwrap();
        let mut b = BigMap::new(MapSize::K64).unwrap();
        executor.run(&[0x11; 48], &mut a);
        executor.run(&[0xEE; 48], &mut b);
        assert_ne!(a.active_region(), b.active_region());
    }

    #[test]
    fn flat_and_bigmap_see_equivalent_coverage() {
        let (program, inst) = setup();
        let interp = Interpreter::new(&program);
        let input = b"equivalence-check".to_vec();

        let mut flat_exec = Executor::new(&interp, &inst, Box::new(EdgeHitCount::new()));
        let mut flat = FlatBitmap::new(MapSize::K64).unwrap();
        flat_exec.run(&input, &mut flat);

        let mut big_exec = Executor::new(&interp, &inst, Box::new(EdgeHitCount::new()));
        let mut big = BigMap::new(MapSize::K64).unwrap();
        big_exec.run(&input, &mut big);

        // Same multiset of non-zero hit counts.
        let mut flat_counts: Vec<u8> = Vec::new();
        flat.for_each_nonzero(&mut |_, v| flat_counts.push(v));
        let mut big_counts: Vec<u8> = Vec::new();
        big.for_each_nonzero(&mut |_, v| big_counts.push(v));
        flat_counts.sort_unstable();
        big_counts.sort_unstable();
        assert_eq!(flat_counts, big_counts);
    }

    #[test]
    fn touched_slots_reported_for_journaled_maps_only() {
        let (program, inst) = setup();
        let interp = Interpreter::new(&program);
        let mut executor = Executor::new(&interp, &inst, Box::new(EdgeHitCount::new()));

        let mut big = BigMap::new(MapSize::K64).unwrap();
        let execution = executor.run(b"journal", &mut big);
        let touched = execution.touched_slots.expect("BigMap keeps a journal");
        // Every distinct nonzero slot of this exec was journaled.
        assert_eq!(touched, big.count_nonzero());
        assert!(touched > 0);

        let mut flat = FlatBitmap::new(MapSize::K64).unwrap();
        let execution = executor.run(b"journal", &mut flat);
        assert_eq!(execution.touched_slots, None, "flat maps have no journal");
    }

    #[test]
    fn metric_begin_execution_isolates_runs() {
        // An N-gram metric carries a window across blocks; run() must reset
        // it so back-to-back identical runs produce identical coverage.
        let (program, inst) = setup();
        let interp = Interpreter::new(&program);
        let mut executor = Executor::new(&interp, &inst, Box::new(NGram::new(3).unwrap()));
        let mut a = BigMap::new(MapSize::K64).unwrap();
        executor.run(b"zzz", &mut a);
        let first: Vec<u8> = a.active_region().to_vec();
        a.reset();
        executor.run(b"zzz", &mut a);
        assert_eq!(a.active_region(), &first[..]);
    }

    #[test]
    fn context_metric_uses_call_events() {
        let (program, inst) = setup();
        let interp = Interpreter::new(&program);
        let mut edge_exec = Executor::new(&interp, &inst, Box::new(EdgeHitCount::new()));
        let mut ctx_exec = Executor::new(&interp, &inst, Box::new(ContextSensitive::new()));
        let mut edge_map = BigMap::new(MapSize::M2).unwrap();
        let mut ctx_map = BigMap::new(MapSize::M2).unwrap();
        edge_exec.run(&[5; 64], &mut edge_map);
        ctx_exec.run(&[5; 64], &mut ctx_map);
        // Context sensitivity can only split keys, never merge them.
        assert!(ctx_map.used_len() >= edge_map.used_len());
    }

    #[test]
    fn crash_propagates_from_target() {
        let program = ProgramBuilder::new("c")
            .gate(0, b'X', true)
            .build()
            .unwrap();
        let inst =
            Instrumentation::assign(program.block_count(), program.call_sites, MapSize::K64, 1);
        let interp = Interpreter::new(&program);
        let mut executor = Executor::new(&interp, &inst, Box::new(EdgeHitCount::new()));
        let mut map = BigMap::new(MapSize::K64).unwrap();
        assert!(executor.run(b"X", &mut map).outcome.is_crash());
        map.reset();
        assert!(!executor.run(b"?", &mut map).outcome.is_crash());
    }

    #[test]
    fn map_updates_counted_and_deterministic() {
        let (program, inst) = setup();
        let interp = Interpreter::new(&program);
        let mut executor = Executor::new(&interp, &inst, Box::new(EdgeHitCount::new()));
        let mut map = BigMap::new(MapSize::K64).unwrap();
        let first = executor.run(b"count me", &mut map);
        assert!(first.map_updates > 0, "execution must record coverage");
        map.reset();
        let again = executor.run(b"count me", &mut map);
        assert_eq!(first.map_updates, again.map_updates);
    }

    #[test]
    fn fast_path_agrees_with_traced_on_outcome_and_steps() {
        let (program, inst) = setup();
        let interp = Interpreter::new(&program);
        let mut executor = Executor::new(&interp, &inst, Box::new(EdgeHitCount::new()));
        let mut oracle = NoveltyOracle::new(program.block_count());
        let mut map = BigMap::new(MapSize::K64).unwrap();
        for input in [&b"abc"[..], &[0x11; 48], b""] {
            let fast = executor.run_fast(input, &mut oracle);
            map.reset();
            let traced = executor.run(input, &mut map);
            assert_eq!(fast.outcome, traced.outcome);
            assert_eq!(fast.steps, traced.steps);
            assert_eq!(fast.planted_hang, traced.planted_hang);
        }
    }

    #[test]
    fn fast_path_respects_calibrated_budget() {
        let (program, inst) = setup();
        let interp = Interpreter::new(&program);
        let mut executor = Executor::new(&interp, &inst, Box::new(EdgeHitCount::new()));
        let mut oracle = NoveltyOracle::new(program.block_count());
        let full = executor.run_fast(b"budget", &mut oracle);
        assert!(full.outcome.is_ok());
        executor.set_step_budget(Some(full.steps - 1));
        let cut = executor.run_fast(b"budget", &mut oracle);
        assert!(cut.outcome.is_hang(), "calibrated budget must bind");
        assert!(!cut.provably_seen);
    }

    #[test]
    fn oracle_verdict_flips_after_commit() {
        let (program, inst) = setup();
        let interp = Interpreter::new(&program);
        let mut executor = Executor::new(&interp, &inst, Box::new(EdgeHitCount::new()));
        let mut oracle = NoveltyOracle::new(program.block_count());
        let first = executor.run_fast(b"repeat", &mut oracle);
        assert!(!first.provably_seen, "fresh path must be suspicious");
        oracle.commit();
        let second = executor.run_fast(b"repeat", &mut oracle);
        assert!(second.provably_seen, "committed replay is skippable");
    }

    #[test]
    fn debug_shows_metric() {
        let (program, inst) = setup();
        let interp = Interpreter::new(&program);
        let executor = Executor::new(&interp, &inst, Box::new(EdgeHitCount::new()));
        assert!(format!("{executor:?}").contains("Edge"));
    }

    #[test]
    fn engine_path_tracks_mode() {
        let (program, inst) = setup();
        let interp = Interpreter::new(&program);
        let mut executor = Executor::new(&interp, &inst, Box::new(EdgeHitCount::new()));
        let mut map = BigMap::new(MapSize::K64).unwrap();

        executor.set_interp_mode(InterpMode::Tree);
        assert_eq!(executor.run(b"mode", &mut map).engine, EnginePath::Tree);
        map.reset();
        executor.set_interp_mode(InterpMode::Compiled);
        assert_eq!(executor.run(b"mode", &mut map).engine, EnginePath::Compiled);
        map.reset();
        // Auto without a primed snapshot still runs compiled front-to-back.
        executor.set_interp_mode(InterpMode::Auto);
        assert_eq!(executor.run(b"mode", &mut map).engine, EnginePath::Compiled);
    }

    #[test]
    fn snapshot_paths_are_trajectory_neutral() {
        // The load-bearing invariant: with a primed parent snapshot,
        // children run through replay/resume paths yet produce coverage,
        // steps and outcomes identical to a cold executor.
        let (program, inst) = setup();
        let interp = Interpreter::new(&program);
        let mut snap = Executor::new(&interp, &inst, Box::new(EdgeHitCount::new()));
        let mut cold = Executor::new(&interp, &inst, Box::new(EdgeHitCount::new()));
        snap.set_interp_mode(InterpMode::Auto);
        cold.set_interp_mode(InterpMode::Compiled);

        let parent = [0x41u8; 48];
        assert!(snap.prime_snapshot(&parent));

        let mut child = parent;
        child[7] ^= 0xFF;
        for input in [&parent[..], &child[..], b"totally different"] {
            let mut a = BigMap::new(MapSize::K64).unwrap();
            let mut b = BigMap::new(MapSize::K64).unwrap();
            let hot = snap.run(input, &mut a);
            let ref_exec = cold.run(input, &mut b);
            assert_eq!(hot.outcome, ref_exec.outcome);
            assert_eq!(hot.steps, ref_exec.steps);
            assert_eq!(hot.map_updates, ref_exec.map_updates);
            assert_eq!(a.active_region(), b.active_region());
            assert!(hot.engine.is_compiled());
        }

        // The identical parent replays wholesale; a mutated child either
        // resumes or (conservatively) misses — never a tree fallback.
        let mut map = BigMap::new(MapSize::K64).unwrap();
        assert_eq!(
            snap.run(&parent, &mut map).engine,
            EnginePath::SnapshotReplay
        );
    }

    #[test]
    fn priming_is_idempotent_and_budget_sensitive() {
        let (program, inst) = setup();
        let interp = Interpreter::new(&program);
        let mut executor = Executor::new(&interp, &inst, Box::new(EdgeHitCount::new()));
        executor.set_interp_mode(InterpMode::Auto);
        assert!(executor.prime_snapshot(b"parent"));
        assert!(executor.prime_snapshot(b"parent"), "re-prime is a no-op");

        // Budget changes invalidate the recording (it memoized the old
        // budget's exhaustion behaviour); the next child must not hit.
        executor.set_step_budget(Some(10));
        let mut map = BigMap::new(MapSize::K64).unwrap();
        let run = executor.run(b"parent", &mut map);
        assert_eq!(run.engine, EnginePath::Compiled, "stale snapshot dropped");

        // Tree mode refuses to arm and drops any armed snapshot.
        executor.set_step_budget(None);
        assert!(executor.prime_snapshot(b"parent"));
        executor.set_interp_mode(InterpMode::Tree);
        assert!(!executor.prime_snapshot(b"parent"));
        map.reset();
        assert_eq!(executor.run(b"parent", &mut map).engine, EnginePath::Tree);
    }

    #[test]
    fn fast_path_snapshot_agrees_with_oracle_state() {
        let (program, inst) = setup();
        let interp = Interpreter::new(&program);
        let mut snap = Executor::new(&interp, &inst, Box::new(EdgeHitCount::new()));
        let mut cold = Executor::new(&interp, &inst, Box::new(EdgeHitCount::new()));
        snap.set_interp_mode(InterpMode::Auto);
        cold.set_interp_mode(InterpMode::Compiled);

        let parent = [0x33u8; 48];
        snap.prime_snapshot(&parent);
        let mut child = parent;
        child[0] = 0x44;

        let mut snap_oracle = NoveltyOracle::new(program.block_count());
        let mut cold_oracle = NoveltyOracle::new(program.block_count());
        for input in [&parent[..], &child[..]] {
            let hot = snap.run_fast(input, &mut snap_oracle);
            let ref_exec = cold.run_fast(input, &mut cold_oracle);
            assert_eq!(hot.outcome, ref_exec.outcome);
            assert_eq!(hot.steps, ref_exec.steps);
            assert_eq!(hot.provably_seen, ref_exec.provably_seen);
            assert_eq!(snap_oracle.path_hash(), cold_oracle.path_hash());
            assert!(hot.engine.is_compiled());
        }
    }
}
