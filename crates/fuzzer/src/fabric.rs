//! The process-level campaign fabric: child-process workers, a framed
//! stdio sync protocol, and fleet-hierarchical telemetry.
//!
//! [`crate::parallel`] scales a campaign across threads in one process;
//! this module scales it across **processes**. A parent ([`run_fleet`])
//! spawns N child processes, each of which recognizes the
//! `BIGMAP_FABRIC_WORKER` handshake and calls [`run_worker`] to fuzz one
//! campaign instance, speaking the fabric protocol over its own
//! stdin/stdout. The parent holds the authoritative corpus store (a
//! [`ShardedHub`] behind the [`CorpusSync`] trait) and one service thread
//! per worker that translates protocol frames into hub calls.
//!
//! ## Protocol
//!
//! Frames use the versioned, checksummed `bigmap_core::wire` framing;
//! the payloads are:
//!
//! | kind | direction | payload |
//! |------|-----------|---------|
//! | [`FRAME_PUBLISH`] | worker → parent | sync batch (cursor field 0) of fresh finds |
//! | [`FRAME_FETCH`] | worker → parent | varint: the worker's sync cursor |
//! | [`FRAME_BATCH`] | parent → worker | sync batch: new cursor + fetched entries |
//! | [`FRAME_CURSOR_FAULT`] | parent → worker | varints: rejected cursor, published count |
//! | [`FRAME_TELEMETRY`] | worker → parent | one `TelemetrySnapshot` JSON line |
//! | [`FRAME_STATS`] | worker → parent | varint-packed end-of-campaign `CampaignStats` |
//! | [`FRAME_DONE`] | worker → parent | empty: clean completion |
//! | [`FRAME_HEARTBEAT`] | worker → parent | varint: cumulative exec count |
//!
//! Only `FETCH` is request/response (the worker blocks for `BATCH` or
//! `CURSOR_FAULT`); everything else is fire-and-forget. **Backpressure
//! is the pipe itself**: frames are written straight to the blocking
//! stdio pipe, so a worker that publishes faster than its service thread
//! drains simply blocks at the next sync boundary — no unbounded queue
//! on either side. Publishes larger than `BIGMAP_SYNC_BATCH` entries are
//! split across frames so one giant find burst cannot monopolize the
//! pipe between fetch opportunities.
//!
//! ## Fault tolerance
//!
//! A worker that exits abnormally (panic, kill, protocol corruption) is
//! restarted by its service thread with the PR-3 supervision policy:
//! bounded restarts with linear backoff, health reported as
//! `Running`/`Restarted(n)`/`Dead`. A restarted worker resumes from its
//! on-disk checkpoint (when [`WorkerOptions::checkpoint_dir`] is set),
//! restarts its sync cursor at zero, and republishes what it knows — the
//! hub's content-idempotent publish makes the replay harmless, exactly
//! as for thread-level supervised restarts.
//!
//! A worker that receives [`FRAME_CURSOR_FAULT`] (its cursor ran past
//! the published corpus — only possible through state corruption) resets
//! its cursor to zero and re-fetches everything; novelty gating on
//! import deduplicates the replay.
//!
//! ## Liveness
//!
//! Exit-based supervision cannot see a worker that is *stuck*: alive,
//! pipe open, making no progress (a hung target, a wedged syscall, a
//! stalled filesystem). For that, each worker runs a heartbeat thread
//! that sends [`FRAME_HEARTBEAT`] — carrying the cumulative exec count —
//! every `BIGMAP_HEARTBEAT_MS` milliseconds, and each service thread
//! enforces a *progress* deadline: any non-heartbeat frame counts as
//! progress, and a heartbeat counts only when its exec count has
//! advanced since the last one. A worker that stays silent past the
//! deadline — or keeps heartbeating with a frozen exec counter — is
//! killed, counted as a `heartbeat_miss` in the fleet telemetry, and
//! handed to the ordinary bounded-backoff restart path. The deadline
//! comes from [`FleetConfig::liveness_deadline`] (default
//! `BIGMAP_LIVENESS_DEADLINE_MS`); a zero duration disables enforcement.

use std::collections::HashSet;
use std::io;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use bigmap_core::wire::{
    decode_sync_batch, encode_sync_batch, get_varint, put_varint, read_frame, write_frame,
    SyncBatch, WireError,
};
use bigmap_coverage::Instrumentation;
use bigmap_target::{Interpreter, Program};

use crate::campaign::{Campaign, CampaignConfig, CampaignStats};
use crate::checkpoint::CheckpointManager;
use crate::faults::{FaultSite, InstanceFaults};
use crate::parallel::{InstanceHealth, ParallelStats};
use crate::sync::ShardedHub;
use crate::telemetry::{FleetAggregator, JsonlSink, Telemetry, TelemetryEvent, TelemetrySnapshot};

/// Worker → parent: a batch of fresh finds.
pub const FRAME_PUBLISH: u8 = 1;
/// Worker → parent: fetch request carrying the worker's cursor.
pub const FRAME_FETCH: u8 = 2;
/// Parent → worker: fetched entries plus the advanced cursor.
pub const FRAME_BATCH: u8 = 3;
/// Parent → worker: the presented cursor was beyond the corpus.
pub const FRAME_CURSOR_FAULT: u8 = 4;
/// Worker → parent: a telemetry snapshot JSON line.
pub const FRAME_TELEMETRY: u8 = 5;
/// Worker → parent: end-of-campaign stats.
pub const FRAME_STATS: u8 = 6;
/// Worker → parent: clean completion.
pub const FRAME_DONE: u8 = 7;
/// Worker → parent: liveness heartbeat carrying the cumulative exec
/// count as a varint. Sent by a dedicated worker thread every
/// `BIGMAP_HEARTBEAT_MS`; the parent treats it as progress only when
/// the exec count has advanced.
pub const FRAME_HEARTBEAT: u8 = 8;

/// This process's role in a fleet, from the `BIGMAP_FABRIC_WORKER`
/// handshake the parent sets on its children.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerRole {
    /// This worker's index (also its sync publisher id and telemetry
    /// node index).
    pub index: usize,
    /// Total workers in the fleet.
    pub workers: usize,
}

impl WorkerRole {
    /// Reads the role from `BIGMAP_FABRIC_WORKER` (`"<index>/<count>"`).
    /// `None` means this process is not a fleet worker. Host binaries
    /// check this first thing in `main` and hand off to [`run_worker`].
    pub fn from_env() -> Option<WorkerRole> {
        bigmap_core::env::fabric_worker().map(|(index, workers)| WorkerRole { index, workers })
    }
}

/// Worker-side knobs for [`run_worker`].
#[derive(Debug, Default)]
pub struct WorkerOptions {
    /// Sync cadence in executions (frames are exchanged at every
    /// boundary). Zero means the campaign's budget runs uninterrupted
    /// with a single final exchange.
    pub sync_every: u64,
    /// Checkpoint directory: restored from on start (supervised restarts
    /// resume instead of recomputing), written to at sync boundaries.
    pub checkpoint_dir: Option<PathBuf>,
    /// Deterministic fault injection for this worker's campaign.
    pub faults: Option<Arc<InstanceFaults>>,
}

fn send(kind: u8, payload: &[u8]) -> io::Result<()> {
    write_frame(&mut io::stdout().lock(), kind, payload)
}

/// Runs one fleet worker over this process's stdin/stdout.
///
/// Applies the same per-instance decorrelation as the thread fleet (seed
/// XOR by index, deterministic stages on worker 0 only), resumes from
/// the checkpoint directory when one is configured, and speaks the
/// fabric protocol at every sync boundary. Returns the campaign stats it
/// also reported over the pipe.
///
/// # Errors
///
/// Returns the first I/O error from the final stats/done frames.
///
/// # Panics
///
/// Panics if a mid-campaign pipe exchange fails — the parent is gone, so
/// the process has nothing left to talk to; the abnormal exit is exactly
/// what the parent-side supervisor (if any) expects to see.
pub fn run_worker(
    role: WorkerRole,
    program: &Program,
    instrumentation: &Instrumentation,
    base_config: &CampaignConfig,
    seeds: &[Vec<u8>],
    options: &WorkerOptions,
) -> io::Result<CampaignStats> {
    let mut config = base_config.clone();
    config.seed = base_config.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(role.index as u64 + 1));
    config.deterministic = role.index == 0 && base_config.deterministic;

    // Place this worker before any map is allocated so first-touch lands
    // the coverage pages on the node the campaign thread runs on. The
    // parent normally pre-resolves BIGMAP_NUMA to `node:<n>` at spawn;
    // standalone workers resolve the policy themselves here.
    bigmap_core::alloc::apply_worker_numa(role.index);

    let interpreter = Interpreter::with_config(program, config.exec);
    let mut campaign = Campaign::new(config, &interpreter, instrumentation);
    let telemetry = Arc::new(Telemetry::new(role.index));
    campaign.set_telemetry(Arc::clone(&telemetry));
    if let Some(faults) = &options.faults {
        campaign.set_faults(Arc::clone(faults));
    }

    let mut manager = options
        .checkpoint_dir
        .as_ref()
        .map(|dir| CheckpointManager::new(dir, options.sync_every.max(1)));
    let restored = match &options.checkpoint_dir {
        Some(dir) => match CheckpointManager::load(dir) {
            Ok(Some(checkpoint)) => {
                campaign.restore(&checkpoint);
                true
            }
            // Absent or corrupt checkpoints are a cold start, not a
            // death loop.
            _ => false,
        },
        None => false,
    };
    if !restored {
        campaign.add_seeds(seeds.to_vec());
        // The seed corpus is common knowledge across the fleet.
        let _ = campaign.take_fresh_finds();
    }

    let mut cursor = 0u64;
    let batch_limit = bigmap_core::env::sync_batch();
    let publisher = role.index as u64;
    let tel = Arc::clone(&telemetry);

    // Liveness heartbeats: a dedicated thread streams the cumulative
    // exec count so the parent can tell "alive but stuck" from "alive
    // and working". Per-frame stdout locking keeps heartbeats atomic
    // with respect to the sync frames on the main thread.
    let heartbeat_ms = bigmap_core::env::heartbeat_ms();
    let heartbeat_stop = Arc::new(AtomicBool::new(false));
    let heartbeat = (heartbeat_ms > 0).then(|| {
        let stop = Arc::clone(&heartbeat_stop);
        let tel = Arc::clone(&telemetry);
        thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let mut payload = Vec::with_capacity(10);
                put_varint(&mut payload, tel.get(TelemetryEvent::Exec));
                if send(FRAME_HEARTBEAT, &payload).is_err() {
                    // The parent is gone; the main thread will find out
                    // at its next exchange. Nothing left to report to.
                    return;
                }
                thread::sleep(Duration::from_millis(heartbeat_ms));
            }
        })
    });

    let stall_faults = options.faults.clone();
    let stats = campaign.run_with_hook(options.sync_every, move |c| {
        if let Some(faults) = &stall_faults {
            if faults.fire(FaultSite::PipeStall) {
                // Wedge this worker without exiting: executions freeze
                // while the heartbeat thread keeps sending the same exec
                // count. Only the parent's progress deadline can end it.
                loop {
                    thread::sleep(Duration::from_secs(3600));
                }
            }
        }
        let exchange = || -> Result<(), String> {
            // Publish fresh finds, split into bounded frames.
            let finds = c.take_fresh_finds();
            tel.add(TelemetryEvent::SyncPublish, finds.len() as u64);
            for chunk in finds.chunks(batch_limit.max(1)) {
                let entries: Vec<(u64, &[u8])> = chunk
                    .iter()
                    .map(|input| (publisher, input.as_slice()))
                    .collect();
                send(FRAME_PUBLISH, &encode_sync_batch(0, &entries))
                    .map_err(|e| format!("publish frame: {e}"))?;
            }

            // Fetch: strict request/response.
            let mut fetch = Vec::with_capacity(10);
            put_varint(&mut fetch, cursor);
            send(FRAME_FETCH, &fetch).map_err(|e| format!("fetch frame: {e}"))?;
            let (kind, payload) =
                read_frame(&mut io::stdin().lock()).map_err(|e| format!("fetch response: {e}"))?;
            match kind {
                FRAME_BATCH => {
                    let batch =
                        decode_sync_batch(&payload).map_err(|e| format!("batch payload: {e}"))?;
                    cursor = batch.cursor;
                    for (_, input) in &batch.entries {
                        c.import(input);
                    }
                }
                FRAME_CURSOR_FAULT => {
                    // Corrupt cursor: resync from zero. Novelty gating on
                    // import deduplicates the replayed entries.
                    cursor = 0;
                }
                other => return Err(format!("unexpected frame kind {other} for fetch")),
            }

            // Stream the cumulative snapshot up to the aggregator.
            send(FRAME_TELEMETRY, tel.snapshot().to_json().as_bytes())
                .map_err(|e| format!("telemetry frame: {e}"))?;
            Ok(())
        }();
        if let Err(e) = exchange {
            // Mid-campaign pipe failure: the parent is gone or the
            // protocol is broken. Die loudly; a supervisor restarts us.
            panic!("fabric worker {}: {e}", role.index);
        }
        if let Some(manager) = &mut manager {
            let _ = manager.maybe_checkpoint(c);
        }
    });

    heartbeat_stop.store(true, Ordering::Relaxed);
    send(FRAME_STATS, &encode_stats(&stats))?;
    send(FRAME_DONE, &[])?;
    if let Some(handle) = heartbeat {
        // Joining bounds process exit: at most one more sleep interval,
        // and any trailing heartbeat was already written atomically.
        let _ = handle.join();
    }
    Ok(stats)
}

/// Parent-side fleet configuration for [`run_fleet`].
#[derive(Debug, Default)]
pub struct FleetConfig {
    /// Number of worker processes to spawn.
    pub workers: usize,
    /// Restarts allowed per worker before it is declared dead.
    pub max_restarts: u32,
    /// Base restart delay; attempt `n` waits `backoff * n` (linear, same
    /// policy as the thread-level supervisor).
    pub backoff: Duration,
    /// Write the single merged fleet telemetry stream (every worker's
    /// snapshots plus the final `"fleet_total":1` line) to this JSONL
    /// file.
    pub fleet_jsonl: Option<PathBuf>,
    /// How long a worker may go without *progress* (any non-heartbeat
    /// frame, or a heartbeat with an advanced exec count) before its
    /// service thread kills and restarts it. `None` reads the
    /// `BIGMAP_LIVENESS_DEADLINE_MS` default; `Some(Duration::ZERO)`
    /// disables liveness enforcement entirely.
    pub liveness_deadline: Option<Duration>,
}

/// What [`run_fleet`] returns: per-worker stats and health in the same
/// shape as the thread fleet, plus the merged fleet telemetry.
#[derive(Debug)]
pub struct FleetStats {
    /// Per-worker campaign statistics and health (index-aligned), with
    /// fleet-wide crash dedup — the same shape thread fleets report, so
    /// downstream analysis is transport-agnostic.
    pub stats: ParallelStats,
    /// Fleet-total telemetry: the latest snapshot of every worker,
    /// merged (also appended to the JSONL stream as the summary line).
    pub telemetry: TelemetrySnapshot,
    /// Worker processes that reported at least one telemetry snapshot.
    pub nodes: usize,
    /// Workers killed by the liveness deadline across the whole run
    /// (every kill also shows up as a `heartbeat_misses` counter in the
    /// merged telemetry, attributed to the affected node).
    pub heartbeat_misses: u64,
}

/// One worker attempt's outcome, as seen by its service thread.
enum AttemptOutcome {
    /// STATS + DONE arrived; the worker completed its budget.
    Done(Box<CampaignStats>),
    /// The pipe broke or the protocol was violated before DONE.
    Abnormal(String),
}

/// Serves one worker attempt: translates its frames against the hub and
/// aggregator until DONE, the pipe dies, or the liveness deadline
/// expires without progress.
///
/// A dedicated reader thread owns the blocking stdout pipe and forwards
/// frames over a channel, so the service loop can wait with a timeout.
/// The reader exits on its own once the pipe closes (worker exit or
/// kill) or the service loop hangs up the channel.
fn serve_attempt(
    child: &mut Child,
    index: usize,
    hub: &ShardedHub,
    aggregator: &FleetAggregator,
    deadline: Duration,
    misses: &AtomicU64,
) -> AttemptOutcome {
    let mut stdout = child.stdout.take().expect("worker stdout piped");
    let mut stdin = child.stdin.take().expect("worker stdin piped");

    let (frames_tx, frames) = mpsc::channel::<Result<(u8, Vec<u8>), WireError>>();
    thread::spawn(move || loop {
        let frame = read_frame(&mut stdout);
        let finished = frame.is_err();
        if frames_tx.send(frame).is_err() || finished {
            return;
        }
    });

    let mut stats: Option<CampaignStats> = None;
    let mut last_execs: Option<u64> = None;
    let mut last_progress = Instant::now();
    loop {
        let frame = if deadline.is_zero() {
            // Liveness disabled: block until the reader delivers or the
            // pipe dies (the reader always sends its error before
            // exiting, so the channel cannot hang up silently).
            match frames.recv() {
                Ok(frame) => frame,
                Err(_) => return AttemptOutcome::Abnormal("frame reader vanished".to_string()),
            }
        } else {
            let remaining = deadline.saturating_sub(last_progress.elapsed());
            match frames.recv_timeout(remaining) {
                Ok(frame) => frame,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    // No progress inside the deadline: the worker is
                    // alive-but-stuck (or its heartbeats stopped). Kill
                    // it and let the restart budget decide what's next.
                    misses.fetch_add(1, Ordering::Relaxed);
                    let supervisor = Telemetry::new(usize::MAX);
                    supervisor.incr(TelemetryEvent::HeartbeatMiss);
                    aggregator.record(index, supervisor.snapshot());
                    let _ = child.kill();
                    return AttemptOutcome::Abnormal(format!(
                        "no progress within {deadline:?}; worker killed"
                    ));
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return AttemptOutcome::Abnormal("frame reader vanished".to_string())
                }
            }
        };
        if let Ok((FRAME_HEARTBEAT, payload)) = &frame {
            // A heartbeat is progress only when the exec count moved;
            // a wedged worker heartbeats a frozen counter forever.
            if let Ok((execs, _)) = get_varint(payload) {
                if last_execs != Some(execs) {
                    last_execs = Some(execs);
                    last_progress = Instant::now();
                }
            }
            continue;
        }
        last_progress = Instant::now();
        match frame {
            Ok((FRAME_PUBLISH, payload)) => match decode_sync_batch(&payload) {
                Ok(batch) => {
                    let inputs = batch.entries.into_iter().map(|(_, input)| input).collect();
                    hub.publish(index, inputs);
                }
                Err(e) => return AttemptOutcome::Abnormal(format!("publish payload: {e}")),
            },
            Ok((FRAME_FETCH, payload)) => {
                let mut cursor = match get_varint(&payload) {
                    Ok((cursor, _)) => cursor,
                    Err(e) => return AttemptOutcome::Abnormal(format!("fetch payload: {e}")),
                };
                let reply = match hub.fetch_since(&mut cursor, index) {
                    Ok(entries) => {
                        let borrowed: Vec<(u64, &[u8])> =
                            entries.iter().map(|input| (0, &**input)).collect();
                        (FRAME_BATCH, encode_sync_batch(cursor, &borrowed))
                    }
                    Err(err) => {
                        let mut payload = Vec::with_capacity(20);
                        put_varint(&mut payload, err.cursor);
                        put_varint(&mut payload, err.published);
                        (FRAME_CURSOR_FAULT, payload)
                    }
                };
                if let Err(e) = write_frame(&mut stdin, reply.0, &reply.1) {
                    return AttemptOutcome::Abnormal(format!("fetch reply: {e}"));
                }
            }
            Ok((FRAME_TELEMETRY, payload)) => {
                if let Some(snap) = std::str::from_utf8(&payload)
                    .ok()
                    .and_then(TelemetrySnapshot::from_json)
                {
                    aggregator.record(index, snap);
                }
            }
            Ok((FRAME_STATS, payload)) => match decode_stats(&payload) {
                Ok(decoded) => stats = Some(decoded),
                Err(e) => return AttemptOutcome::Abnormal(format!("stats payload: {e}")),
            },
            Ok((FRAME_DONE, _)) => match stats.take() {
                Some(stats) => {
                    if let Some(tel) = &stats.telemetry {
                        aggregator.record(index, tel.clone());
                    }
                    return AttemptOutcome::Done(Box::new(stats));
                }
                None => return AttemptOutcome::Abnormal("done before stats".to_string()),
            },
            Ok((kind, _)) => {
                return AttemptOutcome::Abnormal(format!("unexpected frame kind {kind}"))
            }
            Err(WireError::Eof) => {
                return AttemptOutcome::Abnormal("worker closed its pipe before done".to_string())
            }
            Err(e) => return AttemptOutcome::Abnormal(format!("worker stream: {e}")),
        }
    }
}

/// Spawns and supervises a fleet of worker processes.
///
/// `command` builds the invocation for worker `i` — typically the
/// current executable with the arguments it needs to reconstruct the
/// same program/config; [`run_fleet`] adds the `BIGMAP_FABRIC_WORKER`
/// handshake and wires the pipes. Each worker is served by its own
/// thread against one shared [`ShardedHub`] and [`FleetAggregator`];
/// abnormal exits are restarted with linear backoff up to
/// `max_restarts`, after which the worker is reported
/// [`InstanceHealth::Dead`].
///
/// # Errors
///
/// Returns an error if the fleet JSONL sink cannot be created or a
/// worker process cannot be spawned at all (spawn failures on *restart*
/// count against the restart budget instead).
///
/// # Panics
///
/// Panics if `config.workers` is zero.
pub fn run_fleet(
    config: &FleetConfig,
    command: impl Fn(usize) -> Command + Sync,
) -> io::Result<FleetStats> {
    assert!(config.workers > 0, "need at least one worker");
    let hub = ShardedHub::new();
    let aggregator = match &config.fleet_jsonl {
        Some(path) => FleetAggregator::with_sink(JsonlSink::to_file(path)?),
        None => FleetAggregator::new(),
    };
    let deadline = config
        .liveness_deadline
        .unwrap_or_else(|| Duration::from_millis(bigmap_core::env::liveness_deadline_ms()));
    let misses = AtomicU64::new(0);

    let spawn = |index: usize| -> io::Result<Child> {
        let mut cmd = command(index);
        cmd.env(
            "BIGMAP_FABRIC_WORKER",
            format!("{index}/{}", config.workers),
        )
        .stdin(Stdio::piped())
        .stdout(Stdio::piped());
        // NUMA handshake: the parent resolves its BIGMAP_NUMA policy to a
        // concrete node per worker so that `auto` round-robins children
        // across nodes instead of every child re-deriving `auto` against
        // its own (identical) index space. A policy no-op forwards nothing
        // and the child inherits the environment as-is.
        if let Some(node) = bigmap_core::alloc::worker_node(index) {
            cmd.env("BIGMAP_NUMA", format!("node:{node}"));
        }
        cmd.spawn()
    };

    let results: Vec<(CampaignStats, InstanceHealth)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..config.workers)
            .map(|index| {
                let hub = &hub;
                let aggregator = &aggregator;
                let spawn = &spawn;
                let misses = &misses;
                scope.spawn(move || {
                    let mut restarts = 0u32;
                    loop {
                        let mut child = match spawn(index) {
                            Ok(child) => child,
                            Err(e) => {
                                if restarts >= 1 {
                                    // A spawn that worked once and now fails
                                    // burns restart budget like any abnormal
                                    // exit.
                                    return (
                                        CampaignStats::default(),
                                        InstanceHealth::Dead(format!("respawn failed: {e}")),
                                    );
                                }
                                return (
                                    CampaignStats::default(),
                                    InstanceHealth::Dead(format!("spawn failed: {e}")),
                                );
                            }
                        };
                        let outcome =
                            serve_attempt(&mut child, index, hub, aggregator, deadline, misses);
                        let status = child.wait();
                        match (outcome, status) {
                            (AttemptOutcome::Done(stats), Ok(status)) if status.success() => {
                                let health = if restarts == 0 {
                                    InstanceHealth::Running
                                } else {
                                    InstanceHealth::Restarted(restarts)
                                };
                                return (*stats, health);
                            }
                            (AttemptOutcome::Done(_), status) => {
                                // Completed the protocol but exited dirty:
                                // treat as abnormal, the stats are suspect.
                                restarts += 1;
                                if restarts > config.max_restarts {
                                    return (
                                        CampaignStats::default(),
                                        InstanceHealth::Dead(format!(
                                            "dirty exit after done: {status:?}"
                                        )),
                                    );
                                }
                            }
                            (AttemptOutcome::Abnormal(msg), _) => {
                                restarts += 1;
                                if restarts > config.max_restarts {
                                    return (CampaignStats::default(), InstanceHealth::Dead(msg));
                                }
                            }
                        }
                        thread::sleep(config.backoff * restarts);
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fleet service thread panicked"))
            .collect()
    });

    let (instances, health): (Vec<CampaignStats>, Vec<InstanceHealth>) =
        results.into_iter().unzip();
    let unique_crashes = instances
        .iter()
        .flat_map(|s| s.crash_buckets.iter().copied())
        .collect::<HashSet<u32>>()
        .len();
    let nodes = aggregator.nodes().len();
    let telemetry = aggregator.finish();
    Ok(FleetStats {
        stats: ParallelStats {
            instances,
            health,
            unique_crashes,
        },
        telemetry,
        nodes,
        heartbeat_misses: misses.load(Ordering::Relaxed),
    })
}

/// Packs the transferable subset of [`CampaignStats`] as varints: the
/// scalar counters plus the Crashwalk buckets (for fleet-wide crash
/// dedup). Timelines, per-op stats and the telemetry snapshot travel via
/// the telemetry stream instead.
pub fn encode_stats(stats: &CampaignStats) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + stats.crash_buckets.len() * 5);
    put_varint(&mut out, stats.execs);
    put_varint(
        &mut out,
        u64::try_from(stats.wall_time.as_nanos()).unwrap_or(u64::MAX),
    );
    put_varint(&mut out, stats.unique_crashes as u64);
    put_varint(&mut out, stats.coverage_unique_crashes as u64);
    put_varint(&mut out, stats.total_crashes);
    put_varint(&mut out, stats.hangs);
    put_varint(&mut out, stats.discovered_slots as u64);
    put_varint(&mut out, stats.used_len as u64);
    put_varint(&mut out, stats.queue_len as u64);
    put_varint(&mut out, stats.crash_buckets.len() as u64);
    for bucket in &stats.crash_buckets {
        put_varint(&mut out, u64::from(*bucket));
    }
    out
}

/// Unpacks [`encode_stats`]. Fields that don't cross the wire (op
/// timings, timeline, telemetry) are default.
///
/// # Errors
///
/// [`WireError`] on truncated or trailing bytes — same hygiene as the
/// sync-batch codec.
pub fn decode_stats(payload: &[u8]) -> Result<CampaignStats, WireError> {
    let mut at = 0usize;
    let next = |at: &mut usize| -> Result<u64, WireError> {
        let (value, used) = get_varint(&payload[*at..])?;
        *at += used;
        Ok(value)
    };
    let mut stats = CampaignStats {
        execs: next(&mut at)?,
        wall_time: Duration::from_nanos(next(&mut at)?),
        unique_crashes: next(&mut at)? as usize,
        coverage_unique_crashes: next(&mut at)? as usize,
        total_crashes: next(&mut at)?,
        hangs: next(&mut at)?,
        discovered_slots: next(&mut at)? as usize,
        used_len: next(&mut at)? as usize,
        queue_len: next(&mut at)? as usize,
        ..CampaignStats::default()
    };
    let buckets = next(&mut at)?;
    if buckets > ((payload.len() - at) + 1) as u64 {
        return Err(WireError::Truncated);
    }
    stats.crash_buckets = Vec::with_capacity(buckets as usize);
    for _ in 0..buckets {
        let bucket = next(&mut at)?;
        stats
            .crash_buckets
            .push(u32::try_from(bucket).map_err(|_| WireError::Truncated)?);
    }
    if at != payload.len() {
        return Err(WireError::TrailingBytes);
    }
    Ok(stats)
}

/// Re-exported for the sync-batch shape the protocol shares with
/// `bigmap_core::wire`.
pub type FabricBatch = SyncBatch;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_round_trip_through_the_wire() {
        let stats = CampaignStats {
            execs: 123_456,
            wall_time: Duration::from_millis(987),
            unique_crashes: 3,
            coverage_unique_crashes: 5,
            total_crashes: 40,
            hangs: 2,
            discovered_slots: 777,
            used_len: 800,
            queue_len: 61,
            crash_buckets: vec![0xDEAD_BEEF, 7, u32::MAX],
            ..CampaignStats::default()
        };
        let decoded = decode_stats(&encode_stats(&stats)).unwrap();
        assert_eq!(decoded.execs, stats.execs);
        assert_eq!(decoded.wall_time, stats.wall_time);
        assert_eq!(decoded.unique_crashes, stats.unique_crashes);
        assert_eq!(
            decoded.coverage_unique_crashes,
            stats.coverage_unique_crashes
        );
        assert_eq!(decoded.total_crashes, stats.total_crashes);
        assert_eq!(decoded.hangs, stats.hangs);
        assert_eq!(decoded.discovered_slots, stats.discovered_slots);
        assert_eq!(decoded.used_len, stats.used_len);
        assert_eq!(decoded.queue_len, stats.queue_len);
        assert_eq!(decoded.crash_buckets, stats.crash_buckets);
    }

    #[test]
    fn stats_decode_rejects_corruption() {
        let stats = CampaignStats {
            execs: 10,
            crash_buckets: vec![1, 2, 3],
            ..CampaignStats::default()
        };
        let good = encode_stats(&stats);
        // Truncations are detected.
        for cut in 0..good.len() {
            assert!(decode_stats(&good[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing junk is detected.
        let mut long = good.clone();
        long.push(0);
        assert!(matches!(decode_stats(&long), Err(WireError::TrailingBytes)));
        // A hostile bucket count cannot over-reserve.
        let mut hostile = Vec::new();
        for _ in 0..9 {
            put_varint(&mut hostile, 0);
        }
        put_varint(&mut hostile, u64::MAX);
        assert!(matches!(decode_stats(&hostile), Err(WireError::Truncated)));
    }

    #[test]
    fn worker_role_parses_the_handshake_shape() {
        // The env accessor itself is covered in bigmap_core::env; here we
        // only pin the mapping into WorkerRole.
        let role = WorkerRole {
            index: 2,
            workers: 4,
        };
        assert_eq!(role.index, 2);
        assert_eq!(role.workers, 4);
    }

    #[test]
    fn frame_kinds_are_distinct() {
        let kinds = [
            FRAME_PUBLISH,
            FRAME_FETCH,
            FRAME_BATCH,
            FRAME_CURSOR_FAULT,
            FRAME_TELEMETRY,
            FRAME_STATS,
            FRAME_DONE,
            FRAME_HEARTBEAT,
        ];
        let unique: HashSet<u8> = kinds.iter().copied().collect();
        assert_eq!(unique.len(), kinds.len());
    }
}
