//! AFL-style output directory: persisting campaign results to disk.
//!
//! Real fuzzing campaigns are operated through their output directory —
//! `queue/` for the corpus, `crashes/` for triage, `fuzzer_stats` for
//! monitoring, and sync directories for multi-instance setups. This module
//! writes and reads that layout so campaigns can be archived, resumed with
//! a previous corpus, or synchronized through a filesystem like AFL's
//! `-M/-S` instances.
//!
//! Layout (per instance):
//!
//! ```text
//! <out>/
//!   queue/    id:000000,<...>   one file per queue entry
//!   crashes/  id:000000,sig:.. one file per unique crash input
//!   fuzzer_stats                key : value lines (AFL-compatible style)
//! ```

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::campaign::{CampaignOutput, CampaignStats};

/// Handle to a campaign output directory.
#[derive(Debug, Clone)]
pub struct OutputDir {
    root: PathBuf,
}

impl OutputDir {
    /// Creates (or reuses) the directory layout under `root`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (permissions, missing parent, ...).
    pub fn create(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(root.join("queue"))?;
        fs::create_dir_all(root.join("crashes"))?;
        Ok(OutputDir { root })
    }

    /// The root path.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Persists a finished campaign: corpus into `queue/`, crash inputs
    /// into `crashes/`, statistics into `fuzzer_stats`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; the directory may be partially
    /// written on failure.
    pub fn save(&self, output: &CampaignOutput) -> io::Result<()> {
        for (i, input) in output.corpus.iter().enumerate() {
            let name = format!("id:{i:06},len:{}", input.len());
            fs::write(self.root.join("queue").join(name), input)?;
        }
        for (i, input) in output.crash_inputs.iter().enumerate() {
            let bucket = output
                .stats
                .crash_buckets
                .get(i)
                .copied()
                .unwrap_or_default();
            let name = format!("id:{i:06},sig:{bucket:08x}");
            fs::write(self.root.join("crashes").join(name), input)?;
        }
        self.write_stats(&output.stats)
    }

    fn write_stats(&self, stats: &CampaignStats) -> io::Result<()> {
        let mut f = fs::File::create(self.root.join("fuzzer_stats"))?;
        writeln!(f, "execs_done        : {}", stats.execs)?;
        writeln!(f, "execs_per_sec     : {:.2}", stats.throughput())?;
        writeln!(f, "run_time_ms       : {}", stats.wall_time.as_millis())?;
        writeln!(f, "corpus_count      : {}", stats.queue_len)?;
        writeln!(f, "unique_crashes    : {}", stats.unique_crashes)?;
        writeln!(f, "total_crashes     : {}", stats.total_crashes)?;
        writeln!(f, "total_hangs       : {}", stats.hangs)?;
        writeln!(f, "map_used_slots    : {}", stats.used_len)?;
        writeln!(f, "discovered_slots  : {}", stats.discovered_slots)?;
        Ok(())
    }

    /// Loads the persisted corpus (`queue/` files, in id order) — the
    /// resume path: feed these to [`crate::Campaign::add_seeds`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors. Unreadable entries are errors, not
    /// silently skipped (a truncated corpus should be noticed).
    pub fn load_corpus(&self) -> io::Result<Vec<Vec<u8>>> {
        let mut entries: Vec<(String, PathBuf)> = fs::read_dir(self.root.join("queue"))?
            .map(|e| {
                let e = e?;
                Ok((e.file_name().to_string_lossy().into_owned(), e.path()))
            })
            .collect::<io::Result<_>>()?;
        entries.sort();
        entries
            .into_iter()
            .map(|(_, path)| fs::read(path))
            .collect()
    }

    /// Loads the persisted crash inputs.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn load_crashes(&self) -> io::Result<Vec<Vec<u8>>> {
        let mut entries: Vec<(String, PathBuf)> = fs::read_dir(self.root.join("crashes"))?
            .map(|e| {
                let e = e?;
                Ok((e.file_name().to_string_lossy().into_owned(), e.path()))
            })
            .collect::<io::Result<_>>()?;
        entries.sort();
        entries
            .into_iter()
            .map(|(_, path)| fs::read(path))
            .collect()
    }

    /// Parses the persisted `fuzzer_stats` into key/value pairs.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; returns an empty map for a missing
    /// stats file only if the directory itself exists.
    pub fn load_stats(&self) -> io::Result<Vec<(String, String)>> {
        let text = fs::read_to_string(self.root.join("fuzzer_stats"))?;
        Ok(text
            .lines()
            .filter_map(|line| {
                let (k, v) = line.split_once(':')?;
                Some((k.trim().to_string(), v.trim().to_string()))
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Budget, Campaign, CampaignConfig};
    use bigmap_core::MapSize;
    use bigmap_coverage::Instrumentation;
    use bigmap_target::{Interpreter, ProgramBuilder};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("bigmap-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn run_small_campaign() -> CampaignOutput {
        let program = ProgramBuilder::new("persist")
            .gate(0, b'P', true)
            .gate(1, b'Q', false)
            .build()
            .unwrap();
        let inst =
            Instrumentation::assign(program.block_count(), program.call_sites, MapSize::K64, 8);
        let interp = Interpreter::new(&program);
        let mut campaign = Campaign::new(
            CampaignConfig {
                budget: Budget::Execs(5_000),
                ..Default::default()
            },
            &interp,
            &inst,
        );
        campaign.add_seeds(vec![b"start".to_vec()]);
        campaign.run_detailed()
    }

    #[test]
    fn save_and_reload_round_trips() {
        let dir = tmpdir("roundtrip");
        let output = run_small_campaign();
        let out = OutputDir::create(&dir).unwrap();
        out.save(&output).unwrap();

        let corpus = out.load_corpus().unwrap();
        assert_eq!(corpus, output.corpus);
        let crashes = out.load_crashes().unwrap();
        assert_eq!(crashes, output.crash_inputs);

        let stats = out.load_stats().unwrap();
        let get = |k: &str| {
            stats
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("missing {k}"))
        };
        assert_eq!(get("execs_done"), output.stats.execs.to_string());
        assert_eq!(get("corpus_count"), output.stats.queue_len.to_string());
        assert_eq!(
            get("unique_crashes"),
            output.stats.unique_crashes.to_string()
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corpus_order_is_stable() {
        let dir = tmpdir("order");
        let out = OutputDir::create(&dir).unwrap();
        let output = run_small_campaign();
        out.save(&output).unwrap();
        let a = out.load_corpus().unwrap();
        let b = out.load_corpus().unwrap();
        assert_eq!(a, b);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_files_named_with_bucket_signature() {
        let dir = tmpdir("signames");
        let out = OutputDir::create(&dir).unwrap();
        let output = run_small_campaign();
        assert!(output.stats.unique_crashes > 0, "campaign must crash");
        out.save(&output).unwrap();
        let names: Vec<String> = fs::read_dir(dir.join("crashes"))
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(names
            .iter()
            .all(|n| n.starts_with("id:") && n.contains("sig:")));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_path_reuses_the_corpus() {
        let dir = tmpdir("resume");
        let out = OutputDir::create(&dir).unwrap();
        let output = run_small_campaign();
        out.save(&output).unwrap();

        // Resume: a fresh campaign seeded with the saved corpus starts
        // with at least as many queue entries.
        let program = ProgramBuilder::new("persist")
            .gate(0, b'P', true)
            .gate(1, b'Q', false)
            .build()
            .unwrap();
        let inst =
            Instrumentation::assign(program.block_count(), program.call_sites, MapSize::K64, 8);
        let interp = Interpreter::new(&program);
        let mut campaign = Campaign::new(
            CampaignConfig {
                budget: Budget::Execs(100),
                ..Default::default()
            },
            &interp,
            &inst,
        );
        campaign.add_seeds(out.load_corpus().unwrap());
        let stats = campaign.run();
        assert!(stats.queue_len >= output.stats.queue_len);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_is_idempotent() {
        let dir = tmpdir("idem");
        OutputDir::create(&dir).unwrap();
        OutputDir::create(&dir).unwrap();
        assert!(dir.join("queue").is_dir());
        fs::remove_dir_all(&dir).unwrap();
    }
}
