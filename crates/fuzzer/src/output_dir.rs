//! AFL-style output directory: persisting campaign results to disk.
//!
//! Real fuzzing campaigns are operated through their output directory —
//! `queue/` for the corpus, `crashes/` for triage, `fuzzer_stats` for
//! monitoring, and sync directories for multi-instance setups. This module
//! writes and reads that layout so campaigns can be archived, resumed with
//! a previous corpus, or synchronized through a filesystem like AFL's
//! `-M/-S` instances.
//!
//! Layout (per instance):
//!
//! ```text
//! <out>/
//!   queue/    id:000000,<...>   one file per queue entry
//!   crashes/  id:000000,sig:.. one file per unique crash input
//!   hangs/    id:000000,<...>   one file per novel hang input
//!   quarantine/                 entries found unreadable/truncated on load
//!   fuzzer_stats                key : value lines (AFL-compatible style)
//!   checkpoint                  resumable snapshot (see [`crate::checkpoint`])
//! ```
//!
//! Every file is written crash-safely: content goes to a `.tmp` sibling
//! first, is fsynced, and is atomically renamed into place, so a save
//! interrupted by a kill (or power loss) leaves each file either at its
//! previous content or its new content — never truncated. A re-save also
//! removes `id:*` files left over from a previous, larger save (and
//! abandoned `.tmp` staging files), so the directory always reflects
//! exactly one campaign state.
//!
//! Loading is corruption-tolerant: an entry that cannot be read, or
//! whose on-disk size disagrees with the `len:` component of its name,
//! is moved to `quarantine/` with a sibling `.reason` file and the load
//! continues — one damaged entry costs one input, not the campaign's
//! ability to resume. Quarantines are counted as `QuarantinedEntry`
//! telemetry events when a telemetry handle is attached
//! ([`OutputDir::with_telemetry`]).

use std::collections::HashSet;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::campaign::{CampaignOutput, CampaignStats};
use crate::telemetry::{Telemetry, TelemetryEvent};

/// Writes `bytes` to `path` via a `.tmp` sibling plus fsync plus atomic
/// rename, so a crash mid-write cannot leave a truncated file at `path`
/// and a power loss after the rename cannot publish an unsynced (empty)
/// one.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?
        .to_string_lossy()
        .into_owned();
    let tmp = path.with_file_name(format!("{file_name}.tmp"));
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        // The rename below can be journaled ahead of the data on many
        // filesystems; without this sync a power loss can publish the
        // new name over zero-length content.
        file.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// The `len:<n>` component of an `id:*` entry name, if present — the
/// declared payload size that makes on-disk truncation detectable.
fn expected_len(name: &str) -> Option<usize> {
    name.split(',')
        .find_map(|part| part.strip_prefix("len:"))?
        .parse()
        .ok()
}

/// Handle to a campaign output directory.
#[derive(Debug, Clone)]
pub struct OutputDir {
    root: PathBuf,
    telemetry: Option<Arc<Telemetry>>,
}

impl OutputDir {
    /// Creates (or reuses) the directory layout under `root`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (permissions, missing parent, ...).
    pub fn create(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(root.join("queue"))?;
        fs::create_dir_all(root.join("crashes"))?;
        fs::create_dir_all(root.join("hangs"))?;
        Ok(OutputDir {
            root,
            telemetry: None,
        })
    }

    /// Attaches a telemetry handle so corpus quarantines are counted as
    /// `QuarantinedEntry` events.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// The root path.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The quarantine directory damaged entries are moved to (may not
    /// exist yet — it is created on first quarantine).
    pub fn quarantine_dir(&self) -> PathBuf {
        self.root.join("quarantine")
    }

    /// Persists a finished campaign: corpus into `queue/`, crash inputs
    /// into `crashes/`, hang inputs into `hangs/`, statistics into
    /// `fuzzer_stats`.
    ///
    /// Each file is written atomically (temp + rename), and `id:*` files
    /// from a previous save that the new state no longer contains are
    /// removed, so re-saving over an old directory cannot leave a mix of
    /// two campaigns' entries.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; on failure every individual file is
    /// still either old or new, never truncated.
    pub fn save(&self, output: &CampaignOutput) -> io::Result<()> {
        self.save_entries(
            "queue",
            output
                .corpus
                .iter()
                .enumerate()
                .map(|(i, input)| (format!("id:{i:06},len:{}", input.len()), input)),
        )?;
        self.save_entries(
            "crashes",
            output.crash_inputs.iter().enumerate().map(|(i, input)| {
                let bucket = output
                    .stats
                    .crash_buckets
                    .get(i)
                    .copied()
                    .unwrap_or_default();
                (format!("id:{i:06},sig:{bucket:08x}"), input)
            }),
        )?;
        self.save_entries(
            "hangs",
            output
                .hang_inputs
                .iter()
                .enumerate()
                .map(|(i, input)| (format!("id:{i:06},len:{}", input.len()), input)),
        )?;
        self.write_stats(&output.stats)
    }

    /// Writes one subdirectory's `id:*` files atomically, then removes
    /// stale `id:*` files (including abandoned `.tmp` staging files) that
    /// are not part of the new state. Write-then-delete order means an
    /// interruption can leave extra old entries but never lose new ones.
    fn save_entries<'a>(
        &self,
        sub: &str,
        entries: impl Iterator<Item = (String, &'a Vec<u8>)>,
    ) -> io::Result<()> {
        let dir = self.root.join(sub);
        let mut keep = HashSet::new();
        for (name, input) in entries {
            write_atomic(&dir.join(&name), input)?;
            keep.insert(name);
        }
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with("id:") && !keep.contains(&name) {
                fs::remove_file(entry.path())?;
            }
        }
        Ok(())
    }

    fn write_stats(&self, stats: &CampaignStats) -> io::Result<()> {
        let mut text = Vec::new();
        let f = &mut text;
        writeln!(f, "execs_done        : {}", stats.execs)?;
        writeln!(f, "execs_per_sec     : {:.2}", stats.throughput())?;
        writeln!(f, "run_time_ms       : {}", stats.wall_time.as_millis())?;
        writeln!(f, "corpus_count      : {}", stats.queue_len)?;
        writeln!(f, "unique_crashes    : {}", stats.unique_crashes)?;
        writeln!(f, "total_crashes     : {}", stats.total_crashes)?;
        writeln!(f, "total_hangs       : {}", stats.hangs)?;
        writeln!(f, "map_used_slots    : {}", stats.used_len)?;
        writeln!(f, "discovered_slots  : {}", stats.discovered_slots)?;
        write_atomic(&self.root.join("fuzzer_stats"), &text)
    }

    /// Loads the persisted corpus (`queue/` files, in id order) — the
    /// resume path: feed these to [`crate::Campaign::add_seeds`].
    ///
    /// Damaged entries (unreadable, or truncated relative to the `len:`
    /// in their name) are quarantined and skipped, not fatal.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors on the directory itself or on the
    /// quarantine bookkeeping.
    pub fn load_corpus(&self) -> io::Result<Vec<Vec<u8>>> {
        self.load_entries("queue")
    }

    /// Loads the persisted crash inputs.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn load_crashes(&self) -> io::Result<Vec<Vec<u8>>> {
        self.load_entries("crashes")
    }

    /// Loads the persisted hang inputs (`hangs/` files, in id order) —
    /// the counterpart of the hang corpus [`OutputDir::save`] writes.
    /// A directory saved before hang persistence existed simply has no
    /// `hangs/` dir; that reads as an empty list, not an error.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than a missing directory.
    pub fn load_hangs(&self) -> io::Result<Vec<Vec<u8>>> {
        match self.load_entries("hangs") {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Vec::new()),
            other => other,
        }
    }

    /// Loads one subdirectory's `id:*` files in name (= id) order,
    /// skipping `.tmp` staging leftovers from an interrupted save.
    /// Entries that cannot be read — or whose byte count disagrees with
    /// the `len:` their name declares — are moved to `quarantine/` with
    /// a reason file, and loading continues.
    fn load_entries(&self, sub: &str) -> io::Result<Vec<Vec<u8>>> {
        let mut entries: Vec<(String, PathBuf)> = fs::read_dir(self.root.join(sub))?
            .map(|e| {
                let e = e?;
                Ok((e.file_name().to_string_lossy().into_owned(), e.path()))
            })
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .filter(|(name, _)| !name.ends_with(".tmp"))
            .collect();
        entries.sort();
        let mut inputs = Vec::with_capacity(entries.len());
        for (name, path) in entries {
            let outcome = match fs::read(&path) {
                Ok(bytes) => match expected_len(&name) {
                    Some(expected) if bytes.len() != expected => Err(format!(
                        "truncated: {} bytes on disk, name declares {expected}",
                        bytes.len()
                    )),
                    _ => Ok(bytes),
                },
                Err(e) => Err(format!("unreadable: {e}")),
            };
            match outcome {
                Ok(bytes) => inputs.push(bytes),
                Err(reason) => self.quarantine(sub, &name, &path, &reason)?,
            }
        }
        Ok(inputs)
    }

    /// Moves one damaged entry out of the live corpus into
    /// `quarantine/<sub>-<name>`, records why in a sibling `.reason`
    /// file, and counts the event. The entry is preserved for forensics,
    /// not deleted: a "truncated" file may still be most of an
    /// interesting input.
    fn quarantine(&self, sub: &str, name: &str, path: &Path, reason: &str) -> io::Result<()> {
        let dir = self.quarantine_dir();
        fs::create_dir_all(&dir)?;
        let target = dir.join(format!("{sub}-{name}"));
        if fs::rename(path, &target).is_err() {
            // Cross-device or vanished mid-load: evict it from the live
            // corpus anyway; the reason file still records the incident.
            let _ = fs::remove_file(path);
        }
        write_atomic(&dir.join(format!("{sub}-{name}.reason")), reason.as_bytes())?;
        if let Some(tel) = &self.telemetry {
            tel.incr(TelemetryEvent::QuarantinedEntry);
        }
        eprintln!("output-dir: quarantined {sub}/{name}: {reason}");
        Ok(())
    }

    /// Parses the persisted `fuzzer_stats` into key/value pairs.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; returns an empty map for a missing
    /// stats file only if the directory itself exists.
    pub fn load_stats(&self) -> io::Result<Vec<(String, String)>> {
        let text = fs::read_to_string(self.root.join("fuzzer_stats"))?;
        Ok(text
            .lines()
            .filter_map(|line| {
                let (k, v) = line.split_once(':')?;
                Some((k.trim().to_string(), v.trim().to_string()))
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Budget, Campaign, CampaignConfig};
    use bigmap_core::MapSize;
    use bigmap_coverage::Instrumentation;
    use bigmap_target::{Interpreter, ProgramBuilder};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("bigmap-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn run_small_campaign() -> CampaignOutput {
        let program = ProgramBuilder::new("persist")
            .gate(0, b'P', true)
            .gate(1, b'Q', false)
            .build()
            .unwrap();
        let inst =
            Instrumentation::assign(program.block_count(), program.call_sites, MapSize::K64, 8);
        let interp = Interpreter::new(&program);
        let mut campaign = Campaign::new(
            CampaignConfig {
                budget: Budget::Execs(5_000),
                ..Default::default()
            },
            &interp,
            &inst,
        );
        campaign.add_seeds(vec![b"start".to_vec()]);
        campaign.run_detailed()
    }

    #[test]
    fn save_and_reload_round_trips() {
        let dir = tmpdir("roundtrip");
        let output = run_small_campaign();
        let out = OutputDir::create(&dir).unwrap();
        out.save(&output).unwrap();

        let corpus = out.load_corpus().unwrap();
        assert_eq!(corpus, output.corpus);
        let crashes = out.load_crashes().unwrap();
        assert_eq!(crashes, output.crash_inputs);

        let stats = out.load_stats().unwrap();
        let get = |k: &str| {
            stats
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("missing {k}"))
        };
        assert_eq!(get("execs_done"), output.stats.execs.to_string());
        assert_eq!(get("corpus_count"), output.stats.queue_len.to_string());
        assert_eq!(
            get("unique_crashes"),
            output.stats.unique_crashes.to_string()
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corpus_order_is_stable() {
        let dir = tmpdir("order");
        let out = OutputDir::create(&dir).unwrap();
        let output = run_small_campaign();
        out.save(&output).unwrap();
        let a = out.load_corpus().unwrap();
        let b = out.load_corpus().unwrap();
        assert_eq!(a, b);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_files_named_with_bucket_signature() {
        let dir = tmpdir("signames");
        let out = OutputDir::create(&dir).unwrap();
        let output = run_small_campaign();
        assert!(output.stats.unique_crashes > 0, "campaign must crash");
        out.save(&output).unwrap();
        let names: Vec<String> = fs::read_dir(dir.join("crashes"))
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(names
            .iter()
            .all(|n| n.starts_with("id:") && n.contains("sig:")));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_path_reuses_the_corpus() {
        let dir = tmpdir("resume");
        let out = OutputDir::create(&dir).unwrap();
        let output = run_small_campaign();
        out.save(&output).unwrap();

        // Resume: a fresh campaign seeded with the saved corpus starts
        // with at least as many queue entries.
        let program = ProgramBuilder::new("persist")
            .gate(0, b'P', true)
            .gate(1, b'Q', false)
            .build()
            .unwrap();
        let inst =
            Instrumentation::assign(program.block_count(), program.call_sites, MapSize::K64, 8);
        let interp = Interpreter::new(&program);
        let mut campaign = Campaign::new(
            CampaignConfig {
                budget: Budget::Execs(100),
                ..Default::default()
            },
            &interp,
            &inst,
        );
        campaign.add_seeds(out.load_corpus().unwrap());
        let stats = campaign.run();
        assert!(stats.queue_len >= output.stats.queue_len);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_is_idempotent() {
        let dir = tmpdir("idem");
        OutputDir::create(&dir).unwrap();
        OutputDir::create(&dir).unwrap();
        assert!(dir.join("queue").is_dir());
        assert!(dir.join("hangs").is_dir());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resave_removes_stale_entries() {
        let dir = tmpdir("stale");
        let out = OutputDir::create(&dir).unwrap();
        let output = run_small_campaign();
        assert!(output.corpus.len() > 1, "need a multi-entry corpus");
        out.save(&output).unwrap();

        // A later save with a smaller state (e.g. after corpus
        // minimization) must not leave the old, larger save's tail files
        // behind.
        let mut smaller = output.clone();
        smaller.corpus.truncate(1);
        smaller.crash_inputs.clear();
        smaller.stats.crash_buckets.clear();
        out.save(&smaller).unwrap();

        assert_eq!(out.load_corpus().unwrap(), smaller.corpus);
        assert!(out.load_crashes().unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hang_inputs_round_trip() {
        let dir = tmpdir("hangs");
        let out = OutputDir::create(&dir).unwrap();
        let mut output = run_small_campaign();
        output.hang_inputs = vec![b"spin-a".to_vec(), Vec::new(), b"spin-c".to_vec()];
        out.save(&output).unwrap();
        assert_eq!(out.load_hangs().unwrap(), output.hang_inputs);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_hangs_dir_reads_as_empty() {
        let dir = tmpdir("nohangs");
        let out = OutputDir::create(&dir).unwrap();
        // Simulate a directory from before hang persistence existed.
        fs::remove_dir_all(dir.join("hangs")).unwrap();
        assert!(out.load_hangs().unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_entry_is_quarantined_not_fatal() {
        let dir = tmpdir("quarantine-trunc");
        let output = run_small_campaign();
        assert!(output.corpus.len() > 1, "need a multi-entry corpus");
        let telemetry = Arc::new(Telemetry::new(0));
        let out = OutputDir::create(&dir)
            .unwrap()
            .with_telemetry(Arc::clone(&telemetry));
        out.save(&output).unwrap();

        // Torn write survivor: the file exists under its final name but
        // lost its tail (the name's len: no longer matches).
        let victim_name = format!("id:{:06},len:{}", 0, output.corpus[0].len());
        let victim = dir.join("queue").join(&victim_name);
        assert!(victim.exists());
        fs::write(&victim, b"").unwrap();

        let corpus = out.load_corpus().unwrap();
        assert_eq!(corpus, output.corpus[1..].to_vec());
        assert!(!victim.exists(), "damaged entry must leave the live corpus");
        let quarantined = out.quarantine_dir().join(format!("queue-{victim_name}"));
        assert!(quarantined.exists());
        let reason = fs::read_to_string(
            out.quarantine_dir()
                .join(format!("queue-{victim_name}.reason")),
        )
        .unwrap();
        assert!(reason.contains("truncated"), "got: {reason}");
        assert_eq!(telemetry.get(TelemetryEvent::QuarantinedEntry), 1);

        // A second load sees a clean directory: nothing left to quarantine.
        assert_eq!(out.load_corpus().unwrap(), output.corpus[1..].to_vec());
        assert_eq!(telemetry.get(TelemetryEvent::QuarantinedEntry), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unreadable_entry_is_quarantined_not_fatal() {
        let dir = tmpdir("quarantine-unreadable");
        let out = OutputDir::create(&dir).unwrap();
        let output = run_small_campaign();
        out.save(&output).unwrap();
        // A directory where a file should be: fs::read fails regardless
        // of permissions (tests may run as root, so chmod won't do).
        let imposter = dir.join("hangs").join("id:000099,len:3");
        fs::create_dir_all(&imposter).unwrap();

        let hangs = out.load_hangs().unwrap();
        assert_eq!(hangs, output.hang_inputs);
        let reason =
            fs::read_to_string(out.quarantine_dir().join("hangs-id:000099,len:3.reason")).unwrap();
        assert!(reason.contains("unreadable"), "got: {reason}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn expected_len_parses_entry_names() {
        assert_eq!(expected_len("id:000001,len:42"), Some(42));
        assert_eq!(expected_len("id:000001,len:0"), Some(0));
        // Crash entries carry a signature, not a length: no check.
        assert_eq!(expected_len("id:000001,sig:00abcdef"), None);
        assert_eq!(expected_len("id:000001,len:notanumber"), None);
    }

    #[test]
    fn save_leaves_no_tmp_staging_files() {
        let dir = tmpdir("notmp");
        let out = OutputDir::create(&dir).unwrap();
        // Plant a leftover from a hypothetical interrupted save; the next
        // save must clean it up rather than let load_corpus trip on it.
        fs::write(dir.join("queue").join("id:000099,len:3.tmp"), b"xxx").unwrap();
        out.save(&run_small_campaign()).unwrap();
        let leftovers: Vec<String> = fs::read_dir(dir.join("queue"))
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "stale tmp files: {leftovers:?}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
