//! The mutation engine: deterministic stages, havoc and splicing.
//!
//! Mirrors AFL's mutator at the level the paper depends on (§II-A1):
//! deterministic walking bit-flips / arithmetic / interesting values (run
//! by the master instance only, and skipped entirely for short runs — the
//! FuzzBench configuration the paper adopts), followed by stacked random
//! "havoc" mutations and corpus splicing. The mutation strategy is
//! orthogonal to BigMap itself, so faithfulness to the general shape is
//! what matters: small, local, feedback-friendly perturbations.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// AFL's "interesting" 8-bit values.
pub const INTERESTING_8: [i8; 9] = [-128, -1, 0, 1, 16, 32, 64, 100, 127];
/// AFL's "interesting" 16-bit values.
pub const INTERESTING_16: [i16; 10] = [-32768, -129, 128, 255, 256, 512, 1000, 1024, 4096, 32767];

/// Maximum number of stacked havoc operations per test case (AFL stacks
/// `2^(1..=7)`; we cap at 64).
const HAVOC_STACK_MAX: u32 = 64;
/// Maximum test-case length the mutator will grow an input to.
const MAX_LEN: usize = 4096;

/// The mutation engine. Owns its RNG so campaigns are reproducible.
///
/// # Examples
///
/// ```rust
/// use bigmap_fuzzer::Mutator;
///
/// let mut mutator = Mutator::new(42);
/// let seed = b"hello world".to_vec();
/// let child = mutator.havoc(&seed, None);
/// assert!(!child.is_empty());
///
/// // Deterministic stages enumerate systematic variants.
/// let variants = Mutator::deterministic(&seed, 100);
/// assert_eq!(variants.len(), 100);
/// ```
#[derive(Debug)]
pub struct Mutator {
    rng: SmallRng,
    dictionary: Vec<Vec<u8>>,
}

impl Mutator {
    /// Creates a mutator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Mutator {
            rng: SmallRng::seed_from_u64(seed),
            dictionary: Vec::new(),
        }
    }

    /// Creates a mutator with a token dictionary (AFL's `-x`): havoc gains
    /// an operation that overwrites or inserts a dictionary token, which is
    /// how AFL punches through magic-value comparisons without laf-intel.
    /// Empty tokens are discarded.
    pub fn with_dictionary(seed: u64, dictionary: Vec<Vec<u8>>) -> Self {
        let mut m = Self::new(seed);
        m.dictionary = dictionary.into_iter().filter(|t| !t.is_empty()).collect();
        m
    }

    /// Number of usable dictionary tokens.
    pub fn dictionary_len(&self) -> usize {
        self.dictionary.len()
    }

    /// The mutator RNG's raw stream position, for checkpointing.
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Repositions the mutator RNG to a previously captured
    /// [`Mutator::rng_state`] (checkpoint resume): the havoc stream
    /// continues exactly where the checkpointed campaign left off.
    pub fn set_rng_state(&mut self, state: [u64; 4]) {
        self.rng = SmallRng::from_state(state);
    }

    /// One havoc-stage child: 1–64 stacked random mutations of `input`,
    /// optionally splicing with `other` first (AFL's splice stage).
    pub fn havoc(&mut self, input: &[u8], other: Option<&[u8]>) -> Vec<u8> {
        let mut data: Vec<u8> = match other {
            Some(other) if !other.is_empty() && !input.is_empty() => {
                // Splice: head of one parent, tail of the other.
                let cut_a = self.rng.gen_range(0..=input.len());
                let cut_b = self.rng.gen_range(0..=other.len());
                let mut spliced = input[..cut_a].to_vec();
                spliced.extend_from_slice(&other[cut_b..]);
                if spliced.is_empty() {
                    input.to_vec()
                } else {
                    spliced
                }
            }
            _ => input.to_vec(),
        };
        if data.is_empty() {
            data.push(0);
        }

        let stack = 1
            << self
                .rng
                .gen_range(1..=HAVOC_STACK_MAX.trailing_zeros() + 1)
                .min(6);
        for _ in 0..stack {
            self.havoc_one(&mut data);
        }
        data.truncate(MAX_LEN);
        if data.is_empty() {
            data.push(0);
        }
        data
    }

    fn havoc_one(&mut self, data: &mut Vec<u8>) {
        // A stacked delete can empty the buffer; re-seed it so subsequent
        // stacked operations always have a byte to work with.
        if data.is_empty() {
            data.push(self.rng.gen());
            return;
        }
        let len = data.len();
        // Dictionary ops take one slot of the roll when tokens exist.
        let cases = if self.dictionary.is_empty() { 9u32 } else { 10 };
        match self.rng.gen_range(0..cases) {
            0 => {
                // Flip a single bit.
                let pos = self.rng.gen_range(0..len);
                data[pos] ^= 1u8 << self.rng.gen_range(0..8u32);
            }
            1 => {
                // Set a random byte to a random value.
                let pos = self.rng.gen_range(0..len);
                data[pos] = self.rng.gen();
            }
            2 => {
                // Add/subtract a small delta.
                let pos = self.rng.gen_range(0..len);
                let delta = self.rng.gen_range(1..=35u8);
                data[pos] = if self.rng.gen_bool(0.5) {
                    data[pos].wrapping_add(delta)
                } else {
                    data[pos].wrapping_sub(delta)
                };
            }
            3 => {
                // Overwrite with an interesting 8-bit value.
                let pos = self.rng.gen_range(0..len);
                data[pos] = INTERESTING_8[self.rng.gen_range(0..INTERESTING_8.len())] as u8;
            }
            4 if len >= 2 => {
                // Overwrite with an interesting 16-bit value.
                let pos = self.rng.gen_range(0..len - 1);
                let v = INTERESTING_16[self.rng.gen_range(0..INTERESTING_16.len())] as u16;
                data[pos..pos + 2].copy_from_slice(&v.to_le_bytes());
            }
            5 if len >= 2 => {
                // Delete a block.
                let from = self.rng.gen_range(0..len - 1);
                let del = self.rng.gen_range(1..=(len - from).min(16));
                data.drain(from..from + del);
            }
            6 if len < MAX_LEN => {
                // Clone a block to a random position.
                let from = self.rng.gen_range(0..len);
                let copy_len = self.rng.gen_range(1..=(len - from).min(16));
                let block: Vec<u8> = data[from..from + copy_len].to_vec();
                let at = self.rng.gen_range(0..=len);
                for (i, b) in block.into_iter().enumerate() {
                    data.insert(at + i, b);
                }
            }
            7 => {
                // Overwrite a block with a repeated random byte.
                let from = self.rng.gen_range(0..len);
                let fill_len = self.rng.gen_range(1..=(len - from).min(16));
                let value = self.rng.gen();
                data[from..from + fill_len].fill(value);
            }
            9 => {
                // Overwrite with a dictionary token at a random position
                // (clipped at the end of the buffer).
                let token = &self.dictionary[self.rng.gen_range(0..self.dictionary.len())];
                let at = self.rng.gen_range(0..len);
                for (i, &b) in token.iter().enumerate() {
                    if at + i >= data.len() {
                        break;
                    }
                    data[at + i] = b;
                }
            }
            _ => {
                // Swap two bytes.
                let a = self.rng.gen_range(0..len);
                let b = self.rng.gen_range(0..len);
                data.swap(a, b);
            }
        }
    }

    /// The deterministic stages of AFL, as an eager list capped at `limit`
    /// variants: walking 1/2/4-bit flips, byte flips, ±arith and
    /// interesting-value overwrites, in AFL's order.
    ///
    /// The paper (and FuzzBench) skip these for 24-hour runs; the parallel
    /// experiments run them on the master instance only.
    pub fn deterministic(input: &[u8], limit: usize) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        let bits = input.len() * 8;

        // Walking bit flips (1, 2, 4 consecutive bits).
        for width in [1usize, 2, 4] {
            for start in 0..bits.saturating_sub(width - 1) {
                if out.len() >= limit {
                    return out;
                }
                let mut v = input.to_vec();
                for b in start..start + width {
                    v[b / 8] ^= 1 << (b % 8);
                }
                out.push(v);
            }
        }
        // Walking byte flips.
        for i in 0..input.len() {
            if out.len() >= limit {
                return out;
            }
            let mut v = input.to_vec();
            v[i] ^= 0xFF;
            out.push(v);
        }
        // Arithmetic ±1..=35 per byte.
        for i in 0..input.len() {
            for delta in 1..=35u8 {
                if out.len() >= limit {
                    return out;
                }
                let mut v = input.to_vec();
                v[i] = v[i].wrapping_add(delta);
                out.push(v);
                if out.len() >= limit {
                    return out;
                }
                let mut v = input.to_vec();
                v[i] = v[i].wrapping_sub(delta);
                out.push(v);
            }
        }
        // Interesting 8-bit overwrites.
        for i in 0..input.len() {
            for &val in &INTERESTING_8 {
                if out.len() >= limit {
                    return out;
                }
                let mut v = input.to_vec();
                v[i] = val as u8;
                out.push(v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn havoc_is_reproducible_per_seed() {
        let seed = b"reproducible".to_vec();
        let mut a = Mutator::new(9);
        let mut b = Mutator::new(9);
        for _ in 0..50 {
            assert_eq!(a.havoc(&seed, None), b.havoc(&seed, None));
        }
        let mut c = Mutator::new(10);
        let differs = (0..50).any(|_| Mutator::new(9).havoc(&seed, None) != c.havoc(&seed, None));
        assert!(differs);
    }

    #[test]
    fn havoc_usually_changes_the_input() {
        let seed = vec![0u8; 64];
        let mut m = Mutator::new(1);
        let changed = (0..100).filter(|_| m.havoc(&seed, None) != seed).count();
        assert!(changed > 90, "only {changed}/100 havoc children differed");
    }

    #[test]
    fn havoc_never_emits_empty_or_oversized() {
        let mut m = Mutator::new(2);
        for len in [0usize, 1, 2, 100, 4096] {
            let seed = vec![7u8; len];
            for _ in 0..50 {
                let child = m.havoc(&seed, None);
                assert!(!child.is_empty());
                assert!(child.len() <= 4096);
            }
        }
    }

    #[test]
    fn splice_mixes_parents() {
        let a = vec![b'A'; 32];
        let b = vec![b'B'; 32];
        let mut m = Mutator::new(3);
        let mixed = (0..50).any(|_| {
            let child = m.havoc(&a, Some(&b));
            child.contains(&b'A') && child.contains(&b'B')
        });
        assert!(mixed, "splicing should mix bytes of both parents");
    }

    #[test]
    fn deterministic_starts_with_walking_bitflips() {
        let variants = Mutator::deterministic(&[0b0000_0000], 8);
        assert_eq!(variants[0], vec![0b0000_0001]);
        assert_eq!(variants[1], vec![0b0000_0010]);
        assert_eq!(variants[7], vec![0b1000_0000]);
    }

    #[test]
    fn deterministic_respects_limit_and_is_deterministic() {
        let input = b"abcd".to_vec();
        let v1 = Mutator::deterministic(&input, 200);
        let v2 = Mutator::deterministic(&input, 200);
        assert_eq!(v1.len(), 200);
        assert_eq!(v1, v2);
    }

    #[test]
    fn deterministic_on_empty_input_is_empty() {
        assert!(Mutator::deterministic(&[], 100).is_empty());
    }

    #[test]
    fn dictionary_tokens_appear_in_children() {
        let dict = vec![b"MAGICWORD".to_vec()];
        let mut m = Mutator::with_dictionary(5, dict);
        assert_eq!(m.dictionary_len(), 1);
        let seed = vec![0u8; 64];
        let hits = (0..500)
            .filter(|_| {
                let child = m.havoc(&seed, None);
                child.windows(9).any(|w| w == b"MAGICWORD")
            })
            .count();
        assert!(
            hits > 20,
            "dictionary token appeared in only {hits}/500 children"
        );
    }

    #[test]
    fn empty_dictionary_tokens_discarded() {
        let m = Mutator::with_dictionary(1, vec![vec![], b"ok".to_vec(), vec![]]);
        assert_eq!(m.dictionary_len(), 1);
    }

    #[test]
    fn dictionary_mutator_still_valid_outputs() {
        let mut m = Mutator::with_dictionary(9, vec![b"tok".to_vec(), vec![1, 2, 3, 4, 5]]);
        for len in [1usize, 3, 50] {
            let seed = vec![7u8; len];
            for _ in 0..100 {
                let child = m.havoc(&seed, None);
                assert!(!child.is_empty() && child.len() <= 4096);
            }
        }
    }

    proptest! {
        #[test]
        fn havoc_output_always_valid(
            seed in any::<u64>(),
            input in prop::collection::vec(any::<u8>(), 0..200),
        ) {
            let mut m = Mutator::new(seed);
            let child = m.havoc(&input, None);
            prop_assert!(!child.is_empty());
            prop_assert!(child.len() <= 4096);
        }

        #[test]
        fn deterministic_variants_differ_from_input(
            input in prop::collection::vec(any::<u8>(), 1..32),
        ) {
            for v in Mutator::deterministic(&input, 64) {
                prop_assert_ne!(v, input.clone());
            }
        }
    }
}
