//! Crashwalk-style crash deduplication.
//!
//! AFL's built-in "unique crash" counter deduplicates against a crash
//! coverage bitmap, which the paper points out is *inherently biased toward
//! larger maps* (bigger map → fewer collisions → more crashes look unique).
//! To compare map sizes fairly, the paper adopts Crashwalk's policy
//! instead: a crash is unique iff the hash of its **call stack plus
//! faulting address** is new (§V-A3). We implement exactly that.

use std::collections::HashSet;

use bigmap_core::Crc32;
use bigmap_target::ExecOutcome;

/// Deduplicates crashes by (call stack, faulting site) hash.
///
/// # Examples
///
/// ```rust
/// use bigmap_fuzzer::CrashWalk;
/// use bigmap_target::ExecOutcome;
///
/// let mut cw = CrashWalk::new();
/// let crash = ExecOutcome::Crash { site: 3, stack: vec![1, 2] };
/// assert!(cw.observe(&crash), "first sighting is unique");
/// assert!(!cw.observe(&crash), "repeat is a duplicate");
/// assert_eq!(cw.unique_count(), 1);
/// ```
#[derive(Debug, Default)]
pub struct CrashWalk {
    seen: HashSet<u32>,
    /// First-sighting order of the buckets in `seen`. Keeping this makes
    /// [`CrashWalk::buckets`] align index-for-index with the campaign's
    /// crash-input list (both append on a unique sighting), which the
    /// output directory and the checkpoint format rely on.
    order: Vec<u32>,
}

impl CrashWalk {
    /// Creates an empty deduplicator.
    pub fn new() -> Self {
        CrashWalk::default()
    }

    /// Rebuilds a deduplicator from previously captured bucket hashes
    /// (checkpoint resume), preserving their order. Duplicates collapse.
    pub fn restore(buckets: &[u32]) -> Self {
        let mut cw = CrashWalk::new();
        for &bucket in buckets {
            if cw.seen.insert(bucket) {
                cw.order.push(bucket);
            }
        }
        cw
    }

    /// Computes the dedup hash of a crash: CRC32 over the call-site chain
    /// followed by the faulting site.
    pub fn bucket_hash(site: usize, stack: &[usize]) -> u32 {
        let mut h = Crc32::new();
        for &frame in stack {
            h.update(&(frame as u64).to_le_bytes());
        }
        h.update(&(site as u64).to_le_bytes());
        // Suffix the stack depth so (stack=[3], site=4) never collides
        // structurally with (stack=[3,4], site=4) shifted variants.
        h.update(&(stack.len() as u32).to_le_bytes());
        h.finalize()
    }

    /// Records a crash outcome; returns `true` iff it is a new unique
    /// crash. Non-crash outcomes return `false` and record nothing.
    pub fn observe(&mut self, outcome: &ExecOutcome) -> bool {
        match outcome {
            ExecOutcome::Crash { site, stack } => {
                let bucket = Self::bucket_hash(*site, stack);
                let fresh = self.seen.insert(bucket);
                if fresh {
                    self.order.push(bucket);
                }
                fresh
            }
            _ => false,
        }
    }

    /// Number of unique crashes observed so far.
    pub fn unique_count(&self) -> usize {
        self.seen.len()
    }

    /// The bucket hashes observed so far, in first-sighting order — index
    /// `i` is the bucket of the `i`-th unique crash input the campaign
    /// collected. Also used for cross-instance fleet-wide deduplication:
    /// the same (stack, site) hashes identically in every instance.
    pub fn buckets(&self) -> Vec<u32> {
        self.order.clone()
    }

    /// Merges another deduplicator's sightings into this one (parallel
    /// campaign aggregation).
    pub fn merge(&mut self, other: &CrashWalk) {
        for &bucket in &other.order {
            if self.seen.insert(bucket) {
                self.order.push(bucket);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crash(site: usize, stack: &[usize]) -> ExecOutcome {
        ExecOutcome::Crash {
            site,
            stack: stack.to_vec(),
        }
    }

    #[test]
    fn same_site_different_stack_is_unique() {
        let mut cw = CrashWalk::new();
        assert!(cw.observe(&crash(1, &[10, 20])));
        assert!(cw.observe(&crash(1, &[10, 30])));
        assert_eq!(cw.unique_count(), 2);
    }

    #[test]
    fn different_site_same_stack_is_unique() {
        let mut cw = CrashWalk::new();
        assert!(cw.observe(&crash(1, &[10])));
        assert!(cw.observe(&crash(2, &[10])));
        assert_eq!(cw.unique_count(), 2);
    }

    #[test]
    fn non_crashes_are_ignored() {
        let mut cw = CrashWalk::new();
        assert!(!cw.observe(&ExecOutcome::Ok));
        assert!(!cw.observe(&ExecOutcome::Hang));
        assert_eq!(cw.unique_count(), 0);
    }

    #[test]
    fn stack_site_boundary_does_not_confuse() {
        // (stack=[3], site=4) vs (stack=[3,4], site=0) — distinct buckets.
        let a = CrashWalk::bucket_hash(4, &[3]);
        let b = CrashWalk::bucket_hash(0, &[3, 4]);
        assert_ne!(a, b);
    }

    #[test]
    fn merge_unions_sightings() {
        let mut a = CrashWalk::new();
        a.observe(&crash(1, &[]));
        a.observe(&crash(2, &[]));
        let mut b = CrashWalk::new();
        b.observe(&crash(2, &[]));
        b.observe(&crash(3, &[]));
        a.merge(&b);
        assert_eq!(a.unique_count(), 3);
    }

    #[test]
    fn buckets_keep_first_sighting_order() {
        let mut cw = CrashWalk::new();
        cw.observe(&crash(5, &[1]));
        cw.observe(&crash(2, &[]));
        cw.observe(&crash(5, &[1])); // duplicate: no new bucket
        cw.observe(&crash(9, &[3, 4]));
        let buckets = cw.buckets();
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0], CrashWalk::bucket_hash(5, &[1]));
        assert_eq!(buckets[1], CrashWalk::bucket_hash(2, &[]));
        assert_eq!(buckets[2], CrashWalk::bucket_hash(9, &[3, 4]));
    }

    #[test]
    fn restore_round_trips_buckets() {
        let mut cw = CrashWalk::new();
        cw.observe(&crash(1, &[7]));
        cw.observe(&crash(2, &[8]));
        let restored = CrashWalk::restore(&cw.buckets());
        assert_eq!(restored.buckets(), cw.buckets());
        assert_eq!(restored.unique_count(), 2);
        // A restored walker still deduplicates against old sightings.
        let mut restored = restored;
        assert!(!restored.observe(&crash(1, &[7])));
        assert!(restored.observe(&crash(3, &[])));
    }

    #[test]
    fn empty_stack_crash_handled() {
        let mut cw = CrashWalk::new();
        assert!(cw.observe(&crash(0, &[])));
        assert!(!cw.observe(&crash(0, &[])));
    }

    #[test]
    fn hang_outcomes_are_never_bucketed() {
        // Hangs are tracked by the campaign's hang corpus, not crash
        // triage: feeding them to the walker must be a no-op, before,
        // between and after real crashes.
        let mut cw = CrashWalk::new();
        assert!(!cw.observe(&ExecOutcome::Hang));
        assert_eq!(cw.unique_count(), 0);
        assert!(cw.buckets().is_empty());

        assert!(cw.observe(&crash(3, &[1, 2])));
        assert!(!cw.observe(&ExecOutcome::Hang));
        assert!(!cw.observe(&ExecOutcome::Ok));
        assert_eq!(cw.unique_count(), 1);
        assert_eq!(cw.buckets(), vec![CrashWalk::bucket_hash(3, &[1, 2])]);
    }
}
