//! Corpus minimization (the `afl-cmin` analog).
//!
//! Given an output corpus, select a small subset that preserves the
//! corpus's structural edge coverage. Used between campaigns (the paper's
//! parallel sessions periodically cross-pollinate corpora; shipping a
//! minimized corpus keeps the sync traffic and the secondaries' dry-run
//! cost down) and for archiving results.
//!
//! Algorithm: greedy weighted set cover, AFL-style — smaller/faster inputs
//! are preferred as covers for each edge; then a greedy pass keeps an
//! input only if it covers an edge nothing kept so far covers.

use std::collections::{HashMap, HashSet};

use bigmap_target::{Interpreter, TraceSink};

struct EdgeCollector {
    edges: HashSet<(usize, usize)>,
    prev: Option<usize>,
}

impl TraceSink for EdgeCollector {
    fn on_block(&mut self, global_block: usize) {
        if let Some(prev) = self.prev {
            self.edges.insert((prev, global_block));
        }
        self.prev = Some(global_block);
    }
    fn on_call(&mut self, _c: usize) {}
    fn on_return(&mut self) {}
}

/// Result of a minimization pass.
#[derive(Debug, Clone)]
pub struct MinimizedCorpus {
    /// The kept inputs (indices into the original corpus, ascending).
    pub kept: Vec<usize>,
    /// Structural edges covered by the original corpus.
    pub edges_before: usize,
    /// Structural edges covered by the kept subset (always equal to
    /// `edges_before` — the reduction is lossless).
    pub edges_after: usize,
}

impl MinimizedCorpus {
    /// Materializes the kept inputs from the original corpus.
    pub fn extract(&self, corpus: &[Vec<u8>]) -> Vec<Vec<u8>> {
        self.kept.iter().map(|&i| corpus[i].clone()).collect()
    }
}

/// Minimizes `corpus` against `interpreter`'s target: returns a subset
/// covering exactly the same structural edges.
///
/// # Examples
///
/// ```rust
/// use bigmap_fuzzer::minimize_corpus;
/// use bigmap_target::{Interpreter, ProgramBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = ProgramBuilder::new("t").gate(0, b'A', false).build()?;
/// let interp = Interpreter::new(&program);
/// // Two identical inputs and one distinct one: minimization keeps two.
/// let corpus = vec![b"Ax".to_vec(), b"Ax".to_vec(), b"zz".to_vec()];
/// let min = minimize_corpus(&interp, &corpus);
/// assert_eq!(min.kept.len(), 2);
/// assert_eq!(min.edges_before, min.edges_after);
/// # Ok(())
/// # }
/// ```
pub fn minimize_corpus(interpreter: &Interpreter<'_>, corpus: &[Vec<u8>]) -> MinimizedCorpus {
    // Pass 1: edge sets per input.
    let mut per_input: Vec<HashSet<(usize, usize)>> = Vec::with_capacity(corpus.len());
    let mut all_edges: HashSet<(usize, usize)> = HashSet::new();
    for input in corpus {
        let mut collector = EdgeCollector {
            edges: HashSet::new(),
            prev: None,
        };
        let _ = interpreter.run(input, &mut collector);
        all_edges.extend(collector.edges.iter().copied());
        per_input.push(collector.edges);
    }

    // Pass 2: best (smallest) candidate per edge.
    let mut best_for_edge: HashMap<(usize, usize), usize> = HashMap::new();
    for (i, edges) in per_input.iter().enumerate() {
        for &e in edges {
            match best_for_edge.get(&e) {
                Some(&b) if corpus[b].len() <= corpus[i].len() => {}
                _ => {
                    best_for_edge.insert(e, i);
                }
            }
        }
    }

    // Pass 3: greedy keep — an input survives if it is the designated best
    // cover for some still-uncovered edge.
    let mut covered: HashSet<(usize, usize)> = HashSet::new();
    let mut kept: Vec<usize> = Vec::new();
    // Visit candidates smallest-first (AFL-cmin's preference).
    let mut order: Vec<usize> = (0..corpus.len()).collect();
    order.sort_by_key(|&i| corpus[i].len());
    for i in order {
        let contributes = per_input[i]
            .iter()
            .any(|e| best_for_edge.get(e) == Some(&i) && !covered.contains(e));
        if contributes {
            covered.extend(per_input[i].iter().copied());
            kept.push(i);
        }
    }
    kept.sort_unstable();

    // Lossless by construction: every edge's best cover was visited.
    let edges_after: HashSet<_> = kept
        .iter()
        .flat_map(|&i| per_input[i].iter().copied())
        .collect();
    debug_assert_eq!(edges_after.len(), all_edges.len());

    MinimizedCorpus {
        kept,
        edges_before: all_edges.len(),
        edges_after: edges_after.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigmap_target::{GeneratorConfig, ProgramBuilder};

    #[test]
    fn empty_corpus() {
        let program = ProgramBuilder::new("t").build().unwrap();
        let interp = Interpreter::new(&program);
        let min = minimize_corpus(&interp, &[]);
        assert!(min.kept.is_empty());
        assert_eq!(min.edges_before, 0);
    }

    #[test]
    fn duplicates_collapse_to_one() {
        let program = ProgramBuilder::new("t")
            .gate(0, b'A', false)
            .build()
            .unwrap();
        let interp = Interpreter::new(&program);
        let corpus = vec![b"AA".to_vec(); 10];
        let min = minimize_corpus(&interp, &corpus);
        assert_eq!(min.kept.len(), 1);
    }

    #[test]
    fn prefers_smaller_covers() {
        let program = ProgramBuilder::new("t")
            .gate(0, b'A', false)
            .build()
            .unwrap();
        let interp = Interpreter::new(&program);
        // Same coverage, different sizes: the small one must be kept.
        let corpus = vec![vec![b'A'; 100], vec![b'A'; 2]];
        let min = minimize_corpus(&interp, &corpus);
        assert_eq!(min.kept, vec![1]);
    }

    #[test]
    fn coverage_is_preserved_on_generated_targets() {
        let program = GeneratorConfig {
            seed: 21,
            ..Default::default()
        }
        .generate();
        let interp = Interpreter::new(&program);
        let corpus: Vec<Vec<u8>> = (0..40u8).map(|i| vec![i; 48]).collect();
        let min = minimize_corpus(&interp, &corpus);
        assert_eq!(min.edges_before, min.edges_after, "minimization lost edges");
        assert!(min.kept.len() < corpus.len(), "nothing was minimized");
        assert!(!min.kept.is_empty());
        // Extraction matches indices.
        let extracted = min.extract(&corpus);
        assert_eq!(extracted.len(), min.kept.len());
    }

    #[test]
    fn disjoint_coverage_keeps_all() {
        let program = ProgramBuilder::new("t")
            .gate(0, b'A', false)
            .gate(1, b'B', false)
            .build()
            .unwrap();
        let interp = Interpreter::new(&program);
        // Each input opens a different gate; both needed.
        let corpus = vec![b"A?".to_vec(), b"?B".to_vec()];
        let min = minimize_corpus(&interp, &corpus);
        assert_eq!(min.kept.len(), 2);
    }
}
