//! The seed queue: pool, scoring, favored-entry culling, scheduling.
//!
//! Mirrors AFL's queue semantics at the level the paper relies on (§II-A1):
//! seeds are prioritized by execution speed and input length ("short input
//! files are preferred"), and a *favored* subset is maintained by culling —
//! for every coverage slot, the fastest/smallest entry covering it is
//! marked favored and scheduled far more often.
//!
//! "Speed" is measured in deterministic interpreter *steps*, not wall
//! time: step counts are a pure function of (program, input), so culling —
//! and therefore the whole campaign trajectory — is identical across
//! re-runs, hosts and execution modes. Wall time is still carried on each
//! entry for reporting, but it never influences scheduling.

use std::collections::HashMap;
use std::time::Duration;

/// One queued seed.
#[derive(Debug, Clone)]
pub struct QueueEntry {
    /// Stable entry ID (insertion order).
    pub id: usize,
    /// The test-case bytes.
    pub input: Vec<u8>,
    /// Measured wall-clock execution time of this seed (reporting only;
    /// scheduling uses `steps`).
    pub exec_time: Duration,
    /// Deterministic interpreter steps (executed blocks) the seed's
    /// admission run consumed — the speed term of [`QueueEntry::score`].
    pub steps: u64,
    /// Hash of the classified coverage map when this entry was admitted.
    pub bitmap_hash: u32,
    /// Number of non-zero coverage slots the entry exercised.
    pub coverage_slots: usize,
    /// Whether culling currently marks this entry favored.
    pub favored: bool,
    /// How many times the entry has been picked for fuzzing.
    pub fuzzed_rounds: usize,
    /// Derivation depth: 0 for initial seeds, parent depth + 1 for entries
    /// minted from a scheduled seed's mutants. Feeds AFL's
    /// `calculate_score` depth bonus.
    pub depth: usize,
}

impl QueueEntry {
    /// AFL-style score: lower is better (fast + small wins slots during
    /// culling). Computed from deterministic step counts so identical
    /// campaigns cull identically regardless of wall-clock noise.
    pub fn score(&self) -> u128 {
        u128::from(self.steps.max(1)) * self.input.len().max(1) as u128
    }
}

/// The seed pool.
///
/// # Examples
///
/// ```rust
/// use bigmap_fuzzer::Queue;
/// use std::time::Duration;
///
/// let mut queue = Queue::new();
/// let id = queue.add(b"seed".to_vec(), Duration::from_micros(50), 120, 0xABCD, &[0, 7]);
/// assert_eq!(queue.len(), 1);
/// assert!(queue.entry(id).favored, "first claimant of a slot is favored");
/// ```
#[derive(Debug, Default)]
pub struct Queue {
    entries: Vec<QueueEntry>,
    /// For each coverage slot: (entry id, score) of the current best
    /// claimant — AFL's `top_rated`.
    top_rated: HashMap<usize, (usize, u128)>,
    cursor: usize,
}

impl Queue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Queue::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Immutable access to an entry.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn entry(&self, id: usize) -> &QueueEntry {
        &self.entries[id]
    }

    /// All entries (corpus export, sync, replay).
    pub fn entries(&self) -> &[QueueEntry] {
        &self.entries
    }

    /// Admits a new interesting test case. `covered_slots` are the non-zero
    /// slots of its classified map (scheme-local indices); they drive
    /// favored-entry culling. Returns the new entry's ID.
    pub fn add(
        &mut self,
        input: Vec<u8>,
        exec_time: Duration,
        steps: u64,
        bitmap_hash: u32,
        covered_slots: &[usize],
    ) -> usize {
        self.add_with_depth(input, exec_time, steps, bitmap_hash, covered_slots, 0)
    }

    /// [`Queue::add`] with an explicit derivation depth (0 for initial
    /// seeds, parent depth + 1 for mutated finds). Depth feeds the
    /// campaign's AFL-style energy score: entries far down a derivation
    /// chain — e.g. the frontier of a laf-intel compare ladder — get a
    /// havoc-energy bonus.
    pub fn add_with_depth(
        &mut self,
        input: Vec<u8>,
        exec_time: Duration,
        steps: u64,
        bitmap_hash: u32,
        covered_slots: &[usize],
        depth: usize,
    ) -> usize {
        let id = self.entries.len();
        let entry = QueueEntry {
            id,
            input,
            exec_time,
            steps,
            bitmap_hash,
            coverage_slots: covered_slots.len(),
            favored: false,
            fuzzed_rounds: 0,
            depth,
        };
        let score = entry.score();
        self.entries.push(entry);

        // Claim any slot where this entry beats the incumbent.
        let mut claimed = false;
        for &slot in covered_slots {
            match self.top_rated.get(&slot) {
                Some(&(_, best)) if best <= score => {}
                _ => {
                    self.top_rated.insert(slot, (id, score));
                    claimed = true;
                }
            }
        }
        if claimed {
            self.recull();
        }
        id
    }

    /// Recomputes the favored flags from `top_rated` (AFL's `cull_queue`).
    fn recull(&mut self) {
        for e in &mut self.entries {
            e.favored = false;
        }
        for &(id, _) in self.top_rated.values() {
            self.entries[id].favored = true;
        }
    }

    /// Overwrites an entry's fuzzed-round count (checkpoint resume: the
    /// rebuilt queue must remember which entries were already fuzzed, or
    /// the pending-favored skip policy and the deterministic stage would
    /// replay work the checkpointed campaign had finished).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn set_fuzzed_rounds(&mut self, id: usize, rounds: usize) {
        self.entries[id].fuzzed_rounds = rounds;
    }

    /// The round-robin scheduling position (entry index the next
    /// [`Queue::schedule`] call starts from, modulo the queue length).
    /// Part of the checkpointable scheduling state: a resumed campaign
    /// that restarted the walk at entry 0 would schedule different
    /// parents than the uninterrupted run and the trajectories would
    /// diverge.
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Restores the round-robin position captured by [`Queue::cursor`]
    /// (checkpoint resume).
    pub fn set_cursor(&mut self, cursor: usize) {
        self.cursor = cursor;
    }

    /// Number of favored entries.
    pub fn favored_count(&self) -> usize {
        self.entries.iter().filter(|e| e.favored).count()
    }

    /// Picks the next seed to fuzz: round-robin over the queue with AFL's
    /// `fuzz_one` skip policy. While a *pending* favored entry (favored,
    /// never fuzzed) exists, everything else — including already-fuzzed
    /// favored entries — is skipped with 99% probability (AFL's
    /// `SKIP_TO_NEW_PROB`), which rushes mutation energy to fresh coverage
    /// instead of re-grinding the whole corpus. Once every favored entry
    /// has been fuzzed, favored entries are always kept and non-favored
    /// ones are skipped with 75% (never fuzzed) or 95% (already fuzzed)
    /// probability (`SKIP_NFAV_NEW_PROB` / `SKIP_NFAV_OLD_PROB`). `coin`
    /// supplies randomness in `[0, 1)`.
    ///
    /// Returns `None` only for an empty queue.
    pub fn schedule(&mut self, mut coin: impl FnMut() -> f64) -> Option<usize> {
        if self.entries.is_empty() {
            return None;
        }
        let pending_favored = self
            .entries
            .iter()
            .any(|e| e.favored && e.fuzzed_rounds == 0);
        for _ in 0..self.entries.len() * 2 {
            let id = self.cursor % self.entries.len();
            self.cursor = self.cursor.wrapping_add(1);
            let entry = &self.entries[id];
            let keep = if pending_favored {
                (entry.favored && entry.fuzzed_rounds == 0) || coin() < 0.01
            } else if entry.favored {
                true
            } else if entry.fuzzed_rounds == 0 {
                coin() < 0.25
            } else {
                coin() < 0.05
            };
            if keep {
                self.entries[id].fuzzed_rounds += 1;
                return Some(id);
            }
        }
        // Everyone skipped (unlucky coins): just take the next one.
        let id = self.cursor % self.entries.len();
        self.cursor = self.cursor.wrapping_add(1);
        self.entries[id].fuzzed_rounds += 1;
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micros(us: u64) -> Duration {
        Duration::from_micros(us)
    }

    #[test]
    fn first_entry_claims_all_its_slots() {
        let mut q = Queue::new();
        let id = q.add(vec![1, 2, 3], micros(10), 10, 0, &[5, 9, 11]);
        assert!(q.entry(id).favored);
        assert_eq!(q.favored_count(), 1);
        assert_eq!(q.entry(id).coverage_slots, 3);
    }

    #[test]
    fn faster_smaller_entry_steals_slots() {
        let mut q = Queue::new();
        let slow = q.add(vec![0; 100], micros(1000), 1000, 0, &[1, 2]);
        assert!(q.entry(slow).favored);
        let fast = q.add(vec![0; 4], micros(10), 10, 0, &[1, 2]);
        assert!(q.entry(fast).favored);
        assert!(!q.entry(slow).favored, "slow entry must lose both slots");
    }

    #[test]
    fn incumbent_with_better_score_keeps_slot() {
        let mut q = Queue::new();
        let fast = q.add(vec![0; 4], micros(10), 10, 0, &[1]);
        let slow = q.add(vec![0; 100], micros(1000), 1000, 0, &[1]);
        assert!(q.entry(fast).favored);
        assert!(!q.entry(slow).favored);
    }

    #[test]
    fn disjoint_coverage_keeps_both_favored() {
        let mut q = Queue::new();
        let a = q.add(vec![0; 10], micros(100), 100, 0, &[1]);
        let b = q.add(vec![0; 10], micros(100), 100, 0, &[2]);
        assert!(q.entry(a).favored && q.entry(b).favored);
        assert_eq!(q.favored_count(), 2);
    }

    #[test]
    fn schedule_prefers_favored() {
        let mut q = Queue::new();
        q.add(vec![0; 4], micros(10), 10, 0, &[1]); // favored
        q.add(vec![0; 100], micros(9999), 9999, 0, &[1]); // not favored
                                                          // Deterministic "always skip non-favored" coin:
        let mut picks = [0usize; 2];
        for _ in 0..100 {
            let id = q.schedule(|| 0.9).unwrap();
            picks[id] += 1;
        }
        assert_eq!(picks[1], 0, "non-favored must be skipped with bad coins");
        assert_eq!(picks[0], 100);
    }

    #[test]
    fn schedule_eventually_picks_non_favored() {
        let mut q = Queue::new();
        q.add(vec![0; 4], micros(10), 10, 0, &[1]);
        q.add(vec![0; 100], micros(9999), 9999, 0, &[1]);
        let mut picked_second = false;
        for _ in 0..100 {
            if q.schedule(|| 0.0).unwrap() == 1 {
                picked_second = true;
            }
        }
        assert!(picked_second, "generous coin must admit non-favored seeds");
    }

    #[test]
    fn schedule_empty_queue_is_none() {
        let mut q = Queue::new();
        assert_eq!(q.schedule(|| 0.5), None);
    }

    #[test]
    fn fuzzed_rounds_increment() {
        let mut q = Queue::new();
        let id = q.add(vec![1], micros(1), 1, 0, &[0]);
        for _ in 0..5 {
            q.schedule(|| 0.5);
        }
        assert_eq!(q.entry(id).fuzzed_rounds, 5);
    }

    #[test]
    fn score_monotone_in_steps_and_len() {
        let a = QueueEntry {
            id: 0,
            input: vec![0; 10],
            exec_time: micros(10),
            steps: 10,
            bitmap_hash: 0,
            coverage_slots: 0,
            favored: false,
            fuzzed_rounds: 0,
            depth: 0,
        };
        let mut slower = a.clone();
        slower.steps = 100;
        let mut bigger = a.clone();
        bigger.input = vec![0; 100];
        assert!(a.score() < slower.score());
        assert!(a.score() < bigger.score());
        // Wall time is reporting-only: it must not move the score.
        let mut late = a.clone();
        late.exec_time = micros(10_000);
        assert_eq!(a.score(), late.score());
    }
}
