//! Deterministic fault injection for degradation testing.
//!
//! A fault-tolerant runtime is only trustworthy if its failure paths are
//! exercised, and failure paths are only debuggable if the failures are
//! reproducible. This module plants *injection points* at the few places
//! where the campaign runtime touches the outside world — target
//! execution, checkpoint writes, worker threads — and drives them from a
//! precomputed, seeded schedule: fault N of site S on instance I either
//! fires on a given schedule run or it never does, independent of timing,
//! thread interleaving, or retry counts.
//!
//! The discipline mirrors the telemetry layer: the module is compiled
//! unconditionally, and a campaign without faults pays exactly one
//! predicted branch per injection point (`Option::is_none` on a field
//! that never changes), so production builds carry no feature-flag
//! matrix.
//!
//! * [`FaultSite`] — the enumerable injection points.
//! * [`FaultPlan`] — a schedule mapping `(site, instance)` to the set of
//!   *ordinals* (0-based occurrence counts) at which the fault fires;
//!   built explicitly or expanded from a seed.
//! * [`InstanceFaults`] — one instance's live view of a shared plan; its
//!   ordinal counters are atomics shared across supervisor restarts (via
//!   `Arc`), so a fault scheduled at ordinal 7 fires exactly once even if
//!   the instance is torn down and rebuilt in between.
//!
//! # Examples
//!
//! ```rust
//! use bigmap_fuzzer::faults::{FaultPlan, FaultSite, InstanceFaults};
//! use std::sync::Arc;
//!
//! let plan = FaultPlan::new().inject(FaultSite::TargetCrash, 0, 2);
//! let faults = InstanceFaults::new(Arc::new(plan), 0);
//! // Ordinals 0 and 1 pass, ordinal 2 fires, later ordinals pass again.
//! assert!(!faults.fire(FaultSite::TargetCrash));
//! assert!(!faults.fire(FaultSite::TargetCrash));
//! assert!(faults.fire(FaultSite::TargetCrash));
//! assert!(!faults.fire(FaultSite::TargetCrash));
//! ```

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::{rngs::SmallRng, Rng, SeedableRng};

/// The places the campaign runtime can be made to fail on purpose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Force one target execution to report a crash (a "crash storm"
    /// when scheduled densely).
    TargetCrash,
    /// Force one target execution to report a hang.
    TargetHang,
    /// Fail one checkpoint write with an I/O error.
    CheckpointWrite,
    /// Panic the worker thread at its next sync boundary.
    WorkerPanic,
    /// Publish one checkpoint generation with only a prefix of its bytes
    /// and no fsync — the classic torn write: rename succeeds, the file
    /// looks real, the tail is gone. The writer is *not* told.
    TornWrite,
    /// Drop the tail of one checkpoint read before parsing, as if the
    /// kernel returned fewer bytes than the file claims to hold.
    ShortRead,
    /// Flip one bit in the middle of a just-published checkpoint file,
    /// simulating silent media corruption.
    BitFlip,
    /// Stall the worker's sync hook indefinitely — the process stays
    /// alive and heartbeats keep flowing, but no progress is made until
    /// the fleet's liveness deadline kills it.
    PipeStall,
    /// Fail one durable write with an `ENOSPC`-style storage-full error.
    DiskFull,
}

impl FaultSite {
    /// Every site, in slot order.
    pub const ALL: [FaultSite; 9] = [
        FaultSite::TargetCrash,
        FaultSite::TargetHang,
        FaultSite::CheckpointWrite,
        FaultSite::WorkerPanic,
        FaultSite::TornWrite,
        FaultSite::ShortRead,
        FaultSite::BitFlip,
        FaultSite::PipeStall,
        FaultSite::DiskFull,
    ];

    /// Number of sites (and length of every per-site counter array).
    pub const COUNT: usize = FaultSite::ALL.len();

    #[inline]
    fn slot(self) -> usize {
        match self {
            FaultSite::TargetCrash => 0,
            FaultSite::TargetHang => 1,
            FaultSite::CheckpointWrite => 2,
            FaultSite::WorkerPanic => 3,
            FaultSite::TornWrite => 4,
            FaultSite::ShortRead => 5,
            FaultSite::BitFlip => 6,
            FaultSite::PipeStall => 7,
            FaultSite::DiskFull => 8,
        }
    }

    /// Human-readable site name (stable; used in fault-plan dumps).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::TargetCrash => "target_crash",
            FaultSite::TargetHang => "target_hang",
            FaultSite::CheckpointWrite => "checkpoint_write",
            FaultSite::WorkerPanic => "worker_panic",
            FaultSite::TornWrite => "torn_write",
            FaultSite::ShortRead => "short_read",
            FaultSite::BitFlip => "bit_flip",
            FaultSite::PipeStall => "pipe_stall",
            FaultSite::DiskFull => "disk_full",
        }
    }
}

/// A deterministic fault schedule: for each `(site, instance)` pair, the
/// set of ordinals (how many times that site has been *reached* on that
/// instance) at which the fault fires.
///
/// Plans are immutable once shared; build one up front with
/// [`FaultPlan::inject`] / [`FaultPlan::inject_seeded`] and hand it to
/// the fleet behind an `Arc`.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    schedule: HashMap<(FaultSite, usize), BTreeSet<u64>>,
}

impl FaultPlan {
    /// An empty plan (no faults ever fire).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules `site` to fire on `instance` at occurrence `ordinal`
    /// (0-based). Chainable.
    pub fn inject(mut self, site: FaultSite, instance: usize, ordinal: u64) -> Self {
        self.schedule
            .entry((site, instance))
            .or_default()
            .insert(ordinal);
        self
    }

    /// Schedules `count` firings of `site` on `instance` at seeded
    /// pseudo-random ordinals within `0..window` — the storm generator
    /// for degradation tests. The same `(seed, site, instance, count,
    /// window)` always yields the same ordinals. Chainable.
    ///
    /// `count` is capped at `window` (can't fire more often than the
    /// site is reached).
    pub fn inject_seeded(
        mut self,
        seed: u64,
        site: FaultSite,
        instance: usize,
        count: u64,
        window: u64,
    ) -> Self {
        if window == 0 {
            return self;
        }
        // Mix the site and instance into the stream so the same seed
        // produces uncorrelated schedules per injection point.
        let stream = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((site.slot() as u64) << 32)
            .wrapping_add(instance as u64);
        let mut rng = SmallRng::seed_from_u64(stream);
        let entry = self.schedule.entry((site, instance)).or_default();
        let target = entry.len() + count.min(window) as usize;
        // BTreeSet dedup means collisions just re-draw; bounded because
        // count ≤ window.
        while entry.len() < target.min(window as usize) {
            entry.insert(rng.gen_range(0..window));
        }
        self
    }

    /// True if `site` on `instance` fires at `ordinal`.
    pub fn fires(&self, site: FaultSite, instance: usize, ordinal: u64) -> bool {
        self.schedule
            .get(&(site, instance))
            .is_some_and(|ordinals| ordinals.contains(&ordinal))
    }

    /// Total scheduled firings for `site` on `instance`.
    pub fn count(&self, site: FaultSite, instance: usize) -> usize {
        self.schedule
            .get(&(site, instance))
            .map_or(0, BTreeSet::len)
    }

    /// True if no fault is scheduled anywhere.
    pub fn is_empty(&self) -> bool {
        self.schedule.values().all(BTreeSet::is_empty)
    }
}

/// One fleet instance's live handle on a shared [`FaultPlan`].
///
/// Holds the per-site ordinal counters as atomics so the handle can be
/// shared (`Arc`) between a campaign and the supervisor that restarts
/// it: the ordinal stream continues across restarts instead of
/// replaying, which is what makes "fire the Nth checkpoint write"
/// mean the Nth *ever*, not the Nth since the last respawn.
#[derive(Debug)]
pub struct InstanceFaults {
    plan: Arc<FaultPlan>,
    instance: usize,
    ordinals: [AtomicU64; FaultSite::COUNT],
}

impl InstanceFaults {
    /// Creates the handle for `instance` over `plan`.
    pub fn new(plan: Arc<FaultPlan>, instance: usize) -> Self {
        InstanceFaults {
            plan,
            instance,
            ordinals: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The fleet instance this handle injects into.
    pub fn instance(&self) -> usize {
        self.instance
    }

    /// Advances `site`'s ordinal counter and reports whether the plan
    /// fires at the ordinal just consumed. Each call consumes exactly
    /// one ordinal, fired or not.
    #[inline]
    pub fn fire(&self, site: FaultSite) -> bool {
        let ordinal = self.ordinals[site.slot()].fetch_add(1, Ordering::Relaxed);
        self.plan.fires(site, self.instance, ordinal)
    }

    /// Current ordinal (occurrences so far) of `site` on this instance.
    pub fn ordinal(&self, site: FaultSite) -> u64 {
        self.ordinals[site.slot()].load(Ordering::Relaxed)
    }

    /// The shared plan.
    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let faults = InstanceFaults::new(Arc::new(FaultPlan::new()), 0);
        for _ in 0..1000 {
            for site in FaultSite::ALL {
                assert!(!faults.fire(site));
            }
        }
    }

    #[test]
    fn explicit_ordinals_fire_exactly_once() {
        let plan = FaultPlan::new()
            .inject(FaultSite::CheckpointWrite, 1, 0)
            .inject(FaultSite::CheckpointWrite, 1, 3);
        let faults = InstanceFaults::new(Arc::new(plan), 1);
        let fired: Vec<bool> = (0..6)
            .map(|_| faults.fire(FaultSite::CheckpointWrite))
            .collect();
        assert_eq!(fired, [true, false, false, true, false, false]);
    }

    #[test]
    fn instances_are_independent() {
        let plan = Arc::new(FaultPlan::new().inject(FaultSite::WorkerPanic, 0, 0));
        let zero = InstanceFaults::new(Arc::clone(&plan), 0);
        let one = InstanceFaults::new(plan, 1);
        assert!(zero.fire(FaultSite::WorkerPanic));
        assert!(!one.fire(FaultSite::WorkerPanic));
    }

    #[test]
    fn sites_have_independent_ordinals() {
        let plan = Arc::new(
            FaultPlan::new()
                .inject(FaultSite::TargetCrash, 0, 1)
                .inject(FaultSite::TargetHang, 0, 0),
        );
        let faults = InstanceFaults::new(plan, 0);
        assert!(faults.fire(FaultSite::TargetHang));
        assert!(!faults.fire(FaultSite::TargetCrash));
        assert!(faults.fire(FaultSite::TargetCrash));
        assert_eq!(faults.ordinal(FaultSite::TargetCrash), 2);
        assert_eq!(faults.ordinal(FaultSite::TargetHang), 1);
    }

    #[test]
    fn seeded_schedules_are_reproducible() {
        let a = FaultPlan::new().inject_seeded(42, FaultSite::TargetCrash, 0, 10, 500);
        let b = FaultPlan::new().inject_seeded(42, FaultSite::TargetCrash, 0, 10, 500);
        assert_eq!(a.count(FaultSite::TargetCrash, 0), 10);
        for ordinal in 0..500 {
            assert_eq!(
                a.fires(FaultSite::TargetCrash, 0, ordinal),
                b.fires(FaultSite::TargetCrash, 0, ordinal),
            );
        }
        // A different seed produces a different schedule (overwhelmingly).
        let c = FaultPlan::new().inject_seeded(43, FaultSite::TargetCrash, 0, 10, 500);
        let differs = (0..500).any(|ordinal| {
            a.fires(FaultSite::TargetCrash, 0, ordinal)
                != c.fires(FaultSite::TargetCrash, 0, ordinal)
        });
        assert!(differs);
    }

    #[test]
    fn seeded_count_capped_at_window() {
        let plan = FaultPlan::new().inject_seeded(7, FaultSite::TargetHang, 2, 100, 8);
        assert_eq!(plan.count(FaultSite::TargetHang, 2), 8);
        // All 8 ordinals fire.
        for ordinal in 0..8 {
            assert!(plan.fires(FaultSite::TargetHang, 2, ordinal));
        }
        // Zero window is a no-op.
        let empty = FaultPlan::new().inject_seeded(7, FaultSite::TargetHang, 2, 5, 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn slots_are_dense_and_names_unique() {
        // `ALL`, `slot()`, and the ordinal-counter array length are
        // coupled; this pins the invariant as sites are added.
        for (index, site) in FaultSite::ALL.into_iter().enumerate() {
            assert_eq!(site.slot(), index);
        }
        let names: BTreeSet<&str> = FaultSite::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), FaultSite::COUNT);
    }

    #[test]
    fn io_chaos_sites_fire_independently() {
        let plan = Arc::new(
            FaultPlan::new()
                .inject(FaultSite::TornWrite, 0, 0)
                .inject(FaultSite::BitFlip, 0, 1)
                .inject(FaultSite::DiskFull, 0, 0),
        );
        let faults = InstanceFaults::new(plan, 0);
        assert!(faults.fire(FaultSite::TornWrite));
        assert!(!faults.fire(FaultSite::BitFlip));
        assert!(faults.fire(FaultSite::BitFlip));
        assert!(faults.fire(FaultSite::DiskFull));
        assert!(!faults.fire(FaultSite::ShortRead));
        assert!(!faults.fire(FaultSite::PipeStall));
    }

    #[test]
    fn shared_handle_ordinals_survive_clone_of_arc() {
        // The supervisor shares the *handle* across restarts; the ordinal
        // stream must continue rather than restart.
        let plan = Arc::new(FaultPlan::new().inject(FaultSite::TargetCrash, 0, 2));
        let faults = Arc::new(InstanceFaults::new(plan, 0));
        let first_epoch = Arc::clone(&faults);
        assert!(!first_epoch.fire(FaultSite::TargetCrash)); // ordinal 0
        drop(first_epoch); // "instance died"
        let second_epoch = Arc::clone(&faults);
        assert!(!second_epoch.fire(FaultSite::TargetCrash)); // ordinal 1
        assert!(second_epoch.fire(FaultSite::TargetCrash)); // ordinal 2 fires
    }
}
