//! Bias-free coverage measurement by corpus replay.
//!
//! The paper measures edge coverage by collecting the fuzzers' output
//! corpora and replaying them against "a bias-free independent coverage
//! build" (§V-A3) — coverage must not be measured through the same
//! (collision-prone) bitmap the fuzzer used. Our independent build is the
//! structural ground truth itself: replay the corpus through the
//! interpreter and count distinct `(src_block, dst_block)` pairs over
//! program-global block indices. No hashing, no map, no collisions.

use std::collections::HashSet;

use bigmap_target::{Interpreter, TraceSink};

/// Counts structural edges (and blocks) exercised by a corpus.
#[derive(Debug, Clone, Default)]
pub struct ReplayCoverage {
    edges: HashSet<(usize, usize)>,
    blocks: HashSet<usize>,
}

struct EdgeRecorder<'a> {
    coverage: &'a mut ReplayCoverage,
    prev: Option<usize>,
}

impl TraceSink for EdgeRecorder<'_> {
    fn on_block(&mut self, global_block: usize) {
        if let Some(prev) = self.prev {
            self.coverage.edges.insert((prev, global_block));
        }
        self.coverage.blocks.insert(global_block);
        self.prev = Some(global_block);
    }
    fn on_call(&mut self, _call_site: usize) {}
    fn on_return(&mut self) {}
}

impl ReplayCoverage {
    /// Creates an empty coverage accumulator.
    pub fn new() -> Self {
        ReplayCoverage::default()
    }

    /// Replays one input, folding its structural edges in.
    pub fn replay(&mut self, interpreter: &Interpreter<'_>, input: &[u8]) {
        let mut recorder = EdgeRecorder {
            coverage: self,
            prev: None,
        };
        let _ = interpreter.run(input, &mut recorder);
    }

    /// Replays a whole corpus.
    pub fn replay_corpus<'a, I>(&mut self, interpreter: &Interpreter<'_>, corpus: I)
    where
        I: IntoIterator<Item = &'a Vec<u8>>,
    {
        for input in corpus {
            self.replay(interpreter, input);
        }
    }

    /// Distinct structural edges covered.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Distinct blocks covered.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }
}

/// One-shot convenience: the structural edge coverage of `corpus`.
///
/// # Examples
///
/// ```rust
/// use bigmap_fuzzer::replay_edge_coverage;
/// use bigmap_target::{Interpreter, ProgramBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = ProgramBuilder::new("p").gate(0, b'A', false).build()?;
/// let interp = Interpreter::new(&program);
/// let corpus = vec![b"A".to_vec(), b"B".to_vec()];
/// assert!(replay_edge_coverage(&interp, &corpus) > 0);
/// # Ok(())
/// # }
/// ```
pub fn replay_edge_coverage(interpreter: &Interpreter<'_>, corpus: &[Vec<u8>]) -> usize {
    let mut coverage = ReplayCoverage::new();
    coverage.replay_corpus(interpreter, corpus);
    coverage.edge_count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigmap_target::{GeneratorConfig, ProgramBuilder};

    #[test]
    fn empty_corpus_covers_nothing() {
        let program = ProgramBuilder::new("p").build().unwrap();
        let interp = Interpreter::new(&program);
        assert_eq!(replay_edge_coverage(&interp, &[]), 0);
    }

    #[test]
    fn single_linear_run_counts_chain_edges() {
        let program = ProgramBuilder::new("p")
            .gate(0, b'A', false)
            .gate(1, b'B', false)
            .build()
            .unwrap();
        let interp = Interpreter::new(&program);
        let mut cov = ReplayCoverage::new();
        cov.replay(&interp, b"AB");
        // Blocks: gate0 test(0), reward(1), gate1 test(2), reward(3),
        // return(4) -> 4 edges in a chain.
        assert_eq!(cov.block_count(), 5);
        assert_eq!(cov.edge_count(), 4);
    }

    #[test]
    fn union_over_corpus_is_monotone() {
        let program = GeneratorConfig {
            seed: 4,
            ..Default::default()
        }
        .generate();
        let interp = Interpreter::new(&program);
        let mut cov = ReplayCoverage::new();
        let mut last = 0;
        for i in 0..10u8 {
            cov.replay(&interp, &[i; 32]);
            assert!(cov.edge_count() >= last);
            last = cov.edge_count();
        }
        assert!(last > 0);
    }

    #[test]
    fn replay_is_idempotent() {
        let program = GeneratorConfig {
            seed: 4,
            ..Default::default()
        }
        .generate();
        let interp = Interpreter::new(&program);
        let mut cov = ReplayCoverage::new();
        cov.replay(&interp, &[9; 32]);
        let once = cov.edge_count();
        cov.replay(&interp, &[9; 32]);
        assert_eq!(cov.edge_count(), once);
    }

    #[test]
    fn hang_inputs_replay_partial_coverage() {
        // Replaying a hang-triggering input must terminate (the step
        // budget bounds it) and credit the blocks reached before the
        // hang, so hang corpora can participate in coverage measurement.
        let program = ProgramBuilder::new("h")
            .gate(0, b'A', false)
            .hang_gate(1, b'H')
            .gate(2, b'B', false)
            .build()
            .unwrap();
        let interp = Interpreter::new(&program);

        let mut cov = ReplayCoverage::new();
        cov.replay(&interp, b"AHB"); // hangs at offset 1, never sees gate 2
        let at_hang = cov.edge_count();
        assert!(cov.block_count() > 0);

        // Idempotent like any other replay.
        cov.replay(&interp, b"AHB");
        assert_eq!(cov.edge_count(), at_hang);

        // The non-hanging sibling strictly extends coverage past the
        // hang site.
        cov.replay(&interp, b"A.B");
        assert!(cov.edge_count() > at_hang);
    }

    #[test]
    fn measures_independent_of_map_collisions() {
        // The replay count must equal the true distinct structural pairs —
        // validated by recomputing with a second accumulator.
        let program = GeneratorConfig {
            seed: 8,
            ..Default::default()
        }
        .generate();
        let interp = Interpreter::new(&program);
        let corpus: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 24]).collect();
        let a = replay_edge_coverage(&interp, &corpus);
        let b = replay_edge_coverage(&interp, &corpus);
        assert_eq!(a, b);
    }
}
