//! Parallel fuzzing: the master–secondary configuration (§V-D).
//!
//! One master instance (runs the deterministic stages first) plus N−1
//! secondaries (havoc only), each on its own OS thread with its own
//! coverage map and virgin state, periodically cross-pollinating their
//! corpora through a shared exchange — the paper's "output corpus is
//! periodically synchronized between these instances".
//!
//! Threads share nothing hot: each instance owns its maps, so the only
//! interaction between instances is (a) the corpus exchange, which is a
//! coarse-grained mutex touched every few thousand executions, and (b) the
//! machine's shared last-level cache — the resource whose exhaustion
//! produces the paper's Figure 9 scaling collapse for AFL.
//!
//! ## Sync protocol
//!
//! Published inputs are tagged with their publisher's instance index and
//! stored as [`Arc<[u8]>`], so (a) a fetch is O(new entries) pointer
//! clones — payload bytes are shared across the whole fleet, never
//! deep-copied — and (b) an instance structurally **cannot** re-import its
//! own finds: [`SyncHub::fetch_since`] skips entries it published itself.
//! Each instance fetches *before* publishing at every sync point, and a
//! 1-instance fleet performs zero imports (verified by the telemetry
//! regression tests).

use std::any::Any;
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::thread;

use bigmap_coverage::Instrumentation;
use bigmap_target::{Interpreter, Program};

use crate::campaign::{Campaign, CampaignConfig, CampaignStats};
use crate::telemetry::{TelemetryEvent, TelemetryRegistry};

/// One published corpus entry: the payload plus who found it.
#[derive(Debug, Clone)]
struct SyncEntry {
    publisher: usize,
    input: Arc<[u8]>,
}

/// The hub's shared state, guarded by one mutex: the append-only entry
/// list plus the content set that makes `publish` idempotent.
#[derive(Debug, Default)]
struct HubState {
    entries: Vec<SyncEntry>,
    seen: HashSet<Arc<[u8]>>,
}

/// The shared corpus exchange.
///
/// Append-only list of discovered inputs; instances fetch from their own
/// cursor so every instance eventually sees every *other* instance's
/// published find exactly once.
///
/// Publishing is **content-idempotent**: an input that is byte-identical
/// to one already in the hub is silently dropped, whoever publishes it.
/// That makes a supervised restart safe — an instance resumed from a
/// checkpoint may rediscover and republish finds its dead predecessor
/// already shared, and the fleet must not re-import them as new entries.
/// (The dedup set stores `Arc` clones of the published payloads, so it
/// costs pointers, not copies.)
#[derive(Debug, Default)]
pub struct SyncHub {
    corpus: Mutex<HubState>,
}

impl SyncHub {
    /// Creates an empty hub.
    pub fn new() -> Self {
        SyncHub::default()
    }

    /// Publishes newly found inputs on behalf of instance `publisher`.
    /// Inputs the hub has already seen (from any publisher) are dropped.
    pub fn publish(&self, publisher: usize, inputs: Vec<Vec<u8>>) {
        if inputs.is_empty() {
            return;
        }
        let mut state = self.corpus.lock().expect("corpus mutex poisoned");
        for input in inputs {
            let input: Arc<[u8]> = Arc::from(input);
            if state.seen.insert(Arc::clone(&input)) {
                state.entries.push(SyncEntry { publisher, input });
            }
        }
    }

    /// Fetches inputs published since `cursor` by instances other than
    /// `reader`, advancing the cursor past everything seen (own entries
    /// included — they are skipped, not deferred).
    ///
    /// A cursor beyond the corpus length indicates broken cursor
    /// accounting in the caller: it trips a `debug_assert!` and saturates
    /// to the corpus length in release builds.
    pub fn fetch_since(&self, cursor: &mut usize, reader: usize) -> Vec<Arc<[u8]>> {
        let state = self.corpus.lock().expect("corpus mutex poisoned");
        debug_assert!(
            *cursor <= state.entries.len(),
            "sync cursor {} beyond published corpus ({} entries)",
            *cursor,
            state.entries.len()
        );
        let from = (*cursor).min(state.entries.len());
        let fresh = state.entries[from..]
            .iter()
            .filter(|e| e.publisher != reader)
            .map(|e| Arc::clone(&e.input))
            .collect();
        *cursor = state.entries.len();
        fresh
    }

    /// Total distinct inputs ever published.
    pub fn published_count(&self) -> usize {
        self.corpus
            .lock()
            .expect("corpus mutex poisoned")
            .entries
            .len()
    }
}

/// Terminal health of one fleet instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceHealth {
    /// Completed its budget without intervention.
    Running,
    /// Panicked at least once, was restarted by the supervisor, and then
    /// completed. Carries the restart count.
    Restarted(u32),
    /// Died and stayed dead (no supervisor, or the restart budget ran
    /// out). Carries the final panic message; its slot in
    /// [`ParallelStats::instances`] holds default (all-zero) stats.
    Dead(String),
}

impl InstanceHealth {
    /// Whether the instance delivered a completed campaign (possibly
    /// after restarts).
    pub fn completed(&self) -> bool {
        !matches!(self, InstanceHealth::Dead(_))
    }
}

/// Renders a `catch_unwind` payload as text (panic messages are `&str`
/// or `String` in practice; anything else becomes a placeholder).
pub(crate) fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Results of a parallel session.
#[derive(Debug, Clone)]
pub struct ParallelStats {
    /// Per-instance campaign statistics (index 0 is the master). An
    /// instance whose health is [`InstanceHealth::Dead`] contributes
    /// default (all-zero) stats.
    pub instances: Vec<CampaignStats>,
    /// Per-instance terminal health, index-aligned with `instances`.
    pub health: Vec<InstanceHealth>,
    /// Fleet-wide unique crashes (Crashwalk, deduplicated *across*
    /// instances).
    pub unique_crashes: usize,
}

impl ParallelStats {
    /// Total test cases generated by the fleet (the Figure 9b numerator).
    pub fn total_execs(&self) -> u64 {
        self.instances.iter().map(|s| s.execs).sum()
    }

    /// Whether every instance delivered a completed campaign (restarted
    /// instances count as completed; dead ones don't).
    pub fn all_completed(&self) -> bool {
        self.health.iter().all(InstanceHealth::completed)
    }

    /// Fleet throughput: total execs / wall-time of the slowest instance.
    pub fn throughput(&self) -> f64 {
        let wall = self
            .instances
            .iter()
            .map(|s| s.wall_time)
            .max()
            .unwrap_or_default()
            .as_secs_f64();
        if wall == 0.0 {
            0.0
        } else {
            self.total_execs() as f64 / wall
        }
    }
}

/// Runs `instances` concurrent campaigns in the master–secondary
/// configuration over one target.
///
/// Every instance gets the same configuration except: instance 0 (the
/// master) runs the deterministic stages, and each instance's RNG is
/// decorrelated by its index. All instances fuzz the same program with the
/// same instrumentation (the paper pins each to a core; we let the OS
/// schedule the threads).
///
/// # Panics
///
/// Panics if `instances == 0` or `seeds` is empty.
pub fn run_parallel(
    program: &Program,
    instrumentation: &Instrumentation,
    base_config: &CampaignConfig,
    seeds: &[Vec<u8>],
    instances: usize,
    sync_every: u64,
) -> ParallelStats {
    run_parallel_with_telemetry(
        program,
        instrumentation,
        base_config,
        seeds,
        instances,
        sync_every,
        None,
    )
}

/// [`run_parallel`] with a live telemetry registry attached.
///
/// Each instance registers a [`Telemetry`](crate::telemetry::Telemetry)
/// handle under its instance index, counts every pipeline event and sync
/// exchange, and emits a [`TelemetrySnapshot`](crate::TelemetrySnapshot)
/// to the registry's sink at every sync boundary plus once at campaign
/// end. Per-instance final snapshots also land in each
/// [`CampaignStats::telemetry`].
///
/// # Panics
///
/// Panics if `instances == 0` or `seeds` is empty.
pub fn run_parallel_with_telemetry(
    program: &Program,
    instrumentation: &Instrumentation,
    base_config: &CampaignConfig,
    seeds: &[Vec<u8>],
    instances: usize,
    sync_every: u64,
    registry: Option<&TelemetryRegistry>,
) -> ParallelStats {
    run_parallel_with_faults(
        program,
        instrumentation,
        base_config,
        seeds,
        instances,
        sync_every,
        registry,
        None,
    )
}

/// [`run_parallel_with_telemetry`] with a deterministic fault-injection
/// plan attached to every instance.
///
/// A worker panic — injected or organic — is contained to its instance:
/// the session still returns, with that instance reported as
/// [`InstanceHealth::Dead`] (zeroed stats) instead of tearing down the
/// whole fleet. There are **no restarts** here; that is
/// [`crate::supervisor::run_supervised`]'s job.
///
/// # Panics
///
/// Panics if `instances == 0` or `seeds` is empty.
#[allow(clippy::too_many_arguments)]
pub fn run_parallel_with_faults(
    program: &Program,
    instrumentation: &Instrumentation,
    base_config: &CampaignConfig,
    seeds: &[Vec<u8>],
    instances: usize,
    sync_every: u64,
    registry: Option<&TelemetryRegistry>,
    fault_plan: Option<Arc<crate::faults::FaultPlan>>,
) -> ParallelStats {
    assert!(instances > 0, "need at least one instance");
    assert!(!seeds.is_empty(), "need a seed corpus");

    let hub = Arc::new(SyncHub::new());

    let results: Vec<Result<CampaignStats, String>> = thread::scope(|scope| {
        let mut handles = Vec::with_capacity(instances);
        for instance in 0..instances {
            let hub = Arc::clone(&hub);
            let seeds = seeds.to_vec();
            let telemetry = registry.map(|r| r.register(instance));
            let faults = fault_plan.as_ref().map(|plan| {
                Arc::new(crate::faults::InstanceFaults::new(
                    Arc::clone(plan),
                    instance,
                ))
            });
            let mut config = base_config.clone();
            config.seed =
                base_config.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(instance as u64 + 1));
            config.deterministic = instance == 0 && base_config.deterministic;
            handles.push(scope.spawn(move || {
                // Contain panics to the instance: a dying worker must
                // cost the fleet one instance's results, not the whole
                // session (thread::scope would otherwise re-raise on
                // join). The closure owns all its state, so unwind
                // safety is real, not just asserted.
                catch_unwind(AssertUnwindSafe(|| {
                    // Each instance owns its interpreter state (the program is
                    // shared read-only).
                    let interpreter = Interpreter::with_config(program, config.exec);
                    let mut campaign = Campaign::new(config, &interpreter, instrumentation);
                    if let Some(tel) = &telemetry {
                        campaign.set_telemetry(Arc::clone(tel));
                    }
                    if let Some(faults) = &faults {
                        campaign.set_faults(Arc::clone(faults));
                    }
                    campaign.add_seeds(seeds);
                    // Every instance starts from the same seed corpus:
                    // publishing it would only make the others re-execute
                    // inputs they already have, so drain it un-published.
                    let _ = campaign.take_fresh_finds();
                    let mut cursor = 0usize;

                    let hub_for_hook = Arc::clone(&hub);
                    let tel_for_hook = telemetry.clone();

                    let stats = campaign.run_with_hook(sync_every, move |c| {
                        // Fetch first, publish second: the publisher filter in
                        // fetch_since makes the order a performance nicety
                        // rather than a correctness requirement, but fetching
                        // first keeps the cursor arithmetic trivially monotone.
                        for input in hub_for_hook.fetch_since(&mut cursor, instance) {
                            c.import(&input);
                        }
                        let finds = c.take_fresh_finds();
                        if let Some(tel) = &tel_for_hook {
                            tel.add(TelemetryEvent::SyncPublish, finds.len() as u64);
                            // Snapshot at the sync boundary — the only place
                            // the fleet pays sink I/O.
                            if let Some(registry) = registry {
                                registry.emit(tel);
                            }
                        }
                        hub_for_hook.publish(instance, finds);
                    });
                    if let (Some(registry), Some(tel)) = (registry, &telemetry) {
                        registry.emit(tel);
                    }
                    stats
                }))
                .map_err(panic_message)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("supervisory join failed"))
            .collect()
    });

    let mut stats = Vec::with_capacity(results.len());
    let mut health = Vec::with_capacity(results.len());
    for result in results {
        match result {
            Ok(s) => {
                stats.push(s);
                health.push(InstanceHealth::Running);
            }
            Err(msg) => {
                stats.push(CampaignStats::default());
                health.push(InstanceHealth::Dead(msg));
            }
        }
    }

    // Fleet-wide crash dedup: the Crashwalk bucket hash of a (stack, site)
    // pair is instance-independent, so the union of per-instance bucket
    // sets is the exact fleet-wide unique count.
    let unique_crashes = stats
        .iter()
        .flat_map(|s| s.crash_buckets.iter().copied())
        .collect::<std::collections::HashSet<u32>>()
        .len();

    ParallelStats {
        instances: stats,
        health,
        unique_crashes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Budget;
    use bigmap_core::{MapScheme, MapSize};
    use bigmap_target::GeneratorConfig;

    fn setup() -> (Program, Instrumentation) {
        let program = GeneratorConfig {
            seed: 19,
            functions: 6,
            gates_per_function: 10,
            crash_sites: 2,
            crash_guard_width: 2,
            ..Default::default()
        }
        .generate();
        let inst =
            Instrumentation::assign(program.block_count(), program.call_sites, MapSize::K64, 3);
        (program, inst)
    }

    fn config(execs: u64) -> CampaignConfig {
        CampaignConfig {
            scheme: MapScheme::TwoLevel,
            map_size: MapSize::K64,
            budget: Budget::Execs(execs),
            mutations_per_seed: 32,
            ..Default::default()
        }
    }

    #[test]
    fn hub_publish_fetch_roundtrip() {
        let hub = SyncHub::new();
        let mut cursor = 0;
        // Reader 1 sees everything instance 0 publishes, exactly once.
        assert!(hub.fetch_since(&mut cursor, 1).is_empty());
        hub.publish(0, vec![vec![1], vec![2]]);
        let fetched = hub.fetch_since(&mut cursor, 1);
        assert_eq!(fetched.len(), 2);
        assert_eq!(&*fetched[0], &[1][..]);
        assert_eq!(&*fetched[1], &[2][..]);
        assert!(hub.fetch_since(&mut cursor, 1).is_empty());
        hub.publish(0, vec![vec![3]]);
        let fetched = hub.fetch_since(&mut cursor, 1);
        assert_eq!(fetched.len(), 1);
        assert_eq!(&*fetched[0], &[3][..]);
        assert_eq!(hub.published_count(), 3);
    }

    #[test]
    fn hub_never_returns_own_publications() {
        let hub = SyncHub::new();
        hub.publish(0, vec![vec![10]]);
        hub.publish(1, vec![vec![11]]);
        hub.publish(0, vec![vec![12]]);

        // Instance 0 sees only instance 1's find…
        let mut cursor = 0;
        let fetched = hub.fetch_since(&mut cursor, 0);
        assert_eq!(fetched.len(), 1);
        assert_eq!(&*fetched[0], &[11][..]);
        // …and its own entries are skipped for good, not deferred.
        assert!(hub.fetch_since(&mut cursor, 0).is_empty());

        // Instance 2 (pure reader) sees everything.
        let mut other = 0;
        assert_eq!(hub.fetch_since(&mut other, 2).len(), 3);
    }

    #[test]
    fn hub_cursor_isolation() {
        let hub = SyncHub::new();
        hub.publish(0, vec![vec![1]]);
        let mut a = 0;
        let mut b = 0;
        assert_eq!(hub.fetch_since(&mut a, 1).len(), 1);
        assert_eq!(hub.fetch_since(&mut b, 2).len(), 1);
    }

    #[test]
    fn hub_shares_payload_bytes_across_fetches() {
        let hub = SyncHub::new();
        hub.publish(0, vec![vec![7u8; 1024]]);
        let mut a = 0;
        let mut b = 0;
        let from_a = hub.fetch_since(&mut a, 1);
        let from_b = hub.fetch_since(&mut b, 2);
        // Both fetches hold the same allocation, not deep copies.
        assert!(Arc::ptr_eq(&from_a[0], &from_b[0]));
    }

    #[test]
    fn hub_cursor_at_boundary_is_fine() {
        let hub = SyncHub::new();
        hub.publish(0, vec![vec![1], vec![2]]);
        let mut cursor = hub.published_count(); // == len: legal, empty fetch
        assert!(hub.fetch_since(&mut cursor, 1).is_empty());
        assert_eq!(cursor, 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "beyond published corpus")]
    fn hub_cursor_overrun_panics_in_debug() {
        let hub = SyncHub::new();
        hub.publish(0, vec![vec![1]]);
        let mut cursor = 5; // broken accounting: past the corpus
        let _ = hub.fetch_since(&mut cursor, 1);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn hub_cursor_overrun_saturates_in_release() {
        let hub = SyncHub::new();
        hub.publish(0, vec![vec![1]]);
        let mut cursor = 5;
        assert!(hub.fetch_since(&mut cursor, 1).is_empty());
        assert_eq!(cursor, 1, "cursor saturates back to the corpus length");
    }

    #[test]
    fn single_instance_parallel_equals_plain_run_shape() {
        let (program, inst) = setup();
        let stats = run_parallel(&program, &inst, &config(1_500), &[vec![0u8; 24]], 1, 500);
        assert_eq!(stats.instances.len(), 1);
        assert_eq!(stats.total_execs(), 1_500);
        assert!(stats.throughput() > 0.0);
    }

    #[test]
    fn four_instances_generate_four_fold_tests() {
        let (program, inst) = setup();
        let stats = run_parallel(&program, &inst, &config(800), &[vec![0u8; 24]], 4, 400);
        assert_eq!(stats.instances.len(), 4);
        // Sync imports count as executions, so a hook that fires exactly
        // on the budget boundary can nudge an instance a few execs past
        // it; the fleet delivers at least its nominal volume.
        assert!(stats.total_execs() >= 4 * 800);
        for s in &stats.instances {
            assert!(s.execs >= 800 && s.execs < 900);
        }
    }

    #[test]
    fn instances_are_decorrelated() {
        let (program, inst) = setup();
        let stats = run_parallel(&program, &inst, &config(1_000), &[vec![0u8; 24]], 2, 300);
        // Different RNG streams → (almost surely) different queue growth.
        let q0 = stats.instances[0].queue_len;
        let q1 = stats.instances[1].queue_len;
        assert!(q0 > 1 && q1 > 1);
    }

    #[test]
    fn hub_drops_duplicate_publications() {
        let hub = SyncHub::new();
        hub.publish(0, vec![vec![1], vec![2]]);
        // A restarted instance 0 republishing its pre-crash finds — and
        // instance 1 publishing the same bytes independently — add
        // nothing.
        hub.publish(0, vec![vec![1]]);
        hub.publish(1, vec![vec![2], vec![3]]);
        assert_eq!(hub.published_count(), 3);
        let mut cursor = 0;
        let fetched = hub.fetch_since(&mut cursor, 2);
        assert_eq!(fetched.len(), 3);
    }

    #[test]
    fn healthy_fleet_reports_running() {
        let (program, inst) = setup();
        let stats = run_parallel(&program, &inst, &config(500), &[vec![0u8; 24]], 2, 250);
        assert_eq!(stats.health, vec![InstanceHealth::Running; 2]);
        assert!(stats.all_completed());
    }

    #[test]
    fn injected_panic_kills_one_instance_not_the_fleet() {
        use crate::faults::{FaultPlan, FaultSite};
        let (program, inst) = setup();
        // Instance 1 panics at its first sync boundary; instance 0 is
        // untouched.
        let plan = Arc::new(FaultPlan::new().inject(FaultSite::WorkerPanic, 1, 0));
        let stats = run_parallel_with_faults(
            &program,
            &inst,
            &config(1_000),
            &[vec![0u8; 24]],
            2,
            200,
            None,
            Some(plan),
        );
        assert_eq!(stats.health[0], InstanceHealth::Running);
        match &stats.health[1] {
            InstanceHealth::Dead(msg) => {
                assert!(msg.contains("injected worker panic"), "got: {msg}");
            }
            other => panic!("instance 1 should be dead, got {other:?}"),
        }
        assert!(!stats.all_completed());
        // The survivor's work is intact; the corpse contributes zeros.
        assert_eq!(stats.instances[0].execs, 1_000);
        assert_eq!(stats.instances[1].execs, 0);
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn zero_instances_panics() {
        let (program, inst) = setup();
        run_parallel(&program, &inst, &config(10), &[vec![0u8; 8]], 0, 100);
    }

    #[test]
    #[should_panic(expected = "seed corpus")]
    fn empty_seeds_panics() {
        let (program, inst) = setup();
        run_parallel(&program, &inst, &config(10), &[], 2, 100);
    }
}
