//! Campaign checkpointing: periodic crash-safe snapshots and resume.
//!
//! Long campaigns die — machines reboot, fleets get rescheduled, workers
//! panic. A checkpoint captures everything a campaign needs to continue
//! *as if the kill never happened*: the queue with its scheduling
//! metadata, the crash/hang corpora with their dedup buckets, the
//! exec/crash counters, the calibrated hang budget, and both RNG stream
//! positions (scheduler and mutator), so the resumed campaign draws the
//! same randomness the dead one would have.
//!
//! The virgin coverage maps are deliberately **not** serialized: they are
//! large, scheme-dependent, and exactly reproducible by re-executing the
//! checkpointed inputs (the interpreter is deterministic). Restore
//! therefore costs one execution per saved input — milliseconds — in
//! exchange for a checkpoint file that stays small and
//! format-independent of the map implementation.
//!
//! The selective-tracing novelty oracle's committed state *is* carried
//! (when non-empty): unlike the virgin maps it is not derivable from the
//! queue alone — it also remembers paths of mutants that were traced and
//! judged `NoNew` — and while dropping it would stay correct (an empty
//! oracle just re-traces everything until re-committed), carrying it
//! preserves the resumed campaign's fast-path hit rate. Always-trace
//! campaigns emit no oracle lines, so their files stay byte-identical to
//! the pre-oracle v1 format.
//!
//! Persistence is crash-safe by construction: the snapshot is written to
//! `checkpoint.tmp` and atomically renamed over `checkpoint`, so a kill
//! mid-write leaves the previous checkpoint intact. The file format is a
//! versioned line-oriented text format (hex-encoded payloads), ending in
//! an `end` sentinel so truncation is detectable.
//!
//! # Examples
//!
//! ```rust
//! use bigmap_core::MapSize;
//! use bigmap_coverage::Instrumentation;
//! use bigmap_fuzzer::{Campaign, CampaignConfig, CheckpointManager};
//! use bigmap_target::{GeneratorConfig, Interpreter};
//!
//! # fn main() -> std::io::Result<()> {
//! let program = GeneratorConfig::default().generate();
//! let inst =
//!     Instrumentation::assign(program.block_count(), program.call_sites, MapSize::K64, 1);
//! let interp = Interpreter::new(&program);
//! let dir = std::env::temp_dir().join(format!("bigmap-ckpt-doc-{}", std::process::id()));
//!
//! let config = CampaignConfig::builder().budget_execs(2_000).build();
//! let mut campaign = Campaign::new(config.clone(), &interp, &inst);
//! campaign.add_seeds(vec![vec![0u8; 32]]);
//! let mut manager = CheckpointManager::new(&dir, 500);
//! let stats = campaign.run_with_hook(250, |c| {
//!     let _ = manager.maybe_checkpoint(c);
//! });
//!
//! // "Kill": start over, resume from the persisted checkpoint instead
//! // of the seeds.
//! let checkpoint = CheckpointManager::load(&dir)?.expect("checkpoint written");
//! assert!(checkpoint.execs > 0 && checkpoint.execs <= stats.execs);
//! let mut resumed = Campaign::new(config, &interp, &inst);
//! resumed.restore(&checkpoint);
//! let final_stats = resumed.run();
//! assert_eq!(final_stats.execs, 2_000);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use bigmap_target::OracleSnapshot;

use crate::campaign::Campaign;
use crate::faults::FaultSite;
use crate::telemetry::TelemetryEvent;

/// File name of the live checkpoint inside a checkpoint directory.
pub const CHECKPOINT_FILE: &str = "checkpoint";
/// Temp file the snapshot is staged in before the atomic rename.
const CHECKPOINT_TMP: &str = "checkpoint.tmp";
/// Format magic + version (first line of every checkpoint file).
const MAGIC: &str = "bigmap-checkpoint v1";

/// One queue entry as captured in a checkpoint: the input plus the
/// scheduling metadata that re-execution cannot re-derive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointQueueEntry {
    /// Derivation depth (drives the havoc energy bonus).
    pub depth: usize,
    /// Times the entry had been scheduled (drives skip probabilities and
    /// the deterministic-stage gate).
    pub fuzzed_rounds: usize,
    /// The test-case bytes.
    pub input: Vec<u8>,
}

/// A resumable snapshot of campaign state. Produced by
/// [`Campaign::checkpoint`], consumed by [`Campaign::restore`];
/// serialized by [`Checkpoint::to_text`] / [`Checkpoint::from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Test cases executed when the snapshot was taken.
    pub execs: u64,
    /// Cumulative campaign wall time (nanoseconds), including any prior
    /// resumed segments.
    pub wall_nanos: u64,
    /// Total (non-unique) crashing executions.
    pub total_crashes: u64,
    /// Hanging executions.
    pub hangs: u64,
    /// AFL's coverage-bitmap unique-crash count.
    pub coverage_unique_crashes: u64,
    /// NewEdge verdicts so far (the timeline's coverage unit).
    pub discovered_running: u64,
    /// Scheduler RNG stream position (xoshiro256++ state).
    pub rng: [u64; 4],
    /// Mutator RNG stream position.
    pub mutator_rng: [u64; 4],
    /// Calibrated hang budget in force, if any.
    pub hang_budget: Option<u64>,
    /// The queue, in admission order.
    pub queue: Vec<CheckpointQueueEntry>,
    /// Unique crashes: (Crashwalk bucket, input), in first-sighting order.
    pub crashes: Vec<(u32, Vec<u8>)>,
    /// Hang-triggering inputs, in first-sighting order.
    pub hang_inputs: Vec<Vec<u8>>,
    /// Committed novelty-oracle state (selective-tracing campaigns).
    /// `None` for always-trace campaigns and for campaigns whose oracle
    /// has committed nothing yet — those files are byte-identical to the
    /// pre-oracle format. A resuming campaign that finds no oracle state
    /// starts with an empty oracle, which is the conservative fallback
    /// (every exec re-traces until re-committed).
    pub oracle: Option<OracleSnapshot>,
}

fn hex_encode(bytes: &[u8]) -> String {
    if bytes.is_empty() {
        return "-".to_string();
    }
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(out, "{b:02x}");
    }
    out
}

fn hex_decode(text: &str) -> Result<Vec<u8>, String> {
    if text == "-" {
        return Ok(Vec::new());
    }
    if !text.len().is_multiple_of(2) {
        return Err(format!("odd-length hex payload ({} chars)", text.len()));
    }
    (0..text.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&text[i..i + 2], 16)
                .map_err(|_| format!("bad hex byte at offset {i}"))
        })
        .collect()
}

impl Checkpoint {
    /// Serializes the checkpoint as versioned line-oriented text. The
    /// last line is the `end` sentinel; a file without it is truncated.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{MAGIC}");
        let _ = writeln!(out, "execs {}", self.execs);
        let _ = writeln!(out, "wall_nanos {}", self.wall_nanos);
        let _ = writeln!(out, "total_crashes {}", self.total_crashes);
        let _ = writeln!(out, "hangs {}", self.hangs);
        let _ = writeln!(
            out,
            "coverage_unique_crashes {}",
            self.coverage_unique_crashes
        );
        let _ = writeln!(out, "discovered_running {}", self.discovered_running);
        let _ = writeln!(
            out,
            "rng {:016x} {:016x} {:016x} {:016x}",
            self.rng[0], self.rng[1], self.rng[2], self.rng[3]
        );
        let _ = writeln!(
            out,
            "mutator_rng {:016x} {:016x} {:016x} {:016x}",
            self.mutator_rng[0], self.mutator_rng[1], self.mutator_rng[2], self.mutator_rng[3]
        );
        match self.hang_budget {
            Some(budget) => {
                let _ = writeln!(out, "hang_budget {budget}");
            }
            None => {
                let _ = writeln!(out, "hang_budget none");
            }
        }
        for entry in &self.queue {
            let _ = writeln!(
                out,
                "queue {} {} {}",
                entry.depth,
                entry.fuzzed_rounds,
                hex_encode(&entry.input)
            );
        }
        for (bucket, input) in &self.crashes {
            let _ = writeln!(out, "crash {bucket:08x} {}", hex_encode(input));
        }
        for input in &self.hang_inputs {
            let _ = writeln!(out, "hang {}", hex_encode(input));
        }
        if let Some(snap) = &self.oracle {
            let _ = writeln!(out, "oracle_buckets {}", hex_encode(&snap.buckets));
            let mut path_bytes = Vec::with_capacity(snap.paths.len() * 8);
            for path in &snap.paths {
                path_bytes.extend_from_slice(&path.to_be_bytes());
            }
            let _ = writeln!(out, "oracle_paths {}", hex_encode(&path_bytes));
        }
        let _ = writeln!(out, "end");
        out
    }

    /// Parses a checkpoint from [`Checkpoint::to_text`] output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line, a version
    /// mismatch, or a missing `end` sentinel (truncated file).
    pub fn from_text(text: &str) -> Result<Checkpoint, String> {
        let mut lines = text.lines();
        if lines.next() != Some(MAGIC) {
            return Err(format!("not a checkpoint file (expected '{MAGIC}')"));
        }
        let mut ckpt = Checkpoint {
            execs: 0,
            wall_nanos: 0,
            total_crashes: 0,
            hangs: 0,
            coverage_unique_crashes: 0,
            discovered_running: 0,
            rng: [0; 4],
            mutator_rng: [0; 4],
            hang_budget: None,
            queue: Vec::new(),
            crashes: Vec::new(),
            hang_inputs: Vec::new(),
            oracle: None,
        };
        let mut ended = false;
        for (i, line) in lines.enumerate() {
            let lineno = i + 2;
            if ended {
                return Err(format!("line {lineno}: content after 'end' sentinel"));
            }
            let mut fields = line.split_ascii_whitespace();
            let key = fields
                .next()
                .ok_or_else(|| format!("line {lineno}: empty line"))?;
            let mut next = |what: &str| {
                fields
                    .next()
                    .ok_or_else(|| format!("line {lineno}: missing {what}"))
                    .map(str::to_string)
            };
            let parse_u64 = |s: String, lineno: usize| {
                s.parse::<u64>()
                    .map_err(|_| format!("line {lineno}: bad integer '{s}'"))
            };
            let parse_state = |fields: &mut dyn Iterator<Item = &str>, lineno: usize| {
                let mut s = [0u64; 4];
                for slot in &mut s {
                    let word = fields
                        .next()
                        .ok_or_else(|| format!("line {lineno}: short rng state"))?;
                    *slot = u64::from_str_radix(word, 16)
                        .map_err(|_| format!("line {lineno}: bad rng word '{word}'"))?;
                }
                Ok::<[u64; 4], String>(s)
            };
            match key {
                "execs" => ckpt.execs = parse_u64(next("value")?, lineno)?,
                "wall_nanos" => ckpt.wall_nanos = parse_u64(next("value")?, lineno)?,
                "total_crashes" => ckpt.total_crashes = parse_u64(next("value")?, lineno)?,
                "hangs" => ckpt.hangs = parse_u64(next("value")?, lineno)?,
                "coverage_unique_crashes" => {
                    ckpt.coverage_unique_crashes = parse_u64(next("value")?, lineno)?;
                }
                "discovered_running" => {
                    ckpt.discovered_running = parse_u64(next("value")?, lineno)?;
                }
                "rng" => ckpt.rng = parse_state(&mut fields, lineno)?,
                "mutator_rng" => ckpt.mutator_rng = parse_state(&mut fields, lineno)?,
                "hang_budget" => {
                    let value = next("value")?;
                    ckpt.hang_budget = if value == "none" {
                        None
                    } else {
                        Some(parse_u64(value, lineno)?)
                    };
                }
                "queue" => {
                    let depth = parse_u64(next("depth")?, lineno)? as usize;
                    let fuzzed_rounds = parse_u64(next("fuzzed_rounds")?, lineno)? as usize;
                    let input =
                        hex_decode(&next("input")?).map_err(|e| format!("line {lineno}: {e}"))?;
                    ckpt.queue.push(CheckpointQueueEntry {
                        depth,
                        fuzzed_rounds,
                        input,
                    });
                }
                "crash" => {
                    let bucket_text = next("bucket")?;
                    let bucket = u32::from_str_radix(&bucket_text, 16)
                        .map_err(|_| format!("line {lineno}: bad bucket '{bucket_text}'"))?;
                    let input =
                        hex_decode(&next("input")?).map_err(|e| format!("line {lineno}: {e}"))?;
                    ckpt.crashes.push((bucket, input));
                }
                "hang" => {
                    let input =
                        hex_decode(&next("input")?).map_err(|e| format!("line {lineno}: {e}"))?;
                    ckpt.hang_inputs.push(input);
                }
                "oracle_buckets" => {
                    let buckets =
                        hex_decode(&next("buckets")?).map_err(|e| format!("line {lineno}: {e}"))?;
                    ckpt.oracle
                        .get_or_insert_with(OracleSnapshot::default)
                        .buckets = buckets;
                }
                "oracle_paths" => {
                    let bytes =
                        hex_decode(&next("paths")?).map_err(|e| format!("line {lineno}: {e}"))?;
                    if !bytes.len().is_multiple_of(8) {
                        return Err(format!(
                            "line {lineno}: oracle path payload is {} bytes (not 8-aligned)",
                            bytes.len()
                        ));
                    }
                    ckpt.oracle
                        .get_or_insert_with(OracleSnapshot::default)
                        .paths = bytes
                        .chunks_exact(8)
                        .map(|c| u64::from_be_bytes(c.try_into().unwrap()))
                        .collect();
                }
                "end" => ended = true,
                other => return Err(format!("line {lineno}: unknown key '{other}'")),
            }
        }
        if !ended {
            return Err("truncated checkpoint (missing 'end' sentinel)".to_string());
        }
        Ok(ckpt)
    }
}

/// Writes periodic checkpoints for one campaign into a directory, via
/// temp-file + atomic rename.
///
/// The manager owns the cadence (every N executions, checked at sync
/// boundaries) and the persistence; the state capture itself is
/// [`Campaign::checkpoint`]. A checkpoint-write failure (real I/O error
/// or an injected [`FaultSite::CheckpointWrite`] fault) leaves the
/// previous on-disk checkpoint intact — degradation, not corruption.
#[derive(Debug)]
pub struct CheckpointManager {
    dir: PathBuf,
    every: u64,
    next_at: u64,
    min_interval: Duration,
    last_write: Option<Instant>,
}

impl CheckpointManager {
    /// Manager writing into `dir` (created on first write) every `every`
    /// executions. An `every` of 0 checkpoints at every opportunity.
    pub fn new(dir: impl Into<PathBuf>, every: u64) -> Self {
        let every = every.max(1);
        CheckpointManager {
            dir: dir.into(),
            every,
            next_at: every,
            min_interval: Duration::ZERO,
            last_write: None,
        }
    }

    /// Adds a wall-clock floor between snapshots: a cadence mark reached
    /// sooner than `interval` after the previous write is *postponed* to
    /// the next sync boundary past the floor, not skipped. An exec-count
    /// cadence alone lets a fast arm (hundreds of thousands of execs/sec)
    /// checkpoint hundreds of times per second, which turns a sub-percent
    /// safety net into double-digit overhead; the floor bounds the write
    /// rate by wall time no matter the exec rate. The default is no floor
    /// (pure exec cadence, deterministic for tests).
    pub fn with_min_interval(mut self, interval: Duration) -> Self {
        self.min_interval = interval;
        self
    }

    /// The directory checkpoints are written to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Checkpoints `campaign` if it has crossed the next cadence mark.
    /// Returns whether a checkpoint was written. Meant to be called from
    /// a [`Campaign::run_with_hook`] sync hook.
    ///
    /// # Errors
    ///
    /// Propagates write failures (the cadence still advances, so one
    /// failed write costs one checkpoint, not the whole schedule).
    pub fn maybe_checkpoint(&mut self, campaign: &Campaign<'_>) -> io::Result<bool> {
        if campaign.execs() < self.next_at {
            return Ok(false);
        }
        // Postponed, not skipped: next_at is untouched, so the write
        // happens at the first boundary past the wall-clock floor.
        if let Some(last) = self.last_write {
            if last.elapsed() < self.min_interval {
                return Ok(false);
            }
        }
        self.next_at = campaign.execs() + self.every;
        self.last_write = Some(Instant::now());
        self.checkpoint_now(campaign)?;
        Ok(true)
    }

    /// Unconditionally checkpoints `campaign` right now.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; an injected
    /// [`FaultSite::CheckpointWrite`] fault surfaces as
    /// [`io::ErrorKind::Other`]. Either way the previous checkpoint file
    /// is untouched.
    pub fn checkpoint_now(&self, campaign: &Campaign<'_>) -> io::Result<()> {
        if let Some(faults) = campaign.faults() {
            if faults.fire(FaultSite::CheckpointWrite) {
                return Err(io::Error::other("injected checkpoint write failure"));
            }
        }
        let text = campaign.checkpoint().to_text();
        fs::create_dir_all(&self.dir)?;
        let tmp = self.dir.join(CHECKPOINT_TMP);
        fs::write(&tmp, text)?;
        fs::rename(&tmp, self.dir.join(CHECKPOINT_FILE))?;
        if let Some(tel) = campaign.telemetry() {
            tel.incr(TelemetryEvent::Checkpoint);
        }
        Ok(())
    }

    /// Loads the checkpoint persisted in `dir`, if one exists.
    ///
    /// # Errors
    ///
    /// I/O errors propagate; a present-but-malformed checkpoint is
    /// [`io::ErrorKind::InvalidData`] (a half-written temp file never
    /// is — only the atomic rename publishes).
    pub fn load(dir: impl AsRef<Path>) -> io::Result<Option<Checkpoint>> {
        let path = dir.as_ref().join(CHECKPOINT_FILE);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        Checkpoint::from_text(&text)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            execs: 12_345,
            wall_nanos: 9_999_999,
            total_crashes: 17,
            hangs: 3,
            coverage_unique_crashes: 5,
            discovered_running: 321,
            rng: [1, u64::MAX, 0xDEAD_BEEF, 42],
            mutator_rng: [7, 8, 9, 10],
            hang_budget: Some(2_500),
            queue: vec![
                CheckpointQueueEntry {
                    depth: 0,
                    fuzzed_rounds: 4,
                    input: b"seed".to_vec(),
                },
                CheckpointQueueEntry {
                    depth: 3,
                    fuzzed_rounds: 0,
                    input: vec![0, 255, 128],
                },
                CheckpointQueueEntry {
                    depth: 1,
                    fuzzed_rounds: 1,
                    input: Vec::new(), // empty inputs must round-trip
                },
            ],
            crashes: vec![(0xABCD_EF01, b"boom".to_vec()), (3, Vec::new())],
            hang_inputs: vec![b"spin".to_vec()],
            oracle: None,
        }
    }

    #[test]
    fn text_round_trip_is_exact() {
        let ckpt = sample();
        let parsed = Checkpoint::from_text(&ckpt.to_text()).expect("round trip");
        assert_eq!(parsed, ckpt);
    }

    #[test]
    fn oracle_state_round_trips() {
        let ckpt = Checkpoint {
            oracle: Some(OracleSnapshot {
                buckets: vec![0b1000_0001, 0, 0xFF],
                paths: vec![0, 1, u64::MAX, 0xDEAD_BEEF_CAFE_F00D],
            }),
            ..sample()
        };
        let parsed = Checkpoint::from_text(&ckpt.to_text()).expect("round trip");
        assert_eq!(parsed, ckpt);
    }

    #[test]
    fn always_trace_checkpoints_keep_the_pre_oracle_format() {
        // `oracle: None` must serialize byte-identically to the v1 format
        // that predates selective tracing, and such files must parse with
        // no oracle state (the conservative empty-oracle resume).
        let text = sample().to_text();
        assert!(!text.contains("oracle"), "no oracle lines when None");
        let parsed = Checkpoint::from_text(&text).unwrap();
        assert_eq!(parsed.oracle, None);
    }

    #[test]
    fn misaligned_oracle_paths_rejected() {
        let mut text = sample().to_text();
        text = text.replace("\nend\n", "\noracle_paths abcd\nend\n");
        assert!(Checkpoint::from_text(&text)
            .unwrap_err()
            .contains("not 8-aligned"));
    }

    #[test]
    fn no_budget_round_trips() {
        let ckpt = Checkpoint {
            hang_budget: None,
            ..sample()
        };
        let parsed = Checkpoint::from_text(&ckpt.to_text()).unwrap();
        assert_eq!(parsed.hang_budget, None);
    }

    #[test]
    fn truncation_is_detected() {
        let text = sample().to_text();
        let cut = text.len() / 2;
        let err = Checkpoint::from_text(&text[..cut]).unwrap_err();
        // Either a mangled line or the missing sentinel — both must fail.
        assert!(!err.is_empty());
        let no_end = text.replace("\nend\n", "\n");
        assert!(Checkpoint::from_text(&no_end)
            .unwrap_err()
            .contains("truncated"));
    }

    #[test]
    fn wrong_magic_rejected() {
        assert!(Checkpoint::from_text("bigmap-checkpoint v99\nend\n").is_err());
        assert!(Checkpoint::from_text("").is_err());
    }

    #[test]
    fn garbage_lines_rejected() {
        let good = sample().to_text();
        let bad = good.replace("execs 12345", "execs twelve");
        assert!(Checkpoint::from_text(&bad).unwrap_err().contains("line"));
        let unknown = good.replace("execs 12345", "frobnicate 12345");
        assert!(Checkpoint::from_text(&unknown)
            .unwrap_err()
            .contains("unknown key"));
    }

    #[test]
    fn hex_codec_round_trips() {
        for payload in [vec![], vec![0u8], vec![0xFF; 33], (0..=255u8).collect()] {
            assert_eq!(hex_decode(&hex_encode(&payload)).unwrap(), payload);
        }
        assert!(hex_decode("abc").is_err());
        assert!(hex_decode("zz").is_err());
    }

    #[test]
    fn min_interval_postpones_extra_writes() {
        use crate::campaign::{Budget, Campaign, CampaignConfig};
        use bigmap_core::MapSize;
        use bigmap_coverage::Instrumentation;
        use bigmap_target::{GeneratorConfig, Interpreter};

        let program = GeneratorConfig {
            seed: 3,
            ..Default::default()
        }
        .generate();
        let inst =
            Instrumentation::assign(program.block_count(), program.call_sites, MapSize::K64, 1);
        let interp = Interpreter::new(&program);
        let dir = std::env::temp_dir().join(format!("bigmap-ckpt-floor-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);

        let mut campaign = Campaign::new(
            CampaignConfig {
                budget: Budget::Execs(400),
                ..Default::default()
            },
            &interp,
            &inst,
        );
        campaign.add_seeds(vec![vec![0u8; 16]]);

        // Cadence of 1 exec but an unreachable wall-clock floor: only the
        // very first cadence mark writes, every later one is postponed.
        let mut manager =
            CheckpointManager::new(&dir, 1).with_min_interval(Duration::from_secs(3600));
        let mut writes = 0u32;
        campaign.run_with_hook(100, |c| {
            if manager.maybe_checkpoint(c).unwrap() {
                writes += 1;
            }
        });
        assert_eq!(writes, 1, "floor allowed more than the initial write");
        // The postponed marks left the schedule armed, not skipped ahead.
        assert!(CheckpointManager::load(&dir).unwrap().is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_missing_dir_is_none() {
        let dir = std::env::temp_dir().join("bigmap-ckpt-missing-nonexistent");
        assert!(CheckpointManager::load(&dir).unwrap().is_none());
    }

    #[test]
    fn load_rejects_corrupt_file() {
        let dir = std::env::temp_dir().join(format!("bigmap-ckpt-corrupt-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(CHECKPOINT_FILE), "garbage").unwrap();
        let err = CheckpointManager::load(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).unwrap();
    }
}
