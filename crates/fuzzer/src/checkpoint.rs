//! Campaign checkpointing: periodic crash-safe snapshots and resume.
//!
//! Long campaigns die — machines reboot, fleets get rescheduled, workers
//! panic. A checkpoint captures everything a campaign needs to continue
//! *as if the kill never happened*: the queue with its scheduling
//! metadata, the crash/hang corpora with their dedup buckets, the
//! exec/crash counters, the calibrated hang budget, and both RNG stream
//! positions (scheduler and mutator), so the resumed campaign draws the
//! same randomness the dead one would have.
//!
//! The virgin coverage maps are deliberately **not** serialized: they are
//! large, scheme-dependent, and exactly reproducible by re-executing the
//! checkpointed inputs (the interpreter is deterministic). Restore
//! therefore costs one execution per saved input — milliseconds — in
//! exchange for a checkpoint file that stays small and
//! format-independent of the map implementation.
//!
//! The selective-tracing novelty oracle's committed state *is* carried
//! (when non-empty): unlike the virgin maps it is not derivable from the
//! queue alone — it also remembers paths of mutants that were traced and
//! judged `NoNew` — and while dropping it would stay correct (an empty
//! oracle just re-traces everything until re-committed), carrying it
//! preserves the resumed campaign's fast-path hit rate. Always-trace
//! campaigns emit no oracle lines at all.
//!
//! Persistence is crash-safe *and corruption-aware* by construction:
//!
//! * The snapshot is staged in `checkpoint.tmp`, fsynced, and atomically
//!   renamed over `checkpoint`; the directory is fsynced after the
//!   rename, so a kill −9 (or power loss) at any instant leaves either
//!   the previous or the new checkpoint fully on disk.
//! * The v2 file format appends a per-section CRC32 footer (`crc
//!   <section> <hex>`), so torn writes and bit flips that survive the
//!   rename discipline (misbehaving disks, truncated copies) are
//!   *detected* on load rather than silently restoring garbage. v1
//!   files (no checksums) still load via a trusted-legacy path.
//! * The last [`env::ckpt_keep`](bigmap_core::env::ckpt_keep)
//!   generations are retained (`checkpoint`, `checkpoint.1`, …);
//!   [`CheckpointManager::load`] falls back to the newest generation
//!   whose checksums verify, so one corrupt snapshot degrades the
//!   campaign by one checkpoint interval instead of forcing a cold
//!   start.
//!
//! # Examples
//!
//! ```rust
//! use bigmap_core::MapSize;
//! use bigmap_coverage::Instrumentation;
//! use bigmap_fuzzer::{Campaign, CampaignConfig, CheckpointManager};
//! use bigmap_target::{GeneratorConfig, Interpreter};
//!
//! # fn main() -> std::io::Result<()> {
//! let program = GeneratorConfig::default().generate();
//! let inst =
//!     Instrumentation::assign(program.block_count(), program.call_sites, MapSize::K64, 1);
//! let interp = Interpreter::new(&program);
//! let dir = std::env::temp_dir().join(format!("bigmap-ckpt-doc-{}", std::process::id()));
//!
//! let config = CampaignConfig::builder().budget_execs(2_000).build();
//! let mut campaign = Campaign::new(config.clone(), &interp, &inst);
//! campaign.add_seeds(vec![vec![0u8; 32]]);
//! let mut manager = CheckpointManager::new(&dir, 500);
//! let stats = campaign.run_with_hook(250, |c| {
//!     let _ = manager.maybe_checkpoint(c);
//! });
//!
//! // "Kill": start over, resume from the persisted checkpoint instead
//! // of the seeds.
//! let checkpoint = CheckpointManager::load(&dir)?.expect("checkpoint written");
//! assert!(checkpoint.execs > 0 && checkpoint.execs <= stats.execs);
//! let mut resumed = Campaign::new(config, &interp, &inst);
//! resumed.restore(&checkpoint);
//! let final_stats = resumed.run();
//! assert_eq!(final_stats.execs, 2_000);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

use std::fmt::Write as _;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use bigmap_core::Crc32;
use bigmap_target::OracleSnapshot;

use crate::campaign::Campaign;
use crate::faults::{FaultSite, InstanceFaults};
use crate::telemetry::TelemetryEvent;

/// File name of the live (newest) checkpoint inside a checkpoint
/// directory; older generations are `checkpoint.1`, `checkpoint.2`, ….
pub const CHECKPOINT_FILE: &str = "checkpoint";
/// Temp file the snapshot is staged in before the atomic rename.
const CHECKPOINT_TMP: &str = "checkpoint.tmp";
/// Format magic + version written by [`Checkpoint::to_text`].
const MAGIC_V2: &str = "bigmap-checkpoint v2";
/// The pre-checksum format; still parsed, as trusted-legacy (no
/// integrity validation is possible without the footer).
const MAGIC_V1: &str = "bigmap-checkpoint v1";

/// The checksummed sections of a v2 file, in layout order. Every content
/// line belongs to exactly one section; the footer carries one `crc`
/// line per *non-empty* section.
const SECTION_NAMES: [&str; 5] = ["header", "queue", "crash", "hang", "oracle"];

fn section_of(key: &str) -> Option<usize> {
    match key {
        "execs"
        | "wall_nanos"
        | "total_crashes"
        | "hangs"
        | "coverage_unique_crashes"
        | "discovered_running"
        | "rng"
        | "mutator_rng"
        | "hang_budget"
        | "queue_cursor" => Some(0),
        "queue" => Some(1),
        "crash" => Some(2),
        "hang" => Some(3),
        "oracle_buckets" | "oracle_paths" => Some(4),
        _ => None,
    }
}

/// File name of checkpoint generation `index` (0 is the live file).
fn generation_name(index: usize) -> String {
    if index == 0 {
        CHECKPOINT_FILE.to_string()
    } else {
        format!("{CHECKPOINT_FILE}.{index}")
    }
}

/// Parses a directory-entry name back to a generation index.
fn generation_index(name: &str) -> Option<usize> {
    if name == CHECKPOINT_FILE {
        return Some(0);
    }
    let suffix = name.strip_prefix("checkpoint.")?;
    suffix.parse().ok().filter(|&n| n >= 1)
}

/// Generation indices present in `dir`, ascending (newest first). A
/// missing directory reads as no generations.
fn existing_generations(dir: &Path) -> io::Result<Vec<usize>> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut generations = Vec::new();
    for entry in entries {
        let entry = entry?;
        if let Some(index) = entry.file_name().to_str().and_then(generation_index) {
            generations.push(index);
        }
    }
    generations.sort_unstable();
    Ok(generations)
}

/// Fsyncs a directory so a just-renamed entry survives power loss. Best
/// effort: directory handles cannot be fsynced on every platform, and a
/// failure here never outranks the data write that preceded it.
fn sync_dir(dir: &Path) {
    if let Ok(handle) = fs::File::open(dir) {
        let _ = handle.sync_all();
    }
}

/// One queue entry as captured in a checkpoint: the input plus the
/// scheduling metadata that re-execution cannot re-derive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointQueueEntry {
    /// Derivation depth (drives the havoc energy bonus).
    pub depth: usize,
    /// Times the entry had been scheduled (drives skip probabilities and
    /// the deterministic-stage gate).
    pub fuzzed_rounds: usize,
    /// The test-case bytes.
    pub input: Vec<u8>,
}

/// A resumable snapshot of campaign state. Produced by
/// [`Campaign::checkpoint`], consumed by [`Campaign::restore`];
/// serialized by [`Checkpoint::to_text`] / [`Checkpoint::from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Test cases executed when the snapshot was taken.
    pub execs: u64,
    /// Cumulative campaign wall time (nanoseconds), including any prior
    /// resumed segments.
    pub wall_nanos: u64,
    /// Total (non-unique) crashing executions.
    pub total_crashes: u64,
    /// Hanging executions.
    pub hangs: u64,
    /// AFL's coverage-bitmap unique-crash count.
    pub coverage_unique_crashes: u64,
    /// NewEdge verdicts so far (the timeline's coverage unit).
    pub discovered_running: u64,
    /// Scheduler RNG stream position (xoshiro256++ state).
    pub rng: [u64; 4],
    /// Mutator RNG stream position.
    pub mutator_rng: [u64; 4],
    /// Calibrated hang budget in force, if any.
    pub hang_budget: Option<u64>,
    /// The queue's round-robin scheduling position. Without it a resumed
    /// campaign restarts the queue walk at entry 0 and schedules
    /// different parents than the uninterrupted run — the counters and
    /// RNG streams alone don't pin the trajectory. Absent in v1 files
    /// (reads as 0: correct until the first post-resume scheduling
    /// decision, approximate after).
    pub queue_cursor: u64,
    /// The queue, in admission order.
    pub queue: Vec<CheckpointQueueEntry>,
    /// Unique crashes: (Crashwalk bucket, input), in first-sighting order.
    pub crashes: Vec<(u32, Vec<u8>)>,
    /// Hang-triggering inputs, in first-sighting order.
    pub hang_inputs: Vec<Vec<u8>>,
    /// Committed novelty-oracle state (selective-tracing campaigns).
    /// `None` for always-trace campaigns and for campaigns whose oracle
    /// has committed nothing yet — those files are byte-identical to the
    /// pre-oracle format. A resuming campaign that finds no oracle state
    /// starts with an empty oracle, which is the conservative fallback
    /// (every exec re-traces until re-committed).
    pub oracle: Option<OracleSnapshot>,
}

fn hex_encode(bytes: &[u8]) -> String {
    if bytes.is_empty() {
        return "-".to_string();
    }
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(out, "{b:02x}");
    }
    out
}

fn hex_decode(text: &str) -> Result<Vec<u8>, String> {
    if text == "-" {
        return Ok(Vec::new());
    }
    if !text.len().is_multiple_of(2) {
        return Err(format!("odd-length hex payload ({} chars)", text.len()));
    }
    (0..text.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&text[i..i + 2], 16)
                .map_err(|_| format!("bad hex byte at offset {i}"))
        })
        .collect()
}

impl Checkpoint {
    /// Serializes the checkpoint as versioned line-oriented text (v2):
    /// content lines grouped by section, a `crc <section> <hex>` footer
    /// line per non-empty section, then the `end` sentinel. A file
    /// without the sentinel is truncated; a section whose bytes disagree
    /// with its footer checksum is corrupt.
    pub fn to_text(&self) -> String {
        let mut header = String::new();
        let _ = writeln!(header, "execs {}", self.execs);
        let _ = writeln!(header, "wall_nanos {}", self.wall_nanos);
        let _ = writeln!(header, "total_crashes {}", self.total_crashes);
        let _ = writeln!(header, "hangs {}", self.hangs);
        let _ = writeln!(
            header,
            "coverage_unique_crashes {}",
            self.coverage_unique_crashes
        );
        let _ = writeln!(header, "discovered_running {}", self.discovered_running);
        let _ = writeln!(
            header,
            "rng {:016x} {:016x} {:016x} {:016x}",
            self.rng[0], self.rng[1], self.rng[2], self.rng[3]
        );
        let _ = writeln!(
            header,
            "mutator_rng {:016x} {:016x} {:016x} {:016x}",
            self.mutator_rng[0], self.mutator_rng[1], self.mutator_rng[2], self.mutator_rng[3]
        );
        match self.hang_budget {
            Some(budget) => {
                let _ = writeln!(header, "hang_budget {budget}");
            }
            None => {
                let _ = writeln!(header, "hang_budget none");
            }
        }
        let _ = writeln!(header, "queue_cursor {}", self.queue_cursor);
        let mut queue = String::new();
        for entry in &self.queue {
            let _ = writeln!(
                queue,
                "queue {} {} {}",
                entry.depth,
                entry.fuzzed_rounds,
                hex_encode(&entry.input)
            );
        }
        let mut crash = String::new();
        for (bucket, input) in &self.crashes {
            let _ = writeln!(crash, "crash {bucket:08x} {}", hex_encode(input));
        }
        let mut hang = String::new();
        for input in &self.hang_inputs {
            let _ = writeln!(hang, "hang {}", hex_encode(input));
        }
        let mut oracle = String::new();
        if let Some(snap) = &self.oracle {
            let _ = writeln!(oracle, "oracle_buckets {}", hex_encode(&snap.buckets));
            let mut path_bytes = Vec::with_capacity(snap.paths.len() * 8);
            for path in &snap.paths {
                path_bytes.extend_from_slice(&path.to_be_bytes());
            }
            let _ = writeln!(oracle, "oracle_paths {}", hex_encode(&path_bytes));
        }

        let sections = [&header, &queue, &crash, &hang, &oracle];
        let mut out = String::with_capacity(
            MAGIC_V2.len() + sections.iter().map(|s| s.len()).sum::<usize>() + 128,
        );
        let _ = writeln!(out, "{MAGIC_V2}");
        for section in sections {
            out.push_str(section);
        }
        for (name, section) in SECTION_NAMES.iter().zip(sections) {
            if !section.is_empty() {
                let _ = writeln!(
                    out,
                    "crc {name} {:08x}",
                    Crc32::checksum(section.as_bytes())
                );
            }
        }
        let _ = writeln!(out, "end");
        out
    }

    /// Parses a checkpoint from [`Checkpoint::to_text`] output.
    ///
    /// v2 files have their per-section checksums verified; a mismatch —
    /// a torn write or bit flip that survived the rename discipline —
    /// is an error naming the corrupt section. v1 files carry no
    /// checksums and parse as trusted-legacy.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line, a version
    /// mismatch, a missing `end` sentinel (truncated file), or a
    /// section-checksum failure.
    pub fn from_text(text: &str) -> Result<Checkpoint, String> {
        let mut lines = text.lines();
        let checksummed = match lines.next() {
            Some(MAGIC_V2) => true,
            Some(MAGIC_V1) => false,
            _ => {
                return Err(format!(
                    "not a checkpoint file (expected '{MAGIC_V2}' or '{MAGIC_V1}')"
                ))
            }
        };
        let mut ckpt = Checkpoint {
            execs: 0,
            wall_nanos: 0,
            total_crashes: 0,
            hangs: 0,
            coverage_unique_crashes: 0,
            discovered_running: 0,
            rng: [0; 4],
            mutator_rng: [0; 4],
            hang_budget: None,
            queue_cursor: 0,
            queue: Vec::new(),
            crashes: Vec::new(),
            hang_inputs: Vec::new(),
            oracle: None,
        };
        let mut ended = false;
        // Raw bytes of each section as laid out in the file, re-hashed
        // for comparison against the footer's declared checksums.
        let mut section_text: [String; 5] = Default::default();
        let mut declared_crc: [Option<u32>; 5] = [None; 5];
        for (i, line) in lines.enumerate() {
            let lineno = i + 2;
            if ended {
                return Err(format!("line {lineno}: content after 'end' sentinel"));
            }
            let mut fields = line.split_ascii_whitespace();
            let key = fields
                .next()
                .ok_or_else(|| format!("line {lineno}: empty line"))?;
            if let Some(section) = section_of(key) {
                section_text[section].push_str(line);
                section_text[section].push('\n');
            }
            let mut next = |what: &str| {
                fields
                    .next()
                    .ok_or_else(|| format!("line {lineno}: missing {what}"))
                    .map(str::to_string)
            };
            let parse_u64 = |s: String, lineno: usize| {
                s.parse::<u64>()
                    .map_err(|_| format!("line {lineno}: bad integer '{s}'"))
            };
            let parse_state = |fields: &mut dyn Iterator<Item = &str>, lineno: usize| {
                let mut s = [0u64; 4];
                for slot in &mut s {
                    let word = fields
                        .next()
                        .ok_or_else(|| format!("line {lineno}: short rng state"))?;
                    *slot = u64::from_str_radix(word, 16)
                        .map_err(|_| format!("line {lineno}: bad rng word '{word}'"))?;
                }
                Ok::<[u64; 4], String>(s)
            };
            match key {
                "execs" => ckpt.execs = parse_u64(next("value")?, lineno)?,
                "wall_nanos" => ckpt.wall_nanos = parse_u64(next("value")?, lineno)?,
                "total_crashes" => ckpt.total_crashes = parse_u64(next("value")?, lineno)?,
                "hangs" => ckpt.hangs = parse_u64(next("value")?, lineno)?,
                "coverage_unique_crashes" => {
                    ckpt.coverage_unique_crashes = parse_u64(next("value")?, lineno)?;
                }
                "discovered_running" => {
                    ckpt.discovered_running = parse_u64(next("value")?, lineno)?;
                }
                "rng" => ckpt.rng = parse_state(&mut fields, lineno)?,
                "mutator_rng" => ckpt.mutator_rng = parse_state(&mut fields, lineno)?,
                "hang_budget" => {
                    let value = next("value")?;
                    ckpt.hang_budget = if value == "none" {
                        None
                    } else {
                        Some(parse_u64(value, lineno)?)
                    };
                }
                "queue_cursor" => ckpt.queue_cursor = parse_u64(next("value")?, lineno)?,
                "queue" => {
                    let depth = parse_u64(next("depth")?, lineno)? as usize;
                    let fuzzed_rounds = parse_u64(next("fuzzed_rounds")?, lineno)? as usize;
                    let input =
                        hex_decode(&next("input")?).map_err(|e| format!("line {lineno}: {e}"))?;
                    ckpt.queue.push(CheckpointQueueEntry {
                        depth,
                        fuzzed_rounds,
                        input,
                    });
                }
                "crash" => {
                    let bucket_text = next("bucket")?;
                    let bucket = u32::from_str_radix(&bucket_text, 16)
                        .map_err(|_| format!("line {lineno}: bad bucket '{bucket_text}'"))?;
                    let input =
                        hex_decode(&next("input")?).map_err(|e| format!("line {lineno}: {e}"))?;
                    ckpt.crashes.push((bucket, input));
                }
                "hang" => {
                    let input =
                        hex_decode(&next("input")?).map_err(|e| format!("line {lineno}: {e}"))?;
                    ckpt.hang_inputs.push(input);
                }
                "oracle_buckets" => {
                    let buckets =
                        hex_decode(&next("buckets")?).map_err(|e| format!("line {lineno}: {e}"))?;
                    ckpt.oracle
                        .get_or_insert_with(OracleSnapshot::default)
                        .buckets = buckets;
                }
                "oracle_paths" => {
                    let bytes =
                        hex_decode(&next("paths")?).map_err(|e| format!("line {lineno}: {e}"))?;
                    if !bytes.len().is_multiple_of(8) {
                        return Err(format!(
                            "line {lineno}: oracle path payload is {} bytes (not 8-aligned)",
                            bytes.len()
                        ));
                    }
                    ckpt.oracle
                        .get_or_insert_with(OracleSnapshot::default)
                        .paths = bytes
                        .chunks_exact(8)
                        .map(|c| u64::from_be_bytes(c.try_into().unwrap()))
                        .collect();
                }
                "crc" => {
                    if !checksummed {
                        return Err(format!("line {lineno}: crc footer in a v1 checkpoint"));
                    }
                    let name = next("section")?;
                    let section = SECTION_NAMES
                        .iter()
                        .position(|n| *n == name)
                        .ok_or_else(|| format!("line {lineno}: unknown section '{name}'"))?;
                    let value = next("checksum")?;
                    let value = u32::from_str_radix(&value, 16)
                        .map_err(|_| format!("line {lineno}: bad checksum '{value}'"))?;
                    if declared_crc[section].replace(value).is_some() {
                        return Err(format!("line {lineno}: duplicate checksum for '{name}'"));
                    }
                }
                "end" => ended = true,
                other => return Err(format!("line {lineno}: unknown key '{other}'")),
            }
        }
        if !ended {
            return Err("truncated checkpoint (missing 'end' sentinel)".to_string());
        }
        if checksummed {
            for (section, name) in SECTION_NAMES.iter().enumerate() {
                let body = &section_text[section];
                match declared_crc[section] {
                    Some(declared) if body.is_empty() => {
                        return Err(format!(
                            "checksum declared for empty section '{name}' \
                                            ({declared:08x}) — content lines lost"
                        ));
                    }
                    Some(declared) => {
                        let computed = Crc32::checksum(body.as_bytes());
                        if computed != declared {
                            return Err(format!(
                                "section '{name}' checksum mismatch \
                                 (declared {declared:08x}, computed {computed:08x})"
                            ));
                        }
                    }
                    None if !body.is_empty() => {
                        return Err(format!("missing checksum for section '{name}'"));
                    }
                    None => {}
                }
            }
        }
        Ok(ckpt)
    }
}

/// What a fallback-aware checkpoint restore actually loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoreReport {
    /// Generation index the checkpoint came from (0 is the live file;
    /// higher is older).
    pub generation: usize,
    /// Newer generations that were skipped as unreadable or corrupt,
    /// with the reason each was rejected.
    pub skipped: Vec<(usize, String)>,
}

/// Writes periodic checkpoints for one campaign into a directory, via
/// fsynced temp-file + atomic rename, retaining the last
/// [`env::ckpt_keep`](bigmap_core::env::ckpt_keep) generations.
///
/// The manager owns the cadence (every N executions, checked at sync
/// boundaries) and the persistence; the state capture itself is
/// [`Campaign::checkpoint`]. A checkpoint-write failure (real I/O error
/// or an injected [`FaultSite::CheckpointWrite`] /
/// [`FaultSite::DiskFull`] fault) leaves the previous on-disk
/// generations intact — degradation, not corruption. Corruption that
/// slips *past* the write discipline (injected torn writes and bit
/// flips model it) is caught by the v2 section checksums at load time,
/// which then falls back to the newest intact older generation.
#[derive(Debug)]
pub struct CheckpointManager {
    dir: PathBuf,
    every: u64,
    next_at: u64,
    min_interval: Duration,
    last_write: Option<Instant>,
    keep: usize,
}

impl CheckpointManager {
    /// Manager writing into `dir` (created on first write) every `every`
    /// executions. An `every` of 0 checkpoints at every opportunity.
    /// Retains `BIGMAP_CKPT_KEEP` generations (override with
    /// [`CheckpointManager::with_keep`]).
    ///
    /// A stale `checkpoint.tmp` left by a crash mid-publish is removed
    /// here: it was never renamed into place, so it holds a snapshot
    /// that was never trusted and can only confuse directory listings.
    pub fn new(dir: impl Into<PathBuf>, every: u64) -> Self {
        let every = every.max(1);
        let dir = dir.into();
        let _ = fs::remove_file(dir.join(CHECKPOINT_TMP));
        CheckpointManager {
            dir,
            every,
            next_at: every,
            min_interval: Duration::ZERO,
            last_write: None,
            keep: bigmap_core::env::ckpt_keep(),
        }
    }

    /// Overrides the number of generations retained (minimum 1).
    #[must_use]
    pub fn with_keep(mut self, keep: usize) -> Self {
        self.keep = keep.max(1);
        self
    }

    /// Adds a wall-clock floor between snapshots: a cadence mark reached
    /// sooner than `interval` after the previous write is *postponed* to
    /// the next sync boundary past the floor, not skipped. An exec-count
    /// cadence alone lets a fast arm (hundreds of thousands of execs/sec)
    /// checkpoint hundreds of times per second, which turns a sub-percent
    /// safety net into double-digit overhead; the floor bounds the write
    /// rate by wall time no matter the exec rate. The default is no floor
    /// (pure exec cadence, deterministic for tests).
    pub fn with_min_interval(mut self, interval: Duration) -> Self {
        self.min_interval = interval;
        self
    }

    /// The directory checkpoints are written to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Checkpoints `campaign` if it has crossed the next cadence mark.
    /// Returns whether a checkpoint was written. Meant to be called from
    /// a [`Campaign::run_with_hook`] sync hook.
    ///
    /// # Errors
    ///
    /// Propagates write failures (the cadence still advances, so one
    /// failed write costs one checkpoint, not the whole schedule).
    pub fn maybe_checkpoint(&mut self, campaign: &Campaign<'_>) -> io::Result<bool> {
        if campaign.execs() < self.next_at {
            return Ok(false);
        }
        // Postponed, not skipped: next_at is untouched, so the write
        // happens at the first boundary past the wall-clock floor.
        if let Some(last) = self.last_write {
            if last.elapsed() < self.min_interval {
                return Ok(false);
            }
        }
        self.next_at = campaign.execs() + self.every;
        self.last_write = Some(Instant::now());
        self.checkpoint_now(campaign)?;
        Ok(true)
    }

    /// Unconditionally checkpoints `campaign` right now: stage in the
    /// temp file, fsync it, rotate the existing generations up one slot,
    /// atomically rename the temp file into place, fsync the directory.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; an injected
    /// [`FaultSite::CheckpointWrite`] fault surfaces as
    /// [`io::ErrorKind::Other`] and [`FaultSite::DiskFull`] as
    /// [`io::ErrorKind::StorageFull`]. Either way the previous
    /// generations are untouched. Injected [`FaultSite::TornWrite`] and
    /// [`FaultSite::BitFlip`] faults deliberately *succeed* while
    /// publishing a corrupt newest generation — the failure mode the
    /// load-time checksums exist to catch.
    pub fn checkpoint_now(&self, campaign: &Campaign<'_>) -> io::Result<()> {
        // Draw every fault ordinal up front so one site firing never
        // shifts another site's schedule.
        let (fail_write, disk_full, torn, flip) = match campaign.faults() {
            Some(f) => (
                f.fire(FaultSite::CheckpointWrite),
                f.fire(FaultSite::DiskFull),
                f.fire(FaultSite::TornWrite),
                f.fire(FaultSite::BitFlip),
            ),
            None => (false, false, false, false),
        };
        if fail_write {
            return Err(io::Error::other("injected checkpoint write failure"));
        }
        if disk_full {
            return Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "injected storage-full checkpoint write",
            ));
        }
        let text = campaign.checkpoint().to_text();
        fs::create_dir_all(&self.dir)?;
        let tmp = self.dir.join(CHECKPOINT_TMP);
        {
            let mut file = fs::File::create(&tmp)?;
            let bytes = text.as_bytes();
            if torn {
                // Lose the tail and skip the fsync: the kill arrived
                // between write and sync, but the rename still happens.
                file.write_all(&bytes[..bytes.len() / 3])?;
            } else {
                file.write_all(bytes)?;
                file.sync_all()?;
            }
        }
        self.rotate_generations()?;
        fs::rename(&tmp, self.dir.join(CHECKPOINT_FILE))?;
        sync_dir(&self.dir);
        if flip {
            flip_one_bit(&self.dir.join(CHECKPOINT_FILE))?;
        }
        if let Some(tel) = campaign.telemetry() {
            tel.incr(TelemetryEvent::Checkpoint);
        }
        Ok(())
    }

    /// Shifts generation `i` to `i + 1` for every retained slot, newest
    /// last so no generation is ever overwritten before it has been
    /// copied up, and drops generations at or beyond the retention
    /// horizon. A crash anywhere in the shift leaves every surviving
    /// file a complete, verifiable snapshot (possibly under two names).
    fn rotate_generations(&self) -> io::Result<()> {
        for index in existing_generations(&self.dir)? {
            if index + 1 >= self.keep {
                let _ = fs::remove_file(self.dir.join(generation_name(index)));
            }
        }
        for index in (0..self.keep.saturating_sub(1)).rev() {
            let from = self.dir.join(generation_name(index));
            let to = self.dir.join(generation_name(index + 1));
            match fs::rename(&from, &to) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Loads the newest intact checkpoint persisted in `dir`, if any
    /// generation exists: generations are tried newest-first and the
    /// first one whose checksums verify wins.
    ///
    /// # Errors
    ///
    /// I/O errors propagate; if generations exist but *none* is intact,
    /// the error is [`io::ErrorKind::InvalidData`] (a half-written temp
    /// file never contributes — only the atomic rename publishes).
    pub fn load(dir: impl AsRef<Path>) -> io::Result<Option<Checkpoint>> {
        Self::load_with_report(dir, None).map(|loaded| loaded.map(|(ckpt, _)| ckpt))
    }

    /// [`CheckpointManager::load`], plus the [`RestoreReport`] saying
    /// which generation was restored and which newer ones were skipped
    /// as corrupt — the hook for `CheckpointFallback` telemetry.
    ///
    /// `faults` threads an instance's chaos plan into the read path
    /// ([`FaultSite::ShortRead`] truncates a generation's bytes before
    /// parsing, which the checksums then reject).
    ///
    /// # Errors
    ///
    /// Same contract as [`CheckpointManager::load`].
    pub fn load_with_report(
        dir: impl AsRef<Path>,
        faults: Option<&InstanceFaults>,
    ) -> io::Result<Option<(Checkpoint, RestoreReport)>> {
        let dir = dir.as_ref();
        let generations = existing_generations(dir)?;
        if generations.is_empty() {
            return Ok(None);
        }
        let mut skipped: Vec<(usize, String)> = Vec::new();
        for index in generations {
            let path = dir.join(generation_name(index));
            let mut text = match fs::read_to_string(&path) {
                Ok(text) => text,
                Err(e) => {
                    skipped.push((index, format!("unreadable: {e}")));
                    continue;
                }
            };
            if faults.is_some_and(|f| f.fire(FaultSite::ShortRead)) {
                text.truncate(text.len() / 2);
            }
            match Checkpoint::from_text(&text) {
                Ok(ckpt) => {
                    return Ok(Some((
                        ckpt,
                        RestoreReport {
                            generation: index,
                            skipped,
                        },
                    )))
                }
                Err(reason) => skipped.push((index, reason)),
            }
        }
        let summary = skipped
            .iter()
            .map(|(index, reason)| format!("{}: {reason}", generation_name(*index)))
            .collect::<Vec<_>>()
            .join("; ");
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("no intact checkpoint generation ({summary})"),
        ))
    }
}

/// Flips one bit in the middle of `path` in place — the injected
/// silent-media-corruption model behind [`FaultSite::BitFlip`].
fn flip_one_bit(path: &Path) -> io::Result<()> {
    let mut bytes = fs::read(path)?;
    if bytes.is_empty() {
        return Ok(());
    }
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    fs::write(path, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            execs: 12_345,
            wall_nanos: 9_999_999,
            total_crashes: 17,
            hangs: 3,
            coverage_unique_crashes: 5,
            discovered_running: 321,
            rng: [1, u64::MAX, 0xDEAD_BEEF, 42],
            mutator_rng: [7, 8, 9, 10],
            hang_budget: Some(2_500),
            queue_cursor: 11,
            queue: vec![
                CheckpointQueueEntry {
                    depth: 0,
                    fuzzed_rounds: 4,
                    input: b"seed".to_vec(),
                },
                CheckpointQueueEntry {
                    depth: 3,
                    fuzzed_rounds: 0,
                    input: vec![0, 255, 128],
                },
                CheckpointQueueEntry {
                    depth: 1,
                    fuzzed_rounds: 1,
                    input: Vec::new(), // empty inputs must round-trip
                },
            ],
            crashes: vec![(0xABCD_EF01, b"boom".to_vec()), (3, Vec::new())],
            hang_inputs: vec![b"spin".to_vec()],
            oracle: None,
        }
    }

    #[test]
    fn text_round_trip_is_exact() {
        let ckpt = sample();
        let parsed = Checkpoint::from_text(&ckpt.to_text()).expect("round trip");
        assert_eq!(parsed, ckpt);
    }

    #[test]
    fn oracle_state_round_trips() {
        let ckpt = Checkpoint {
            oracle: Some(OracleSnapshot {
                buckets: vec![0b1000_0001, 0, 0xFF],
                paths: vec![0, 1, u64::MAX, 0xDEAD_BEEF_CAFE_F00D],
            }),
            ..sample()
        };
        let parsed = Checkpoint::from_text(&ckpt.to_text()).expect("round trip");
        assert_eq!(parsed, ckpt);
    }

    #[test]
    fn always_trace_checkpoints_keep_the_pre_oracle_format() {
        // `oracle: None` must serialize byte-identically to the v1 format
        // that predates selective tracing, and such files must parse with
        // no oracle state (the conservative empty-oracle resume).
        let text = sample().to_text();
        assert!(!text.contains("oracle"), "no oracle lines when None");
        let parsed = Checkpoint::from_text(&text).unwrap();
        assert_eq!(parsed.oracle, None);
    }

    #[test]
    fn misaligned_oracle_paths_rejected() {
        let mut text = sample().to_text();
        text = text.replace("\nend\n", "\noracle_paths abcd\nend\n");
        assert!(Checkpoint::from_text(&text)
            .unwrap_err()
            .contains("not 8-aligned"));
    }

    #[test]
    fn no_budget_round_trips() {
        let ckpt = Checkpoint {
            hang_budget: None,
            ..sample()
        };
        let parsed = Checkpoint::from_text(&ckpt.to_text()).unwrap();
        assert_eq!(parsed.hang_budget, None);
    }

    #[test]
    fn truncation_is_detected() {
        let text = sample().to_text();
        let cut = text.len() / 2;
        let err = Checkpoint::from_text(&text[..cut]).unwrap_err();
        // Either a mangled line or the missing sentinel — both must fail.
        assert!(!err.is_empty());
        let no_end = text.replace("\nend\n", "\n");
        assert!(Checkpoint::from_text(&no_end)
            .unwrap_err()
            .contains("truncated"));
    }

    #[test]
    fn wrong_magic_rejected() {
        assert!(Checkpoint::from_text("bigmap-checkpoint v99\nend\n").is_err());
        assert!(Checkpoint::from_text("").is_err());
    }

    #[test]
    fn garbage_lines_rejected() {
        let good = sample().to_text();
        let bad = good.replace("execs 12345", "execs twelve");
        assert!(Checkpoint::from_text(&bad).unwrap_err().contains("line"));
        let unknown = good.replace("execs 12345", "frobnicate 12345");
        assert!(Checkpoint::from_text(&unknown)
            .unwrap_err()
            .contains("unknown key"));
    }

    #[test]
    fn hex_codec_round_trips() {
        for payload in [vec![], vec![0u8], vec![0xFF; 33], (0..=255u8).collect()] {
            assert_eq!(hex_decode(&hex_encode(&payload)).unwrap(), payload);
        }
        assert!(hex_decode("abc").is_err());
        assert!(hex_decode("zz").is_err());
    }

    #[test]
    fn min_interval_postpones_extra_writes() {
        use crate::campaign::{Budget, Campaign, CampaignConfig};
        use bigmap_core::MapSize;
        use bigmap_coverage::Instrumentation;
        use bigmap_target::{GeneratorConfig, Interpreter};

        let program = GeneratorConfig {
            seed: 3,
            ..Default::default()
        }
        .generate();
        let inst =
            Instrumentation::assign(program.block_count(), program.call_sites, MapSize::K64, 1);
        let interp = Interpreter::new(&program);
        let dir = std::env::temp_dir().join(format!("bigmap-ckpt-floor-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);

        let mut campaign = Campaign::new(
            CampaignConfig {
                budget: Budget::Execs(400),
                ..Default::default()
            },
            &interp,
            &inst,
        );
        campaign.add_seeds(vec![vec![0u8; 16]]);

        // Cadence of 1 exec but an unreachable wall-clock floor: only the
        // very first cadence mark writes, every later one is postponed.
        let mut manager =
            CheckpointManager::new(&dir, 1).with_min_interval(Duration::from_secs(3600));
        let mut writes = 0u32;
        campaign.run_with_hook(100, |c| {
            if manager.maybe_checkpoint(c).unwrap() {
                writes += 1;
            }
        });
        assert_eq!(writes, 1, "floor allowed more than the initial write");
        // The postponed marks left the schedule armed, not skipped ahead.
        assert!(CheckpointManager::load(&dir).unwrap().is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_missing_dir_is_none() {
        let dir = std::env::temp_dir().join("bigmap-ckpt-missing-nonexistent");
        assert!(CheckpointManager::load(&dir).unwrap().is_none());
    }

    #[test]
    fn v1_files_parse_as_trusted_legacy() {
        // A v1 file is exactly a v2 file minus the crc footer with the
        // old magic; it must load without integrity validation.
        let ckpt = sample();
        let v1: String = ckpt
            .to_text()
            .lines()
            .filter(|line| !line.starts_with("crc "))
            .map(|line| format!("{line}\n"))
            .collect::<String>()
            .replace(MAGIC_V2, MAGIC_V1);
        assert!(!v1.contains("crc "));
        assert_eq!(Checkpoint::from_text(&v1).expect("v1 parses"), ckpt);
        // But a crc footer inside a v1 file is malformed.
        let bad = v1.replace("\nend\n", "\ncrc header 00000000\nend\n");
        assert!(Checkpoint::from_text(&bad).unwrap_err().contains("v1"));
    }

    #[test]
    fn bit_flip_in_any_section_is_detected() {
        // Flip one bit in every byte position of the serialized file;
        // no flipped variant may parse successfully (crc on content,
        // unknown-key/magic errors on structure). This is the property
        // that makes fallback restore trustworthy.
        let text = sample().to_text();
        let bytes = text.as_bytes();
        for pos in 0..bytes.len() {
            let mut flipped = bytes.to_vec();
            flipped[pos] ^= 0x10;
            if flipped == bytes {
                continue;
            }
            if let Ok(text) = String::from_utf8(flipped) {
                assert!(
                    Checkpoint::from_text(&text).is_err(),
                    "bit flip at byte {pos} went undetected"
                );
            }
        }
    }

    #[test]
    fn checksum_mismatch_names_the_section() {
        let text = sample().to_text();
        // Corrupt a queue payload nibble without touching its crc line.
        let corrupted = text.replacen("queue 0 4", "queue 0 5", 1);
        assert_ne!(corrupted, text);
        let err = Checkpoint::from_text(&corrupted).unwrap_err();
        assert!(
            err.contains("'queue'") && err.contains("mismatch"),
            "got: {err}"
        );
    }

    #[test]
    fn missing_section_checksum_rejected() {
        let text = sample().to_text();
        let crc_line = text
            .lines()
            .find(|l| l.starts_with("crc crash"))
            .expect("crash section has a crc line");
        let stripped = text.replace(&format!("{crc_line}\n"), "");
        let err = Checkpoint::from_text(&stripped).unwrap_err();
        assert!(err.contains("missing checksum"), "got: {err}");
    }

    #[test]
    fn stale_tmp_is_removed_on_manager_startup() {
        let dir = std::env::temp_dir().join(format!("bigmap-ckpt-staletmp-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let tmp = dir.join(CHECKPOINT_TMP);
        fs::write(&tmp, "half-written snapshot from a dead process").unwrap();
        let manager = CheckpointManager::new(&dir, 100);
        assert!(!tmp.exists(), "stale checkpoint.tmp must be cleaned up");
        assert_eq!(manager.dir(), dir.as_path());
        // And a temp file never masquerades as a generation.
        assert!(CheckpointManager::load(&dir).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn generations_rotate_and_fall_back() {
        let dir = std::env::temp_dir().join(format!("bigmap-ckpt-gens-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        // Publish three snapshots by hand through the same rotation the
        // manager uses (exercised end-to-end in tests/durability_chaos).
        let manager = CheckpointManager::new(&dir, 1).with_keep(2);
        for execs in [100u64, 200, 300] {
            let snapshot = Checkpoint { execs, ..sample() };
            fs::write(dir.join(CHECKPOINT_TMP), snapshot.to_text()).unwrap();
            manager.rotate_generations().unwrap();
            fs::rename(dir.join(CHECKPOINT_TMP), dir.join(CHECKPOINT_FILE)).unwrap();
        }
        // keep=2: the 100-exec generation aged out.
        assert!(dir.join("checkpoint").exists());
        assert!(dir.join("checkpoint.1").exists());
        assert!(!dir.join("checkpoint.2").exists());
        let (ckpt, report) = CheckpointManager::load_with_report(&dir, None)
            .unwrap()
            .expect("newest loads");
        assert_eq!((ckpt.execs, report.generation), (300, 0));
        assert!(report.skipped.is_empty());

        // Corrupt the newest generation: restore falls back to the
        // previous one and reports the skip.
        fs::write(dir.join("checkpoint"), "torn garbage").unwrap();
        let (ckpt, report) = CheckpointManager::load_with_report(&dir, None)
            .unwrap()
            .expect("fallback loads");
        assert_eq!((ckpt.execs, report.generation), (200, 1));
        assert_eq!(report.skipped.len(), 1);
        assert_eq!(report.skipped[0].0, 0);
        // Plain load() hides the bookkeeping but returns the same data.
        assert_eq!(CheckpointManager::load(&dir).unwrap().unwrap().execs, 200);

        // Corrupt every generation: InvalidData naming both.
        fs::write(dir.join("checkpoint.1"), "also garbage").unwrap();
        let err = CheckpointManager::load(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checkpoint.1"), "got: {err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_rejects_corrupt_file() {
        let dir = std::env::temp_dir().join(format!("bigmap-ckpt-corrupt-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(CHECKPOINT_FILE), "garbage").unwrap();
        let err = CheckpointManager::load(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).unwrap();
    }
}
