//! AFL-style hang-budget calibration.
//!
//! AFL does not run with a fixed execution timeout: during seed
//! calibration it measures each seed's execution time and sets the
//! campaign timeout to a multiple of the observed cost (clamped to sane
//! bounds). The deterministic interpreter's analogue of time is the
//! *step count* — one step per executed block — so calibration here
//! observes the step counts of the seed executions and derives a step
//! budget: `p99 × multiplier`, clamped to `[floor, ceiling]`.
//!
//! The percentile is the nearest-rank p99, not the mean: a skewed seed
//! corpus (many short seeds, one legitimately long one) drags the mean
//! far below its own longest member, and a mean-derived budget can then
//! misclassify healthy seeds as hangs from the first post-calibration
//! exec. The p99 tracks the top of the observed distribution instead;
//! for fewer than 100 observations it degrades to the maximum — with no
//! tail to measure, calibration stays generous rather than guessing one.
//! The derived budget is never zero, even with a zero floor and all-zero
//! observations (a zero budget would declare every execution a hang).
//!
//! A calibrated budget is strictly tighter than the configured
//! `ExecConfig::max_steps` ceiling, which turns "runaway but not
//! planted-hang" inputs into [`bigmap_target::ExecOutcome::Hang`] early
//! instead of burning a million steps each. Executions cut off by the
//! calibrated budget (rather than the configured one) are counted under
//! [`crate::telemetry::TelemetryEvent::HangBudgetExceeded`].

/// Policy for deriving a step budget from observed seed step counts.
///
/// The defaults mirror AFL's `EXEC_TM_ROUND` spirit: 5× the observed
/// p99, never below 1 000 steps (so trivially small seeds don't starve
/// mutants that legitimately run longer), never above the interpreter's
/// own default ceiling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HangBudget {
    /// Budget = p99 observed steps × this factor.
    pub multiplier: f64,
    /// Lower clamp on the derived budget (steps).
    pub floor: u64,
    /// Upper clamp on the derived budget (steps).
    pub ceiling: u64,
}

impl Default for HangBudget {
    fn default() -> Self {
        HangBudget {
            multiplier: 5.0,
            floor: 1_000,
            ceiling: 1_000_000,
        }
    }
}

impl HangBudget {
    /// Derives the step budget from the observed per-seed step counts.
    ///
    /// Returns `None` when there are no observations (an empty seed set
    /// leaves the configured `max_steps` in force — there is nothing to
    /// calibrate against).
    pub fn derive(&self, observed_steps: &[u64]) -> Option<u64> {
        if observed_steps.is_empty() {
            return None;
        }
        let mut sorted = observed_steps.to_vec();
        sorted.sort_unstable();
        // Nearest-rank p99 in integer math: rank = ⌈0.99·n⌉, 1-based.
        // n = 1 gives rank 1 (the sole observation); any n < 100 gives
        // rank n (the maximum).
        let rank = (sorted.len() * 99).div_ceil(100).max(1);
        let p99 = sorted[rank - 1];
        let scaled = (p99 as f64 * self.multiplier).ceil();
        // f64→u64 saturates NaN/negatives to 0 and overlarge to MAX;
        // the clamp below brings either pathological edge back in range.
        let budget = if scaled.is_finite() && scaled >= 0.0 {
            scaled.min(u64::MAX as f64) as u64
        } else {
            self.ceiling
        };
        // A floor of at least 1: a zero budget (zero floor and all-zero
        // observations) would turn every execution into a hang.
        let floor = self.floor.max(1);
        Some(budget.clamp(floor, self.ceiling.max(floor)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_observations_leave_budget_unset() {
        assert_eq!(HangBudget::default().derive(&[]), None);
    }

    #[test]
    fn budget_is_p99_times_multiplier() {
        let policy = HangBudget {
            multiplier: 3.0,
            floor: 0,
            ceiling: u64::MAX,
        };
        // n = 3 < 100: the p99 is the maximum observation (300).
        assert_eq!(policy.derive(&[100, 200, 300]), Some(900));
        // n = 200: rank ⌈0.99·200⌉ = 198 → the 198th smallest of
        // 1..=200 is 198.
        let observed: Vec<u64> = (1..=200).collect();
        assert_eq!(policy.derive(&observed), Some(594));
    }

    #[test]
    fn single_observation_calibrates_to_itself() {
        let policy = HangBudget {
            multiplier: 1.0,
            floor: 0,
            ceiling: u64::MAX,
        };
        assert_eq!(policy.derive(&[7]), Some(7));
    }

    #[test]
    fn small_samples_use_the_maximum() {
        let policy = HangBudget {
            multiplier: 1.0,
            floor: 0,
            ceiling: u64::MAX,
        };
        for n in [2usize, 10, 50, 99] {
            let observed: Vec<u64> = (1..=n as u64).collect();
            assert_eq!(policy.derive(&observed), Some(n as u64), "n = {n}");
        }
        // A skewed corpus: one long seed among many short ones must not
        // be calibrated out of its own budget (the mean-based bug).
        let mut skewed = vec![10u64; 98];
        skewed.push(100_000);
        assert_eq!(policy.derive(&skewed), Some(100_000));
    }

    #[test]
    fn all_equal_observations_do_not_panic() {
        let policy = HangBudget {
            multiplier: 5.0,
            floor: 0,
            ceiling: u64::MAX,
        };
        assert_eq!(policy.derive(&[42; 150]), Some(210));
    }

    #[test]
    fn zero_observations_never_yield_zero_budget() {
        let policy = HangBudget {
            multiplier: 5.0,
            floor: 0,
            ceiling: u64::MAX,
        };
        // All-zero step counts with a zero floor: the budget still must
        // not be zero, or every subsequent exec would read as a hang.
        assert_eq!(policy.derive(&[0, 0, 0]), Some(1));
    }

    #[test]
    fn floor_and_ceiling_clamp() {
        let policy = HangBudget {
            multiplier: 5.0,
            floor: 1_000,
            ceiling: 2_000,
        };
        assert_eq!(policy.derive(&[10]), Some(1_000), "floor applies");
        assert_eq!(policy.derive(&[10_000]), Some(2_000), "ceiling applies");
    }

    #[test]
    fn fractional_budgets_round_up() {
        let policy = HangBudget {
            multiplier: 0.5,
            floor: 0,
            ceiling: u64::MAX,
        };
        // p99 of [3] is 3; 3 × 0.5 = 1.5 → ceil to 2.
        assert_eq!(policy.derive(&[3]), Some(2));
    }

    #[test]
    fn default_policy_is_sane() {
        let policy = HangBudget::default();
        // A typical benchmark seed runs a few hundred blocks.
        let budget = policy.derive(&[400, 600]).unwrap();
        assert_eq!(budget, 3_000);
        assert!(budget >= policy.floor && budget <= policy.ceiling);
    }

    #[test]
    fn inverted_clamp_bounds_do_not_panic() {
        let policy = HangBudget {
            multiplier: 1.0,
            floor: 5_000,
            ceiling: 10, // ceiling below floor: floor wins
        };
        assert_eq!(policy.derive(&[100]), Some(5_000));
    }
}
