//! AFL-style hang-budget calibration.
//!
//! AFL does not run with a fixed execution timeout: during seed
//! calibration it measures each seed's execution time and sets the
//! campaign timeout to a multiple of the observed average (clamped to
//! sane bounds). The deterministic interpreter's analogue of time is the
//! *step count* — one step per executed block — so calibration here
//! observes the step counts of the seed executions and derives a step
//! budget: `mean × multiplier`, clamped to `[floor, ceiling]`.
//!
//! A calibrated budget is strictly tighter than the configured
//! `ExecConfig::max_steps` ceiling, which turns "runaway but not
//! planted-hang" inputs into [`bigmap_target::ExecOutcome::Hang`] early
//! instead of burning a million steps each. Executions cut off by the
//! calibrated budget (rather than the configured one) are counted under
//! [`crate::telemetry::TelemetryEvent::HangBudgetExceeded`].

/// Policy for deriving a step budget from observed seed step counts.
///
/// The defaults mirror AFL's `EXEC_TM_ROUND` spirit: 5× the observed
/// mean, never below 1 000 steps (so trivially small seeds don't starve
/// mutants that legitimately run longer), never above the interpreter's
/// own default ceiling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HangBudget {
    /// Budget = mean observed steps × this factor.
    pub multiplier: f64,
    /// Lower clamp on the derived budget (steps).
    pub floor: u64,
    /// Upper clamp on the derived budget (steps).
    pub ceiling: u64,
}

impl Default for HangBudget {
    fn default() -> Self {
        HangBudget {
            multiplier: 5.0,
            floor: 1_000,
            ceiling: 1_000_000,
        }
    }
}

impl HangBudget {
    /// Derives the step budget from the observed per-seed step counts.
    ///
    /// Returns `None` when there are no observations (an empty seed set
    /// leaves the configured `max_steps` in force — there is nothing to
    /// calibrate against).
    pub fn derive(&self, observed_steps: &[u64]) -> Option<u64> {
        if observed_steps.is_empty() {
            return None;
        }
        let sum: u128 = observed_steps.iter().map(|&s| s as u128).sum();
        let mean = sum as f64 / observed_steps.len() as f64;
        let scaled = (mean * self.multiplier).ceil();
        // f64→u64 saturates NaN/negatives to 0 and overlarge to MAX;
        // the clamp below brings either pathological edge back in range.
        let budget = if scaled.is_finite() && scaled >= 0.0 {
            scaled.min(u64::MAX as f64) as u64
        } else {
            self.ceiling
        };
        Some(budget.clamp(self.floor, self.ceiling.max(self.floor)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_observations_leave_budget_unset() {
        assert_eq!(HangBudget::default().derive(&[]), None);
    }

    #[test]
    fn budget_is_mean_times_multiplier() {
        let policy = HangBudget {
            multiplier: 3.0,
            floor: 0,
            ceiling: u64::MAX,
        };
        assert_eq!(policy.derive(&[100, 200, 300]), Some(600));
    }

    #[test]
    fn floor_and_ceiling_clamp() {
        let policy = HangBudget {
            multiplier: 5.0,
            floor: 1_000,
            ceiling: 2_000,
        };
        assert_eq!(policy.derive(&[10]), Some(1_000), "floor applies");
        assert_eq!(policy.derive(&[10_000]), Some(2_000), "ceiling applies");
    }

    #[test]
    fn fractional_means_round_up() {
        let policy = HangBudget {
            multiplier: 1.0,
            floor: 0,
            ceiling: u64::MAX,
        };
        // mean of 1 and 2 is 1.5 → ceil to 2.
        assert_eq!(policy.derive(&[1, 2]), Some(2));
    }

    #[test]
    fn default_policy_is_sane() {
        let policy = HangBudget::default();
        // A typical benchmark seed runs a few hundred blocks.
        let budget = policy.derive(&[400, 600]).unwrap();
        assert_eq!(budget, 2_500);
        assert!(budget >= policy.floor && budget <= policy.ceiling);
    }

    #[test]
    fn inverted_clamp_bounds_do_not_panic() {
        let policy = HangBudget {
            multiplier: 1.0,
            floor: 5_000,
            ceiling: 10, // ceiling below floor: floor wins
        };
        assert_eq!(policy.derive(&[100]), Some(5_000));
    }
}
