//! Stacking several metrics into one coverage map (§V-C).
//!
//! The paper's Table III experiment composes laf-intel (a target transform)
//! with N-gram coverage; §VI notes metrics "can be stacked, further
//! increasing the collision rate". [`MetricStack`] is that stacking: every
//! constituent metric observes the full event stream and all emitted keys
//! land in the same map. Each constituent's key stream is decorrelated with
//! a per-slot salt so that, e.g., block coverage and edge coverage do not
//! systematically collide on small IDs.

use crate::event::TraceEvent;
use crate::metric::{CoverageMetric, MetricKind};

/// A stack of coverage metrics sharing one coverage map.
///
/// # Examples
///
/// ```rust
/// use bigmap_coverage::{BlockCoverage, CoverageMetric, EdgeHitCount, MetricStack, TraceEvent};
///
/// let mut stack = MetricStack::new()
///     .with(Box::new(EdgeHitCount::new()))
///     .with(Box::new(BlockCoverage::new()));
/// stack.begin_execution();
///
/// let mut keys = Vec::new();
/// stack.on_event(TraceEvent::Block(4), &mut |k| keys.push(k));
/// assert_eq!(keys.len(), 2); // one key from each constituent
/// ```
#[derive(Default)]
pub struct MetricStack {
    metrics: Vec<Box<dyn CoverageMetric>>,
}

impl std::fmt::Debug for MetricStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricStack")
            .field(
                "metrics",
                &self.metrics.iter().map(|m| m.kind()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl MetricStack {
    /// Creates an empty stack. An empty stack emits no keys.
    pub fn new() -> Self {
        MetricStack::default()
    }

    /// Adds a constituent metric (builder style).
    #[must_use]
    pub fn with(mut self, metric: Box<dyn CoverageMetric>) -> Self {
        self.metrics.push(metric);
        self
    }

    /// Number of constituent metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the stack has no constituents.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// The kinds of the constituent metrics, in order.
    pub fn kinds(&self) -> Vec<MetricKind> {
        self.metrics.iter().map(|m| m.kind()).collect()
    }

    #[inline]
    fn salt(slot: usize) -> u32 {
        // Golden-ratio sequence: distinct, well-spread 32-bit salts.
        (slot as u32).wrapping_mul(0x9E37_79B9)
    }
}

impl CoverageMetric for MetricStack {
    fn kind(&self) -> MetricKind {
        MetricKind::Stack
    }

    fn begin_execution(&mut self) {
        for m in &mut self.metrics {
            m.begin_execution();
        }
    }

    fn on_event(&mut self, event: TraceEvent, sink: &mut dyn FnMut(u32)) {
        for (slot, m) in self.metrics.iter_mut().enumerate() {
            let salt = Self::salt(slot);
            m.on_event(event, &mut |key| sink(key ^ salt));
        }
    }

    fn pressure_factor(&self) -> f64 {
        self.metrics.iter().map(|m| m.pressure_factor()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BlockCoverage, EdgeHitCount, NGram};

    fn demo_stack() -> MetricStack {
        MetricStack::new()
            .with(Box::new(EdgeHitCount::new()))
            .with(Box::new(NGram::new(3).unwrap()))
    }

    #[test]
    fn empty_stack_is_silent() {
        let mut stack = MetricStack::new();
        assert!(stack.is_empty());
        let mut n = 0;
        stack.on_event(TraceEvent::Block(1), &mut |_| n += 1);
        assert_eq!(n, 0);
        assert_eq!(stack.pressure_factor(), 0.0);
    }

    #[test]
    fn each_constituent_contributes() {
        let mut stack = demo_stack();
        assert_eq!(stack.len(), 2);
        stack.begin_execution();
        let mut keys = Vec::new();
        stack.on_event(TraceEvent::Block(10), &mut |k| keys.push(k));
        assert_eq!(keys.len(), 2);
    }

    #[test]
    fn kinds_reported_in_order() {
        let stack = demo_stack();
        assert_eq!(stack.kinds(), vec![MetricKind::Edge, MetricKind::NGram(3)]);
        assert_eq!(stack.kind(), MetricKind::Stack);
    }

    #[test]
    fn salting_decorrelates_identical_constituents() {
        // Two copies of block coverage: without salting every key would be
        // emitted twice to the same slot (doubling hit counts); with
        // salting they land on distinct slots.
        let mut stack = MetricStack::new()
            .with(Box::new(BlockCoverage::new()))
            .with(Box::new(BlockCoverage::new()));
        stack.begin_execution();
        let mut keys = Vec::new();
        stack.on_event(TraceEvent::Block(123), &mut |k| keys.push(k));
        assert_eq!(keys.len(), 2);
        assert_ne!(keys[0], keys[1]);
    }

    #[test]
    fn pressure_sums() {
        let stack = demo_stack();
        let expected =
            EdgeHitCount::new().pressure_factor() + NGram::new(3).unwrap().pressure_factor();
        assert_eq!(stack.pressure_factor(), expected);
    }

    #[test]
    fn begin_execution_propagates() {
        let mut stack = demo_stack();
        stack.begin_execution();
        let mut first = Vec::new();
        stack.on_event(TraceEvent::Block(9), &mut |k| first.push(k));
        stack.on_event(TraceEvent::Block(11), &mut |_| {});
        stack.begin_execution();
        let mut second = Vec::new();
        stack.on_event(TraceEvent::Block(9), &mut |k| second.push(k));
        assert_eq!(first, second);
    }

    #[test]
    fn debug_lists_constituents() {
        let text = format!("{:?}", demo_stack());
        assert!(text.contains("Edge"));
        assert!(text.contains("NGram"));
    }
}
