//! AFL's edge hit-count metric (the paper's Listing 1).

use crate::event::TraceEvent;
use crate::metric::{CoverageMetric, MetricKind};

/// Computes the edge ID for a `src -> dst` transition:
/// `E_XY = (B_X >> 1) ^ B_Y`.
///
/// The shift preserves edge directionality (`E_XY != E_YX`) and
/// distinguishes distinct tight self-loops (`E_XX != E_YY != 0`),
/// per §II-A2 of the paper.
///
/// # Examples
///
/// ```rust
/// use bigmap_coverage::edge_key;
///
/// // Directionality: A->B and B->A hash differently.
/// assert_ne!(edge_key(10, 20), edge_key(20, 10));
/// // Distinct self-loops hash differently, and not to zero.
/// assert_ne!(edge_key(10, 10), edge_key(20, 20));
/// assert_ne!(edge_key(10, 10), 0);
/// ```
#[inline]
pub fn edge_key(src: u32, dst: u32) -> u32 {
    (src >> 1) ^ dst
}

/// AFL's default coverage metric: one key per executed edge, keyed by
/// [`edge_key`] over the instrumented block IDs. The first block of an
/// execution forms an edge from the virtual entry block 0.
#[derive(Debug, Clone, Default)]
pub struct EdgeHitCount {
    prev_block: u32,
}

impl EdgeHitCount {
    /// Creates the metric.
    pub fn new() -> Self {
        EdgeHitCount::default()
    }
}

impl CoverageMetric for EdgeHitCount {
    fn kind(&self) -> MetricKind {
        MetricKind::Edge
    }

    fn begin_execution(&mut self) {
        self.prev_block = 0;
    }

    #[inline]
    fn on_event(&mut self, event: TraceEvent, sink: &mut dyn FnMut(u32)) {
        if let TraceEvent::Block(id) = event {
            sink(edge_key(self.prev_block, id));
            self.prev_block = id;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn keys_for(blocks: &[u32]) -> Vec<u32> {
        let mut metric = EdgeHitCount::new();
        metric.begin_execution();
        let mut keys = Vec::new();
        for &b in blocks {
            metric.on_event(TraceEvent::Block(b), &mut |k| keys.push(k));
        }
        keys
    }

    #[test]
    fn one_key_per_block_event() {
        assert_eq!(keys_for(&[5, 9, 5]).len(), 3);
    }

    #[test]
    fn matches_listing_one() {
        let keys = keys_for(&[8, 12]);
        assert_eq!(keys[0], edge_key(0, 8));
        assert_eq!(keys[1], edge_key(8, 12)); // (8 >> 1) ^ 12 = 4 ^ 12 = 8
        assert_eq!(keys[1], 8);
    }

    #[test]
    fn ignores_call_and_return() {
        let mut metric = EdgeHitCount::new();
        metric.begin_execution();
        let mut count = 0;
        metric.on_event(TraceEvent::Call(1), &mut |_| count += 1);
        metric.on_event(TraceEvent::Return, &mut |_| count += 1);
        assert_eq!(count, 0);
    }

    #[test]
    fn begin_execution_resets_prev() {
        let mut metric = EdgeHitCount::new();
        let mut first = Vec::new();
        metric.begin_execution();
        metric.on_event(TraceEvent::Block(42), &mut |k| first.push(k));
        metric.on_event(TraceEvent::Block(7), &mut |_| {});
        let mut second = Vec::new();
        metric.begin_execution();
        metric.on_event(TraceEvent::Block(42), &mut |k| second.push(k));
        assert_eq!(first, second, "entry edge must be reproducible");
    }

    #[test]
    fn kind_and_pressure() {
        let metric = EdgeHitCount::new();
        assert_eq!(metric.kind(), MetricKind::Edge);
        assert_eq!(metric.pressure_factor(), 1.0);
    }

    proptest! {
        #[test]
        fn same_trace_same_keys(blocks in prop::collection::vec(any::<u32>(), 0..200)) {
            prop_assert_eq!(keys_for(&blocks), keys_for(&blocks));
        }

        #[test]
        fn reversed_edges_differ(a in 1u32..u32::MAX, b in 1u32..u32::MAX) {
            prop_assume!(a != b);
            // Directionality claim of §II-A2. (Holds except when
            // (a>>1)^b == (b>>1)^a, which is measure-zero; assume it away.)
            prop_assume!((a >> 1) ^ b != (b >> 1) ^ a);
            prop_assert_ne!(edge_key(a, b), edge_key(b, a));
        }
    }
}
