//! Trace events emitted by an instrumented target.

/// One instrumentation event during a target execution.
///
/// IDs are the *instrumented* IDs (already assigned by
/// [`crate::Instrumentation`]), not structural program indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceEvent {
    /// Control entered a basic block with the given instrumented ID.
    Block(u32),
    /// A call instruction at the given instrumented call-site ID executed.
    /// Only context-sensitive metrics react to this.
    Call(u32),
    /// The matching return executed.
    Return,
}

impl TraceEvent {
    /// Whether this event is a basic-block entry.
    #[inline]
    pub fn is_block(self) -> bool {
        matches!(self, TraceEvent::Block(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_predicate() {
        assert!(TraceEvent::Block(1).is_block());
        assert!(!TraceEvent::Call(1).is_block());
        assert!(!TraceEvent::Return.is_block());
    }
}
