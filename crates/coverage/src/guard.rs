//! Static edge-guard instrumentation (`trace-pc-guard` style, §II-A2).
//!
//! AFL's alternative instrumentation path lets the compiler assign one
//! guard per *static edge* — sequential IDs, so guards never collide with
//! each other. The cost, per the paper: "this method cannot detect
//! indirect edges as the target basic block information is unavailable at
//! compile time".
//!
//! [`StaticEdgeTable`] assigns sequential guard IDs to a program's direct
//! static edges; [`GuardTracker`] replays an execution's structural block
//! stream against the table, emitting one coverage key per guarded edge
//! and *dropping* transitions with no guard (the indirect ones) — exactly
//! the trade this instrumentation makes.

use std::collections::HashMap;

/// Sequentially numbered guards over a program's direct static edges.
///
/// # Examples
///
/// ```rust
/// use bigmap_coverage::guard::StaticEdgeTable;
///
/// // A diamond CFG's direct edges.
/// let table = StaticEdgeTable::new(&[(0, 1), (0, 2), (1, 3), (2, 3)]);
/// assert_eq!(table.guard_count(), 4);
/// assert_eq!(table.guard_of(0, 1), Some(0));
/// assert_eq!(table.guard_of(3, 0), None); // unguarded transition
/// ```
#[derive(Debug, Clone)]
pub struct StaticEdgeTable {
    guards: HashMap<(usize, usize), u32>,
}

impl StaticEdgeTable {
    /// Builds the table: edge `i` of the (deduplicated) input list gets
    /// guard ID `i`.
    pub fn new(direct_edges: &[(usize, usize)]) -> Self {
        let mut guards = HashMap::with_capacity(direct_edges.len());
        for &edge in direct_edges {
            let next = guards.len() as u32;
            guards.entry(edge).or_insert(next);
        }
        StaticEdgeTable { guards }
    }

    /// Number of guards (distinct direct edges).
    pub fn guard_count(&self) -> usize {
        self.guards.len()
    }

    /// The guard ID of a structural edge, if it is guarded.
    pub fn guard_of(&self, src: usize, dst: usize) -> Option<u32> {
        self.guards.get(&(src, dst)).copied()
    }
}

/// Per-execution state for guard-based coverage: tracks the previous
/// structural block and emits the guard ID of each guarded transition.
///
/// Unlike the [`crate::CoverageMetric`] family (which consumes
/// *instrumented* IDs), the tracker consumes structural block indices —
/// it models the compiler inserting a guard on the edge itself, so no
/// runtime hashing (and no hash collisions) is involved. Guard IDs are
/// dense in `[0, guard_count)`, so a map of at least `guard_count` bytes
/// is collision-free by construction.
#[derive(Debug, Clone)]
pub struct GuardTracker<'t> {
    table: &'t StaticEdgeTable,
    prev: Option<usize>,
    dropped: u64,
}

impl<'t> GuardTracker<'t> {
    /// Creates a tracker over `table`.
    pub fn new(table: &'t StaticEdgeTable) -> Self {
        GuardTracker {
            table,
            prev: None,
            dropped: 0,
        }
    }

    /// Resets per-execution state (call before each run).
    pub fn begin_execution(&mut self) {
        self.prev = None;
    }

    /// Processes a structural block entry, emitting the edge's guard ID
    /// through `sink` if the transition is guarded. Unguarded (indirect)
    /// transitions are counted in [`GuardTracker::dropped_edges`] — the
    /// coverage this instrumentation cannot see.
    pub fn on_block(&mut self, global_block: usize, sink: &mut dyn FnMut(u32)) {
        if let Some(prev) = self.prev {
            match self.table.guard_of(prev, global_block) {
                Some(guard) => sink(guard),
                None => self.dropped += 1,
            }
        }
        self.prev = Some(global_block);
    }

    /// Number of executed transitions that had no guard (cumulative over
    /// the tracker's lifetime).
    pub fn dropped_edges(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_dense_ids() {
        let table = StaticEdgeTable::new(&[(0, 1), (1, 2), (2, 3)]);
        let ids: Vec<u32> = (0..3).map(|i| table.guard_of(i, i + 1).unwrap()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2], "IDs must be dense and unique");
    }

    #[test]
    fn duplicate_edges_get_one_guard() {
        let table = StaticEdgeTable::new(&[(0, 1), (0, 1), (1, 2)]);
        assert_eq!(table.guard_count(), 2);
    }

    #[test]
    fn tracker_emits_guards_and_counts_drops() {
        let table = StaticEdgeTable::new(&[(0, 1), (1, 2)]);
        let mut tracker = GuardTracker::new(&table);
        tracker.begin_execution();
        let mut keys = Vec::new();
        // Path 0 -> 1 -> 5 (unguarded) -> ... prev becomes 5 ... -> but
        // feed 0 -> 1 -> 2 first.
        for b in [0usize, 1, 2] {
            tracker.on_block(b, &mut |k| keys.push(k));
        }
        assert_eq!(keys, vec![0, 1]);
        assert_eq!(tracker.dropped_edges(), 0);

        tracker.begin_execution();
        keys.clear();
        for b in [0usize, 2] {
            tracker.on_block(b, &mut |k| keys.push(k));
        }
        assert!(keys.is_empty());
        assert_eq!(tracker.dropped_edges(), 1, "0->2 is unguarded");
    }

    #[test]
    fn begin_execution_clears_prev() {
        let table = StaticEdgeTable::new(&[(1, 0)]);
        let mut tracker = GuardTracker::new(&table);
        tracker.begin_execution();
        let mut n = 0;
        tracker.on_block(1, &mut |_| n += 1);
        tracker.begin_execution();
        // Without the reset this would emit guard (1, 0).
        tracker.on_block(0, &mut |_| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn guard_ids_fit_a_map_of_guard_count_bytes() {
        let edges: Vec<(usize, usize)> = (0..1000).map(|i| (i, i + 1)).collect();
        let table = StaticEdgeTable::new(&edges);
        for &(s, d) in &edges {
            assert!((table.guard_of(s, d).unwrap() as usize) < table.guard_count());
        }
    }
}
