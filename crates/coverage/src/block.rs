//! Plain basic-block coverage (libFuzzer/Honggfuzz-style).

use crate::event::TraceEvent;
use crate::metric::{CoverageMetric, MetricKind};

/// Basic-block coverage: one key per executed block, keyed by the block's
/// instrumented ID. The coarsest metric in the suite; included because the
/// paper positions BigMap as metric-agnostic and libFuzzer/Honggfuzz use
/// exactly this.
///
/// # Examples
///
/// ```rust
/// use bigmap_coverage::{BlockCoverage, CoverageMetric, TraceEvent};
///
/// let mut metric = BlockCoverage::new();
/// metric.begin_execution();
/// let mut keys = Vec::new();
/// metric.on_event(TraceEvent::Block(77), &mut |k| keys.push(k));
/// assert_eq!(keys, vec![77]);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockCoverage;

impl BlockCoverage {
    /// Creates the metric.
    pub fn new() -> Self {
        BlockCoverage
    }
}

impl CoverageMetric for BlockCoverage {
    fn kind(&self) -> MetricKind {
        MetricKind::Block
    }

    fn begin_execution(&mut self) {}

    #[inline]
    fn on_event(&mut self, event: TraceEvent, sink: &mut dyn FnMut(u32)) {
        if let TraceEvent::Block(id) = event {
            sink(id);
        }
    }

    fn pressure_factor(&self) -> f64 {
        // Blocks ≈ fewer keys than edges.
        0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_block_ids_verbatim() {
        let mut metric = BlockCoverage::new();
        metric.begin_execution();
        let mut keys = Vec::new();
        for id in [3u32, 3, 9] {
            metric.on_event(TraceEvent::Block(id), &mut |k| keys.push(k));
        }
        assert_eq!(keys, vec![3, 3, 9]);
    }

    #[test]
    fn stateless_across_executions() {
        let mut metric = BlockCoverage::new();
        metric.begin_execution();
        let mut a = Vec::new();
        metric.on_event(TraceEvent::Block(1), &mut |k| a.push(k));
        metric.begin_execution();
        let mut b = Vec::new();
        metric.on_event(TraceEvent::Block(1), &mut |k| b.push(k));
        assert_eq!(a, b);
    }

    #[test]
    fn ignores_non_block_events() {
        let mut metric = BlockCoverage::new();
        let mut n = 0;
        metric.on_event(TraceEvent::Call(5), &mut |_| n += 1);
        metric.on_event(TraceEvent::Return, &mut |_| n += 1);
        assert_eq!(n, 0);
    }
}
