//! Compile-time random ID assignment (the paper's Listing 1, line 1).
//!
//! AFL's instrumentation assigns every basic block a random ID drawn
//! uniformly from `[0, MAP_SIZE)` **at compile time**. Two blocks can draw
//! the same ID — that is the *block-ID collision* source of coverage
//! ambiguity §III discusses, and it is what shrinks when the map grows.
//!
//! [`Instrumentation`] is our stand-in for that compile step: given a
//! structural program (block count, call-site count), a map size and a seed,
//! it produces the ID tables the interpreter uses when emitting
//! [`crate::TraceEvent`]s. Re-"compiling" the same program for a different
//! map size redraws the IDs, exactly like rebuilding a target with a
//! different `MAP_SIZE`.

use bigmap_core::MapSize;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The ID tables produced by "instrumenting" a program for a given map size.
///
/// # Examples
///
/// ```rust
/// use bigmap_core::MapSize;
/// use bigmap_coverage::Instrumentation;
///
/// let inst = Instrumentation::assign(100, 10, MapSize::K64, 42);
/// assert_eq!(inst.block_count(), 100);
/// assert!(inst.block_id(7) < 1 << 16, "IDs are drawn within the map");
///
/// // Same seed, same assignment — a deterministic "compiler".
/// let again = Instrumentation::assign(100, 10, MapSize::K64, 42);
/// assert_eq!(inst.block_id(55), again.block_id(55));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instrumentation {
    block_ids: Vec<u32>,
    call_site_ids: Vec<u32>,
    map_size: MapSize,
    seed: u64,
}

impl Instrumentation {
    /// Draws IDs for `blocks` basic blocks and `call_sites` call sites,
    /// uniformly over `[0, map_size)`, deterministically from `seed`.
    pub fn assign(blocks: usize, call_sites: usize, map_size: MapSize, seed: u64) -> Self {
        // Separate the two streams so adding call sites does not reshuffle
        // block IDs (mirrors separate compiler passes).
        let mut block_rng = SmallRng::seed_from_u64(seed ^ 0xB10C_B10C_B10C_B10C);
        let mut call_rng = SmallRng::seed_from_u64(seed ^ 0xCA11_CA11_CA11_CA11);
        let bound = map_size.bytes() as u32;
        let block_ids = (0..blocks).map(|_| block_rng.gen_range(0..bound)).collect();
        let call_site_ids = (0..call_sites)
            .map(|_| call_rng.gen_range(0..bound))
            .collect();
        Instrumentation {
            block_ids,
            call_site_ids,
            map_size,
            seed,
        }
    }

    /// The instrumented ID of structural block `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[inline]
    pub fn block_id(&self, index: usize) -> u32 {
        self.block_ids[index]
    }

    /// The instrumented ID of structural call site `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[inline]
    pub fn call_site_id(&self, index: usize) -> u32 {
        self.call_site_ids[index]
    }

    /// Number of instrumented blocks.
    pub fn block_count(&self) -> usize {
        self.block_ids.len()
    }

    /// Number of instrumented call sites.
    pub fn call_site_count(&self) -> usize {
        self.call_site_ids.len()
    }

    /// The map size this program was "compiled" for.
    pub fn map_size(&self) -> MapSize {
        self.map_size
    }

    /// The number of block-ID collisions in this assignment: blocks whose ID
    /// matched an earlier block's draw (the §II-B collision-rate numerator).
    pub fn block_id_collisions(&self) -> usize {
        let mut seen = std::collections::HashSet::with_capacity(self.block_ids.len());
        self.block_ids
            .iter()
            .filter(|&&id| !seen.insert(id))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = Instrumentation::assign(500, 50, MapSize::K64, 7);
        let b = Instrumentation::assign(500, 50, MapSize::K64, 7);
        assert_eq!(a, b);
        let c = Instrumentation::assign(500, 50, MapSize::K64, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn ids_within_map_bounds() {
        let inst = Instrumentation::assign(10_000, 100, MapSize::K64, 1);
        assert!(inst.block_ids.iter().all(|&id| id < 1 << 16));
        assert!(inst.call_site_ids.iter().all(|&id| id < 1 << 16));
    }

    #[test]
    fn bigger_map_fewer_collisions() {
        // The §III premise: for a fixed population of blocks, enlarging the
        // hash space reduces ID collisions.
        let small = Instrumentation::assign(50_000, 0, MapSize::K64, 3);
        let large = Instrumentation::assign(50_000, 0, MapSize::M8, 3);
        assert!(
            large.block_id_collisions() < small.block_id_collisions(),
            "8M map: {} vs 64k map: {}",
            large.block_id_collisions(),
            small.block_id_collisions()
        );
    }

    #[test]
    fn adding_call_sites_preserves_block_ids() {
        let without = Instrumentation::assign(100, 0, MapSize::K64, 9);
        let with = Instrumentation::assign(100, 64, MapSize::K64, 9);
        for i in 0..100 {
            assert_eq!(without.block_id(i), with.block_id(i));
        }
    }

    #[test]
    fn counts_reported() {
        let inst = Instrumentation::assign(12, 3, MapSize::K64, 0);
        assert_eq!(inst.block_count(), 12);
        assert_eq!(inst.call_site_count(), 3);
        assert_eq!(inst.map_size(), MapSize::K64);
    }

    #[test]
    fn collision_count_matches_brute_force() {
        let inst = Instrumentation::assign(3000, 0, MapSize::K64, 11);
        let mut seen = std::collections::HashSet::new();
        let mut expect = 0;
        for &id in &inst.block_ids {
            if !seen.insert(id) {
                expect += 1;
            }
        }
        assert_eq!(inst.block_id_collisions(), expect);
        assert!(expect > 0, "3000 draws from 64k should collide w.h.p.");
    }
}
