//! Calling-context-sensitive edge coverage (Angora-style).
//!
//! Combines the current edge with a hash of the live call stack, so the same
//! edge reached from different calling contexts yields different keys. The
//! paper cites this as a metric that "puts up to eight times more pressure
//! on the bitmap" (§VI) — exactly the kind of metric that needs BigMap's
//! large-map efficiency.

use crate::edge::edge_key;
use crate::event::TraceEvent;
use crate::metric::{CoverageMetric, MetricKind};

/// Context-sensitive edge coverage.
///
/// The context hash is the XOR of the instrumented call-site IDs currently
/// on the stack (XOR makes `Return` cheap to undo, the same trick Angora
/// uses). Each block event emits `edge_key(prev, cur) ^ context`.
///
/// # Examples
///
/// ```rust
/// use bigmap_coverage::{ContextSensitive, CoverageMetric, TraceEvent};
///
/// let mut metric = ContextSensitive::new();
/// metric.begin_execution();
///
/// let mut from_a = 0;
/// metric.on_event(TraceEvent::Call(111), &mut |_| {});
/// metric.on_event(TraceEvent::Block(5), &mut |k| from_a = k);
/// metric.on_event(TraceEvent::Return, &mut |_| {});
///
/// let mut from_b = 0;
/// metric.begin_execution();
/// metric.on_event(TraceEvent::Call(222), &mut |_| {});
/// metric.on_event(TraceEvent::Block(5), &mut |k| from_b = k);
///
/// assert_ne!(from_a, from_b, "same block, different context, different key");
/// ```
#[derive(Debug, Clone, Default)]
pub struct ContextSensitive {
    prev_block: u32,
    context: u32,
    stack: Vec<u32>,
}

impl ContextSensitive {
    /// Creates the metric.
    pub fn new() -> Self {
        ContextSensitive::default()
    }

    /// Current call-stack depth (for tests and diagnostics).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }
}

impl CoverageMetric for ContextSensitive {
    fn kind(&self) -> MetricKind {
        MetricKind::ContextSensitive
    }

    fn begin_execution(&mut self) {
        self.prev_block = 0;
        self.context = 0;
        self.stack.clear();
    }

    fn on_event(&mut self, event: TraceEvent, sink: &mut dyn FnMut(u32)) {
        match event {
            TraceEvent::Block(id) => {
                sink(edge_key(self.prev_block, id) ^ self.context);
                self.prev_block = id;
            }
            TraceEvent::Call(site) => {
                // Mix the site so that recursive calls through the same site
                // do not cancel pairwise to the parent context.
                let token = site.wrapping_mul(0x9E37_79B9).rotate_left(5) | 1;
                self.stack.push(token);
                self.context ^= token;
            }
            TraceEvent::Return => {
                if let Some(token) = self.stack.pop() {
                    self.context ^= token;
                }
            }
        }
    }

    fn pressure_factor(&self) -> f64 {
        // The paper quotes "up to 8x" for Angora's variant; we use the same
        // planning figure.
        8.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn run(events: &[TraceEvent]) -> Vec<u32> {
        let mut metric = ContextSensitive::new();
        metric.begin_execution();
        let mut keys = Vec::new();
        for &e in events {
            metric.on_event(e, &mut |k| keys.push(k));
        }
        keys
    }

    #[test]
    fn context_free_matches_edge_metric() {
        // Without any calls, the metric degenerates to plain edge keys.
        let keys = run(&[TraceEvent::Block(8), TraceEvent::Block(12)]);
        assert_eq!(keys, vec![edge_key(0, 8), edge_key(8, 12)]);
    }

    #[test]
    fn return_restores_parent_context() {
        let keys = run(&[
            TraceEvent::Call(9),
            TraceEvent::Return,
            TraceEvent::Block(5),
        ]);
        assert_eq!(
            keys,
            vec![edge_key(0, 5)],
            "balanced call/return is identity"
        );
    }

    #[test]
    fn unmatched_return_is_tolerated() {
        // A trace can begin mid-function (persistent-mode harness); a
        // spurious Return must not corrupt state or panic.
        let keys = run(&[TraceEvent::Return, TraceEvent::Block(5)]);
        assert_eq!(keys, vec![edge_key(0, 5)]);
    }

    #[test]
    fn recursion_distinguishes_depth() {
        let depth1 = run(&[TraceEvent::Call(7), TraceEvent::Block(5)]);
        let depth2 = run(&[
            TraceEvent::Call(7),
            TraceEvent::Call(7),
            TraceEvent::Block(5),
        ]);
        assert_ne!(
            depth1[0], depth2[0],
            "recursive context must not XOR-cancel to the parent"
        );
    }

    #[test]
    fn stack_depth_tracks_calls() {
        let mut metric = ContextSensitive::new();
        metric.begin_execution();
        metric.on_event(TraceEvent::Call(1), &mut |_| {});
        metric.on_event(TraceEvent::Call(2), &mut |_| {});
        assert_eq!(metric.depth(), 2);
        metric.on_event(TraceEvent::Return, &mut |_| {});
        assert_eq!(metric.depth(), 1);
        metric.begin_execution();
        assert_eq!(metric.depth(), 0);
    }

    #[test]
    fn pressure_is_above_edge() {
        assert!(ContextSensitive::new().pressure_factor() > 1.0);
    }

    proptest! {
        #[test]
        fn deterministic(blocks in prop::collection::vec(any::<u32>(), 0..100)) {
            let events: Vec<TraceEvent> = blocks
                .iter()
                .map(|&b| match b % 4 {
                    0 => TraceEvent::Call(b),
                    1 => TraceEvent::Return,
                    _ => TraceEvent::Block(b),
                })
                .collect();
            prop_assert_eq!(run(&events), run(&events));
        }

        #[test]
        fn balanced_call_return_is_identity(
            sites in prop::collection::vec(any::<u32>(), 1..20),
            block in any::<u32>(),
        ) {
            // Push all, pop all: context must return to zero.
            let mut events: Vec<TraceEvent> =
                sites.iter().map(|&s| TraceEvent::Call(s)).collect();
            events.extend(sites.iter().map(|_| TraceEvent::Return));
            events.push(TraceEvent::Block(block));
            let keys = run(&events);
            prop_assert_eq!(keys, vec![edge_key(0, block)]);
        }
    }
}
