//! N-gram partial path coverage (Wang et al., RAID 2019; AFL++'s `NGRAM`).
//!
//! Instead of keying on a single `(src, dst)` edge, the N-gram metric hashes
//! the IDs of the **last N blocks**, capturing short path fragments. This is
//! the more expressive (and more collision-hungry) metric the paper composes
//! with laf-intel in Table III, with N = 3.

use crate::event::TraceEvent;
use crate::metric::{CoverageMetric, MetricKind};

/// Maximum supported N (AFL++ supports up to 16).
pub const MAX_N: usize = 16;

/// N-gram partial path coverage.
///
/// # Examples
///
/// ```rust
/// use bigmap_coverage::{CoverageMetric, NGram, TraceEvent};
///
/// let mut metric = NGram::new(3).expect("3 <= MAX_N");
/// metric.begin_execution();
/// let mut keys = Vec::new();
/// for block in [1u32, 2, 3, 4] {
///     metric.on_event(TraceEvent::Block(block), &mut |k| keys.push(k));
/// }
/// // One key per block; keys depend on the preceding window.
/// assert_eq!(keys.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct NGram {
    n: usize,
    window: [u32; MAX_N],
    filled: usize,
    cursor: usize,
}

/// Error returned when constructing an [`NGram`] with an unsupported N.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidNError(pub usize);

impl std::fmt::Display for InvalidNError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ngram size {} is not in [2, {MAX_N}]", self.0)
    }
}

impl std::error::Error for InvalidNError {}

impl NGram {
    /// Creates an N-gram metric over the last `n` blocks.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidNError`] unless `2 <= n <= MAX_N`. (N = 1 would be
    /// plain block coverage — use [`crate::BlockCoverage`].)
    pub fn new(n: usize) -> Result<Self, InvalidNError> {
        if !(2..=MAX_N).contains(&n) {
            return Err(InvalidNError(n));
        }
        Ok(NGram {
            n,
            window: [0; MAX_N],
            filled: 0,
            cursor: 0,
        })
    }

    /// The window length N.
    pub fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn key(&self) -> u32 {
        // Mix the window with position-dependent rotations so that
        // permutations of the same blocks produce different keys.
        let mut h: u32 = 0x9E37_79B9;
        for i in 0..self.filled {
            let idx = (self.cursor + MAX_N - 1 - i) % MAX_N;
            let id = self.window[idx];
            h ^= id.rotate_left((i as u32 * 7) & 31);
            h = h.wrapping_mul(0x85EB_CA6B).rotate_left(13);
        }
        h
    }
}

impl CoverageMetric for NGram {
    fn kind(&self) -> MetricKind {
        MetricKind::NGram(self.n)
    }

    fn begin_execution(&mut self) {
        self.window = [0; MAX_N];
        self.filled = 0;
        self.cursor = 0;
    }

    fn on_event(&mut self, event: TraceEvent, sink: &mut dyn FnMut(u32)) {
        if let TraceEvent::Block(id) = event {
            self.window[self.cursor] = id;
            self.cursor = (self.cursor + 1) % MAX_N;
            self.filled = (self.filled + 1).min(self.n);
            sink(self.key());
        }
    }

    fn pressure_factor(&self) -> f64 {
        // Empirically N-gram multiplies distinct keys by roughly the average
        // number of distinct length-N prefixes per edge; 2^(n-2) is the
        // conservative planning figure used by the suite sizing code.
        (1 << (self.n.saturating_sub(2))) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    fn keys_for(n: usize, blocks: &[u32]) -> Vec<u32> {
        let mut metric = NGram::new(n).unwrap();
        metric.begin_execution();
        let mut keys = Vec::new();
        for &b in blocks {
            metric.on_event(TraceEvent::Block(b), &mut |k| keys.push(k));
        }
        keys
    }

    #[test]
    fn rejects_bad_n() {
        assert_eq!(NGram::new(0).unwrap_err(), InvalidNError(0));
        assert_eq!(NGram::new(1).unwrap_err(), InvalidNError(1));
        assert_eq!(NGram::new(17).unwrap_err(), InvalidNError(17));
        assert!(NGram::new(2).is_ok());
        assert!(NGram::new(16).is_ok());
    }

    #[test]
    fn distinguishes_paths_plain_edges_conflate() {
        // Paths X->A->B and Y->A->B share the edge A->B; a 3-gram separates
        // them — that is the added expressiveness.
        let via_x = keys_for(3, &[100, 7, 8]);
        let via_y = keys_for(3, &[200, 7, 8]);
        assert_ne!(via_x[2], via_y[2], "3-gram must separate the A->B visit");

        // Edge coverage, by contrast, conflates them:
        let edge_via_x = crate::edge_key(7, 8);
        let edge_via_y = crate::edge_key(7, 8);
        assert_eq!(edge_via_x, edge_via_y);
    }

    #[test]
    fn order_matters() {
        let abc = keys_for(3, &[1, 2, 3]);
        let acb = keys_for(3, &[1, 3, 2]);
        assert_ne!(abc[2], acb[2]);
    }

    #[test]
    fn window_is_bounded_by_n() {
        // Once the window is saturated, blocks older than N cannot matter.
        let long_a = keys_for(3, &[9, 9, 9, 1, 2, 3]);
        let long_b = keys_for(3, &[5, 5, 5, 1, 2, 3]);
        assert_eq!(
            long_a[5], long_b[5],
            "key must depend on the last 3 blocks only"
        );
    }

    #[test]
    fn emits_higher_key_diversity_than_edges() {
        // A loop body executed repeatedly from different entry paths should
        // produce more distinct ngram keys than edge keys — the map
        // pressure the paper talks about.
        let trace: Vec<u32> = (0..50).flat_map(|i| [i, 1000, 1001, 1002]).collect();
        let ngram: HashSet<u32> = keys_for(3, &trace).into_iter().collect();
        let edges: HashSet<u32> = {
            let mut metric = crate::EdgeHitCount::new();
            metric.begin_execution();
            let mut keys = HashSet::new();
            for &b in &trace {
                metric.on_event(TraceEvent::Block(b), &mut |k| {
                    keys.insert(k);
                });
            }
            keys
        };
        assert!(
            ngram.len() > edges.len(),
            "ngram {} should exceed edge {}",
            ngram.len(),
            edges.len()
        );
    }

    #[test]
    fn pressure_factor_grows_with_n() {
        assert!(
            NGram::new(4).unwrap().pressure_factor() > NGram::new(3).unwrap().pressure_factor()
        );
    }

    proptest! {
        #[test]
        fn deterministic(
            n in 2usize..=8,
            blocks in prop::collection::vec(any::<u32>(), 0..100),
        ) {
            prop_assert_eq!(keys_for(n, &blocks), keys_for(n, &blocks));
        }

        #[test]
        fn begin_execution_isolates_runs(
            n in 2usize..=8,
            first in prop::collection::vec(any::<u32>(), 1..50),
            second in prop::collection::vec(any::<u32>(), 1..50),
        ) {
            // Running `second` after `first` with a reset in between must
            // equal running `second` alone.
            let mut metric = NGram::new(n).unwrap();
            metric.begin_execution();
            for &b in &first {
                metric.on_event(TraceEvent::Block(b), &mut |_| {});
            }
            metric.begin_execution();
            let mut with_history = Vec::new();
            for &b in &second {
                metric.on_event(TraceEvent::Block(b), &mut |k| with_history.push(k));
            }
            prop_assert_eq!(with_history, keys_for(n, &second));
        }
    }
}
