//! A CollAFL-style static ID assignment — the paper's §VI comparator.
//!
//! CollAFL (Gan et al., S&P 2018) is the state-of-the-art *orthogonal*
//! collision mitigation the paper discusses: instead of random block IDs,
//! a link-time pass assigns IDs so that the resulting edge keys are
//! collision-free where static analysis allows. The paper positions BigMap
//! as complementary — CollAFL removes collisions for block/edge coverage
//! but "cannot be extended for coverage metrics other than the block or
//! edge coverage" and grows the map, while BigMap makes any map size cheap.
//!
//! This module implements a simplified CollAFL: a greedy, seeded search
//! that assigns each block an ID minimizing edge-key collisions
//! (`(id(src) >> 1) ^ id(dst)`) against all previously resolved static
//! edges. It lets the reproduction quantify the trade-off: fewer collisions
//! at 64 kB without enlarging the map — but tied to the edge metric, unlike
//! BigMap.

use std::collections::{HashMap, HashSet};

use bigmap_core::MapSize;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::edge::edge_key;

/// Result of a CollAFL-style assignment.
#[derive(Debug, Clone)]
pub struct CollAflAssignment {
    /// The assigned block IDs (indexed by global block index).
    pub block_ids: Vec<u32>,
    /// Static edges whose keys are unique under the assignment.
    pub resolved_edges: usize,
    /// Static edges that still collide (greedy search failed for them).
    pub colliding_edges: usize,
}

impl CollAflAssignment {
    /// Fraction of static edges still colliding.
    pub fn collision_ratio(&self) -> f64 {
        let total = self.resolved_edges + self.colliding_edges;
        if total == 0 {
            0.0
        } else {
            self.colliding_edges as f64 / total as f64
        }
    }
}

/// Number of candidate IDs tried per block before accepting the best seen.
const CANDIDATES_PER_BLOCK: usize = 24;

/// Greedily assigns block IDs over `[0, map_size)` so that the edge keys of
/// `edges` (pairs of global block indices) collide as little as possible.
///
/// Blocks are processed in index order — for the forward-edge CFGs of this
/// reproduction, most of a block's static predecessors are already assigned
/// when it is visited, so the greedy choice is well informed. The final
/// counts are computed over the complete edge set.
///
/// # Panics
///
/// Panics if an edge references a block `>= n_blocks`.
///
/// # Examples
///
/// ```rust
/// use bigmap_core::MapSize;
/// use bigmap_coverage::collafl::assign_collafl;
///
/// // A diamond: 0->1, 0->2, 1->3, 2->3.
/// let edges = [(0, 1), (0, 2), (1, 3), (2, 3)];
/// let a = assign_collafl(4, &edges, MapSize::K64, 7);
/// assert_eq!(a.colliding_edges, 0, "4 edges in 64k must resolve");
/// ```
pub fn assign_collafl(
    n_blocks: usize,
    edges: &[(usize, usize)],
    map_size: MapSize,
    seed: u64,
) -> CollAflAssignment {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC011_AF1A);
    let bound = map_size.bytes() as u32;
    let mask = map_size.mask();

    // Adjacency: for each block, the already-relevant neighbours.
    let mut preds: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut succs: HashMap<usize, Vec<usize>> = HashMap::new();
    for &(src, dst) in edges {
        assert!(src < n_blocks && dst < n_blocks, "edge out of range");
        preds.entry(dst).or_default().push(src);
        succs.entry(src).or_default().push(dst);
    }

    let mut ids = vec![0u32; n_blocks];
    let mut assigned = vec![false; n_blocks];
    let mut used_keys: HashSet<u32> = HashSet::new();

    for block in 0..n_blocks {
        // Keys this block's assignment determines right now: edges to/from
        // already-assigned neighbours.
        let in_ids: Vec<u32> = preds
            .get(&block)
            .map(|v| {
                v.iter()
                    .filter(|&&p| assigned[p])
                    .map(|&p| ids[p])
                    .collect()
            })
            .unwrap_or_default();
        let out_ids: Vec<u32> = succs
            .get(&block)
            .map(|v| {
                v.iter()
                    .filter(|&&s| assigned[s])
                    .map(|&s| ids[s])
                    .collect()
            })
            .unwrap_or_default();

        let mut best = (u32::MAX, usize::MAX); // (candidate, collisions)
        for _ in 0..CANDIDATES_PER_BLOCK {
            let candidate = rng.gen_range(0..bound);
            let mut collisions = 0usize;
            let mut local: HashSet<u32> = HashSet::new();
            for &src_id in &in_ids {
                let key = edge_key(src_id, candidate) & mask;
                if used_keys.contains(&key) || !local.insert(key) {
                    collisions += 1;
                }
            }
            for &dst_id in &out_ids {
                let key = edge_key(candidate, dst_id) & mask;
                if used_keys.contains(&key) || !local.insert(key) {
                    collisions += 1;
                }
            }
            if collisions < best.1 {
                best = (candidate, collisions);
                if collisions == 0 {
                    break;
                }
            }
        }
        let id = best.0;
        ids[block] = id;
        assigned[block] = true;
        for &src_id in &in_ids {
            used_keys.insert(edge_key(src_id, id) & mask);
        }
        for &dst_id in &out_ids {
            used_keys.insert(edge_key(id, dst_id) & mask);
        }
    }

    // Final accounting over the complete edge set.
    let mut seen: HashSet<u32> = HashSet::with_capacity(edges.len());
    let mut colliding = 0usize;
    for &(src, dst) in edges {
        let key = edge_key(ids[src], ids[dst]) & mask;
        if !seen.insert(key) {
            colliding += 1;
        }
    }

    CollAflAssignment {
        resolved_edges: edges.len() - colliding,
        colliding_edges: colliding,
        block_ids: ids,
    }
}

/// Counts edge-key collisions for a *random* (AFL-style) assignment over
/// the same edges — the baseline CollAFL improves on.
pub fn random_assignment_collisions(
    n_blocks: usize,
    edges: &[(usize, usize)],
    map_size: MapSize,
    seed: u64,
) -> usize {
    let mut rng = SmallRng::seed_from_u64(seed);
    let bound = map_size.bytes() as u32;
    let mask = map_size.mask();
    let ids: Vec<u32> = (0..n_blocks).map(|_| rng.gen_range(0..bound)).collect();
    let mut seen = HashSet::with_capacity(edges.len());
    edges
        .iter()
        .filter(|&&(src, dst)| !seen.insert(edge_key(ids[src], ids[dst]) & mask))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> Vec<(usize, usize)> {
        (0..n - 1).map(|i| (i, i + 1)).collect()
    }

    #[test]
    fn small_graphs_resolve_completely() {
        let edges = chain(100);
        let a = assign_collafl(100, &edges, MapSize::K64, 1);
        assert_eq!(a.colliding_edges, 0);
        assert_eq!(a.resolved_edges, 99);
        assert_eq!(a.collision_ratio(), 0.0);
    }

    #[test]
    fn beats_random_assignment_at_scale() {
        // Dense random DAG: 6k blocks, 18k edges into a 64k map.
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 6_000;
        let mut edges: Vec<(usize, usize)> = (1..n)
            .flat_map(|dst| {
                let mut v = Vec::new();
                for _ in 0..3 {
                    v.push((rng.gen_range(0..dst), dst));
                }
                v
            })
            .collect();
        edges.sort_unstable();
        edges.dedup();

        let collafl = assign_collafl(n, &edges, MapSize::K64, 5);
        let random = random_assignment_collisions(n, &edges, MapSize::K64, 5);
        assert!(
            collafl.colliding_edges * 4 < random.max(1),
            "collafl {} vs random {}",
            collafl.colliding_edges,
            random
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let edges = chain(500);
        let a = assign_collafl(500, &edges, MapSize::K64, 9);
        let b = assign_collafl(500, &edges, MapSize::K64, 9);
        assert_eq!(a.block_ids, b.block_ids);
    }

    #[test]
    fn ids_in_map_range() {
        let edges = chain(64);
        let a = assign_collafl(64, &edges, MapSize::K64, 2);
        assert!(a.block_ids.iter().all(|&id| id < 1 << 16));
        assert_eq!(a.block_ids.len(), 64);
    }

    #[test]
    fn empty_edges_are_fine() {
        let a = assign_collafl(10, &[], MapSize::K64, 0);
        assert_eq!(a.resolved_edges, 0);
        assert_eq!(a.colliding_edges, 0);
        assert_eq!(a.collision_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        assign_collafl(4, &[(0, 9)], MapSize::K64, 0);
    }
}
