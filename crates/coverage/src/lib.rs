//! # bigmap-coverage
//!
//! Coverage metrics for the BigMap reproduction.
//!
//! A central claim of the paper (§IV-D) is that BigMap works with **any**
//! coverage metric, as long as the metric produces keys into a coverage
//! bitmap: the index bitmap happens to be indexed by the edge ID in the
//! reference implementation, but any coverage metric can be used in the edge
//! ID's place. This crate provides that metric layer:
//!
//! * [`EdgeHitCount`] — AFL's default: `E_XY = (B_X >> 1) ^ B_Y`,
//! * [`NGram`] — partial path coverage by hashing the last N blocks
//!   (the paper composes N = 3 with laf-intel in Table III),
//! * [`ContextSensitive`] — Angora-style calling-context ⊕ edge,
//! * [`BlockCoverage`] — libFuzzer/Honggfuzz-style basic-block coverage,
//! * [`MetricStack`] — stacked metrics writing into one map (the
//!   "aggressive composition" §V-C studies),
//! * [`Instrumentation`] — the compile-time random block/call-site ID
//!   assignment of the paper's Listing 1, line 1.
//!
//! A metric consumes a stream of [`TraceEvent`]s produced by the
//! instrumented target and emits raw coverage keys; the coverage map folds
//! each key with `key & (map_size - 1)`.
//!
//! ## Example
//!
//! ```rust
//! use bigmap_core::{BigMap, CoverageMap, MapSize};
//! use bigmap_coverage::{CoverageMetric, EdgeHitCount, TraceEvent};
//!
//! # fn main() -> Result<(), bigmap_core::MapSizeError> {
//! let mut metric = EdgeHitCount::new();
//! let mut map = BigMap::new(MapSize::K64)?;
//!
//! metric.begin_execution();
//! for event in [TraceEvent::Block(17), TraceEvent::Block(42), TraceEvent::Block(17)] {
//!     metric.on_event(event, &mut |key| map.record(key));
//! }
//! assert_eq!(map.used_len(), 3); // three distinct edges
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod block;
pub mod collafl;
pub mod context;
pub mod edge;
pub mod event;
pub mod guard;
pub mod instrument;
pub mod metric;
pub mod ngram;
pub mod stack;

pub use block::BlockCoverage;
pub use collafl::{assign_collafl, CollAflAssignment};
pub use context::ContextSensitive;
pub use edge::{edge_key, EdgeHitCount};
pub use event::TraceEvent;
pub use guard::{GuardTracker, StaticEdgeTable};
pub use instrument::Instrumentation;
pub use metric::{CoverageMetric, MetricKind};
pub use ngram::NGram;
pub use stack::MetricStack;
