//! The [`CoverageMetric`] trait.

use std::fmt;

use crate::event::TraceEvent;

/// Identifies a metric family (used in benchmark report headers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetricKind {
    /// AFL's edge hit-count metric.
    Edge,
    /// N-gram partial path coverage (hash of the last N blocks).
    NGram(usize),
    /// Calling-context-sensitive edge coverage.
    ContextSensitive,
    /// Plain basic-block coverage.
    Block,
    /// A stack of several metrics writing into one map.
    Stack,
}

impl fmt::Display for MetricKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricKind::Edge => f.write_str("edge"),
            MetricKind::NGram(n) => write!(f, "ngram{n}"),
            MetricKind::ContextSensitive => f.write_str("ctx-edge"),
            MetricKind::Block => f.write_str("block"),
            MetricKind::Stack => f.write_str("stacked"),
        }
    }
}

/// A coverage metric: folds a stream of trace events into raw coverage keys.
///
/// The metric owns the per-execution state that the instrumentation would
/// keep in shared memory or thread-locals (AFL's `prev_loc`, AFL++'s N-gram
/// history, Angora's calling-context hash). [`begin_execution`] resets that
/// state; it does **not** touch any coverage map.
///
/// Keys are raw 32-bit hashes; the coverage map folds them into its hash
/// space. A metric may emit zero or more keys per event.
///
/// [`begin_execution`]: CoverageMetric::begin_execution
pub trait CoverageMetric: Send {
    /// The metric family.
    fn kind(&self) -> MetricKind;

    /// Resets per-execution state. Call once before each target execution.
    fn begin_execution(&mut self);

    /// Processes one trace event, emitting coverage keys through `sink`.
    fn on_event(&mut self, event: TraceEvent, sink: &mut dyn FnMut(u32));

    /// Expected number of distinct keys produced per distinct program edge —
    /// the metric's *map pressure* multiplier relative to plain edge
    /// coverage (§VI: context-sensitive coverage puts up to 8x more pressure
    /// on the bitmap; N-gram raises pressure too).
    fn pressure_factor(&self) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_labels() {
        assert_eq!(MetricKind::Edge.to_string(), "edge");
        assert_eq!(MetricKind::NGram(3).to_string(), "ngram3");
        assert_eq!(MetricKind::ContextSensitive.to_string(), "ctx-edge");
        assert_eq!(MetricKind::Block.to_string(), "block");
        assert_eq!(MetricKind::Stack.to_string(), "stacked");
    }
}
