//! Plain-text table rendering for the harness binaries.
//!
//! Every `figN_*` / `tableN_*` binary prints its results as aligned text
//! tables so the output diffs cleanly against EXPERIMENTS.md.

use std::fmt;

/// A simple right-padded text table.
///
/// # Examples
///
/// ```rust
/// use bigmap_analytics::TextTable;
///
/// let mut t = TextTable::new(vec!["benchmark", "AFL", "BigMap"]);
/// t.row(vec!["zlib".into(), "4400".into(), "4310".into()]);
/// t.row(vec!["sqlite3".into(), "910".into(), "1010".into()]);
/// let text = t.to_string();
/// assert!(text.contains("benchmark"));
/// assert!(text.lines().count() >= 4); // header, rule, two rows
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Shorter rows are padded with empty cells; longer rows
    /// are truncated to the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        write_row(f, &rule)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with `digits` decimals (report helper).
pub fn fmt_f(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

/// Formats a large count with thousands separators, Table II style
/// (`1218` → `1,218`).
pub fn fmt_count(n: usize) -> String {
    let raw = n.to_string();
    let mut out = String::with_capacity(raw.len() + raw.len() / 3);
    let offset = raw.len() % 3;
    for (i, c) in raw.chars().enumerate() {
        if i > 0 && (i + 3 - offset).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a", "bench"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equally long (right-padded).
        let width = lines[0].len();
        assert!(lines.iter().all(|l| l.len() <= width + 1));
        assert!(lines[1].starts_with("---"));
    }

    #[test]
    fn short_rows_padded_long_rows_truncated() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only".into()]);
        t.row(vec!["x".into(), "y".into(), "dropped".into()]);
        let text = t.to_string();
        assert!(!text.contains("dropped"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn fmt_count_thousands() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1_218), "1,218");
        assert_eq!(fmt_count(977_899), "977,899");
        assert_eq!(fmt_count(5_500_000), "5,500,000");
    }

    #[test]
    fn fmt_f_digits() {
        assert_eq!(fmt_f(4.5181, 1), "4.5");
        assert_eq!(fmt_f(33.10, 2), "33.10");
    }
}
