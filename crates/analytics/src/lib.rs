//! # bigmap-analytics
//!
//! Collision-rate analytics (the paper's §II-B / Equation 1 and Figure 2),
//! aggregation helpers (geometric means, normalization) and the plain-text
//! table renderer used by every benchmark harness binary.

#![deny(missing_docs)]

pub mod collision;
pub mod stats;
pub mod table;

pub use collision::{
    birthday_keys_for_probability, collision_rate, empirical_collision_rate, expected_distinct_keys,
};
pub use stats::{geometric_mean, mean, normalize_to_first, Summary};
pub use table::TextTable;
