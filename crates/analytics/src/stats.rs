//! Aggregation helpers for benchmark reports.
//!
//! The paper aggregates per-benchmark speedups with averages and presents
//! scaling curves normalized to the single-instance run; these helpers keep
//! that arithmetic in one tested place.

/// Arithmetic mean; 0.0 for an empty slice.
///
/// # Examples
///
/// ```rust
/// assert_eq!(bigmap_analytics::mean(&[1.0, 2.0, 3.0]), 2.0);
/// assert_eq!(bigmap_analytics::mean(&[]), 0.0);
/// ```
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Geometric mean; 0.0 for an empty slice.
///
/// The right aggregate for speedup ratios (a 10x win and a 10x loss cancel
/// to 1.0 rather than averaging to 5.05x).
///
/// # Panics
///
/// Panics if any value is not strictly positive.
///
/// # Examples
///
/// ```rust
/// let g = bigmap_analytics::geometric_mean(&[10.0, 0.1]);
/// assert!((g - 1.0).abs() < 1e-12);
/// ```
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    assert!(
        values.iter().all(|&v| v > 0.0),
        "geometric mean requires strictly positive values"
    );
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Normalizes a series to its first element (the paper's Figure 9a
/// "normalized to the corresponding single-run version").
///
/// Returns an empty vector for empty input.
///
/// # Panics
///
/// Panics if the first element is zero.
pub fn normalize_to_first(values: &[f64]) -> Vec<f64> {
    match values.first() {
        None => Vec::new(),
        Some(&first) => {
            assert!(first != 0.0, "cannot normalize to a zero baseline");
            values.iter().map(|v| v / first).collect()
        }
    }
}

/// Summary of a sample: mean, standard deviation, min, max.
///
/// The paper averages three runs per configuration (§V-B); the harness
/// reports mean ± stddev so run-to-run variation is visible.
///
/// # Examples
///
/// ```rust
/// use bigmap_analytics::stats::Summary;
///
/// let s = Summary::of(&[10.0, 12.0, 14.0]);
/// assert_eq!(s.mean, 12.0);
/// assert_eq!(s.min, 10.0);
/// assert_eq!(s.max, 14.0);
/// assert!((s.stddev - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub stddev: f64,
    /// Smallest value (0 for empty input).
    pub min: f64,
    /// Largest value (0 for empty input).
    pub max: f64,
    /// Sample size.
    pub n: usize,
}

impl Summary {
    /// Summarizes a sample.
    pub fn of(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary {
                mean: 0.0,
                stddev: 0.0,
                min: 0.0,
                max: 0.0,
                n: 0,
            };
        }
        let mean = crate::stats::mean(values);
        let var = if values.len() < 2 {
            0.0
        } else {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (values.len() - 1) as f64
        };
        Summary {
            mean,
            stddev: var.sqrt(),
            min: values.iter().cloned().fold(f64::INFINITY, f64::min),
            max: values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            n: values.len(),
        }
    }

    /// Renders as `mean ± stddev` with the given precision.
    pub fn display(&self, digits: usize) -> String {
        format!("{:.digits$} ± {:.digits$}", self.mean, self.stddev)
    }

    /// Relative spread: stddev / mean (0 when the mean is 0).
    pub fn coefficient_of_variation(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean.abs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[4.0]), 4.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }

    #[test]
    fn geomean_of_equal_values_is_value() {
        assert!((geometric_mean(&[7.0, 7.0, 7.0]) - 7.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn geomean_rejects_nonpositive() {
        geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn normalize_basic() {
        assert_eq!(normalize_to_first(&[2.0, 4.0, 8.0]), vec![1.0, 2.0, 4.0]);
        assert!(normalize_to_first(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "zero baseline")]
    fn normalize_rejects_zero_baseline() {
        normalize_to_first(&[0.0, 1.0]);
    }

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.n, 4);
        assert!((s.stddev - 1.2909944487358056).abs() < 1e-12);
        assert!(s.coefficient_of_variation() > 0.5);
    }

    #[test]
    fn summary_degenerate_cases() {
        let empty = Summary::of(&[]);
        assert_eq!(empty.n, 0);
        assert_eq!(empty.mean, 0.0);
        let single = Summary::of(&[7.0]);
        assert_eq!(single.stddev, 0.0);
        assert_eq!(single.min, 7.0);
        assert_eq!(single.max, 7.0);
    }

    #[test]
    fn summary_display() {
        let s = Summary::of(&[10.0, 12.0, 14.0]);
        assert_eq!(s.display(1), "12.0 ± 2.0");
    }

    proptest! {
        #[test]
        fn summary_mean_within_bounds(
            values in prop::collection::vec(-1e6f64..1e6, 1..64),
        ) {
            let s = Summary::of(&values);
            prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
            prop_assert!(s.stddev >= 0.0);
        }

        #[test]
        fn geomean_between_min_and_max(
            values in prop::collection::vec(0.001f64..1000.0, 1..50),
        ) {
            let g = geometric_mean(&values);
            let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = values.iter().cloned().fold(0.0f64, f64::max);
            prop_assert!(g >= min - 1e-9 && g <= max + 1e-9);
        }

        #[test]
        fn geomean_le_mean(
            values in prop::collection::vec(0.001f64..1000.0, 1..50),
        ) {
            // AM-GM inequality.
            prop_assert!(geometric_mean(&values) <= mean(&values) + 1e-9);
        }

        #[test]
        fn normalized_first_is_one(
            values in prop::collection::vec(0.001f64..1000.0, 1..50),
        ) {
            let n = normalize_to_first(&values);
            prop_assert!((n[0] - 1.0).abs() < 1e-12);
        }
    }
}
