//! Collision-rate mathematics (§II-B, Equation 1, Figure 2).
//!
//! Drawing `n` keys uniformly from a hash space of size `H`, the paper
//! defines the collision rate as the expected fraction of draws that land
//! on an already-drawn key:
//!
//! ```text
//! CollisionRate(H, n) = 1 - (H / n) * (1 - ((H - 1) / H)^n)
//! ```
//!
//! The `H/n * (1 - ((H-1)/H)^n)` term is the expected number of *distinct*
//! keys divided by `n`; one minus it is the colliding fraction. This module
//! provides the closed form, a Monte-Carlo cross-check, and the birthday-
//! bound helper behind the paper's "~50% after only 300 IDs" remark.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Equation 1: the expected collision rate when drawing `n` keys uniformly
/// from a space of `H` slots.
///
/// Returns 0.0 when `n == 0`.
///
/// # Panics
///
/// Panics if `H == 0`.
///
/// # Examples
///
/// ```rust
/// use bigmap_analytics::collision_rate;
///
/// // ~30% collision rate for 50k keys in a 64kB map (§III).
/// let rate = collision_rate(65_536, 50_000);
/// assert!((0.28..0.34).contains(&rate), "rate = {rate}");
///
/// // Tiny in an 8MB map.
/// assert!(collision_rate(8 << 20, 50_000) < 0.01);
/// ```
pub fn collision_rate(hash_space: u64, keys: u64) -> f64 {
    assert!(hash_space > 0, "hash space must be non-empty");
    if keys == 0 {
        return 0.0;
    }
    let h = hash_space as f64;
    let n = keys as f64;
    // (1 - 1/H)^n via exp/ln for numerical stability at large n.
    let p_missed = (n * (1.0 - 1.0 / h).ln()).exp();
    let rate = 1.0 - (h / n) * (1.0 - p_missed);
    rate.clamp(0.0, 1.0)
}

/// Expected number of distinct keys after `n` uniform draws from `H` slots:
/// `H * (1 - ((H-1)/H)^n)`.
pub fn expected_distinct_keys(hash_space: u64, keys: u64) -> f64 {
    assert!(hash_space > 0, "hash space must be non-empty");
    let h = hash_space as f64;
    let n = keys as f64;
    h * (1.0 - (n * (1.0 - 1.0 / h).ln()).exp())
}

/// The number of uniform draws from `H` slots after which the probability
/// of at least one collision reaches `probability` (the generalized
/// birthday bound). The paper's §III: ~300 IDs for 50% in a 64 kB map.
///
/// # Panics
///
/// Panics if `H == 0` or `probability` is outside `(0, 1)`.
pub fn birthday_keys_for_probability(hash_space: u64, probability: f64) -> u64 {
    assert!(hash_space > 0, "hash space must be non-empty");
    assert!(
        (0.0..1.0).contains(&probability) && probability > 0.0,
        "probability must be in (0, 1)"
    );
    // P(no collision after n draws) = prod_{i=0}^{n-1} (1 - i/H)
    // ≈ exp(-n(n-1) / (2H));  solve exp(-n^2/2H) = 1 - p.
    let h = hash_space as f64;
    let n = (2.0 * h * (1.0 / (1.0 - probability)).ln()).sqrt();
    n.round() as u64
}

/// Measures the collision rate empirically: draws `keys` uniform values in
/// `[0, hash_space)` and counts draws that hit an occupied slot, divided by
/// the number of draws (the §II-B definition — the example `{4,2,5,3,2}`
/// has rate 1/5).
///
/// Deterministic in `seed`. Complexity `O(keys)` with a bitset of
/// `hash_space` bits.
pub fn empirical_collision_rate(hash_space: u64, keys: u64, seed: u64) -> f64 {
    assert!(hash_space > 0, "hash space must be non-empty");
    if keys == 0 {
        return 0.0;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut occupied = vec![0u64; (hash_space as usize).div_ceil(64)];
    let mut collisions = 0u64;
    for _ in 0..keys {
        let k = rng.gen_range(0..hash_space) as usize;
        let (word, bit) = (k / 64, k % 64);
        if occupied[word] & (1 << bit) != 0 {
            collisions += 1;
        } else {
            occupied[word] |= 1 << bit;
        }
    }
    collisions as f64 / keys as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_keys_zero_rate() {
        assert_eq!(collision_rate(1 << 16, 0), 0.0);
        assert_eq!(empirical_collision_rate(1 << 16, 0, 1), 0.0);
    }

    #[test]
    fn paper_section_iii_figures() {
        // "a 64kB map is subjected to ~30% collision rate" for the upper
        // end of the 1k–50k real-world range.
        assert!((0.28..0.34).contains(&collision_rate(1 << 16, 50_000)));
        // "probability of having at least one collision is ~50% after
        // assigning only 300 IDs" in a 64kB map.
        let n = birthday_keys_for_probability(1 << 16, 0.5);
        assert!((280..=320).contains(&n), "birthday bound gave {n}");
    }

    #[test]
    fn figure2_shape_monotonicity() {
        // Down the columns: bigger maps, lower rate.
        let sizes: [u64; 10] = [
            1 << 16,
            1 << 17,
            1 << 18,
            1 << 19,
            1 << 20,
            1 << 21,
            1 << 22,
            1 << 23,
            1 << 24,
            1 << 25,
        ];
        for keys in [5_000u64, 100_000, 1_000_000] {
            for pair in sizes.windows(2) {
                assert!(
                    collision_rate(pair[0], keys) >= collision_rate(pair[1], keys),
                    "rate must fall as map grows (keys={keys})"
                );
            }
        }
        // Across a row: more keys, higher rate.
        for &size in &sizes {
            assert!(collision_rate(size, 500_000) >= collision_rate(size, 5_000));
        }
    }

    #[test]
    fn extreme_values_saturate_sensibly() {
        assert!(collision_rate(1 << 16, 100_000_000) > 0.99);
        assert!(collision_rate(1 << 30, 10) < 1e-6);
    }

    #[test]
    fn expected_distinct_bounded_by_space_and_draws() {
        let d = expected_distinct_keys(1000, 5000);
        assert!(d <= 1000.0);
        let d2 = expected_distinct_keys(1 << 20, 100);
        assert!((99.9..=100.0).contains(&d2));
    }

    #[test]
    fn empirical_matches_closed_form() {
        for (h, n) in [
            (1u64 << 16, 20_000u64),
            (1 << 18, 100_000),
            (1 << 20, 50_000),
        ] {
            let analytic = collision_rate(h, n);
            let measured = empirical_collision_rate(h, n, 42);
            assert!(
                (analytic - measured).abs() < 0.01,
                "H={h} n={n}: analytic {analytic:.4} vs measured {measured:.4}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_space_panics() {
        collision_rate(0, 1);
    }

    proptest! {
        #[test]
        fn rate_always_in_unit_interval(
            h_bits in 10u32..26,
            n in 0u64..2_000_000,
        ) {
            let r = collision_rate(1 << h_bits, n);
            prop_assert!((0.0..=1.0).contains(&r));
        }

        #[test]
        fn distinct_plus_collisions_consistent(
            h_bits in 10u32..22,
            n in 1u64..200_000,
        ) {
            // n * (1 - rate) == expected distinct keys (by definition).
            let h = 1u64 << h_bits;
            let lhs = n as f64 * (1.0 - collision_rate(h, n));
            let rhs = expected_distinct_keys(h, n);
            prop_assert!((lhs - rhs).abs() < 1e-6 * rhs.max(1.0));
        }
    }
}
