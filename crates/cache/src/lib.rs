//! # bigmap-cache
//!
//! A set-associative cache-hierarchy simulator plus address-trace adapters
//! for both coverage-map data structures. Together they turn the paper's
//! qualitative Table I ("Access Patterns of the Bitmap Operations":
//! temporal/spatial locality, cache pollution) into measured numbers on the
//! modeled Xeon E5645 hierarchy (32 KiB L1d / 256 KiB L2 / 12 MiB shared
//! L3, 64 B lines).
//!
//! ## Example
//!
//! ```rust
//! use bigmap_cache::{trace_bigmap, trace_flat, BitmapKind, TraceWorkload, TracedOp};
//!
//! let workload = TraceWorkload {
//!     map_size: 2 << 20,
//!     active_keys: 10_000,
//!     events_per_exec: 2_000,
//!     executions: 4,
//!     seed: 1,
//! };
//! let flat = trace_flat(&workload);
//! let big = trace_bigmap(&workload);
//!
//! // BigMap's whole-pipeline "Others" passes touch the used prefix only:
//! // orders of magnitude fewer accesses than the flat whole-map scans.
//! let pick = |rows: &[bigmap_cache::TraceRow]| {
//!     rows.iter()
//!         .find(|r| r.op == TracedOp::Others && r.bitmap == BitmapKind::Coverage)
//!         .unwrap()
//!         .accesses_per_exec
//! };
//! assert!(pick(&big) < pick(&flat) / 10.0);
//! ```

#![deny(missing_docs)]

pub mod cache;
pub mod hierarchy;
pub mod reuse;
pub mod trace;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use hierarchy::{CacheHierarchy, HitLevel};
pub use reuse::{analyze_trace, ReuseDistanceAnalyzer, ReuseHistogram};
pub use trace::{trace_bigmap, trace_flat, BitmapKind, TraceRow, TraceWorkload, TracedOp};
